"""Bench: portability — retraining on a different simulated machine."""

from benchmarks.conftest import run_once


def test_ablation_platform(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("ablation_platform"))
    print("\n" + result.text)
    data = result.data

    # steps 2-6 rerun on an 8-core machine with smaller caches still give a
    # high-accuracy model...
    assert data["cv_accuracy"] > 0.97

    # ...whose root test is still a coherence event...
    assert "Snoop" in data["root_event"] or "RFO" in data["root_event"]

    # ...and whose detections on the benchmark models agree with the
    # Westmere results
    assert data["spot_agreement"] == data["spot_total"]
