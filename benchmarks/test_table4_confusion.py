"""Bench: Table 4 — stratified 10-fold cross-validation."""

import numpy as np

from benchmarks.conftest import run_once


def test_table4_confusion(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table4"))
    print("\n" + result.text)
    data = result.data

    # Paper: 875/880 = 99.4%.  Demand the same regime.
    assert data["accuracy"] >= 0.985

    m = np.array(data["matrix"])
    classes = data["classes"]
    i_good = classes.index("good")
    i_fs = classes.index("bad-fs")
    i_ma = classes.index("bad-ma")

    # bad-fs is never confused with anything (216/216 in the paper).
    assert m[i_fs, i_good] == 0
    assert m[i_fs, i_ma] == 0

    # good is never mistaken for bad-fs -> no false-positive pressure.
    assert m[i_good, i_fs] == 0

    # the only confusion allowed is the good <-> bad-ma boundary
    errors = m.sum() - np.trace(m)
    boundary = m[i_good, i_ma] + m[i_ma, i_good]
    assert errors == boundary
    assert errors <= 12
