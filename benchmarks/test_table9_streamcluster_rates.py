"""Bench: Table 9 — shadow-memory FS rates for streamcluster."""

from benchmarks.conftest import run_once


def test_table9_streamcluster_rates(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table9"))
    print("\n" + result.text)
    data = result.data
    rates = data["rates"]

    # paper shape: rates fall with input size (simsmall > simmedium >
    # simlarge) because the contended struct updates amortize over more
    # streamed points.
    def avg(inp):
        vals = [v for k, v in rates.items() if k.startswith(inp + "|")]
        return sum(vals) / len(vals)

    assert avg("simsmall") > avg("simmedium") > avg("simlarge")

    # simsmall: all cells above the 1e-3 threshold (actual FS)
    assert all(v > 1e-3 for k, v in rates.items()
               if k.startswith("simsmall|"))

    # simlarge: all cells below (no FS)
    assert all(v < 1e-3 for k, v in rates.items()
               if k.startswith("simlarge|"))

    # the classifier and oracle disagree on at most a couple of borderline
    # cells (paper: exactly one, simmedium -O1 T=8 at rate 0.00112)
    assert data["disagreements"] <= 3
