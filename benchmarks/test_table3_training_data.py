"""Bench: Table 3 — composition of the training data."""

from benchmarks.conftest import run_once


def test_table3_training_data(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table3"))
    print("\n" + result.text)
    s = result.data["summary"]

    # Initial collection matches the paper exactly by construction.
    assert s["part_a_initial"]["total"] == 675
    assert s["part_a_initial"]["good"] == 324
    assert s["part_a_initial"]["bad-fs"] == 216
    assert s["part_a_initial"]["bad-ma"] == 135
    assert s["part_b_initial"]["total"] == 271
    assert s["part_b_initial"]["good"] == 171
    assert s["part_b_initial"]["bad-ma"] == 100

    # Screening keeps every bad-fs instance and most of everything else
    # (paper: 653 + 227 = 880 remain of 946).
    assert s["part_a"]["bad-fs"] == 216
    assert 580 <= s["part_a"]["total"] <= 675
    assert 180 <= s["part_b"]["total"] <= 271
    assert 780 <= s["full"]["total"] <= 946

    # Screening removed bad-ma from A and mostly good from B, as the paper
    # describes (22 bad-ma; 41 good + 3 bad-ma).
    assert result.data["removed_a"].get("good", 0) == 0
    assert result.data["removed_a"].get("bad-ma", 0) > 0
    assert result.data["removed_b"].get("good", 0) > 0
