"""Bench: Table 6 — linear_regression execution time + classification grid."""

from benchmarks.conftest import run_once


def test_table6_linreg(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table6"))
    print("\n" + result.text)
    data = result.data

    labels = data["labels"]
    # every -O0 and -O1 cell is bad-fs (paper: 24/24)
    o01 = [v for k, v in labels.items()
           if "|-O0|" in k or "|-O1|" in k]
    assert o01.count("bad-fs") >= 22

    # every -O2 cell is NOT bad-fs (good, with at most a stray bad-ma)
    o2 = [v for k, v in labels.items() if "|-O2|" in k]
    assert all(v != "bad-fs" for v in o2)
    assert o2.count("good") >= 10

    tally = data["tally"]
    assert tally["bad-fs"] >= 22            # paper: 24
    assert tally["good"] >= 10              # paper: 11
    assert tally["bad-ma"] <= 2             # paper: 1
