"""Bench: accuracy vs number of events (the paper's future-work question)."""

from benchmarks.conftest import run_once


def test_ablation_events(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("ablation_events"))
    print("\n" + result.text)
    ks = result.data["ks"]
    accs = dict(zip(ks, result.data["accuracies"]))

    # one event is not enough for the three-way problem...
    assert accs[1] < accs[max(ks)]

    # ...but the tree's own 3-5 events already reach near-final accuracy
    # (Figure 2 uses 4 of the 15)
    assert accs[4] > accs[max(ks)] - 0.02

    # adding the remaining events never helps much (diminishing returns)
    assert accs[max(ks)] - accs[6] < 0.02

    # the full set is in the paper's accuracy regime
    assert accs[max(ks)] > 0.97
