"""Bench: Table 2 — the two-pass 2x event selection."""

from benchmarks.conftest import run_once


def test_table2_event_selection(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table2"))
    print("\n" + result.text)
    data = result.data

    # The paper's key events must survive our selection.
    for must in (
        "Snoop_Response.HIT_M",
        "Snoop_Response.HIT_E",
        "Snoop_Response.HIT",
        "L2_Write.RFO.S_state",
        "L1D_Cache_Replacements",
        "DTLB_Misses",
        "L2_Transactions.FILL",
    ):
        assert must in data["selected"], must

    # Strong agreement with the paper's 15 (allow a couple of misses:
    # different substrate, same procedure).
    assert len(data["agreed"]) >= 12

    # Events that scale with instructions must never be selected.
    for never in ("Br_Inst_Retired.All_Branches", "Uops_Retired.Any",
                  "Uops_Issued.Any"):
        assert never not in data["selected"], never

    # The paper's negative finding: the uncore HITM event fails selection.
    assert "Memory_Uncore_Retired.Other_core_L2_HITM" not in data["selected"]

    # Both passes contribute events, as in the two-step procedure.
    assert data["n_pass1"] >= 3
    assert data["n_pass2"] >= 3
