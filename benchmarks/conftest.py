"""Shared state for the benchmark harness.

Every bench regenerates one of the paper's tables/figures through the
shared :class:`PipelineContext` (training, classifications and oracle runs
are computed once per session and disk-cached across sessions).  Benches
print the regenerated artifact so ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's evaluation section end to end.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import run_experiment
from repro.experiments.context import PipelineContext


@pytest.fixture(scope="session")
def ctx():
    return PipelineContext()


@pytest.fixture(scope="session")
def experiment(ctx):
    """Run an experiment by id through the shared context (cached)."""
    cache = {}

    def run(exp_id: str):
        if exp_id not in cache:
            cache[exp_id] = run_experiment(exp_id, ctx)
        return cache[exp_id]

    return run


def run_once(benchmark, fn):
    """Benchmark an already-cached computation exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
