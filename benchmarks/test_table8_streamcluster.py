"""Bench: Table 8 — streamcluster execution time + classification grid."""

from benchmarks.conftest import run_once


def test_table8_streamcluster(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table8"))
    print("\n" + result.text)
    data = result.data

    labels = data["labels"]
    tally = data["tally"]

    # paper: 15 bad-fs / 11 good / 10 bad-ma out of 36
    assert 12 <= tally.get("bad-fs", 0) <= 18
    assert 8 <= tally.get("good", 0) <= 14
    assert 7 <= tally.get("bad-ma", 0) <= 12

    # simsmall at -O2/-O3 is solidly bad-fs (T=4, 8)
    for opt in ("-O2", "-O3"):
        for t in (4, 8):
            assert labels[f"simsmall|{opt}|{t}"] == "bad-fs"

    # the native input reads as bad memory access, never as false sharing
    native = [v for k, v in labels.items() if k.startswith("native|")]
    assert native.count("bad-ma") >= 7
    assert "bad-fs" not in native

    # optimization level does NOT fix streamcluster (unlike
    # linear_regression): bad-fs persists at -O2/-O3
    o23_fs = sum(1 for k, v in labels.items()
                 if ("|-O2|" in k or "|-O3|" in k) and v == "bad-fs")
    assert o23_fs >= 8
