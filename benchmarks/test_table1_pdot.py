"""Bench: Table 1 — the motivating parallel dot product.

Paper shape: Method 1 (good) scales with threads; Method 2 (false sharing)
is flat and *slower than sequential* once parallel; Method 3 (bad memory
access) is several times slower sequentially and converges to Method 2's
times when parallel.
"""

from benchmarks.conftest import run_once


def test_table1_pdot(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table1"))
    print("\n" + result.text)
    data = result.data

    # Method 1 scales down substantially from T=1 to T=16.
    assert data["good_speedup"] > 4.0

    # Method 2 at T=4 is SLOWER than the sequential good run (paper: 79.3s
    # vs 44.1s, i.e. ~1.8x): parallelism hurts under false sharing.
    assert data["fs_t4_vs_good_t1"] > 1.0

    # Method 3 sequential is several times the good sequential time.
    assert data["ma_t1_vs_good_t1"] > 2.0

    secs = data["seconds"]
    good = {t: secs[f"1: Good|{t}"] for t in (1, 4, 8, 12, 16)}
    fs = {t: secs[f"2: Bad, false sharing|{t}"] for t in (1, 4, 8, 12, 16)}
    ma = {t: secs[f"3: Bad, memory access|{t}"] for t in (1, 4, 8, 12, 16)}

    # good is monotone non-increasing in threads
    assert good[16] < good[4] < good[1]
    # bad-fs stays within a band for T>=4 and never scales down the way
    # good does (the paper's flat 76-79s row); cross-socket transfers at
    # higher thread counts are allowed to make it modestly worse
    fs_band = [fs[t] for t in (4, 8, 12, 16)]
    assert max(fs_band) / min(fs_band) < 2.0
    assert fs[16] > 0.8 * fs[4]
    # at T=1 methods 1 and 2 coincide (no sharing with one thread)
    assert abs(fs[1] - good[1]) / good[1] < 0.05
    # parallel bad-ma lands near parallel bad-fs times (rows converge)
    assert 0.2 < ma[8] / fs[8] < 5.0
