"""Bench: Table 11 — detection quality (correctness, FP rate)."""

from benchmarks.conftest import run_once


def test_table11_quality(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table11"))
    print("\n" + result.text)
    data = result.data

    # The paper's headline: ZERO false positives.
    assert data["fp"] == 0
    assert data["fp_rate"] == 0.0

    # Correctness 97.8% in the paper; same regime here.
    assert data["correctness"] >= 0.96

    # The misses are the handful of borderline cells (paper: 7).
    assert data["fn"] <= 10
    assert data["tp"] >= 18
    assert data["tn"] >= 285
