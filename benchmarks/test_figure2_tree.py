"""Bench: Figure 2 — the learned decision tree."""

from benchmarks.conftest import run_once


def test_figure2_tree(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("figure2"))
    print("\n" + result.text)
    data = result.data

    # Paper: 6 leaves, 11 nodes, 4 events.
    assert data["n_leaves"] <= 8
    assert data["n_nodes"] <= 15
    assert len(data["events_used"]) <= 5

    # The root tests event 11 (Snoop_Response.HIT"M") and that event alone
    # decides bad-fs — the paper's headline structural finding.
    assert data["root_event"] == "Snoop_Response.HIT_M"
    rendering = data["rendering"]
    first_line = rendering.splitlines()[0]
    assert "Snoop_Response.HIT_M" in first_line

    # bad-fs appears exactly once as a leaf, directly under the root's
    # right branch (event 11 alone determines it).
    assert rendering.count(": bad-fs") == 1

    # Events 14 (L1D repl) and 13 (DTLB misses) separate good from bad-ma.
    assert 14 in data["events_used"]
    assert 11 in data["events_used"]

    # All used events are Table 2 features.
    assert all(1 <= n <= 15 for n in data["events_used"])
