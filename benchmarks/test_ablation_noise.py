"""Bench: sensitivity to PMU measurement noise."""

from benchmarks.conftest import run_once


def test_ablation_noise(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("ablation_noise"))
    print("\n" + result.text)
    data = result.data

    # the method must tolerate realistic counter noise: noisy accuracy
    # stays within a point or two of noiseless
    assert data["noisy"] > 0.97
    assert data["quiet"] >= data["noisy"] - 0.005
    assert data["quiet"] - data["noisy"] < 0.03
