"""Bench: Table 5 — classification of Phoenix and PARSEC programs."""

from benchmarks.conftest import run_once


def test_table5_suites(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table5"))
    print("\n" + result.text)
    data = result.data

    programs = data["programs"]
    # The three abnormal programs must be called exactly as in the paper.
    assert programs["linear_regression"]["overall"] == "bad-fs"
    assert programs["streamcluster"]["overall"] == "bad-fs"
    assert programs["matrix_multiply"]["overall"] == "bad-ma"

    # Zero false positives at the program level: nothing else is bad-fs.
    for name, entry in programs.items():
        if name not in ("linear_regression", "streamcluster"):
            assert entry["overall"] != "bad-fs", name

    # Overall agreement with the paper's table (19 programs).
    assert data["agreement"] >= 17

    # histogram reproduces the paper's 35-good/1-bad-fs flicker.
    htally = programs["histogram"]["tally"]
    assert htally.get("good", 0) >= 33
    assert htally.get("bad-fs", 0) <= 2
