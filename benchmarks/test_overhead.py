"""Bench: Section 4's overhead comparison (< 2% vs ~20% vs ~5x)."""

from benchmarks.conftest import run_once


def test_overhead(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("overhead"))
    print("\n" + result.text)
    data = result.data

    # the paper's headline practicality claim
    assert data["worst_counting_pct"] < 2.0

    for label, rep in data["reports"].items():
        # ours << SHERIFF << shadow-memory
        assert rep["counting_pct"] < rep["sheriff_pct"], label
        assert rep["sheriff_pct"] / 100 + 1 < rep["shadow_factor"], label
        # SHERIFF around 20%, shadow around 5x (the cited numbers)
        assert 10 <= rep["sheriff_pct"] <= 30, label
        assert 4.0 <= rep["shadow_factor"] <= 6.0, label
