"""Bench: Table 10 — verification of detection against the oracle."""

from benchmarks.conftest import run_once


def test_table10_verification(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table10"))
    print("\n" + result.text)
    data = result.data
    totals = data["totals"]
    programs = data["programs"]

    # the paper verifies exactly 322 cases
    assert totals["cases"] == 322

    # all actual false sharing lives in linear_regression + streamcluster
    for name, entry in programs.items():
        if name not in ("linear_regression", "streamcluster"):
            assert entry["actual_fs"] == 0, name
            assert entry["detected_fs"] == 0, name

    # paper: linear_regression 18 actual / 12 detected
    lr = programs["linear_regression"]
    assert lr["actual_fs"] >= 16
    assert 10 <= lr["detected_fs"] <= 14

    # paper: streamcluster 11 actual / 10 detected
    sc = programs["streamcluster"]
    assert 9 <= sc["actual_fs"] <= 13
    assert 8 <= sc["detected_fs"] <= 12

    # totals in the paper's regime (29 actual, 22 detected)
    assert 26 <= totals["afs"] <= 32
    assert 19 <= totals["dfs"] <= 25
    # we never detect more than is actually there (no false positives)
    assert totals["dfs"] <= totals["afs"]
