"""Bench: the paper's Section 6 future work, implemented."""

from benchmarks.conftest import run_once


def test_future_slices(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("future_slices"))
    print("\n" + result.text)
    data = result.data

    # a good/bad-fs/good phased run is localized exactly
    assert data["middle_all_fs"]
    assert data["edges_no_fs"]
    assert data["overall"] == "bad-fs"
    # the contended phase dominates the run time
    assert data["fs_time_fraction"] > 0.4


def test_future_advisor(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("future_advisor"))
    print("\n" + result.text)
    data = result.data

    assert data["label"] == "bad-fs"
    assert data["n_contended"] >= 1
    # padding the named lines buys a large speedup in replay
    assert data["estimated_speedup"] > 2.0


def test_future_c2c(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("future_c2c"))
    print("\n" + result.text)
    data = result.data

    # sampling finds the contended line(s) and calls them false sharing
    assert data["n_suspects"] >= 1
    assert data["top_kind"] == "false-sharing-suspect"
    # multiple threads at multiple offsets — the packed-struct signature
    assert data["top_cpus"] >= 3
    assert data["top_offsets"] >= 3
    assert data["total_samples"] > 50
