"""Bench: the contribution of Part B (sequential training data)."""

from benchmarks.conftest import run_once


def test_ablation_partb(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("ablation_partb"))
    print("\n" + result.text)
    data = result.data

    # Both protocols are strong on their own data...
    assert data["full_cv"] > 0.97
    assert data["a_only_cv"] > 0.95

    # ...and a Part-A-only model still transfers reasonably to sequential
    # programs, but the full set must not be worse than A alone
    # (Section 2.2.2: adding Part B "indeed improved the accuracy").
    assert data["full_cv"] >= data["a_only_cv"] - 0.01

    # the A-trained model's bad-ma recall on B shows whether sequential
    # memory pathologies generalize from MT training alone; the transfer
    # gap is the entire reason Part B exists
    assert 0.0 <= data["a_to_b_badma_recall"] <= 1.0
    assert data["full_cv"] > data["a_to_b"]
