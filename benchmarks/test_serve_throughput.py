"""Bench: the serving stack against the real trained detector.

Two guarantees the smoke tests cannot give:

* **bit-identity at scale** — the compiled tree must agree with the
  recursive walker on the *full* training set (every instance the session
  pipeline collected, paper Table 3 scale), not just on synthetic probes;
* **capacity** — the end-to-end service (TCP + JSON + micro-batching)
  must sustain the ISSUE's floor of 10k classifications/s with zero shed,
  and the bare compiled tree must be far above it (it is the budget the
  transport spends).

Run via ``pytest benchmarks/test_serve_throughput.py -s`` (shares the
session :class:`PipelineContext`, so training is collected once).
"""

from __future__ import annotations

import numpy as np

from repro.serve.inference import as_compiled
from repro.serve.loadgen import measure_predict_batch
from repro.serve.server import ServerThread

#: The ISSUE's acceptance floor for the served path, classifications/s.
MIN_SERVED_RPS = 10_000


def test_compiled_tree_bit_identical_on_training_set(ctx):
    clf = ctx.detector.classifier
    X = np.asarray(ctx.training.dataset.X, dtype=float)
    compiled = as_compiled(clf)
    recursive = np.array([clf.root_.predict_one(row) for row in X],
                        dtype=object)
    assert np.array_equal(compiled.predict_batch(X), recursive)
    assert np.array_equal(clf.predict(X), recursive)
    print(f"bit-identity: {X.shape[0]} training instances, "
          f"{compiled.n_nodes}-node tree")


def test_served_throughput_meets_floor(ctx):
    from repro.serve.loadgen import generate_stream, run_loadgen

    compiled = as_compiled(ctx.detector.classifier)
    X, _ = generate_stream(20_000, lab=ctx.lab)
    vps = measure_predict_batch(compiled, X)
    thread = ServerThread(compiled, port=0)
    host, port = thread.start()
    try:
        result = run_loadgen(host, port, X, window=512)
    finally:
        thread.stop()
    print(f"served {result.throughput_rps:,.0f} req/s "
          f"(p99 {result.latency_ms['p99']:.2f} ms, shed {result.shed}); "
          f"bare predict_batch {vps:,.0f} vectors/s")
    assert result.shed == 0
    assert result.errors == 0
    assert result.throughput_rps >= MIN_SERVED_RPS
    assert vps >= 10 * MIN_SERVED_RPS
