"""Bench: robustness of the FS signature to interleave granularity."""

from benchmarks.conftest import run_once


def test_ablation_chunk(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("ablation_chunk"))
    print("\n" + result.text)
    gaps = result.data["gaps"]

    # the good/bad-fs HITM gap stays enormous at every granularity
    assert all(g > 20 for g in gaps.values()), gaps

    # finer interleaving means more ping-pong: gap at chunk=1 exceeds
    # the gap at chunk=16 in absolute bad-fs rate terms; here we just
    # require monotonic-ish behaviour without a sign flip
    assert gaps[1] > 0 and gaps[16] > 0
