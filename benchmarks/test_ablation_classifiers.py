"""Bench: classifier comparison — why the paper picked J48."""

from benchmarks.conftest import run_once


def test_ablation_classifiers(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("ablation_classifiers"))
    print("\n" + result.text)
    acc = result.data["accuracies"]

    # J48 must dominate the trivial baselines by a wide margin
    assert acc["J48 (C4.5)"] > acc["ZeroR"] + 0.3
    assert acc["J48 (C4.5)"] > acc["OneR"]

    # and at least match the other real classifiers (the paper's finding)
    assert acc["J48 (C4.5)"] >= acc["NaiveBayes"] - 0.01
    assert acc["J48 (C4.5)"] >= acc["kNN (k=5)"] - 0.01

    # the problem is genuinely learnable: good classifiers all clear 90%
    assert acc["kNN (k=5)"] > 0.9
    assert acc["J48 (C4.5)"] > 0.98
