"""Bench: Table 7 — shadow-memory FS rates for linear_regression."""

from benchmarks.conftest import run_once


def test_table7_linreg_rates(benchmark, experiment):
    result = run_once(benchmark, lambda: experiment("table7"))
    print("\n" + result.text)
    data = result.data

    lo01, hi01 = data["o01_range"]
    lo2, hi2 = data["o2_range"]

    # paper: -O0/-O1 rates 0.022..0.035 — same order of magnitude, and
    # 15-25x the -O2 rates.
    assert 0.01 < lo01 and hi01 < 0.08
    assert lo01 / hi2 > 8.0

    # paper's subtlety: even the -O2 "good" cells stay ABOVE the oracle's
    # 1e-3 threshold (rates ~0.00145).
    assert lo2 > 1e-3
    assert hi2 < 4e-3

    # rates are nearly input-size independent (paper: 0.0275 +- 0.002
    # across 50MB..500MB), because both misses and instructions scale.
    rates = data["rates"]
    for opt in ("-O0", "-O1", "-O2"):
        vals = [v for k, v in rates.items() if f"|{opt}|" in k]
        assert max(vals) / min(vals) < 2.0, opt
