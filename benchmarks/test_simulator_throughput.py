"""Bench: simulator throughput and pipeline wall time, tracked over PRs.

Measures (a) raw ``MulticoreMachine`` drive throughput in accesses/second —
reference loop vs vectorized fast path — on representative traces, and
(b) end-to-end ``classify_all`` + ``verify_all`` wall time for the
pre-optimization configuration (serial, reference drive loop, unfiltered
oracle) against the current one (parallel engine, fast drive path, filtered
oracle).  Results land in ``BENCH_simulator.json`` at the repo root so
future PRs can compare against the trajectory; on a multi-core runner the
end-to-end speedup multiplies the single-core algorithmic gains by the
worker fan-out.

Both configurations produce bit-identical labels and counts (asserted
here), so the timings compare two implementations of the same function.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.baselines.shadow import ShadowMemoryDetector
from repro.coherence.machine import MulticoreMachine, SCALED_WESTMERE
from repro.core.detector import FalseSharingDetector
from repro.core.lab import Lab
from repro.core.training import (
    PlanRow,
    ScreeningReport,
    TrainingData,
    collect_plan,
)
from repro.experiments.context import PipelineContext
from repro.parallel import default_jobs
from repro.suites import get_program
from repro.suites.base import SuiteCase
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: Traces spanning the compression spectrum: streaming (seq_read), padded
#: accumulators (psums good), contended (psums bad-fs), suite models.
def _drive_traces():
    seq = get_workload("seq_read")
    psums = get_workload("psums")
    yield "seq_read/good/t1", seq.trace(
        RunConfig(threads=1, mode=Mode.GOOD, size=seq.train_sizes[-1]))
    yield "psums/good/t4", psums.trace(
        RunConfig(threads=4, mode=Mode.GOOD, size=psums.train_sizes[-1]))
    yield "psums/bad-fs/t4", psums.trace(
        RunConfig(threads=4, mode=Mode.BAD_FS, size=psums.train_sizes[-1]))
    sc = get_program("streamcluster")
    yield "streamcluster/simsmall", sc.trace(SuiteCase("simsmall", "-O2", 4))


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _mini_tree():
    """A quickly-trained tree; classification cost, not quality, matters."""
    plan = [
        PlanRow("psums", Mode.GOOD, (1_500, 3_000), (3, 6), ("random",), 2),
        PlanRow("psums", Mode.BAD_FS, (1_500, 3_000), (3, 6), ("random",), 2),
        PlanRow("seq_read", Mode.BAD_MA, (32_768,), (1,),
                ("random", "stride8"), 1),
    ]
    lab = Lab(disk_cache=None)
    inst = collect_plan(lab, plan, "A")
    td = TrainingData(inst, [], inst, [],
                      ScreeningReport(inst, [], {}),
                      ScreeningReport([], [], {}))
    det = FalseSharingDetector(lab)
    det.fit(training=td)
    return det.classifier


def _pipeline(tree, fast: bool, jobs: int):
    ctx = PipelineContext(lab=Lab(disk_cache=None, fast=fast), jobs=jobs)
    ctx.shadow = ShadowMemoryDetector(fast=fast)
    det = FalseSharingDetector(ctx.lab)
    det.classifier = tree
    ctx._detector = det
    t0 = time.perf_counter()
    classified = ctx.classify_all()
    verified = ctx.verify_all()
    seconds = time.perf_counter() - t0
    labels = {name: dict(sorted((str(c), lbl) for c, lbl in p.labels.items()))
              for name, p in classified.items()}
    verdicts = {name: (v.actual_fs, v.detected_fs, v.cases)
                for name, v in verified.items()}
    return seconds, labels, verdicts


def test_simulator_throughput():
    payload = {
        "bench": "simulator-throughput",
        "cpus": os.cpu_count(),
        "jobs": default_jobs(),
        "drive": {},
        "e2e": {},
    }

    for label, prog in _drive_traces():
        n = int(prog.total_accesses)
        ref = MulticoreMachine(SCALED_WESTMERE, fast=False)
        fast = MulticoreMachine(SCALED_WESTMERE, fast=True)
        t_ref = _time(lambda: ref.run(prog))
        t_fast = _time(lambda: fast.run(prog))
        payload["drive"][label] = {
            "accesses": n,
            "ref_accesses_per_s": round(n / t_ref),
            "fast_accesses_per_s": round(n / t_fast),
            "speedup": round(t_ref / t_fast, 3),
        }
        # The fast path must never lose (the compression gate guarantees
        # parity on fragmented traces); allow a little timer noise.
        assert t_fast <= t_ref * 1.15, label

    tree = _mini_tree()
    t_before, labels_before, verdicts_before = _pipeline(
        tree, fast=False, jobs=1)
    t_after, labels_after, verdicts_after = _pipeline(
        tree, fast=True, jobs=default_jobs())
    assert labels_after == labels_before
    assert verdicts_after == verdicts_before
    payload["e2e"] = {
        "scope": "classify_all + verify_all (19 programs, cold caches)",
        "serial_reference_s": round(t_before, 2),
        "parallel_fast_s": round(t_after, 2),
        "speedup": round(t_before / t_after, 3),
    }

    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["e2e"], indent=2))
