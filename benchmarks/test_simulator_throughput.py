"""Bench: simulator throughput and pipeline wall time, tracked over PRs.

Measures (a) raw ``MulticoreMachine`` drive throughput in accesses/second
for every drive strategy — reference loop, run-compression, the
line-partitioned kernel, and the shipping ``auto`` default — on the pinned
``repro-bench`` trace grid (:func:`repro.telemetry.bench.drive_traces`, the
same cases the CI perf-regression gate replays), with hard ``speedup_floor``
checks on the contended traces, (b) the overhead of the telemetry hooks
in both their disabled (default) and enabled states, and (c) end-to-end
``classify_all`` + ``verify_all`` wall time for the pre-optimization
configuration (serial, reference drive loop, unfiltered oracle) against
the current one (parallel engine, fast drive path, filtered oracle).
Results land in ``BENCH_simulator.json`` at the repo root so future PRs
can compare against the trajectory — and so ``repro-bench --baseline
BENCH_simulator.json`` can gate them in CI.

Both configurations produce bit-identical labels and counts (asserted
here), so the timings compare two implementations of the same function.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.baselines.shadow import ShadowMemoryDetector
from repro.coherence.machine import MulticoreMachine, SCALED_WESTMERE
from repro.core.detector import FalseSharingDetector
from repro.core.lab import Lab
from repro.core.training import (
    PlanRow,
    ScreeningReport,
    TrainingData,
    collect_plan,
)
from repro.experiments.context import PipelineContext
from repro.parallel import default_jobs
from repro.telemetry.bench import (
    ROUTING_FLOOR,
    drive_traces,
    measure_drive,
    measure_routing,
    measure_store_workers,
)
from repro.telemetry.core import TELEMETRY
from repro.workloads.base import Mode

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _telemetry_overhead() -> dict:
    """Fast-path drive time with hooks disabled (default) vs enabled.

    The disabled state must be a no-op: its only cost is one attribute
    check per segment.  Even the *enabled* state only records per-segment
    spans, so both must land within 2 % of each other on a full trace.
    """
    label, prog = next(iter(drive_traces()))
    machine = MulticoreMachine(SCALED_WESTMERE, fast=True)
    assert not TELEMETRY.enabled  # disabled is the default
    t_off = _time(lambda: machine.run(prog), repeats=5)
    TELEMETRY.enable(reset=True)
    try:
        t_on = _time(lambda: machine.run(prog), repeats=5)
    finally:
        TELEMETRY.disable()
    overhead = t_on / t_off - 1.0
    # Enabled does strictly more work than disabled, so bounding the
    # enabled overhead under 2% bounds the disabled (default) hooks too.
    assert t_on <= t_off * 1.02, (
        f"telemetry overhead {overhead:.1%} on {label} exceeds 2%"
    )
    return {
        "trace": label,
        "disabled_s": round(t_off, 4),
        "enabled_s": round(t_on, 4),
        "enabled_overhead": round(overhead, 4),
    }


def _mini_tree():
    """A quickly-trained tree; classification cost, not quality, matters."""
    plan = [
        PlanRow("psums", Mode.GOOD, (1_500, 3_000), (3, 6), ("random",), 2),
        PlanRow("psums", Mode.BAD_FS, (1_500, 3_000), (3, 6), ("random",), 2),
        PlanRow("seq_read", Mode.BAD_MA, (32_768,), (1,),
                ("random", "stride8"), 1),
    ]
    lab = Lab(disk_cache=None)
    inst = collect_plan(lab, plan, "A")
    td = TrainingData(inst, [], inst, [],
                      ScreeningReport(inst, [], {}),
                      ScreeningReport([], [], {}))
    det = FalseSharingDetector(lab)
    det.fit(training=td)
    return det.classifier


def _pipeline(tree, fast: bool, jobs: int):
    ctx = PipelineContext(lab=Lab(disk_cache=None, fast=fast), jobs=jobs)
    ctx.shadow = ShadowMemoryDetector(fast=fast)
    det = FalseSharingDetector(ctx.lab)
    det.classifier = tree
    ctx._detector = det
    t0 = time.perf_counter()
    classified = ctx.classify_all()
    verified = ctx.verify_all()
    seconds = time.perf_counter() - t0
    labels = {name: dict(sorted((str(c), lbl) for c, lbl in p.labels.items()))
              for name, p in classified.items()}
    verdicts = {name: (v.actual_fs, v.detected_fs, v.cases)
                for name, v in verified.items()}
    return seconds, labels, verdicts


def test_simulator_throughput():
    payload = {
        "bench": "simulator-throughput",
        "cpus": os.cpu_count(),
        "jobs": default_jobs(),
        "drive": measure_drive(repeats=3),
        "routing": measure_routing(),
        "store_workers": measure_store_workers(),
        "telemetry": _telemetry_overhead(),
        "e2e": {},
    }

    # The routing-coverage floor is hard: ≥95% of the 19-program grid's
    # accesses must leave the scalar reference loop under 'auto'.
    routing = payload["routing"]
    assert routing["coverage"] >= ROUTING_FLOOR, routing
    assert payload["store_workers"]["worker_peak_rss_kib"]

    for label, row in payload["drive"].items():
        # The auto strategy must never lose (its probe routes each segment
        # to run-compression, the line kernel, or the reference loop);
        # allow a little timer noise.
        assert (row["fast_accesses_per_s"] * 1.15
                >= row["ref_accesses_per_s"]), label
        for strat in ("ref", "runs", "lines"):
            assert row[f"{strat}_accesses_per_s"] > 0, (label, strat)
        # Contended traces carry a hard floor: the line kernel must keep
        # paying off where the paper's signal actually lives.
        floor = row.get("speedup_floor")
        if floor:
            assert row["speedup"] >= floor, (label, row["speedup"], floor)

    tree = _mini_tree()
    t_before, labels_before, verdicts_before = _pipeline(
        tree, fast=False, jobs=1)
    t_after, labels_after, verdicts_after = _pipeline(
        tree, fast=True, jobs=default_jobs())
    assert labels_after == labels_before
    assert verdicts_after == verdicts_before
    payload["e2e"] = {
        "scope": "classify_all + verify_all (19 programs, cold caches)",
        "serial_reference_s": round(t_before, 2),
        "parallel_fast_s": round(t_after, 2),
        "speedup": round(t_before / t_after, 3),
    }

    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["e2e"], indent=2))
