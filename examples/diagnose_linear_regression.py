#!/usr/bin/env python3
"""Case study: Phoenix linear_regression (paper Section 4.1, Tables 6-7).

Reproduces the paper's diagnosis end to end:

1. classify every (input, optimization, threads) case with the trained
   detector — the -O0/-O1 grid is solid bad-fs, -O2 is good;
2. show the execution-time symptom (parallel slower than sequential at -O0);
3. confirm with the shadow-memory oracle: bad-fs cells have false-sharing
   rates 15-25x the good cells, and even the "good" -O2 cells stay just
   above the oracle's 1e-3 threshold, exactly as the paper found.

First run takes a few minutes (training + simulations); results are cached.
"""

from repro.baselines import ShadowMemoryDetector
from repro.experiments.context import PipelineContext
from repro.suites import get_program
from repro.suites.base import SuiteCase
from repro.utils.tables import render_grid


def main() -> None:
    ctx = PipelineContext()
    lr = get_program("linear_regression")
    print("training the detector on the mini-programs (cached after "
          "the first run)...")
    detector = ctx.detector
    classified = ctx.classify_program("linear_regression")

    inputs = ("50MB", "100MB", "500MB")
    opts = ("-O0", "-O1", "-O2")
    threads = (3, 6, 9, 12)

    print("\n=== classification and simulated time (paper Table 6) ===")
    rows, labels = [], []
    for inp in inputs:
        for opt in opts:
            labels.append(f"{inp} {opt}")
            row = []
            seq = ctx.lab.simulate(lr, SuiteCase(inp, opt, 1))
            row.append(f"{seq.seconds * 1e3:8.3f}ms (seq)")
            for t in threads:
                case = SuiteCase(inp, opt, t)
                lab = classified.labels[case]
                row.append(f"{classified.seconds[case] * 1e3:8.3f}ms "
                           f"[{lab}]")
            rows.append(row)
    print(render_grid(labels, ("T=1",) + tuple(f"T={t}" for t in threads),
                      rows, corner="input/opt"))

    print("\nSymptom check: at -O0 the sequential run beats every parallel "
          "one —")
    seq = ctx.lab.simulate(lr, SuiteCase("500MB", "-O0", 1)).seconds
    par = ctx.lab.simulate(lr, SuiteCase("500MB", "-O0", 6)).seconds
    print(f"  500MB -O0: T=1 {seq * 1e3:.2f} ms vs T=6 {par * 1e3:.2f} ms "
          f"({par / seq:.1f}x slower with 6 threads!)")

    print("\n=== shadow-memory oracle confirmation (paper Table 7) ===")
    oracle = ShadowMemoryDetector()
    for inp in inputs:
        for opt in opts:
            for t in (3, 6):
                case = SuiteCase(inp, opt, t)
                rate = oracle.run(lr.trace(case)).fs_rate
                ours = classified.labels[case]
                print(f"  {inp:6s} {opt} T={t}: fs-rate={rate:.6f} "
                      f"{'(FS present)' if rate > 1e-3 else '(no FS)':13s}"
                      f" ours={ours}")
    print("\nDiagnosis: the per-thread partial-sum structs are packed 40 "
          "bytes apart;\nat -O0/-O1 every point updates them in memory -> "
          "cache-line ping-pong.\n-O2 keeps the sums in registers, which "
          "fixes the signature (and the time),\nthough the oracle still "
          "sees residual contention above its threshold.")


if __name__ == "__main__":
    main()
