#!/usr/bin/env python3
"""Detect false sharing in YOUR OWN code: writing a custom workload.

The detector is trained on mini-programs and knows nothing about your
application.  To analyze one, describe its memory behaviour as a
:class:`Workload` that emits per-thread access traces — here, a worker pool
whose per-worker statistics struct has a classic layout bug — then ask the
detector for a verdict, and check what a one-line padding fix changes.
"""

import numpy as np

from repro import FalseSharingDetector, Lab, Mode, RunConfig, Workload
from repro.memory.allocator import BumpAllocator
from repro.trace.access import ThreadTrace
from repro.workloads.builders import with_sync
try:
    from examples.quickstart import compact_training
except ImportError:  # running from inside examples/
    from quickstart import compact_training


class WorkerPoolStats(Workload):
    """A job-processing pool: each worker streams jobs and bumps counters.

    ``stats[worker] = {processed; errors}`` — a 16-byte struct per worker.
    Four workers' structs fit one cache line: if the array is not padded,
    every counter bump contends with three neighbours.

    ``cfg.mode`` selects the layout: good = padded to a line per worker,
    bad-fs = packed structs (the bug).  ``cfg.size`` is jobs per worker.
    """

    name = "worker_pool_stats"
    kind = "mt"
    modes = frozenset({Mode.GOOD, Mode.BAD_FS})
    train_sizes = (20_000,)
    description = "example custom workload with a stats-array layout bug"

    def _generate(self, cfg: RunConfig):
        alloc = BumpAllocator()
        sync = alloc.alloc_line_aligned(64)
        stride = 64 if cfg.mode is Mode.GOOD else 16
        stats_base = alloc.alloc(stride * cfg.threads, align=64)
        job_queue = alloc.alloc_array(8, cfg.size * cfg.threads, align=64)

        threads = []
        for wid in range(cfg.threads):
            my_stats = stats_base + wid * stride
            jobs = job_queue.addr(
                np.arange(cfg.size) + wid * cfg.size)
            n = cfg.size
            # per job: read the job descriptor, bump `processed` (RMW),
            # occasionally bump `errors`
            err = (np.arange(n) % 37) == 0
            counts = 3 + 2 * err.astype(np.int64)
            total = int(counts.sum())
            addrs = np.empty(total, np.int64)
            writes = np.zeros(total, bool)
            ends = np.cumsum(counts)
            starts = ends - counts
            addrs[starts] = jobs
            addrs[starts + 1] = my_stats
            addrs[starts + 2] = my_stats
            writes[starts + 2] = True
            es = starts[err]
            addrs[es + 3] = my_stats + 8
            addrs[es + 4] = my_stats + 8
            writes[es + 4] = True
            addrs, writes = with_sync(addrs, writes, sync, 4096)
            threads.append(ThreadTrace(addrs, writes, instr_per_access=3.0))
        return threads


def main() -> None:
    lab = Lab()
    print("training the detector (compact plan)...")
    detector = FalseSharingDetector(lab).fit(training=compact_training(lab))

    pool = WorkerPoolStats()
    for mode, label in [(Mode.BAD_FS, "packed stats[] (the bug)"),
                        (Mode.GOOD, "line-padded stats[] (the fix)")]:
        cfg = RunConfig(threads=8, mode=mode, size=20_000)
        result = detector.classify(pool, cfg)
        print(f"\n  layout: {label}")
        print(f"    verdict: {result.label}")
        print(f"    simulated time: {result.seconds * 1e3:.3f} ms")
    lab.flush()

    print("\nThe one-line fix (padding the struct to a cache line) removes "
          "the\nfalse-sharing verdict and most of the run time — without "
          "the detector\never seeing the source code, only event counts.")


if __name__ == "__main__":
    main()
