#!/usr/bin/env python3
"""Explore the PMU: perf-style counting and the Section 2.3 event selection.

Shows (1) what the false-sharing signature looks like in raw normalized
counts, (2) why single events are not enough on their own (the bad-ma
confounder), and (3) the 2x-majority selection run on a candidate subset,
including the erratic uncore-HITM event the paper expected to work and
found useless.
"""

from repro import Lab, RunConfig, TABLE2_EVENTS, get_workload
from repro.core.event_selection import select_events
from repro.pmu.events import event_by_raw_key
from repro.utils.tables import render_table


def main() -> None:
    lab = Lab()
    pdot = get_workload("pdot")

    print("=== normalized Table 2 counts for pdot (6 threads) ===")
    vectors = {}
    for mode in ("good", "bad-fs", "bad-ma"):
        cfg = RunConfig(threads=6, mode=mode, size=196_608)
        vectors[mode] = lab.measure(pdot, cfg, TABLE2_EVENTS)
    rows = []
    for i, event in enumerate(TABLE2_EVENTS[:15], start=1):
        rows.append([i, event.name] + [
            f"{vectors[m].normalized(event):.3e}"
            for m in ("good", "bad-fs", "bad-ma")
        ])
    print(render_table(["#", "event", "good", "bad-fs", "bad-ma"], rows))
    hitm = TABLE2_EVENTS[10]
    print(f"\nevent 11 ({hitm.name}) separates bad-fs by "
          f"{vectors['bad-fs'].normalized(hitm) / max(vectors['good'].normalized(hitm), 1e-9):.0f}x"
          " — but events like L1D replacements rise in BOTH bad modes,"
          "\nwhich is why the paper needs the three-way classifier, not a"
          " single threshold.")

    print("\n=== the Section 2.3 selection on a candidate subset ===")
    candidates = [
        TABLE2_EVENTS[10],                                  # Snoop HITM
        TABLE2_EVENTS[13],                                  # L1D repl
        TABLE2_EVENTS[12],                                  # DTLB misses
        event_by_raw_key("BR_INST_RETIRED.ALL_BRANCHES"),   # no signal
        event_by_raw_key("UOPS_RETIRED.ANY"),               # no signal
        event_by_raw_key("MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM"),  # erratic
    ]
    sel = select_events(
        lab,
        candidates=candidates,
        mt_programs=["psums", "pdot"],
        ma_programs=["pdot", "seq_read"],
    )
    for e in candidates:
        status = ("pass 1 (good vs bad-fs)" if e in sel.pass1 else
                  "pass 2 (good vs bad-ma)" if e in sel.pass2 else
                  "REJECTED")
        print(f"  {e.name:45s} -> {status}")
    print("\nNote the rejection of Memory_Uncore_Retired.Other_core_L2_HITM:"
          "\nits counts are dominated by unrelated load traffic (a Westmere"
          "\nerratum), so its good/bad ratio never clears 2x — the paper's"
          "\nSection 2.3 reports exactly this surprise.")
    lab.flush()


if __name__ == "__main__":
    main()
