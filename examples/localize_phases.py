#!/usr/bin/env python3
"""Beyond the paper: localize WHEN and WHERE false sharing happens.

The published method gives one verdict per run.  This example exercises the
two extensions this library adds on the same substrate (both named by the
paper as future work / complementary):

1. time-sliced detection — a program that is healthy for most of its run
   and falsely shares during one phase gets per-slice verdicts that pin the
   phase down;
2. the advisor — for a falsely-sharing run, name the contended cache lines,
   the threads fighting over them, and estimate what padding would buy.
"""

from repro import FalseSharingDetector, Lab, RunConfig, get_workload
from repro.core.advisor import FalseSharingAdvisor
from repro.core.slicing import SlicedDetector, phased_program

try:
    from examples.quickstart import compact_training
except ImportError:  # running from inside examples/
    from quickstart import compact_training


def main() -> None:
    lab = Lab()
    print("training (compact plan, cached)...")
    detector = FalseSharingDetector(lab).fit(training=compact_training(lab))

    # --- 1. a three-phase run: stream, falsely share, stream -------------
    pdot = get_workload("pdot")
    good = pdot.trace(RunConfig(threads=6, mode="good", size=98_304))
    bad = pdot.trace(RunConfig(threads=6, mode="bad-fs", size=98_304))
    program = phased_program([good, bad, good], name="stream-share-stream")

    print("\n=== time-sliced detection of a phased run ===")
    diag = SlicedDetector(detector, n_slices=9).diagnose_trace(program)
    print(diag.render())
    print("phase structure:", diag.phases())

    # --- 2. the advisor on the falsely-sharing phase ----------------------
    print("\n=== advisor: which lines, which threads, what fix ===")
    advisor = FalseSharingAdvisor(detector)
    report = advisor.diagnose(pdot, RunConfig(threads=6, mode="bad-fs",
                                              size=196_608))
    print(report.render())
    lab.flush()


if __name__ == "__main__":
    main()
