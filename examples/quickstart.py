#!/usr/bin/env python3
"""Quickstart: train the detector and classify Figure 1's dot product.

This uses a compact training plan (a subset of the paper's Section 3.1
collection) so it finishes in under a minute; run with ``--full`` for the
complete 880-instance pipeline (a few minutes on first run, cached after).

Usage::

    python examples/quickstart.py [--full]
"""

import argparse
import time

from repro import FalseSharingDetector, Lab, Mode, RunConfig, get_workload
from repro.core.training import (
    PlanRow,
    ScreeningReport,
    TrainingData,
    collect_plan,
    collect_training_data,
)


def compact_training(lab: Lab) -> TrainingData:
    """A small but representative slice of the paper's training plan."""
    plan_a = [
        PlanRow("psums", Mode.GOOD, (2_000, 6_000), (3, 6, 12), ("random",), 2),
        PlanRow("psums", Mode.BAD_FS, (2_000, 6_000), (3, 6, 12), ("random",), 2),
        PlanRow("false1", Mode.GOOD, (2_000,), (3, 6, 12), ("random",), 2),
        PlanRow("false1", Mode.BAD_FS, (2_000,), (3, 6, 12), ("random",), 2),
        PlanRow("count", Mode.GOOD, (98_304,), (3, 6, 12), ("random",), 2),
        PlanRow("count", Mode.BAD_FS, (98_304,), (3, 6, 12), ("random",), 2),
        PlanRow("psumv", Mode.BAD_MA, (98_304,), (3, 6, 12),
                ("random", "stride16"), 1),
        PlanRow("psumv", Mode.GOOD, (98_304,), (3, 6, 12), ("random",), 2),
    ]
    plan_b = [
        PlanRow("seq_read", Mode.GOOD, (65_536, 131_072), (1,), ("random",), 3),
        PlanRow("seq_read", Mode.BAD_MA, (65_536, 131_072), (1,),
                ("random", "stride8"), 2),
        PlanRow("seq_rmw", Mode.BAD_MA, (131_072,), (1,), ("random",), 2),
        PlanRow("seq_rmw", Mode.GOOD, (131_072,), (1,), ("random",), 2),
    ]
    a = collect_plan(lab, plan_a, "A")
    b = collect_plan(lab, plan_b, "B")
    return TrainingData(a, b, a, b, ScreeningReport(a, [], {}),
                        ScreeningReport(b, [], {}))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the paper's full 880-instance collection")
    args = parser.parse_args()

    lab = Lab()  # a simulated 12-core Westmere DP with a scaled hierarchy
    print("collecting training data from the mini-programs...")
    t0 = time.time()
    training = (collect_training_data(lab) if args.full
                else compact_training(lab))
    detector = FalseSharingDetector(lab).fit(training=training)
    lab.flush()
    print(f"trained on {len(training.dataset)} instances "
          f"in {time.time() - t0:.0f}s\n")

    print("The learned decision tree (paper Figure 2):")
    print(detector.render_tree())
    print(f"events used (Table 2 numbering): {detector.tree_event_numbers()}\n")

    # Classify the three dot-product variants from the paper's Figure 1.
    pdot = get_workload("pdot")
    print("classifying Figure 1's parallel dot product (6 threads):")
    for mode, expectation in [
        (Mode.GOOD, "thread-private accumulators"),
        (Mode.BAD_FS, "psum[myid] += ... on a shared cache line"),
        (Mode.BAD_MA, "strided vector access"),
    ]:
        cfg = RunConfig(threads=6, mode=mode, size=196_608)
        result = detector.classify(pdot, cfg)
        verdict = "CORRECT" if result.label == mode.value else "WRONG"
        print(f"  Method ({expectation:45s}) -> {result.label:7s} [{verdict}]"
              f"  simulated time {result.seconds * 1e3:7.3f} ms")


if __name__ == "__main__":
    main()
