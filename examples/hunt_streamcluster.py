#!/usr/bin/env python3
"""Case study: PARSEC streamcluster (paper Section 4.2-4.3, Tables 8-9).

streamcluster is the paper's hardest case: its false sharing comes from a
``#define CACHE_LINE 32`` padding constant (half a real line, so pairs of
threads still share), the contention dilutes as inputs grow, the native
input adds genuine bad-memory-access behaviour, and barrier spin-waiting
makes one grid cell flip between "good" and "bad-fs" across runs.

This script reproduces all four observations.
"""

from collections import Counter

from repro.baselines import ShadowMemoryDetector
from repro.experiments.context import PipelineContext
from repro.suites import get_program
from repro.suites.base import SuiteCase
from repro.utils.tables import render_grid


def main() -> None:
    ctx = PipelineContext()
    sc = get_program("streamcluster")
    detector = ctx.detector
    classified = ctx.classify_program("streamcluster")

    inputs = ("simsmall", "simmedium", "simlarge", "native")
    opts = ("-O1", "-O2", "-O3")
    threads = (4, 8, 12)

    print("=== classification grid (paper Table 8) ===")
    rows, row_labels = [], []
    for inp in inputs:
        for opt in opts:
            row_labels.append(f"{inp} {opt}")
            rows.append([
                f"{classified.seconds[SuiteCase(inp, opt, t)] * 1e3:7.3f}ms "
                f"[{classified.labels[SuiteCase(inp, opt, t)]}]"
                for t in threads
            ])
    print(render_grid(row_labels, tuple(f"T={t}" for t in threads), rows,
                      corner="input/opt"))
    tally = Counter(classified.labels.values())
    print(f"tally: {dict(tally)}  (paper: 15 bad-fs / 11 good / 10 bad-ma)")

    print("\n=== the unstable top-right cell (spin-lock waiting) ===")
    flaky = SuiteCase("simsmall", "-O1", 12)
    for rep in range(5):
        case = flaky.with_(rep=rep)
        res = ctx.lab.simulate(sc, case)
        from repro.pmu.events import TABLE2_EVENTS
        vec = ctx.lab.measure(sc, case, TABLE2_EVENTS)
        label = detector.classify_vector(vec)
        print(f"  run {rep}: {res.instructions:>12,} instructions, "
              f"{res.seconds * 1e3:7.3f} ms -> {label}")
    print("  (instruction counts swing with spin time; normalized counts "
          "and the verdict swing with them — paper Section 4.3)")

    print("\n=== oracle rates by input (paper Table 9; native too slow) ===")
    oracle = ShadowMemoryDetector()
    for inp in ("simsmall", "simmedium", "simlarge"):
        for opt in opts:
            rates = []
            for t in (4, 8):
                rates.append(oracle.run(sc.trace(SuiteCase(inp, opt, t))).fs_rate)
            marks = ["FS" if r > 1e-3 else "no-FS" for r in rates]
            print(f"  {inp:10s} {opt}: T4 {rates[0]:.6f} ({marks[0]}), "
                  f"T8 {rates[1]:.6f} ({marks[1]})")
    print("\nNote the simmedium -O1 T=8 cell: the oracle still sees a rate "
          "just above 1e-3\nwhile the event signature reads good — the one "
          "detection miss the paper reports.")


if __name__ == "__main__":
    main()
