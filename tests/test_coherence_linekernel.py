"""Golden equivalence: the line-partitioned kernel vs the reference loop.

The line kernel (``repro.coherence.linekernel``) partitions each segment's
access stream by cache line and replays every line's MESI state machine
over its own subsequence, with cross-line counters (DTLB, LFB, L1D sets)
handled on the unsorted stream.  Its contract is *bit-identical*
``_SegmentTallies`` against the per-access reference loop — these tests
pin that over the full 19-program suite grid, the sliced-run API, HITM
sampling, the final coherence state (cache contents *and* LRU order), and
the ineligibility fallback.
"""

from __future__ import annotations

import pytest

from repro.coherence.machine import (
    DRIVE_STRATEGIES,
    MulticoreMachine,
    SCALED_WESTMERE,
    SimulationError,
)
from repro.suites import all_programs, get_program
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

from tests.conftest import SMALL_SPEC


def _assert_identical(res_a, res_b):
    assert res_a.counts == res_b.counts
    assert res_a.cycles_per_core == res_b.cycles_per_core
    assert res_a.instructions_per_core == res_b.instructions_per_core
    assert res_a.seconds == res_b.seconds
    assert res_a.hitm_samples == res_b.hitm_samples


_GRID = [(p.name, p.cases()[0]) for p in all_programs()]

#: path_counts per grid program, accumulated by the parametrized golden
#: test and checked for kernel coverage by the summary test below it.
_GRID_PATHS = {}


@pytest.mark.parametrize("name,case", _GRID, ids=[n for n, _ in _GRID])
def test_line_kernel_matches_reference_on_suite_grid(name, case):
    prog = get_program(name).trace(case)
    machine = MulticoreMachine(SCALED_WESTMERE, fast="lines")
    lines = machine.run(prog)
    ref = MulticoreMachine(SCALED_WESTMERE, fast=False).run(prog)
    _assert_identical(lines, ref)
    _GRID_PATHS[name] = dict(machine.path_counts)


def test_line_kernel_drives_most_of_the_grid():
    # Meaningfulness guard: the grid test above must genuinely exercise
    # the kernel, not its reference fallback.  (Runs after it in file
    # order; a filtered run that skipped the grid is skipped too.)
    if len(_GRID_PATHS) < len(_GRID):
        pytest.skip("suite-grid golden test did not run")
    taken = sum(c.get("lines", 0) for c in _GRID_PATHS.values())
    total = sum(sum(c.values()) for c in _GRID_PATHS.values())
    assert taken >= total * 0.5, _GRID_PATHS


def _contended_trace(size=None):
    w = get_workload("psums")
    return w.trace(RunConfig(threads=4, mode=Mode.BAD_FS,
                             size=size or w.train_sizes[-1]))


def _snap(cache):
    """Cache contents per set, in LRU order (line, state) pairs."""
    return [list(s.items()) for s in cache.sets]


def test_line_kernel_final_state_matches_reference():
    prog = _contended_trace()
    ml = MulticoreMachine(SCALED_WESTMERE, fast="lines")
    mr = MulticoreMachine(SCALED_WESTMERE, fast=False)
    res_l = ml.run(prog, keep_state=True)
    res_r = mr.run(prog, keep_state=True)
    _assert_identical(res_l, res_r)
    assert ml.path_counts.get("lines", 0) >= 1
    assert "ref-gated" not in ml.path_counts
    for cl, cr in zip(ml._l1, mr._l1):
        assert _snap(cl) == _snap(cr), cl.name
    for cl, cr in zip(ml._l2, mr._l2):
        assert _snap(cl) == _snap(cr), cl.name
    assert _snap(ml._l3) == _snap(mr._l3)
    assert ml._contenders == mr._contenders


def test_line_kernel_sliced_matches_reference():
    prog = _contended_trace()
    lines = MulticoreMachine(SCALED_WESTMERE, fast="lines").run_sliced(prog, 5)
    ref = MulticoreMachine(SCALED_WESTMERE, fast=False).run_sliced(prog, 5)
    assert len(lines) == len(ref) == 5
    for res_l, res_r in zip(lines, ref):
        _assert_identical(res_l, res_r)


def test_line_kernel_hitm_sampling_matches_reference():
    prog = _contended_trace()
    m = MulticoreMachine(SCALED_WESTMERE, fast="lines", hitm_sample_period=7)
    lines = m.run(prog)
    ref = MulticoreMachine(SCALED_WESTMERE, fast=False,
                           hitm_sample_period=7).run(prog)
    _assert_identical(lines, ref)
    assert m.path_counts.get("lines", 0) >= 1
    assert lines.hitm_samples  # the sweep actually exercised sampling


def test_line_kernel_replays_l2_evictions_identically():
    # 4k distinct lines overflow every L2 set (32 lines per 8-way set) but
    # fit L3 comfortably: the eviction-aware replay must keep the segment
    # on the kernel path and stay bit-identical, final state included.
    w = get_workload("seq_read")
    prog = w.trace(RunConfig(threads=1, mode=Mode.GOOD, size=32_768))
    ml = MulticoreMachine(SCALED_WESTMERE, fast="lines")
    mr = MulticoreMachine(SCALED_WESTMERE, fast=False)
    res = ml.run(prog, keep_state=True)
    ref = mr.run(prog, keep_state=True)
    assert ml.path_counts == {"lines": 1}
    _assert_identical(res, ref)
    assert res.counts["L2_LINES_OUT.DEMAND_CLEAN"] > 0  # evictions happened
    for cl, cr in zip(ml._l1, mr._l1):
        assert _snap(cl) == _snap(cr), cl.name
    for cl, cr in zip(ml._l2, mr._l2):
        assert _snap(cl) == _snap(cr), cl.name
    assert _snap(ml._l3) == _snap(mr._l3)


def test_line_kernel_replays_dirty_evictions_identically():
    # Same shape but with stores: dirty victims must write back (and land
    # in L3) exactly like the reference loop's back-invalidation path.
    w = get_workload("seq_write")
    prog = w.trace(RunConfig(threads=1, mode=Mode.GOOD, size=32_768))
    ml = MulticoreMachine(SCALED_WESTMERE, fast="lines")
    mr = MulticoreMachine(SCALED_WESTMERE, fast=False)
    res = ml.run(prog, keep_state=True)
    ref = mr.run(prog, keep_state=True)
    assert ml.path_counts == {"lines": 1}
    _assert_identical(res, ref)
    assert res.counts["L2_LINES_OUT.DEMAND_DIRTY"] > 0
    for cl, cr in zip(ml._l2, mr._l2):
        assert _snap(cl) == _snap(cr), cl.name
    assert _snap(ml._l3) == _snap(mr._l3)


def test_line_kernel_sliced_replays_warm_resident_lines_identically():
    # Sliced runs hand each segment the previous segment's warm caches, so
    # replay-owned lines can already be *resident* in the owner's L2 when
    # the segment starts.  Those must keep their real MESI state through
    # the eviction-aware replay (not the walk sentinel) or reconstruction
    # has no walk record to resolve them from.  Regression test for a
    # KeyError in the wholesale L2-set rebuild.
    w = get_workload("seq_write")
    prog = w.trace(RunConfig(threads=1, mode=Mode.GOOD, size=32_768))
    ml = MulticoreMachine(SCALED_WESTMERE, fast="lines")
    mr = MulticoreMachine(SCALED_WESTMERE, fast=False)
    res = ml.run_sliced(prog, 4, keep_state=True)
    ref = mr.run_sliced(prog, 4, keep_state=True)
    assert ml.path_counts.get("lines", 0) >= 2  # warm segments stayed fast
    assert "ref-gated" not in ml.path_counts
    for res_l, res_r in zip(res, ref):
        _assert_identical(res_l, res_r)
    for cl, cr in zip(ml._l2, mr._l2):
        assert _snap(cl) == _snap(cr), cl.name
    assert _snap(ml._l3) == _snap(mr._l3)


def test_line_kernel_ineligible_segment_falls_back_identically():
    # 32k distinct lines overflow the L3 budget (32 lines per 16-way set);
    # the forced 'lines' strategy must fall back to the reference loop
    # (recorded as 'ref-gated') and stay identical.
    w = get_workload("seq_read")
    prog = w.trace(RunConfig(threads=1, mode=Mode.GOOD, size=262_144))
    m = MulticoreMachine(SCALED_WESTMERE, fast="lines")
    res = m.run(prog)
    assert m.path_counts.get("ref-gated", 0) >= 1
    assert "lines" not in m.path_counts
    _assert_identical(res, MulticoreMachine(SCALED_WESTMERE,
                                            fast=False).run(prog))


def test_auto_routes_contended_trace_to_line_kernel():
    prog = _contended_trace()
    m = MulticoreMachine(SCALED_WESTMERE, fast=True)
    res = m.run(prog)
    assert m.path_counts.get("lines", 0) >= 1
    _assert_identical(res, MulticoreMachine(SCALED_WESTMERE,
                                            fast=False).run(prog))


def test_strategy_vocabulary_and_validation():
    assert DRIVE_STRATEGIES == ("auto", "runs", "lines", "ref")
    for name in DRIVE_STRATEGIES:
        assert MulticoreMachine(SMALL_SPEC, fast=name).strategy == name
    assert MulticoreMachine(SMALL_SPEC, fast=True).strategy == "auto"
    assert MulticoreMachine(SMALL_SPEC, fast=False).strategy == "ref"
    with pytest.raises(SimulationError):
        MulticoreMachine(SMALL_SPEC, fast="vectorized")
