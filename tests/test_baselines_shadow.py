"""Tests for the shadow-memory (Zhao et al. [33]) oracle."""

import numpy as np
import pytest

from repro.baselines.shadow import (
    FS_RATE_THRESHOLD,
    MAX_THREADS,
    ShadowMemoryDetector,
    ShadowReport,
    false_sharing_rate,
)
from repro.errors import BaselineError
from repro.trace.access import ProgramTrace, make_thread


def rmw_thread(addr, n, ipa=3.0):
    addrs = np.full(2 * n, addr, dtype=np.int64)
    writes = np.zeros(2 * n, bool)
    writes[1::2] = True
    return make_thread(addrs, writes, instr_per_access=ipa)


class TestClassification:
    def test_false_sharing_detected(self):
        # two threads writing distinct words of the same line
        prog = ProgramTrace([rmw_thread(4096, 400), rmw_thread(4104, 400)])
        rep = ShadowMemoryDetector().run(prog)
        assert rep.fs_misses > 100
        assert rep.ts_misses == 0
        assert rep.has_false_sharing

    def test_true_sharing_not_false(self):
        # both threads write the SAME word: contention is true sharing
        prog = ProgramTrace([rmw_thread(4096, 400), rmw_thread(4096, 400)])
        rep = ShadowMemoryDetector().run(prog)
        assert rep.ts_misses > 100
        assert rep.fs_misses == 0
        assert not rep.has_false_sharing

    def test_padded_threads_only_cold_misses(self):
        prog = ProgramTrace([rmw_thread(4096, 400), rmw_thread(4160, 400)])
        rep = ShadowMemoryDetector().run(prog)
        assert rep.fs_misses == 0
        assert rep.ts_misses == 0
        assert rep.cold_misses == 2

    def test_single_thread_no_sharing(self):
        prog = ProgramTrace([rmw_thread(4096, 100)])
        rep = ShadowMemoryDetector().run(prog)
        assert rep.fs_misses == 0 and rep.ts_misses == 0

    def test_read_only_sharing_no_misses_counted(self):
        def t():
            return make_thread(np.full(100, 4096, dtype=np.int64))
        rep = ShadowMemoryDetector().run(ProgramTrace([t(), t()]))
        assert rep.fs_misses == 0 and rep.ts_misses == 0

    def test_mixed_slots_same_line_is_false_sharing(self):
        # reader touches word 0; writer updates word 1 of the same line
        reader = make_thread(np.full(300, 4096, dtype=np.int64))
        writer = rmw_thread(4104, 150)
        rep = ShadowMemoryDetector().run(ProgramTrace([reader, writer]))
        assert rep.fs_misses > 50
        assert rep.ts_misses == 0


class TestRate:
    def test_rate_definition(self):
        prog = ProgramTrace([rmw_thread(4096, 400), rmw_thread(4104, 400)])
        rep = ShadowMemoryDetector().run(prog)
        assert rep.fs_rate == rep.fs_misses / prog.total_instructions

    def test_threshold_boundary(self):
        rep = ShadowReport(fs_misses=11, ts_misses=0, cold_misses=0,
                           instructions=10_000, nthreads=2)
        assert rep.has_false_sharing
        rep2 = ShadowReport(fs_misses=9, ts_misses=0, cold_misses=0,
                            instructions=10_000, nthreads=2)
        assert not rep2.has_false_sharing

    def test_zero_instructions_rejected(self):
        rep = ShadowReport(0, 0, 0, 0, 1)
        with pytest.raises(BaselineError):
            _ = rep.fs_rate

    def test_convenience_function(self):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        assert false_sharing_rate(prog) > FS_RATE_THRESHOLD


class TestLimitations:
    def test_eight_thread_limit(self):
        threads = [rmw_thread(4096 + 8 * i, 10) for i in range(9)]
        with pytest.raises(BaselineError):
            ShadowMemoryDetector().run(ProgramTrace(threads))
        assert MAX_THREADS == 8

    def test_exactly_eight_allowed(self):
        threads = [rmw_thread(4096 + 8 * i, 10) for i in range(8)]
        rep = ShadowMemoryDetector().run(ProgramTrace(threads))
        assert rep.nthreads == 8


class TestOnWorkloads:
    def test_mini_program_fs_gap(self, mini_lab):
        """Paper Section 4.3: mini-programs show an order-of-magnitude gap
        in FS rates between modes."""
        from repro.workloads import RunConfig, get_workload

        w = get_workload("psums")
        det = ShadowMemoryDetector()
        good = det.run(w.trace(RunConfig(threads=4, mode="good", size=2000)))
        bad = det.run(w.trace(RunConfig(threads=4, mode="bad-fs", size=2000)))
        assert bad.fs_rate > 10 * max(good.fs_rate, 1e-6)
        assert bad.has_false_sharing
        assert not good.has_false_sharing


class TestPerLineAttribution:
    def test_line_detail_collected_when_enabled(self):
        prog = ProgramTrace([rmw_thread(4096, 300), rmw_thread(4104, 300)])
        rep = ShadowMemoryDetector(track_lines=True).run(prog)
        assert rep.per_line
        fs, ts = rep.per_line[64]
        assert fs > 100 and ts == 0

    def test_detail_off_by_default(self):
        prog = ProgramTrace([rmw_thread(4096, 50), rmw_thread(4104, 50)])
        rep = ShadowMemoryDetector().run(prog)
        assert rep.per_line is None
        assert rep.hottest_fs_lines() == []

    def test_hottest_ordering(self):
        t0 = rmw_thread(4096, 50).concat(rmw_thread(8192, 400))
        t1 = rmw_thread(4104, 50).concat(rmw_thread(8200, 400))
        rep = ShadowMemoryDetector(track_lines=True).run(
            ProgramTrace([t0, t1]))
        hot = rep.hottest_fs_lines()
        assert [h[0] for h in hot] == [128, 64]

    def test_true_sharing_lines_excluded_from_fs_list(self):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4096, 200)])
        rep = ShadowMemoryDetector(track_lines=True).run(prog)
        assert rep.hottest_fs_lines() == []
        assert rep.per_line[64][1] > 50  # but recorded as true sharing

    def test_agreement_with_c2c_sampling(self):
        """Instrumentation (shadow) and sampling (c2c) name the same line."""
        from repro.coherence.machine import MulticoreMachine, SCALED_WESTMERE
        from repro.tools.c2c import c2c_report
        from repro.workloads import RunConfig, get_workload

        pdot = get_workload("pdot")
        tr = pdot.trace(RunConfig(threads=4, mode="bad-fs", size=65_536))
        shadow = ShadowMemoryDetector(track_lines=True).run(tr)
        m = MulticoreMachine(SCALED_WESTMERE, hitm_sample_period=9)
        res = m.run(tr)
        c2c = c2c_report(res.hitm_samples, 9)
        shadow_top = shadow.hottest_fs_lines(1)[0][0]
        c2c_top = c2c.false_sharing_suspects()[0].line
        assert shadow_top == c2c_top


class TestFastPrefilter:
    """The numpy prefilter must be invisible: identical counts everywhere."""

    def _both(self, prog, **kw):
        ref = ShadowMemoryDetector(fast=False, **kw).run(prog)
        fast = ShadowMemoryDetector(fast=True, **kw).run(prog)
        return fast, ref

    def _assert_same(self, fast, ref):
        assert fast.fs_misses == ref.fs_misses
        assert fast.ts_misses == ref.ts_misses
        assert fast.cold_misses == ref.cold_misses
        assert fast.instructions == ref.instructions
        assert fast.per_line == ref.per_line

    def test_synthetic_traces(self):
        for prog in (
            ProgramTrace([rmw_thread(4096, 400), rmw_thread(4104, 400)]),
            ProgramTrace([rmw_thread(4096, 400), rmw_thread(4096, 400)]),
            ProgramTrace([rmw_thread(4096, 100)]),
        ):
            self._assert_same(*self._both(prog))

    def test_mini_programs(self):
        from repro.workloads import RunConfig, get_workload

        for name, mode in (("psums", "bad-fs"), ("psums", "good"),
                           ("pdot", "bad-fs")):
            w = get_workload(name)
            prog = w.trace(RunConfig(threads=4, mode=mode,
                                     size=w.train_sizes[0]))
            self._assert_same(*self._both(prog))

    def test_suite_trace_with_line_detail(self):
        from repro.suites import get_program

        p = get_program("linear_regression")
        case = p.verification_cases()[0]
        fast, ref = self._both(p.trace(case), track_lines=True)
        self._assert_same(fast, ref)
        assert ref.per_line is not None

    def test_fast_default_on(self):
        assert ShadowMemoryDetector().fast is True
