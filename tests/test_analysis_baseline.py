"""Tests for the finding-baseline ratchet."""

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_VERSION,
    baseline_payload,
    diff_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.lint import Finding
from repro.errors import ConfigError


def finding(rule="FS006", scope="psums/bad-fs/t4", lines=(100,),
            threads=(0, 1), objects=("psum[t0]", "psum[t1]")):
    return Finding(rule, "error", "packed slots", list(lines),
                   list(threads), "pad it", {},
                   objects=list(objects), scope=scope)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert finding().fingerprint == finding().fingerprint

    def test_scope_sensitive(self):
        assert (finding(scope="psums/bad-fs/t4").fingerprint
                != finding(scope="pdot/bad-fs/t4").fingerprint)

    def test_object_order_insensitive(self):
        a = finding(objects=("b", "a"))
        b = finding(objects=("a", "b"))
        assert a.fingerprint == b.fingerprint

    def test_message_not_part_of_identity(self):
        a = finding()
        b = finding()
        b.message = "different wording, same bug"
        assert a.fingerprint == b.fingerprint


class TestPayload:
    def test_sorted_and_versioned(self):
        fs = [finding(scope="z/t4"), finding(scope="a/t4"),
              finding(rule="FS005", scope="a/t4")]
        payload = baseline_payload(fs)
        assert payload["version"] == BASELINE_VERSION
        keys = [(e["scope"], e["rule"]) for e in payload["findings"]]
        assert keys == sorted(keys)

    def test_entry_is_reviewable(self):
        (entry,) = baseline_payload([finding()])["findings"]
        assert entry["fingerprint"] == finding().fingerprint
        assert entry["objects"] == ["psum[t0]", "psum[t1]"]
        assert entry["message"] == "packed slots"


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "base.json"
        saved = save_baseline(path, [finding()])
        assert load_baseline(path) == saved
        # file is stable, reviewable JSON with a trailing newline
        assert path.read_text().endswith("\n")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_baseline(tmp_path / "nope.json")

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ConfigError, match="version"):
            load_baseline(path)

    def test_malformed(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"version": BASELINE_VERSION}))
        with pytest.raises(ConfigError, match="malformed"):
            load_baseline(path)


class TestDiff:
    def test_new_known_fixed(self):
        known = finding()
        gone = finding(scope="false1/bad-fs/t4")
        baseline = baseline_payload([known, gone])
        fresh = finding(rule="FS007", scope="pmatmult/bad-fs/t4")
        diff = diff_findings([known, fresh], baseline)
        assert [f.fingerprint for f in diff.known] == [known.fingerprint]
        assert [f.fingerprint for f in diff.new] == [fresh.fingerprint]
        assert [e["fingerprint"] for e in diff.fixed] == [gone.fingerprint]
        assert not diff.clean

    def test_clean_when_all_known(self):
        baseline = baseline_payload([finding()])
        diff = diff_findings([finding()], baseline)
        assert diff.clean
        assert "0 new" in diff.render()
        assert diff.to_dict()["counts"] == {"new": 0, "known": 1, "fixed": 0}

    def test_render_flags_new_and_fixed(self):
        diff = diff_findings([finding()], baseline_payload(
            [finding(scope="false1/bad-fs/t4")]))
        out = diff.render()
        assert "NEW" in out and "FIXED" in out

    def test_empty_everything(self):
        diff = diff_findings([], baseline_payload([]))
        assert diff.clean
        assert "no unsuppressed findings" in diff.render()


class TestFindingRoundTrip:
    def test_json_round_trip_preserves_fingerprint(self):
        f = finding()
        back = Finding.from_dict(json.loads(json.dumps(f.to_dict())))
        assert back.fingerprint == f.fingerprint
        assert back.objects == f.objects
        assert back.scope == f.scope
        assert back.to_dict() == f.to_dict()

    def test_from_dict_ignores_stored_fingerprint(self):
        d = finding().to_dict()
        d["fingerprint"] = "spoofed"
        assert Finding.from_dict(d).fingerprint == finding().fingerprint
