"""Tests for deterministic RNG utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import choice_weighted, rng_for, spawn, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, None) == stable_hash("a", 1, None)

    def test_differs_by_part(self):
        assert stable_hash("a") != stable_hash("b")
        assert stable_hash(1) != stable_hash(2)

    def test_type_distinction(self):
        # "1" (str) and 1 (int) must hash differently.
        assert stable_hash("1") != stable_hash(1)

    def test_none_vs_empty_string(self):
        assert stable_hash(None) != stable_hash("")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_no_concatenation_ambiguity(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_known_stability(self):
        # Pin one value so cross-session stability breakage is caught.
        assert stable_hash("repro") == stable_hash("repro")
        assert isinstance(stable_hash("repro"), int)

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            stable_hash(3.14)

    @given(st.lists(st.one_of(st.integers(), st.text()), max_size=5))
    def test_hash_is_pure(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)


class TestRngFor:
    def test_same_seed_same_stream(self):
        a = rng_for("x", 1).integers(0, 1 << 30, 10)
        b = rng_for("x", 1).integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_different_seed_different_stream(self):
        a = rng_for("x", 1).integers(0, 1 << 30, 10)
        b = rng_for("x", 2).integers(0, 1 << 30, 10)
        assert (a != b).any()


class TestSpawn:
    def test_children_independent(self):
        parent = rng_for("p")
        kids = spawn(parent, 3)
        streams = [k.integers(0, 1 << 30, 8) for k in kids]
        assert (streams[0] != streams[1]).any()
        assert (streams[1] != streams[2]).any()

    def test_zero_children(self):
        assert spawn(rng_for("p"), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(rng_for("p"), -1)


class TestChoiceWeighted:
    def test_certain_choice(self):
        rng = rng_for("c")
        assert choice_weighted(rng, ["a", "b"], [1.0, 0.0]) == "a"

    def test_rejects_bad_weights(self):
        rng = rng_for("c")
        with pytest.raises(ValueError):
            choice_weighted(rng, ["a"], [-1.0])
        with pytest.raises(ValueError):
            choice_weighted(rng, [], [])
        with pytest.raises(ValueError):
            choice_weighted(rng, ["a", "b"], [0.0, 0.0])

    def test_distribution_roughly_respected(self):
        rng = rng_for("dist")
        picks = [choice_weighted(rng, [0, 1], [0.25, 0.75]) for _ in range(800)]
        frac = sum(picks) / len(picks)
        assert 0.65 < frac < 0.85
