"""Tests for statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import geometric_mean, majority, mean_ci, ratio, tally


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=20))
    def test_between_min_and_max(self, vals):
        g = geometric_mean(vals)
        assert min(vals) * 0.999 <= g <= max(vals) * 1.001


class TestRatio:
    def test_symmetric(self):
        assert ratio(2, 10) == ratio(10, 2) == pytest.approx(5.0)

    def test_equal_values(self):
        assert ratio(3.3, 3.3) == pytest.approx(1.0)

    def test_zero_guarded(self):
        assert ratio(0.0, 1.0) > 1e6  # huge but finite

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ratio(-1.0, 2.0)

    @given(st.floats(1e-6, 1e6), st.floats(1e-6, 1e6))
    def test_always_at_least_one(self, a, b):
        assert ratio(a, b) >= 1.0


class TestMajority:
    def test_clear_winner(self):
        assert majority(["a", "b", "a"]) == "a"

    def test_tie_breaks_deterministically(self):
        assert majority(["b", "a"]) == majority(["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority([])

    def test_tally(self):
        assert tally(["x", "y", "x"]) == {"x": 2, "y": 1}
        assert tally([]) == {}


class TestMeanCI:
    def test_single_value(self):
        m, h = mean_ci([5.0])
        assert m == 5.0 and h == 0.0

    def test_mean_correct(self):
        m, h = mean_ci([1.0, 3.0])
        assert m == pytest.approx(2.0)
        assert h > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_tighter_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = mean_ci(rng.normal(0, 1, 10))[1]
        large = mean_ci(rng.normal(0, 1, 1000))[1]
        assert large < small
