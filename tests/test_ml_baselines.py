"""Tests for the comparison classifiers."""

import numpy as np
import pytest

from repro.errors import DatasetError, NotFittedError
from repro.ml.baselines_ml import ALL_BASELINE_CLASSIFIERS, KNN, GaussianNB, OneR, ZeroR
from repro.ml.dataset import Dataset


def blobs(n=120, seed=0):
    """Three well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    X, y = [], []
    for i, (cx, cy) in enumerate([(0, 0), (6, 0), (0, 6)]):
        X.append(rng.normal([cx, cy], 0.5, size=(n // 3, 2)))
        y += [f"c{i}"] * (n // 3)
    return Dataset(np.vstack(X), y, ["x", "y"])


class TestZeroR:
    def test_predicts_majority(self):
        ds = Dataset(np.zeros((5, 1)), ["a", "a", "a", "b", "b"], ["x"])
        z = ZeroR().fit(ds)
        assert list(z.predict(np.zeros((2, 1)))) == ["a", "a"]

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            ZeroR().predict(np.zeros((1, 1)))

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            ZeroR().fit(Dataset(np.empty((0, 1)), [], ["x"]))


class TestOneR:
    def test_single_feature_rule(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.normal(size=100), np.linspace(0, 1, 100)])
        y = ["hi" if v > 0.5 else "lo" for v in X[:, 1]]
        r = OneR().fit(Dataset(X, y, ["noise", "signal"]))
        assert r.feature_ == 1
        acc = (r.predict(X) == np.array(y, dtype=object)).mean()
        assert acc > 0.9

    def test_bins_validated(self):
        with pytest.raises(DatasetError):
            OneR(bins=1)

    def test_blobs(self):
        ds = blobs()
        r = OneR().fit(ds)
        # one feature cannot separate three 2-D blobs perfectly but beats chance
        acc = (r.predict(ds.X) == ds.y).mean()
        assert acc > 0.5


class TestGaussianNB:
    def test_separable_blobs(self):
        ds = blobs()
        nb = GaussianNB().fit(ds)
        assert (nb.predict(ds.X) == ds.y).mean() > 0.98

    def test_priors_used(self):
        # heavily imbalanced: ambiguous points go to the majority
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (95, 1)), rng.normal(0.2, 1, (5, 1))])
        y = ["maj"] * 95 + ["min"] * 5
        nb = GaussianNB().fit(Dataset(X, y, ["x"]))
        assert nb.predict(np.array([[0.1]]))[0] == "maj"

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            GaussianNB().predict(np.zeros((1, 2)))


class TestKNN:
    def test_separable_blobs(self):
        ds = blobs()
        knn = KNN(k=3).fit(ds)
        assert (knn.predict(ds.X) == ds.y).mean() > 0.98

    def test_k_validated(self):
        with pytest.raises(DatasetError):
            KNN(k=0)

    def test_standardization_matters(self):
        # one feature on a huge scale would dominate without standardization
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.normal(size=60) * 1e6,
                             np.repeat([0.0, 1.0], 30)])
        y = ["a"] * 30 + ["b"] * 30
        knn = KNN(k=3).fit(Dataset(X, y, ["big", "small"]))
        probe = np.array([[0.0, 1.0]])
        assert knn.predict(probe)[0] == "b"

    def test_k_larger_than_train(self):
        ds = blobs(n=9)
        knn = KNN(k=50).fit(ds)
        assert knn.predict(ds.X).shape == (9,)


class TestRegistryDict:
    def test_all_four_present(self):
        assert set(ALL_BASELINE_CLASSIFIERS) == {"ZeroR", "OneR",
                                                 "NaiveBayes", "kNN"}

    def test_all_instantiable_and_fittable(self):
        ds = blobs()
        for cls in ALL_BASELINE_CLASSIFIERS.values():
            model = cls().fit(ds)
            assert model.predict(ds.X[:3]).shape == (3,)
