"""``repro.results.trend``: MAD bands and trajectory tables."""

from __future__ import annotations

import pytest

from repro.errors import ResultsError
from repro.results.store import ResultsStore
from repro.results.trend import (
    MAD_SCALE,
    MIN_TRAJECTORY,
    mad_band,
    render_trend_markdown,
    render_trend_table,
    trend_rows,
)

from tests.test_results_store import bench_payload


def test_mad_band_on_noisy_series():
    values = [100.0, 120.0, 80.0, 110.0, 90.0]
    band = mad_band(values, max_regression=0.30, k=3.0)
    assert band.median == 100.0
    assert band.mad == 10.0
    half = 3.0 * MAD_SCALE * 10.0  # wider than 30% of 100
    assert band.lo == pytest.approx(100.0 - half)
    assert band.hi == pytest.approx(100.0 + half)
    assert band.contains(100.0) and not band.contains(0.0)


def test_mad_band_zero_mad_falls_back_to_pairwise_width():
    # A perfectly quiet history must not produce a zero-width band.
    band = mad_band([100.0, 100.0, 100.0], max_regression=0.30)
    assert band.mad == 0.0
    assert band.lo == pytest.approx(70.0)
    assert band.hi == pytest.approx(130.0)


def test_mad_band_single_point_is_defined():
    band = mad_band([50.0], max_regression=0.10)
    assert band.median == 50.0
    assert band.lo == pytest.approx(45.0)


def test_mad_band_empty_series_raises():
    with pytest.raises(ResultsError):
        mad_band([])


def test_trend_rows_band_only_with_enough_history(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        for i in range(MIN_TRAJECTORY):
            store.ingest(bench_payload(fast=1_000_000 + i))
        rows = {r.name: r for r in trend_rows(store)}
        fast = rows["drive.psums/bad-fs/t4.fast_accesses_per_s"]
        assert fast.band is None and fast.status == "short"
        store.ingest(bench_payload(fast=1_000_000 + MIN_TRAJECTORY))
        rows = {r.name: r for r in trend_rows(store)}
        fast = rows["drive.psums/bad-fs/t4.fast_accesses_per_s"]
        assert fast.band is not None
        assert fast.n == MIN_TRAJECTORY + 1
        assert fast.status == "ok"


def test_trend_flags_drift_outside_band(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        for i in range(5):
            store.ingest(bench_payload(fast=1_000_000 + i))
        store.ingest(bench_payload(fast=100_000))  # -90%: way outside
        rows = {r.name: r for r in trend_rows(store)}
        assert rows["drive.psums/bad-fs/t4.fast_accesses_per_s"].status \
            == "drift"
        # lower-is-better drift is the other side of the band: a latency
        # metric dropping is an improvement, never drift.


def test_trend_render_table_and_markdown(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        store.ingest(bench_payload())
        rows = trend_rows(store)
    text = render_trend_table(rows)
    assert "routing.coverage" in text and "status" in text
    md = render_trend_markdown(rows)
    assert md.startswith("| kind |")
    assert "| bench |" in md
    assert render_trend_table([]) == "no runs in store"
    assert "no runs" in render_trend_markdown([])
