"""Shared fixtures.

Unit tests use hermetic labs (no disk cache).  A handful of heavier
integration tests share the session-scoped ``mini_lab`` so its simulation
cache amortizes across files.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coherence.machine import MachineSpec, MulticoreMachine
from repro.core.lab import Lab


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def machine():
    """A fresh scaled-geometry machine for simulator unit tests."""
    return MulticoreMachine(spec=SMALL_SPEC)


#: Tiny but valid geometry: fast unit tests with real set/assoc behaviour.
SMALL_SPEC = MachineSpec(
    cores=4,
    sockets=2,
    l1_kib=4,
    l1_assoc=4,
    l2_kib=16,
    l2_assoc=8,
    l3_mib=1,
    l3_assoc=16,
    tlb_entries=8,
    name="unit-test-spec",
)


@pytest.fixture
def small_spec():
    return SMALL_SPEC


@pytest.fixture(scope="session")
def mini_lab():
    """Session-shared lab over the scaled Westmere (in-memory cache only)."""
    return Lab(disk_cache=None)


@pytest.fixture
def hermetic_lab():
    return Lab(disk_cache=None)
