"""End-to-end tests for the detection server (repro.serve.server) and its
client, over real TCP connections on an ephemeral port.

The contract under test: every accepted request gets exactly one response
in order; overload is an explicit ``overloaded`` response, never an
unbounded buffer; stop(drain=True) answers everything already queued; a
model reload never drops a connection.
"""

from __future__ import annotations

import json
import socket
import time

import numpy as np
import pytest

from repro.core.training import FEATURES
from repro.errors import ServeError
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.pmu.events import NORMALIZER
from repro.serve.client import ServeClient
from repro.serve.server import DetectionServer, ServerThread

N_FEATURES = len(FEATURES)


def _make_clf(flip=False):
    rng = np.random.default_rng(5)
    X = rng.normal(size=(200, N_FEATURES))
    hot, cold = ("good", "bad-fs") if flip else ("bad-fs", "good")
    y = [hot if r[0] > 0 else cold for r in X]
    return C45Classifier().fit(Dataset(X, y, [e.name for e in FEATURES]))


@pytest.fixture(scope="module")
def clf():
    return _make_clf()


@pytest.fixture
def served(clf):
    thread = ServerThread(clf, port=0)
    host, port = thread.start()
    yield thread, host, port
    thread.stop()


class TestProtocol:
    def test_classify_matches_offline_predict(self, served, clf, rng):
        _, host, port = served
        X = rng.normal(size=(40, N_FEATURES))
        expected = clf.predict(X)
        with ServeClient(host, port) as c:
            got = [c.classify(row, rid=i) for i, row in enumerate(X)]
        assert got == list(expected)

    def test_counts_path_normalizes(self, served, clf):
        _, host, port = served
        raw = {e.name: 2.0 for e in FEATURES}
        raw[NORMALIZER.name] = 4.0
        features = np.full(N_FEATURES, 0.5)
        with ServeClient(host, port) as c:
            assert c.classify_counts(raw) == c.classify(features)

    def test_ping_and_stats(self, served):
        _, host, port = served
        with ServeClient(host, port) as c:
            assert c.ping()
            stats = c.stats()
        assert stats["accepting"] is True
        assert stats["model"]["nodes"] >= 1
        assert set(stats["config"]) == {"max_batch", "max_wait_ms", "backlog"}

    def test_bad_requests_get_error_not_disconnect(self, served):
        _, host, port = served
        with ServeClient(host, port) as c:
            r = c.request({"op": "classify", "id": 1, "features": [1.0]})
            assert r["error"] == "bad_request"
            r = c.request({"op": "classify", "id": 2})
            assert r["error"] == "bad_request"
            r = c.request({"op": "wat"})
            assert r["error"] == "bad_request"
            r = c.request({"op": "classify", "id": 3,
                           "counts": ["not", "a", "dict"]})
            assert r["error"] == "bad_request"
            assert c.ping()  # connection survived all of it

    def test_invalid_json_line(self, served):
        _, host, port = served
        with socket.create_connection((host, port)) as sock:
            sock.sendall(b"{nope\n")
            resp = json.loads(sock.makefile("rb").readline())
        assert resp["error"] == "bad_request"

    def test_responses_in_request_order(self, served, rng):
        _, host, port = served
        X = rng.normal(size=(300, N_FEATURES))
        with ServeClient(host, port) as c:
            bulk = c.classify_many(X, window=64)
        assert bulk.ok == 300
        assert bulk.errors == 0 and bulk.shed == 0
        assert np.isfinite(bulk.latency_s).all()

    def test_client_refuses_dead_server(self):
        with pytest.raises(ServeError):
            ServeClient("127.0.0.1", 1, timeout=0.5)


class TestBatching:
    def test_pipelined_load_forms_batches(self, clf, rng):
        thread = ServerThread(clf, port=0, max_batch=64)
        host, port = thread.start()
        try:
            X = rng.normal(size=(1000, N_FEATURES))
            with ServeClient(host, port) as c:
                bulk = c.classify_many(X, window=256)
                stats = c.stats()
            assert bulk.ok == 1000
            assert stats["max_batch_seen"] > 1  # batching actually engaged
            assert stats["classified"] == 1000
        finally:
            thread.stop()


class TestBackpressure:
    def test_overload_sheds_explicitly(self, clf, rng):
        # Backlog of 8 with the batcher paused: at most 9 requests can be
        # in flight (8 queued + 1 held by the batcher); every later one
        # must come back as a typed `overloaded` response, in order.
        thread = ServerThread(clf, port=0, backlog=8)
        host, port = thread.start()
        try:
            thread.pause_batching()
            X = rng.normal(size=(50, N_FEATURES))
            with ServeClient(host, port) as c:
                for i, row in enumerate(X):
                    c._send({"op": "classify", "id": i,
                             "features": [float(v) for v in row]})
                time.sleep(0.3)  # let the reader admit or shed all 50
                thread.resume_batching()
                responses = [c._recv() for _ in range(50)]
            labels = [r for r in responses if "label" in r]
            sheds = [r for r in responses if r.get("error") == "overloaded"]
            assert len(labels) + len(sheds) == 50
            # 8 queued, plus the one the batcher may have grabbed before
            # the pause landed.
            assert len(labels) in (8, 9)
            assert [r["id"] for r in responses] == list(range(50))
            assert thread.server.shed == len(sheds)
            assert thread.server.classified == len(labels)
        finally:
            thread.stop()

    def test_bulk_client_counts_sheds(self, clf, rng):
        import threading

        thread = ServerThread(clf, port=0, backlog=2)
        host, port = thread.start()
        try:
            thread.pause_batching()
            timer = threading.Timer(0.5, thread.resume_batching)
            timer.start()
            try:
                with ServeClient(host, port) as c:
                    bulk = c.classify_many(
                        rng.normal(size=(20, N_FEATURES)), window=20
                    )
            finally:
                timer.cancel()
            assert bulk.shed > 0
            assert bulk.errors == 0
            assert bulk.ok + bulk.shed == 20
        finally:
            thread.stop()


class TestDrain:
    def test_stop_drains_queued_requests(self, clf, rng):
        thread = ServerThread(clf, port=0, backlog=64)
        host, port = thread.start()
        client = ServeClient(host, port)
        try:
            thread.pause_batching()
            X = rng.normal(size=(10, N_FEATURES))
            for i, row in enumerate(X):
                client._send({"op": "classify", "id": i,
                              "features": [float(v) for v in row]})
            time.sleep(0.2)  # let the reader enqueue them
            thread.resume_batching()
            thread.stop()  # drain=True: all 10 must still be answered
            responses = [client._recv() for _ in range(10)]
            assert all("label" in r for r in responses)
            assert sorted(r["id"] for r in responses) == list(range(10))
        finally:
            client.close()

    def test_classify_after_stop_refused(self, clf):
        thread = ServerThread(clf, port=0)
        host, port = thread.start()
        thread.stop()
        with pytest.raises(ServeError):
            ServeClient(host, port, timeout=0.5)


class TestReload:
    def test_hot_reload_swaps_model(self, clf, tmp_path, rng):
        from repro.ml.persistence import save_classifier

        flipped = _make_clf(flip=True)
        path = tmp_path / "flipped.json"
        save_classifier(flipped, path)
        probe = np.full(N_FEATURES, 2.0)  # r[0] > 0: clf and flipped disagree
        thread = ServerThread(clf, port=0)
        host, port = thread.start()
        try:
            with ServeClient(host, port) as c:
                before = c.classify(probe)
                info = c.reload(str(path))
                after = c.classify(probe)  # same connection survives
            assert info["reloaded"] is True
            assert before == clf.predict(probe[None, :])[0]
            assert after == flipped.predict(probe[None, :])[0]
            assert before != after
            assert thread.server.reloads == 1
        finally:
            thread.stop()

    def test_reload_failure_keeps_old_model(self, clf, tmp_path):
        thread = ServerThread(clf, port=0)
        host, port = thread.start()
        try:
            with ServeClient(host, port) as c:
                with pytest.raises(ServeError):
                    c.reload(str(tmp_path / "missing.json"))
                assert c.ping()
                assert c.classify(np.zeros(N_FEATURES)) in (
                    "good", "bad-fs")
        finally:
            thread.stop()


class TestServerConstruction:
    def test_bad_params_rejected(self, clf):
        with pytest.raises(ServeError):
            DetectionServer(clf, max_batch=0)
        with pytest.raises(ServeError):
            DetectionServer(clf, max_wait_s=-1)
        with pytest.raises(ServeError):
            DetectionServer(clf, backlog=0)

    def test_double_start_rejected(self, clf):
        thread = ServerThread(clf, port=0)
        thread.start()
        try:
            with pytest.raises(ServeError):
                thread.start()
        finally:
            thread.stop()

    def test_bind_failure_surfaces(self, clf, served):
        _, host, port = served
        with pytest.raises(ServeError):
            ServerThread(clf, host=host, port=port).start()
