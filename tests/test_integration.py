"""End-to-end integration: the paper's method on a reduced scale.

Collect labeled data from mini-programs, train the tree, and detect false
sharing in programs the classifier never saw — including a suite model —
plus cross-checks against the shadow-memory oracle.  This is the whole
methodology in one test file, small enough to run in seconds.
"""

import pytest

from repro.baselines.shadow import ShadowMemoryDetector
from repro.core.detector import FalseSharingDetector
from repro.core.lab import Lab
from repro.core.training import (
    PlanRow,
    ScreeningReport,
    TrainingData,
    collect_plan,
)
from repro.suites import get_program
from repro.suites.base import SuiteCase
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def detector():
    lab = Lab(disk_cache=None)
    plan_a = [
        PlanRow("psums", Mode.GOOD, (2_000, 6_000), (3, 6, 12), ("random",), 2),
        PlanRow("psums", Mode.BAD_FS, (2_000, 6_000), (3, 6, 12), ("random",), 2),
        PlanRow("false1", Mode.GOOD, (2_000,), (3, 6, 12), ("random",), 2),
        PlanRow("false1", Mode.BAD_FS, (2_000,), (3, 6, 12), ("random",), 2),
        PlanRow("count", Mode.GOOD, (98_304,), (3, 6, 12), ("random",), 2),
        PlanRow("count", Mode.BAD_FS, (98_304,), (3, 6, 12), ("random",), 2),
        PlanRow("psumv", Mode.GOOD, (98_304,), (3, 6, 12), ("random",), 2),
        PlanRow("psumv", Mode.BAD_MA, (98_304,), (3, 6, 12),
                ("random", "stride16"), 1),
    ]
    plan_b = [
        PlanRow("seq_read", Mode.GOOD, (65_536, 131_072), (1,), ("random",), 2),
        PlanRow("seq_read", Mode.BAD_MA, (65_536, 131_072), (1,),
                ("random", "stride8"), 1),
        PlanRow("seq_write", Mode.GOOD, (131_072,), (1,), ("random",), 2),
        PlanRow("seq_write", Mode.BAD_MA, (131_072,), (1,), ("random",), 2),
    ]
    a = collect_plan(lab, plan_a, "A")
    b = collect_plan(lab, plan_b, "B")
    td = TrainingData(a, b, a, b, ScreeningReport(a, [], {}),
                      ScreeningReport(b, [], {}))
    return FalseSharingDetector(lab).fit(training=td)


class TestUnseenMiniPrograms:
    """pdot, padding, pmatcompare and seq_rmw were never trained on."""

    @pytest.mark.parametrize("name,threads", [("pdot", 6), ("padding", 6),
                                              ("pmatcompare", 6)])
    def test_bad_fs_detected(self, detector, name, threads):
        w = get_workload(name)
        cfg = RunConfig(threads=threads, mode="bad-fs", size=w.train_sizes[0])
        assert detector.classify(w, cfg).label == "bad-fs"

    @pytest.mark.parametrize("name", ["pdot", "padding", "pmatcompare"])
    def test_good_not_flagged(self, detector, name):
        w = get_workload(name)
        cfg = RunConfig(threads=6, mode="good", size=w.train_sizes[0])
        assert detector.classify(w, cfg).label == "good"

    def test_seq_rmw_bad_ma(self, detector):
        w = get_workload("seq_rmw")
        cfg = RunConfig(threads=1, mode="bad-ma", size=131_072,
                        pattern="random")
        assert detector.classify(w, cfg).label == "bad-ma"


class TestSuitePrograms:
    def test_linear_regression_unoptimized_flagged(self, detector):
        lr = get_program("linear_regression")
        case = SuiteCase("100MB", "-O0", 6)
        vec = detector.lab.measure(lr, case)
        assert detector.classify_vector(vec) == "bad-fs"

    def test_linear_regression_o2_clean(self, detector):
        lr = get_program("linear_regression")
        case = SuiteCase("100MB", "-O2", 6)
        vec = detector.lab.measure(lr, case)
        assert detector.classify_vector(vec) == "good"

    def test_blackscholes_clean(self, detector):
        bs = get_program("blackscholes")
        vec = detector.lab.measure(bs, SuiteCase("simmedium", "-O2", 8))
        assert detector.classify_vector(vec) == "good"


class TestOracleAgreement:
    """Our verdicts and the shadow-memory oracle agree on clear-cut cases."""

    @pytest.mark.parametrize("mode,expect_fs", [("good", False),
                                                ("bad-fs", True)])
    def test_pdot_agreement(self, detector, mode, expect_fs):
        w = get_workload("pdot")
        cfg = RunConfig(threads=6, mode=mode, size=98_304)
        label = detector.classify(w, cfg).label
        oracle = ShadowMemoryDetector().run(w.trace(cfg))
        assert (label == "bad-fs") == expect_fs
        assert oracle.has_false_sharing == expect_fs


class TestTimingStory:
    def test_false_sharing_costs_wall_time(self, detector):
        w = get_workload("psumv")
        good = detector.classify(
            w, RunConfig(threads=6, mode="good", size=98_304))
        bad = detector.classify(
            w, RunConfig(threads=6, mode="bad-fs", size=98_304))
        assert bad.seconds > 1.5 * good.seconds

    def test_counting_overhead_small(self, detector):
        from repro.baselines.overhead import overhead_report
        from repro.pmu.events import TABLE2_EVENTS

        w = get_workload("pdot")
        res = detector.lab.simulate(
            w, RunConfig(threads=6, mode="good", size=98_304))
        rep = overhead_report(res, TABLE2_EVENTS)
        assert rep.counting_overhead < 0.02
