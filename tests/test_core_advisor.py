"""Tests for the false-sharing advisor (diagnosis + padding estimate)."""

import numpy as np
import pytest

from repro.core.advisor import FalseSharingAdvisor
from repro.trace.access import ProgramTrace, make_thread
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload

from tests.test_core_detector import fitted  # noqa: F401  (reuse fixture)


def rmw_thread(addr, n):
    addrs = np.full(2 * n, addr, dtype=np.int64)
    writes = np.zeros(2 * n, bool)
    writes[1::2] = True
    return make_thread(addrs, writes)


@pytest.fixture
def advisor(fitted):
    return FalseSharingAdvisor(fitted)


class TestFindContendedLines:
    def test_finds_packed_line(self, advisor):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        found = advisor.find_contended_lines(prog)
        assert len(found) == 1
        cl = found[0]
        assert cl.line == 64
        assert cl.writers == [0, 1]
        assert cl.distinct_words == 2
        assert cl.writes_per_thread == {0: 200, 1: 200}

    def test_true_sharing_excluded(self, advisor):
        # both threads write the same word: true sharing, not advice fodder
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4096, 200)])
        assert advisor.find_contended_lines(prog) == []

    def test_private_lines_excluded(self, advisor):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4160, 200)])
        assert advisor.find_contended_lines(prog) == []

    def test_hottest_lines_first(self, advisor):
        prog = ProgramTrace([
            rmw_thread(4096, 50).concat(rmw_thread(8192, 500)),
            rmw_thread(4104, 50).concat(rmw_thread(8200, 500)),
        ])
        found = advisor.find_contended_lines(prog)
        assert [cl.line for cl in found] == [128, 64]

    def test_top_lines_cap(self, fitted):
        adv = FalseSharingAdvisor(fitted, top_lines=2)
        threads = []
        for tid in range(2):
            parts = [rmw_thread(4096 + 64 * k + 8 * tid, 30)
                     for k in range(5)]
            t = parts[0]
            for p in parts[1:]:
                t = t.concat(p)
            threads.append(t)
        found = adv.find_contended_lines(ProgramTrace(threads))
        assert len(found) == 2


class TestPadTrace:
    def test_padding_separates_writers(self, advisor):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        found = advisor.find_contended_lines(prog)
        fixed = advisor.pad_trace(prog, found)
        lines0 = set((fixed.threads[0].addrs >> 6).tolist())
        lines1 = set((fixed.threads[1].addrs >> 6).tolist())
        assert not (lines0 & lines1)

    def test_padding_preserves_access_counts(self, advisor):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        fixed = advisor.pad_trace(prog, advisor.find_contended_lines(prog))
        assert fixed.total_accesses == prog.total_accesses
        assert fixed.total_instructions == prog.total_instructions

    def test_no_contention_returns_same_program(self, advisor):
        prog = ProgramTrace([rmw_thread(4096, 10)])
        assert advisor.pad_trace(prog, []) is prog


class TestPadTraceEdgeCases:
    """pad_trace is purely structural — no detector needed."""

    @pytest.fixture
    def bare(self):
        return FalseSharingAdvisor(detector=None)

    def test_single_thread_program_never_contended(self, bare):
        prog = ProgramTrace([rmw_thread(4096, 100)])
        assert bare.find_contended_lines(prog) == []
        assert bare.pad_trace(prog, []) is prog

    def test_sole_writer_line_untouched(self, bare):
        # T1 only reads line 64; padding the contended line must not move
        # accesses of threads that never wrote it.
        reads = make_thread(np.full(50, 4160, dtype=np.int64))
        prog = ProgramTrace([
            rmw_thread(4096, 100).concat(rmw_thread(4160, 100)),
            rmw_thread(4104, 100).concat(reads),
        ])
        found = bare.find_contended_lines(prog)
        assert [cl.line for cl in found] == [64]
        fixed = bare.pad_trace(prog, found)
        # T1's reads of line 65 stay where they were
        assert (fixed.threads[1].addrs[-50:] == 4160).all()
        # and line 65, written only by T0, is not remapped either
        assert 65 in set((fixed.threads[0].addrs >> 6).tolist())

    def test_idempotent(self, bare):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        once = bare.pad_trace(prog, bare.find_contended_lines(prog))
        # after padding there is nothing left to find, so a second pass
        # is the identity
        assert bare.find_contended_lines(once) == []
        twice = bare.pad_trace(once, bare.find_contended_lines(once))
        assert twice is once

    def test_padded_name_suffix(self, bare):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)],
                            name="demo")
        fixed = bare.pad_trace(prog, bare.find_contended_lines(prog))
        assert fixed.name == "demo+padded"

    def test_diagnose_without_detector_raises(self, bare):
        from repro.errors import NotFittedError

        prog = ProgramTrace([rmw_thread(4096, 10)])
        with pytest.raises(NotFittedError):
            bare.diagnose_trace(prog)


class TestDiagnose:
    def test_bad_fs_diagnosis_end_to_end(self, advisor):
        pdot = get_workload("pdot")
        cfg = RunConfig(threads=4, mode="bad-fs", size=65_536)
        d = advisor.diagnose(pdot, cfg)
        assert d.label == "bad-fs"
        assert d.contended, "must name the contended line"
        assert d.padded_seconds is not None
        assert d.estimated_speedup > 2.0
        out = d.render()
        assert "Falsely shared cache lines" in out
        assert "estimated effect of padding" in out

    def test_good_run_no_advice(self, advisor):
        pdot = get_workload("pdot")
        d = advisor.diagnose(pdot, RunConfig(threads=4, mode="good",
                                             size=65_536))
        assert d.label != "bad-fs"
        assert d.contended == []
        assert d.padded_seconds is None
        assert "no false sharing to fix" in d.render()

    def test_padded_replay_faster(self, advisor):
        pdot = get_workload("pdot")
        d = advisor.diagnose(pdot, RunConfig(threads=6, mode="bad-fs",
                                             size=98_304))
        assert d.padded_seconds < d.seconds
