"""Tests for the overhead comparison."""

import pytest

from repro.baselines.overhead import overhead_report
from repro.coherence.machine import MachineSpec, SimulationResult
from repro.pmu.events import TABLE2_EVENTS


def result(seconds=1.0):
    return SimulationResult(
        counts={"INST_RETIRED.ANY": 1e6},
        cycles_per_core=[1e9],
        instructions_per_core=[10**6],
        seconds=seconds,
        nthreads=1,
        spec=MachineSpec(),
    )


class TestOverheadReport:
    def test_counting_under_two_percent(self):
        rep = overhead_report(result(), TABLE2_EVENTS)
        assert rep.counting_overhead < 0.02

    def test_ordering_of_approaches(self):
        rep = overhead_report(result(), TABLE2_EVENTS)
        assert (rep.counting_seconds
                < rep.sheriff_seconds
                < rep.shadow_seconds)

    def test_sheriff_about_twenty_percent(self):
        rep = overhead_report(result(), TABLE2_EVENTS)
        assert 1.1 < rep.sheriff_slowdown < 1.3

    def test_shadow_about_5x(self):
        rep = overhead_report(result(), TABLE2_EVENTS)
        assert 4.0 < rep.shadow_slowdown < 6.0

    def test_seconds_scale_with_base(self):
        rep = overhead_report(result(seconds=2.0), TABLE2_EVENTS)
        assert rep.counting_seconds == pytest.approx(
            2.0 * (1 + rep.counting_overhead))

    def test_as_dict_keys(self):
        d = overhead_report(result(), TABLE2_EVENTS).as_dict()
        assert set(d) == {"base_seconds", "counting_pct", "sheriff_pct",
                          "shadow_factor"}

    def test_fewer_events_cheaper(self):
        few = overhead_report(result(), TABLE2_EVENTS[:3])
        many = overhead_report(result(), TABLE2_EVENTS)
        assert few.counting_overhead < many.counting_overhead
