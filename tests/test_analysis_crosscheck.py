"""Tests for the cross-detector disagreement harness."""

import json

import pytest

from repro.analysis.crosscheck import (
    CaseRecord,
    CrossChecker,
    CrossCheckReport,
    default_grid,
)
from repro.parallel import ExecutionEngine
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

from tests.test_core_detector import fitted  # noqa: F401  (reuse fixture)


def rec(**kw):
    base = dict(workload="w", mode="good", threads=2, size=100,
                pattern="random", static_label="good",
                static_significance=0.0, shadow_fs=False,
                shadow_rate=0.0, tree_label="good")
    base.update(kw)
    return CaseRecord(**base)


class TestDefaultGrid:
    def test_covers_all_minis_modes_and_threads(self):
        grid = default_grid(threads=(2, 6))
        names = {w.name for w, _ in grid}
        assert len(names) == 12
        # every mt case appears at both thread counts
        mt = [(w.name, cfg.mode, cfg.threads) for w, cfg in grid
              if cfg.threads > 1]
        assert {t for _, _, t in mt} == {2, 6}
        # sequential programs run single-threaded
        assert all(cfg.threads == 1 for w, cfg in grid
                   if Mode.BAD_MA in w.modes and Mode.BAD_FS not in w.modes)

    def test_thread_bounds_enforced(self):
        with pytest.raises(ValueError):
            default_grid(threads=(2, 9))
        with pytest.raises(ValueError):
            default_grid(threads=(0,))


class TestCaseRecord:
    def test_fs_flags(self):
        r = rec(static_label="bad-fs", shadow_fs=True, tree_label="bad-fs")
        assert r.static_fs and r.tree_fs and r.unanimous_fs

    def test_disagreement_flag(self):
        r = rec(static_label="bad-fs")
        assert not r.unanimous_fs

    def test_non_fs_unanimity(self):
        # bad-ma everywhere is still unanimous on the fs axis
        r = rec(static_label="bad-ma", tree_label="bad-ma")
        assert r.unanimous_fs

    def test_case_id_and_dict(self):
        r = rec(workload="psums", mode="bad-fs", threads=4, size=10)
        assert r.case_id == "psums[t4-bad-fs-n10-random]"
        assert r.to_dict()["shadow"] == "no-fs"


class TestCrossCheckReport:
    @pytest.fixture
    def report(self):
        return CrossCheckReport([
            rec(),
            rec(workload="x", static_label="bad-fs", shadow_fs=True,
                shadow_rate=0.01, tree_label="bad-fs"),
            rec(workload="y", static_label="bad-fs",
                static_significance=0.5),
        ])

    def test_confusion_counts(self, report):
        conf = report.confusion()
        assert conf[("good", "no-fs", "good")] == 1
        assert conf[("bad-fs", "fs", "bad-fs")] == 1
        assert sum(conf.values()) == 3

    def test_pairwise_agreement(self, report):
        agree = report.pairwise_fs_agreement()
        assert agree["static-vs-shadow"] == pytest.approx(2 / 3)
        assert agree["tree-vs-shadow"] == 1.0

    def test_disagreements(self, report):
        assert [r.workload for r in report.disagreements()] == ["y"]

    def test_render(self, report):
        out = report.render()
        assert "confusion matrix" in out
        assert "Disagreements" in out
        assert "y[t2-good-n100-random]" in out

    def test_render_unanimous(self):
        out = CrossCheckReport([rec()]).render()
        assert "no disagreements" in out

    def test_to_json(self, report):
        d = json.loads(report.to_json())
        assert len(d["cases"]) == 3
        assert d["disagreements"] == ["y[t2-good-n100-random]"]

    def test_empty_report(self):
        r = CrossCheckReport([])
        assert r.pairwise_fs_agreement() == {}
        assert r.disagreements() == []


class TestCrossChecker:
    @pytest.fixture(scope="class")
    def result(self, fitted):  # noqa: F811
        psums = get_workload("psums")
        seq_w = get_workload("seq_write")
        grid = [
            (psums, RunConfig(threads=2, mode="good", size=2000)),
            (psums, RunConfig(threads=2, mode="bad-fs", size=2000)),
            (seq_w, RunConfig(threads=1, mode="good", size=20_000)),
        ]
        checker = CrossChecker(fitted, engine=ExecutionEngine(1))
        return checker.run(grid)

    def test_one_record_per_case(self, result):
        assert len(result.records) == 3
        assert [r.workload for r in result.records] == ["psums", "psums",
                                                        "seq_write"]

    def test_three_verdicts_per_case(self, result):
        for r in result.records:
            assert r.static_label in ("good", "bad-fs", "bad-ma")
            assert r.tree_label in ("good", "bad-fs", "bad-ma")
            assert r.shadow_rate >= 0.0

    def test_bad_fs_case_unanimous(self, result):
        r = result.records[1]
        assert r.mode == "bad-fs"
        assert r.static_fs and r.shadow_fs and r.tree_fs

    def test_good_cases_unanimous(self, result):
        for r in (result.records[0], result.records[2]):
            assert not (r.static_fs or r.shadow_fs or r.tree_fs)
