"""Tests for the PARSEC benchmark models."""

import numpy as np
import pytest

from repro.memory.layout import line_of
from repro.suites import get_program, parsec_programs
from repro.suites.base import SuiteCase


class TestStreamCluster:
    def test_padding_bug_packs_two_threads_per_line(self):
        sc = get_program("streamcluster")
        tr = sc.trace(SuiteCase("simsmall", "-O2", 4))
        # threads 0 and 1 (structs 32 bytes apart) share a line
        def struct_write_lines(tid):
            t = tr.threads[tid]
            lines, counts = np.unique(line_of(t.addrs[t.is_write]),
                                      return_counts=True)
            return set(lines[counts > 10].tolist())
        assert struct_write_lines(0) & struct_write_lines(1)

    def test_contention_pressure_falls_with_input(self):
        sc = get_program("streamcluster")
        small = sc.trace(SuiteCase("simsmall", "-O2", 4))
        large = sc.trace(SuiteCase("simlarge", "-O2", 4))
        def write_frac(tr):
            return (sum(t.n_writes for t in tr.threads)
                    / tr.total_accesses)
        assert write_frac(small) > write_frac(large)

    def test_spin_only_at_simsmall_t12(self):
        sc = get_program("streamcluster")
        spin = sum(t.extra_instructions for t in
                   sc.trace(SuiteCase("simsmall", "-O1", 12)).threads)
        no_spin = sum(t.extra_instructions for t in
                      sc.trace(SuiteCase("simlarge", "-O1", 12)).threads)
        low_t = sum(t.extra_instructions for t in
                    sc.trace(SuiteCase("simsmall", "-O1", 8)).threads)
        assert spin > 0
        assert no_spin == 0
        assert low_t == 0

    def test_spin_nondeterministic_across_reps(self):
        sc = get_program("streamcluster")
        case = SuiteCase("simsmall", "-O1", 12)
        spins = {sum(t.extra_instructions for t in
                     sc.trace(case.with_(rep=r)).threads)
                 for r in range(5)}
        assert len(spins) > 1

    def test_native_has_big_per_thread_working_set(self):
        sc = get_program("streamcluster")
        tr = sc.trace(SuiteCase("native", "-O2", 8))
        # per-thread gather footprint must exceed the scaled L2 (1024 lines)
        assert tr.threads[0].footprint_lines() > 2000

    def test_cache_key_includes_rep(self):
        sc = get_program("streamcluster")
        a = sc.cache_key(SuiteCase("simsmall", "-O1", 12, rep=0))
        b = sc.cache_key(SuiteCase("simsmall", "-O1", 12, rep=1))
        assert a != b

    def test_deterministic_program_cache_key_ignores_rep(self):
        bs = get_program("blackscholes")
        a = bs.cache_key(SuiteCase("simsmall", "-O1", 4, rep=0))
        b = bs.cache_key(SuiteCase("simsmall", "-O1", 4, rep=1))
        assert a == b


class TestGoodParsec:
    @pytest.mark.parametrize("name", [
        "ferret", "swaptions", "vips", "bodytrack", "freqmine",
        "blackscholes", "raytrace", "x264",
    ])
    def test_traces_generate_for_all(self, name):
        p = get_program(name)
        tr = p.trace(SuiteCase("simsmall", "-O2", 4))
        assert tr.nthreads == 4
        assert tr.total_accesses > 1000

    def test_canneal_fluidanimate_have_weak_packed_state(self):
        """SHERIFF-style insignificant false sharing: shared write lines
        exist but carry very few writes."""
        for name in ("canneal", "fluidanimate"):
            p = get_program(name)
            tr = p.trace(SuiteCase("simmedium", "-O2", 4))
            w0 = set(line_of(
                tr.threads[0].addrs[tr.threads[0].is_write]).tolist())
            w1 = set(line_of(
                tr.threads[1].addrs[tr.threads[1].is_write]).tolist())
            shared = w0 & w1
            assert shared, name
            t0 = tr.threads[0]
            shared_writes = np.isin(line_of(t0.addrs), list(shared))
            frac = (shared_writes & t0.is_write).sum() / t0.n_writes
            assert frac < 0.05, name

    def test_input_scale_increases_work(self):
        for p in parsec_programs():
            small = p.trace(SuiteCase("simsmall", "-O2", 4))
            native = p.trace(SuiteCase("native", "-O2", 4))
            assert native.total_accesses > 2 * small.total_accesses, p.name
