"""Tests for the detector API on a miniature training corpus.

These use a reduced collection plan so the full loop (collect -> fit ->
classify) runs in seconds while still exercising every code path.
"""

import pytest

from repro.core.detector import CaseResult, FalseSharingDetector, detects_false_sharing
from repro.core.lab import Lab
from repro.core.training import (
    PlanRow,
    ScreeningReport,
    TrainingData,
    collect_plan,
)
from repro.errors import NotFittedError
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

MINI_PLAN_A = [
    PlanRow("psums", Mode.GOOD, (1_500, 3_000), (3, 6), ("random",), 2),
    PlanRow("psums", Mode.BAD_FS, (1_500, 3_000), (3, 6), ("random",), 2),
    PlanRow("psumv", Mode.GOOD, (65_536,), (3, 6), ("random",), 2),
    PlanRow("psumv", Mode.BAD_FS, (65_536,), (3, 6), ("random",), 2),
    PlanRow("psumv", Mode.BAD_MA, (65_536,), (3, 6), ("random",), 2),
]
MINI_PLAN_B = [
    PlanRow("seq_read", Mode.GOOD, (32_768, 65_536), (1,), ("random",), 2),
    PlanRow("seq_read", Mode.BAD_MA, (32_768, 65_536), (1,),
            ("random", "stride8"), 1),
]


@pytest.fixture(scope="module")
def fitted():
    lab = Lab(disk_cache=None)
    a = collect_plan(lab, MINI_PLAN_A, "A")
    b = collect_plan(lab, MINI_PLAN_B, "B")
    td = TrainingData(a, b, a, b,
                      ScreeningReport(a, [], {}), ScreeningReport(b, [], {}))
    det = FalseSharingDetector(lab)
    det.fit(training=td)
    return det


class TestFit:
    def test_unfitted_raises(self):
        det = FalseSharingDetector(Lab(disk_cache=None))
        with pytest.raises(NotFittedError):
            det.classify_features([0.0] * 15)
        with pytest.raises(NotFittedError):
            det.render_tree()

    def test_cv_requires_training_data(self, fitted):
        det = FalseSharingDetector(fitted.lab)
        det.fit(dataset=fitted.training.dataset)
        with pytest.raises(NotFittedError):
            det.cross_validate()

    def test_fit_on_explicit_dataset(self, fitted):
        det = FalseSharingDetector(fitted.lab)
        det.fit(dataset=fitted.training.dataset)
        assert det.classifier is not None


class TestClassification:
    def test_detects_false_sharing_in_unseen_program(self, fitted):
        # pdot was never in the mini training plan
        pdot = get_workload("pdot")
        res = fitted.classify(pdot, RunConfig(threads=4, mode="bad-fs",
                                              size=65_536))
        assert isinstance(res, CaseResult)
        assert res.label == "bad-fs"
        assert res.seconds > 0

    def test_good_program_classified_good(self, fitted):
        pdot = get_workload("pdot")
        res = fitted.classify(pdot, RunConfig(threads=4, mode="good",
                                              size=65_536))
        assert res.label == "good"

    def test_bad_ma_detected(self, fitted):
        w = get_workload("seq_write")
        res = fitted.classify(w, RunConfig(threads=1, mode="bad-ma",
                                           size=65_536, pattern="random"))
        assert res.label == "bad-ma"

    def test_classify_cases_batch(self, fitted):
        pdot = get_workload("pdot")
        cases = [RunConfig(threads=t, mode="bad-fs", size=65_536)
                 for t in (3, 6)]
        results = fitted.classify_cases(pdot, cases)
        assert [r.label for r in results] == ["bad-fs", "bad-fs"]

    def test_overall_majority(self, fitted):
        assert fitted.overall_label(["good", "bad-fs", "good"]) == "good"
        assert fitted.label_tally(["good", "good", "bad-fs"]) == {
            "good": 2, "bad-fs": 1}


class TestIntrospection:
    def test_tree_uses_a_coherence_event_for_bad_fs(self, fitted):
        # On the reduced corpus the learner may pick Snoop HITM (event 11)
        # or the RFO-upgrade event (event 2): both are coherence-only
        # signals that exist iff threads contend on lines.
        coherence = {"Snoop_Response.HIT_M", "L2_Write.RFO.S_state",
                     "Snoop_Response.HIT", "Snoop_Response.HIT_E"}
        assert coherence & set(fitted.tree_events())

    def test_tree_event_numbers_are_table2_indices(self, fitted):
        nums = fitted.tree_event_numbers()
        assert nums
        assert all(1 <= n <= 15 for n in nums)

    def test_render_tree_text(self, fitted):
        out = fitted.render_tree()
        assert "bad-fs" in out

    def test_cross_validate_runs(self, fitted):
        cm = fitted.cross_validate(k=4)
        assert cm.total == len(fitted.training.dataset)
        assert cm.accuracy > 0.8


class TestHelpers:
    def test_detects_false_sharing_predicate(self):
        assert detects_false_sharing("bad-fs")
        assert not detects_false_sharing("good")
        assert not detects_false_sharing("bad-ma")


class TestPersistence:
    def test_save_load_round_trip(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        fitted.save(path)
        from repro.core.detector import FalseSharingDetector

        det = FalseSharingDetector(fitted.lab).load(path)
        w = get_workload("pdot")
        cfg = RunConfig(threads=4, mode="bad-fs", size=65_536)
        assert det.classify(w, cfg).label == fitted.classify(w, cfg).label

    def test_loaded_detector_has_no_training_data(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        fitted.save(path)
        from repro.core.detector import FalseSharingDetector

        det = FalseSharingDetector(fitted.lab).load(path)
        with pytest.raises(NotFittedError):
            det.cross_validate()

    def test_save_unfitted_rejected(self, tmp_path):
        from repro.core.detector import FalseSharingDetector
        from repro.core.lab import Lab

        det = FalseSharingDetector(Lab(disk_cache=None))
        with pytest.raises(NotFittedError):
            det.save(tmp_path / "x.json")
