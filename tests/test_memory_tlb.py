"""Tests for the TLB model."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.tlb import TLB


class TestTLB:
    def test_first_access_misses(self):
        t = TLB(entries=4)
        assert t.access(1) is False
        assert t.misses == 1

    def test_repeat_access_hits(self):
        t = TLB(entries=4)
        t.access(1)
        assert t.access(1) is True
        assert t.hits == 1

    def test_capacity_eviction_lru(self):
        t = TLB(entries=2)
        t.access(1)
        t.access(2)
        t.access(1)      # 1 becomes MRU
        t.access(3)      # evicts 2 (LRU)
        assert 2 not in t
        assert 1 in t and 3 in t

    def test_size_never_exceeds_capacity(self):
        t = TLB(entries=3)
        for p in range(100):
            t.access(p)
        assert len(t) == 3

    def test_flush_clears_entries_keeps_counters(self):
        t = TLB(entries=4)
        t.access(1)
        t.flush()
        assert 1 not in t
        assert t.misses == 1
        assert t.access(1) is False  # misses again after flush

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            TLB(entries=0)

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=300))
    def test_hits_plus_misses_equals_accesses(self, pages):
        t = TLB(entries=4)
        for p in pages:
            t.access(p)
        assert t.hits + t.misses == len(pages)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
    def test_working_set_within_capacity_never_remisses(self, pages):
        # <=4 distinct pages in a 4-entry TLB: only cold misses.
        t = TLB(entries=4)
        for p in pages:
            t.access(p)
        assert t.misses == len(set(pages))
