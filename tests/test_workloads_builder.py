"""Tests for the declarative workload builder."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.memory.layout import line_of
from repro.workloads.base import RunConfig
from repro.workloads.builder import WorkloadBuilder



def simple(name="w", **kw):
    b = WorkloadBuilder(name)
    b.stream(elements=8_000)
    return b


class TestBuilderValidation:
    def test_needs_name(self):
        with pytest.raises(ConfigError):
            WorkloadBuilder("")

    def test_needs_stream(self):
        with pytest.raises(ConfigError):
            WorkloadBuilder("w").build()

    def test_parameter_validation(self):
        b = WorkloadBuilder("w")
        with pytest.raises(ConfigError):
            b.stream(elements=0)
        with pytest.raises(ConfigError):
            b.accumulator(fields=0)
        with pytest.raises(ConfigError):
            b.gather(table_bytes=8, every=1)
        with pytest.raises(ConfigError):
            b.sync(every=0)
        with pytest.raises(ConfigError):
            b.instructions_per_access(0.5)
        with pytest.raises(ConfigError):
            b.stack_traffic(every=-1)

    def test_fluent_chaining(self):
        w = (WorkloadBuilder("chain")
             .stream(elements=4_000)
             .accumulator(fields=2, packed=True)
             .gather(table_bytes=4_096, every=4)
             .sync(every=1_024)
             .stack_traffic(every=1)
             .instructions_per_access(3.5)
             .build())
        assert w.name == "chain"


class TestTraceGeneration:
    def test_all_modes_generate(self):
        w = simple().accumulator(packed=True).build()
        for mode in ("good", "bad-fs", "bad-ma"):
            tr = w.trace(RunConfig(threads=4, mode=mode, size=8_000))
            assert tr.nthreads == 4
            assert tr.total_accesses > 8_000

    def test_same_computation_across_modes(self):
        w = simple().accumulator(packed=True).build()
        good = w.trace(RunConfig(threads=4, mode="good", size=8_000))
        bad = w.trace(RunConfig(threads=4, mode="bad-fs", size=8_000))
        assert good.total_accesses == bad.total_accesses
        assert good.total_instructions == bad.total_instructions

    def test_packed_accumulator_shares_lines_only_in_bad_fs(self):
        w = simple().accumulator(packed=True, field_size=8).build()

        def hot_shared(mode):
            tr = w.trace(RunConfig(threads=4, mode=mode, size=8_000))
            def hot(tid):
                t = tr.threads[tid]
                lines, counts = np.unique(
                    line_of(t.addrs[t.is_write]), return_counts=True)
                return set(lines[counts > 100].tolist())
            return bool(hot(0) & hot(1))

        assert hot_shared("bad-fs")
        assert not hot_shared("good")

    def test_unpacked_accumulator_never_shares(self):
        w = simple().accumulator(packed=False).build()
        tr = w.trace(RunConfig(threads=4, mode="bad-fs", size=8_000))
        def hot(tid):
            t = tr.threads[tid]
            lines, counts = np.unique(line_of(t.addrs[t.is_write]),
                                      return_counts=True)
            return set(lines[counts > 100].tolist())
        assert not (hot(0) & hot(1))

    def test_bad_ma_scrambles_stream(self):
        w = simple().build()
        good = w.trace(RunConfig(threads=2, mode="good", size=8_000))
        bad = w.trace(RunConfig(threads=2, mode="bad-ma", size=8_000,
                                pattern="random"))
        assert (good.threads[0].addrs != bad.threads[0].addrs).any()

    def test_shared_gather_table_overlaps(self):
        w = simple().gather(table_bytes=16_384, every=2, shared=True).build()
        tr = w.trace(RunConfig(threads=2, mode="good", size=8_000))
        r0 = set(line_of(tr.threads[0].addrs).tolist())
        r1 = set(line_of(tr.threads[1].addrs).tolist())
        assert len(r0 & r1) > 30


class TestEndToEnd:
    def test_detector_flags_built_workload(self):
        """A built workload with a packed accumulator is detected bad-fs by
        a detector trained only on the stock mini-programs."""
        from tests.test_core_detector import MINI_PLAN_A, MINI_PLAN_B
        from repro.core.detector import FalseSharingDetector
        from repro.core.lab import Lab
        from repro.core.training import (ScreeningReport, TrainingData,
                                         collect_plan)

        lab = Lab(disk_cache=None)
        a = collect_plan(lab, MINI_PLAN_A, "A")
        b = collect_plan(lab, MINI_PLAN_B, "B")
        td = TrainingData(a, b, a, b, ScreeningReport(a, [], {}),
                          ScreeningReport(b, [], {}))
        det = FalseSharingDetector(lab).fit(training=td)

        w = (WorkloadBuilder("user_pool")
             .stream(elements=40_000)
             .accumulator(fields=2, packed=True, every=1)
             .build())
        bad = det.classify(w, RunConfig(threads=6, mode="bad-fs",
                                        size=40_000))
        good = det.classify(w, RunConfig(threads=6, mode="good",
                                         size=40_000))
        assert bad.label == "bad-fs"
        assert good.label == "good"
        assert bad.seconds > good.seconds
