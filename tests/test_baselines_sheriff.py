"""Tests for the SHERIFF-style epoch detector."""

import numpy as np
from repro.baselines.sheriff import SheriffDetector
from repro.trace.access import ProgramTrace, make_thread


def writer(addr, n):
    return make_thread(np.full(n, addr, dtype=np.int64),
                       np.ones(n, dtype=bool))


class TestDetection:
    def test_same_line_writers_flagged(self):
        prog = ProgramTrace([writer(4096, 2000), writer(4104, 2000)])
        rep = SheriffDetector().run(prog)
        assert rep.interleaved_writes > 1000
        assert rep.significant

    def test_isolated_writers_clean(self):
        # different pages entirely
        prog = ProgramTrace([writer(4096, 2000), writer(40960, 2000)])
        rep = SheriffDetector().run(prog)
        assert rep.interleaved_writes == 0
        assert not rep.significant

    def test_adjacent_line_overreporting(self):
        """The known SHERIFF coarseness: per-thread data on *neighbouring*
        lines (128-byte region) is reported although no cache line is
        actually shared — why it flagged reverse_index and word_count."""
        prog = ProgramTrace([writer(4096, 2000), writer(4096 + 64, 2000)])
        rep = SheriffDetector().run(prog)
        assert rep.significant

    def test_two_regions_apart_clean(self):
        prog = ProgramTrace([writer(4096, 2000), writer(4096 + 256, 2000)])
        rep = SheriffDetector().run(prog)
        assert not rep.significant

    def test_rare_interleavings_below_noise_floor(self):
        prog = ProgramTrace([writer(4096, 2), writer(4104, 2)])
        rep = SheriffDetector().run(prog)
        assert rep.interleaved_writes == 0  # under _MIN_WRITES

    def test_reads_never_implicated(self):
        loads = make_thread(np.full(2000, 4096, dtype=np.int64))
        prog = ProgramTrace([loads, writer(4104, 2000)])
        rep = SheriffDetector().run(prog)
        # only one writer: nothing to diff against
        assert rep.interleaved_writes == 0

    def test_epoching_separates_phases(self):
        # threads write the same region but in different epochs
        n = 1000
        t0 = make_thread(
            np.concatenate([np.full(n, 4096), np.full(n, 1 << 20)]).astype(np.int64),
            np.ones(2 * n, dtype=bool))
        t1 = make_thread(
            np.concatenate([np.full(n, 1 << 21), np.full(n, 4104)]).astype(np.int64),
            np.ones(2 * n, dtype=bool))
        rep = SheriffDetector(epoch_accesses=1000).run(ProgramTrace([t0, t1]))
        assert rep.interleaved_writes == 0

    def test_score_normalized_by_instructions(self):
        prog = ProgramTrace([writer(4096, 2000), writer(4104, 2000)])
        rep = SheriffDetector().run(prog)
        assert rep.fs_score == rep.interleaved_writes / prog.total_instructions


class TestComparisonWithOracle:
    def test_sheriff_overreports_padded_counters(self, mini_lab):
        """A program with per-thread counters on adjacent lines: the shadow
        oracle correctly says no FS, SHERIFF flags it."""
        from repro.baselines.shadow import ShadowMemoryDetector

        prog = ProgramTrace([writer(4096, 4000), writer(4096 + 64, 4000)])
        sheriff = SheriffDetector().run(prog)
        shadow = ShadowMemoryDetector().run(prog)
        assert sheriff.significant
        assert not shadow.has_false_sharing
