"""Property-based tests for the baseline detectors."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.shadow import ShadowMemoryDetector
from repro.baselines.sheriff import SheriffDetector
from repro.trace.access import ProgramTrace, make_thread


@st.composite
def shared_region_programs(draw, max_threads=4, max_len=200):
    """Threads touching a small shared region: plenty of real contention."""
    nt = draw(st.integers(1, max_threads))
    threads = []
    for _ in range(nt):
        n = draw(st.integers(1, max_len))
        addrs = draw(st.lists(st.integers(0, 255), min_size=n, max_size=n))
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        threads.append(make_thread(
            (np.array(addrs, dtype=np.int64) * 4) + 4096,
            np.array(writes, dtype=bool)))
    return ProgramTrace(threads)


class TestShadowProperties:
    @settings(max_examples=40, deadline=None)
    @given(shared_region_programs())
    def test_misses_bounded_by_accesses(self, prog):
        rep = ShadowMemoryDetector().run(prog)
        total = rep.fs_misses + rep.ts_misses + rep.cold_misses
        assert total <= prog.total_accesses
        assert rep.fs_misses >= 0 and rep.ts_misses >= 0

    @settings(max_examples=40, deadline=None)
    @given(shared_region_programs())
    def test_cold_misses_bounded_by_footprint(self, prog):
        rep = ShadowMemoryDetector().run(prog)
        assert rep.cold_misses <= prog.footprint_lines() * prog.nthreads

    @settings(max_examples=30, deadline=None)
    @given(shared_region_programs(max_threads=1))
    def test_single_thread_no_contention(self, prog):
        rep = ShadowMemoryDetector().run(prog)
        assert rep.fs_misses == 0
        assert rep.ts_misses == 0

    @settings(max_examples=30, deadline=None)
    @given(shared_region_programs())
    def test_deterministic(self, prog):
        a = ShadowMemoryDetector().run(prog)
        b = ShadowMemoryDetector().run(prog)
        assert (a.fs_misses, a.ts_misses, a.cold_misses) == \
            (b.fs_misses, b.ts_misses, b.cold_misses)

    @settings(max_examples=30, deadline=None)
    @given(shared_region_programs())
    def test_per_line_totals_match_aggregate(self, prog):
        rep = ShadowMemoryDetector(track_lines=True).run(prog)
        fs = sum(v[0] for v in rep.per_line.values())
        ts = sum(v[1] for v in rep.per_line.values())
        assert fs == rep.fs_misses
        assert ts == rep.ts_misses

    @settings(max_examples=30, deadline=None)
    @given(shared_region_programs())
    def test_read_only_programs_never_contend(self, prog):
        # strip all writes: no invalidations can ever happen
        threads = [make_thread(t.addrs.copy()) for t in prog.threads]
        rep = ShadowMemoryDetector().run(ProgramTrace(threads))
        assert rep.fs_misses == 0 and rep.ts_misses == 0


class TestSheriffProperties:
    @settings(max_examples=40, deadline=None)
    @given(shared_region_programs())
    def test_implicated_bounded_by_writes(self, prog):
        rep = SheriffDetector().run(prog)
        assert 0 <= rep.interleaved_writes <= rep.total_writes

    @settings(max_examples=30, deadline=None)
    @given(shared_region_programs(max_threads=1))
    def test_single_thread_clean(self, prog):
        rep = SheriffDetector().run(prog)
        assert rep.interleaved_writes == 0

    @settings(max_examples=30, deadline=None)
    @given(shared_region_programs())
    def test_deterministic(self, prog):
        a = SheriffDetector().run(prog)
        b = SheriffDetector().run(prog)
        assert a.interleaved_writes == b.interleaved_writes

    @settings(max_examples=25, deadline=None)
    @given(shared_region_programs())
    def test_sheriff_at_least_as_alarmist_as_shadow(self, prog):
        """SHERIFF's coarse epoch/neighbourhood analysis never reports a
        clean program where the precise oracle reports heavy FS write
        traffic (its known bias is over-, not under-reporting)."""
        shadow = ShadowMemoryDetector().run(prog)
        sheriff = SheriffDetector(epoch_accesses=64).run(prog)
        if shadow.fs_misses > 50:
            assert sheriff.interleaved_writes > 0
