"""Tests for the Phoenix benchmark models (trace-level properties)."""

import numpy as np
import pytest

from repro.memory.layout import line_of
from repro.suites import get_program
from repro.suites.base import SuiteCase


def hot_write_lines(trace, tid, frac=0.02):
    """Lines receiving a meaningful share of the thread's writes.

    The rare true-sharing sync-word touches (every ~2-4k accesses) are below
    the threshold by construction — they are legitimate sharing, not false
    sharing.
    """
    t = trace.threads[tid]
    lines, counts = np.unique(line_of(t.addrs[t.is_write]),
                              return_counts=True)
    return set(lines[counts >= max(2, frac * t.n_writes)].tolist())


class TestLinearRegression:
    def test_unoptimized_threads_share_struct_lines(self):
        lr = get_program("linear_regression")
        tr = lr.trace(SuiteCase("50MB", "-O0", 4))
        assert hot_write_lines(tr, 0) & hot_write_lines(tr, 1)

    def test_o2_write_pressure_collapses(self):
        lr = get_program("linear_regression")
        o0 = lr.trace(SuiteCase("50MB", "-O0", 4))
        o2 = lr.trace(SuiteCase("50MB", "-O2", 4))
        w0 = sum(t.n_writes for t in o0.threads)
        w2 = sum(t.n_writes for t in o2.threads)
        assert w2 < w0 / 3

    def test_more_input_more_work(self):
        lr = get_program("linear_regression")
        small = lr.trace(SuiteCase("50MB", "-O0", 4))
        large = lr.trace(SuiteCase("500MB", "-O0", 4))
        assert large.total_accesses > 5 * small.total_accesses

    def test_unoptimized_executes_more_instructions(self):
        lr = get_program("linear_regression")
        o0 = lr.trace(SuiteCase("50MB", "-O0", 4))
        o2 = lr.trace(SuiteCase("50MB", "-O2", 4))
        # -O0 runs more instructions even though -O0 also does more accesses
        assert (o0.total_instructions / max(o0.total_accesses, 1)
                > o2.total_instructions / max(o2.total_accesses, 1))


class TestHistogram:
    def test_normal_cells_deterministic(self):
        h = get_program("histogram")
        case = SuiteCase("100MB", "-O1", 6)
        a, b = h.trace(case), h.trace(case)
        assert (a.threads[0].addrs == b.threads[0].addrs).all()

    def test_flaky_cell_varies_by_rep(self):
        h = get_program("histogram")
        flaky = SuiteCase("10MB", "-O2", 12)
        sizes = {h.trace(flaky.with_(rep=r)).total_accesses
                 for r in range(6)}
        assert len(sizes) > 1  # merge burstiness differs run to run

    def test_non_flaky_cell_stable_across_reps(self):
        h = get_program("histogram")
        case = SuiteCase("400MB", "-O2", 6)
        sizes = {h.trace(case.with_(rep=r)).total_accesses for r in range(4)}
        assert len(sizes) == 1


class TestMatrixMultiply:
    def test_gather_dominates(self):
        mm = get_program("matrix_multiply")
        tr = mm.trace(SuiteCase("512", "-O1", 4))
        t = tr.threads[0]
        assert t.footprint_lines() > 2000  # walks a big B

    def test_no_hot_shared_writes(self):
        mm = get_program("matrix_multiply")
        tr = mm.trace(SuiteCase("256", "-O1", 4))
        assert not (hot_write_lines(tr, 0) & hot_write_lines(tr, 1))


class TestGoodPrograms:
    @pytest.mark.parametrize("name,inp", [
        ("word_count", "small"), ("kmeans", "small"),
        ("string_match", "small"), ("pca", "small"),
        ("reverse_index", "datafiles"),
    ])
    def test_no_hot_shared_write_lines(self, name, inp):
        p = get_program(name)
        tr = p.trace(SuiteCase(inp, "-O1", 4))
        assert not (hot_write_lines(tr, 0) & hot_write_lines(tr, 1))

    def test_kmeans_shares_centroids_readonly(self):
        km = get_program("kmeans")
        tr = km.trace(SuiteCase("small", "-O2", 4))
        reads0 = set(line_of(
            tr.threads[0].addrs[~tr.threads[0].is_write]).tolist())
        reads1 = set(line_of(
            tr.threads[1].addrs[~tr.threads[1].is_write]).tolist())
        assert reads0 & reads1  # the shared centroid table
