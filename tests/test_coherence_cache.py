"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.cache import SetAssociativeCache
from repro.coherence.protocol import EXCLUSIVE, MODIFIED, SHARED
from repro.errors import SimulationError


def make_cache(lines=32, assoc=4):
    return SetAssociativeCache(lines, assoc, "t")


class TestBasics:
    def test_geometry(self):
        c = make_cache(32, 4)
        assert c.nsets == 8
        assert c.assoc == 4

    def test_insert_lookup(self):
        c = make_cache()
        c.insert(5, SHARED)
        assert c.lookup(5) == SHARED
        assert 5 in c

    def test_lookup_absent(self):
        assert make_cache().lookup(1) is None

    def test_set_state(self):
        c = make_cache()
        c.insert(5, SHARED)
        c.set_state(5, MODIFIED)
        assert c.lookup(5) == MODIFIED

    def test_set_state_absent_raises(self):
        with pytest.raises(SimulationError):
            make_cache().set_state(5, MODIFIED)

    def test_remove(self):
        c = make_cache()
        c.insert(5, EXCLUSIVE)
        assert c.remove(5) == EXCLUSIVE
        assert 5 not in c
        assert c.remove(5) is None

    def test_len_counts_all_sets(self):
        c = make_cache(32, 4)
        for line in range(10):
            c.insert(line, SHARED)
        assert len(c) == 10

    def test_clear(self):
        c = make_cache()
        c.insert(1, SHARED)
        c.clear()
        assert len(c) == 0

    def test_lines_iterates_contents(self):
        c = make_cache()
        c.insert(1, SHARED)
        c.insert(9, MODIFIED)
        assert dict(c.lines()) == {1: SHARED, 9: MODIFIED}

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SimulationError):
            SetAssociativeCache(30, 4)  # not a multiple
        with pytest.raises(SimulationError):
            SetAssociativeCache(0, 4)
        with pytest.raises(SimulationError):
            SetAssociativeCache(16, 0)

    def test_non_pow2_sets_use_modulo(self):
        c = SetAssociativeCache(48, 4)  # 12 sets
        assert c.mask == 0
        c.insert(13, SHARED)
        assert c.lookup(13) == SHARED
        assert c.index(13) == 1


class TestEviction:
    def test_lru_evicts_oldest(self):
        c = make_cache(32, 2)  # 16 sets, 2-way
        # lines 0, 16, 32 all map to set 0
        c.insert(0, SHARED)
        c.insert(16, SHARED)
        ev = c.insert(32, SHARED)
        assert ev == (0, SHARED)
        assert 0 not in c and 16 in c and 32 in c

    def test_touch_refreshes_lru(self):
        c = make_cache(32, 2)
        c.insert(0, SHARED)
        c.insert(16, SHARED)
        c.touch(0)
        ev = c.insert(32, SHARED)
        assert ev == (16, SHARED)

    def test_reinsert_no_eviction(self):
        c = make_cache(32, 2)
        c.insert(0, SHARED)
        c.insert(16, SHARED)
        assert c.insert(0, MODIFIED) is None
        assert c.lookup(0) == MODIFIED

    def test_eviction_returns_state(self):
        c = make_cache(32, 1)
        c.insert(0, MODIFIED)
        ev = c.insert(32, SHARED)
        assert ev == (0, MODIFIED)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    def test_occupancy_invariants(self, lines):
        c = make_cache(32, 4)
        for line in lines:
            c.insert(line, SHARED)
        assert len(c) <= 32
        for s in c.sets:
            assert len(s) <= 4
        # the most recent insertion is always resident
        assert lines[-1] in c

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
    def test_small_working_set_never_evicted(self, lines):
        # 8 distinct lines spread over 8 sets of a 32-line cache: all fit.
        c = make_cache(32, 4)
        for line in lines:
            c.insert(line, SHARED)
        assert len(c) == len(set(lines))
