"""Tests for the experiment registry and lightweight experiments.

Full-pipeline experiments (tables 3-11) are exercised by the benchmark
harness; here we test the registry mechanics and the one experiment that
runs standalone (table1 uses its own lab).
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import (
    ExperimentResult,
    experiment_ids,
    experiment_title,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(experiment_ids())
        expected = {f"table{i}" for i in range(1, 12)} | {"figure2",
                                                          "overhead"}
        assert expected <= ids

    def test_ablations_registered(self):
        ids = set(experiment_ids())
        assert {"ablation_classifiers", "ablation_events",
                "ablation_partb", "ablation_noise"} <= ids

    def test_serving_registered(self):
        # the full experiment needs a trained pipeline; registration and
        # title only — the serving stack is covered by tests/test_serve_*.
        assert "serving" in experiment_ids()
        assert "Online" in experiment_title("serving")

    def test_crosscheck_registered(self):
        # runs the full pipeline, so only registration is asserted here;
        # the harness itself is covered by tests/test_analysis_crosscheck.py
        assert "crosscheck" in experiment_ids()
        assert "disagreement" in experiment_title("crosscheck")

    def test_titles_resolve(self):
        for eid in experiment_ids():
            assert experiment_title(eid)

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99")


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        # table1 builds its own 32-core lab; ctx is not used
        return run_experiment("table1", ctx=object())

    def test_structure(self, result):
        assert isinstance(result, ExperimentResult)
        assert result.exp_id == "table1"
        assert "Method" in result.text
        assert result.paper

    def test_shape_claims(self, result):
        d = result.data
        assert d["good_speedup"] > 4
        assert d["fs_t4_vs_good_t1"] > 1.0
        assert d["ma_t1_vs_good_t1"] > 2.0

    def test_str_renders(self, result):
        out = str(result)
        assert "table1" in out
        assert "[paper]" in out
