"""Tests for event vectors and normalization."""

import pytest

from repro.errors import PMUError
from repro.pmu.counters import (
    EventVector,
    feature_matrix,
    feature_names,
    merge_vectors,
    require_events,
)
from repro.pmu.events import NORMALIZER, TABLE2_EVENTS


def vec(instr=1000.0, hitm=50.0):
    return EventVector({
        NORMALIZER.name: instr,
        "Snoop_Response.HIT_M": hitm,
    })


class TestEventVector:
    def test_count(self):
        v = vec()
        assert v.count(TABLE2_EVENTS[10]) == 50.0

    def test_missing_event_raises(self):
        with pytest.raises(PMUError):
            vec().count(TABLE2_EVENTS[0])

    def test_normalized(self):
        assert vec().normalized(TABLE2_EVENTS[10]) == pytest.approx(0.05)

    def test_zero_instructions_raises(self):
        with pytest.raises(PMUError):
            vec(instr=0.0).normalized(TABLE2_EVENTS[10])

    def test_features_order(self):
        v = EventVector({
            NORMALIZER.name: 100.0,
            "Snoop_Response.HIT_M": 1.0,
            "DTLB_Misses": 2.0,
        })
        feats = v.features([TABLE2_EVENTS[10], TABLE2_EVENTS[12]])
        assert feats == pytest.approx([0.01, 0.02])


class TestFeatureMatrix:
    def test_shape(self):
        vs = [vec(hitm=i) for i in range(3)]
        m = feature_matrix(vs, [TABLE2_EVENTS[10]])
        assert m.shape == (3, 1)
        assert m[:, 0] == pytest.approx([0.0, 0.001, 0.002])

    def test_empty(self):
        m = feature_matrix([], [TABLE2_EVENTS[10]])
        assert m.shape == (0, 1)

    def test_feature_names(self):
        assert feature_names([TABLE2_EVENTS[10]]) == ["Snoop_Response.HIT_M"]


class TestMergeRequire:
    def test_merge_disjoint(self):
        a = EventVector({"X": 1.0}, overhead=0.01)
        b = EventVector({"Y": 2.0}, overhead=0.02)
        m = merge_vectors(a, b)
        assert m.values == {"X": 1.0, "Y": 2.0}
        assert m.overhead == 0.02

    def test_merge_overlap_rejected(self):
        a = EventVector({"X": 1.0})
        with pytest.raises(PMUError):
            merge_vectors(a, a)

    def test_require_events(self):
        v = vec()
        require_events(v, [NORMALIZER])
        with pytest.raises(PMUError):
            require_events(v, [TABLE2_EVENTS[0]])
