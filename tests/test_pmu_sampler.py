"""Tests for PMU sampling: noise, multiplexing, overhead, errata."""

import numpy as np
import pytest

from repro.coherence.machine import MachineSpec, SimulationResult
from repro.errors import PMUError
from repro.pmu.events import NORMALIZER, TABLE2_EVENTS, event_by_raw_key
from repro.pmu.sampler import PMUSampler, measure_run


def fake_result(counts=None, name="run"):
    base = {
        "INST_RETIRED.ANY": 1_000_000.0,
        "SNOOP_RESPONSE.HITM": 5_000.0,
        "MEM_INST_RETIRED.LOADS": 300_000.0,
        "MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM": 5_000.0,
        "DTLB_MISSES.ANY": 100.0,
    }
    if counts:
        base.update(counts)
    return SimulationResult(
        counts=base,
        cycles_per_core=[1e6],
        instructions_per_core=[1_000_000],
        seconds=0.001,
        nthreads=1,
        spec=MachineSpec(),
        name=name,
    )


HITM = TABLE2_EVENTS[10]
DTLB = TABLE2_EVENTS[12]


class TestMeasurement:
    def test_noiseless_exact(self):
        v = measure_run(fake_result(), [HITM, NORMALIZER], noisy=False)
        assert v.count(HITM) == 5000.0
        assert v.count(NORMALIZER) == 1_000_000.0

    def test_noise_bounded(self):
        v = measure_run(fake_result(), [HITM, NORMALIZER], noisy=True)
        assert 0.7 * 5000 < v.count(HITM) < 1.4 * 5000

    def test_noise_reproducible(self):
        a = measure_run(fake_result(), [HITM], run_id="r1")
        b = measure_run(fake_result(), [HITM], run_id="r1")
        assert a.count(HITM) == b.count(HITM)

    def test_repeats_differ(self):
        a = measure_run(fake_result(), [HITM], run_id="r1")
        b = measure_run(fake_result(), [HITM], run_id="r2")
        assert a.count(HITM) != b.count(HITM)

    def test_zero_counts_get_a_floor(self):
        v = measure_run(fake_result(), [DTLB, HITM], run_id="x")
        # unmeasured-but-requested events never come back exactly zero
        res = fake_result({"DTLB_MISSES.ANY": 0.0})
        v = measure_run(res, [DTLB], run_id="x")
        assert v.count(DTLB) > 0.0

    def test_empty_request_rejected(self):
        with pytest.raises(PMUError):
            measure_run(fake_result(), [])

    def test_duplicate_request_rejected(self):
        with pytest.raises(PMUError):
            measure_run(fake_result(), [HITM, HITM])


class TestErraticCounter:
    def test_uncore_hitm_dominated_by_loads(self):
        e = event_by_raw_key("MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM")
        v = measure_run(fake_result(), [e, HITM], noisy=False)
        # erratum model: mostly unrelated load traffic, not the true 5000
        assert v.values[e.name] < 1000.0
        assert v.values[e.name] > 100.0  # load bleed-through
        # while the architectural HITM event is exact
        assert v.values[HITM.name] == 5000.0


class TestOverheadAndMux:
    def test_overhead_under_two_percent_for_table2(self):
        s = PMUSampler()
        assert s.overhead_fraction(list(TABLE2_EVENTS)) < 0.02

    def test_overhead_grows_with_groups(self):
        s = PMUSampler()
        assert (s.overhead_fraction(list(TABLE2_EVENTS))
                > s.overhead_fraction([HITM]))

    def test_fixed_counters_do_not_multiplex(self):
        s = PMUSampler()
        groups = s._rotation_groups([NORMALIZER, HITM, DTLB])
        assert groups[0] == 0  # instructions live on a fixed counter

    def test_mux_noise_grows_with_group(self):
        # later-group events get noisier measurements on average
        draws_low, draws_high = [], []
        events14 = TABLE2_EVENTS[:15]
        for rid in range(60):
            v = measure_run(fake_result(
                {e.raw_key: 10_000.0 for e in events14}),
                events14, run_id=str(rid))
            draws_low.append(v.values[events14[0].name])
            draws_high.append(v.values[events14[13].name])
        # event 14 (L1D repl) has higher intrinsic noise AND later group
        assert np.std(draws_high) > np.std(draws_low)

    def test_counters_param_validated(self):
        with pytest.raises(PMUError):
            PMUSampler(counters=0)
