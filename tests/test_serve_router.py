"""Router tier: hash stability, raw-byte forwarding, shed accounting.

Workers here are in-process :class:`ServerThread` instances — the router
does not care that they share our interpreter; process supervision is
covered by ``test_serve_fleet.py``.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.training import FEATURES
from repro.errors import ServeError
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.serve.admission import AdmissionController
from repro.serve.client import ServeClient
from repro.serve.router import HashRing, RouterThread
from repro.serve.server import ServerThread

N_FEATURES = len(FEATURES)


def _make_clf():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(200, N_FEATURES))
    y = ["bad-fs" if r[0] > 0 else "good" for r in X]
    return C45Classifier().fit(Dataset(X, y, [e.name for e in FEATURES]))


@pytest.fixture(scope="module")
def clf():
    return _make_clf()


@pytest.fixture()
def pool(clf):
    """A router fronting two in-process workers; yields (router, client)."""
    workers = {"w0": ServerThread(clf), "w1": ServerThread(clf)}
    rt = RouterThread()
    try:
        host, port = rt.start()
        for name, thread in workers.items():
            whost, wport = thread.start()
            rt.call(rt.router.add_worker, name, whost, wport)
        with ServeClient(host, port) as client:
            yield rt, workers, client
    finally:
        rt.stop()
        for thread in workers.values():
            thread.stop()


# ------------------------------------------------------------- hash ring


names = st.lists(
    st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12),
    min_size=1, max_size=6, unique=True,
)
keys = st.lists(st.text(min_size=1, max_size=24), min_size=1, max_size=32,
                unique=True)


@settings(max_examples=50, deadline=None)
@given(members=names, sources=keys)
def test_assignment_is_pure_function_of_membership(members, sources):
    ring_a = HashRing(tuple(members))
    ring_b = HashRing(tuple(reversed(members)))
    for source in sources:
        assert ring_a.assign(source) == ring_b.assign(source)
        assert ring_a.assign(source) in members


@settings(max_examples=50, deadline=None)
@given(members=names, sources=keys)
def test_redistribution_only_on_membership_change(members, sources):
    """Removing one member moves only the keys it owned; re-adding it
    restores the exact original assignment (hot restart = no movement)."""
    ring = HashRing(tuple(members))
    before = {s: ring.assign(s) for s in sources}
    victim = members[0]
    ring.remove(victim)
    if len(members) > 1:
        for source, owner in before.items():
            if owner != victim:
                assert ring.assign(source) == owner
    ring.add(victim)
    assert {s: ring.assign(s) for s in sources} == before


def test_ring_rejects_duplicates_and_unknown():
    ring = HashRing(("a",))
    with pytest.raises(ServeError):
        ring.add("a")
    with pytest.raises(ServeError):
        ring.remove("b")
    ring.remove("a")
    with pytest.raises(ServeError):
        ring.assign("key")


def test_ring_spreads_sources_over_members():
    ring = HashRing(("w0", "w1", "w2", "w3"))
    owners = {ring.assign(f"src-{i}") for i in range(256)}
    assert owners == {"w0", "w1", "w2", "w3"}


# --------------------------------------------------------------- routing


def test_route_op_matches_ring(pool):
    rt, _, client = pool
    for i in range(16):
        source = f"pid-{i}"
        resp = client.request({"op": "route", "source": source})
        assert resp["worker"] == rt.router.ring.assign(source)
        assert resp["up"] is True


def test_classify_through_router_bit_identical(clf, pool):
    _, _, client = pool
    rng = np.random.default_rng(11)
    X = rng.normal(size=(64, N_FEATURES))
    via_router = client.classify_batch(X, rid=1, source="pid-9")
    with ServerThread(clf) as (host, port):
        with ServeClient(host, port) as direct:
            expected = direct.classify_batch(X, rid=1)
    assert via_router == expected


def test_single_vector_and_counts_pass_through(pool):
    _, _, client = pool
    rng = np.random.default_rng(3)
    label = client.classify(rng.normal(size=N_FEATURES), rid=7)
    assert label in ("good", "bad-fs")


def test_source_affinity_in_aggregator(pool):
    rt, _, client = pool
    rng = np.random.default_rng(4)
    X = rng.normal(size=(12, N_FEATURES))
    client.classify_batch(X, rid=1, source="hot-loop")
    summary = client.request({"op": "verdicts", "source": "hot-loop"})
    verdicts = summary["verdicts"]
    assert verdicts["windows"] == 12
    assert verdicts["worker"] == rt.router.ring.assign("hot-loop")


def test_fleet_summary_over_router(pool):
    _, _, client = pool
    rng = np.random.default_rng(6)
    client.classify_batch(rng.normal(size=(4, N_FEATURES)), source="a")
    client.classify_batch(rng.normal(size=(4, N_FEATURES)), source="b")
    fleet = client.request({"op": "fleet"})["fleet"]
    assert fleet["sources"] >= 2
    assert sum(fleet["labels"].values()) == fleet["windows"]


def test_ledger_exact_after_traffic(pool):
    _, _, client = pool
    rng = np.random.default_rng(8)
    for i in range(10):
        client.classify_batch(rng.normal(size=(8, N_FEATURES)),
                              rid=i, source=f"src-{i % 3}")
    stats = client.stats()
    v = stats["vectors"]
    assert v["received"] == (v["completed"] + v["shed"] + v["errors"]
                             + v["inflight"])
    assert v["errors"] == 0


def test_admission_sheds_with_explicit_accounting(clf):
    admission = AdmissionController(rate=1e-9, burst=16)
    rt = RouterThread(admission=admission)
    worker = ServerThread(clf)
    try:
        host, port = rt.start()
        whost, wport = worker.start()
        rt.call(rt.router.add_worker, "w0", whost, wport)
        rng = np.random.default_rng(9)
        with ServeClient(host, port) as client:
            ok = client.classify_batch(rng.normal(size=(16, N_FEATURES)),
                                       rid=1, source="s")
            assert len(ok) == 16
            with pytest.raises(ServeError, match="overloaded"):
                client.classify_batch(rng.normal(size=(16, N_FEATURES)),
                                      rid=2, source="s")
            stats = client.stats()
        assert stats["shed"]["admission"] == 16
        assert stats["vectors"]["shed"] == 16
        assert stats["shed_by_source"]["s"] == 16
        v = stats["vectors"]
        assert v["received"] == (v["completed"] + v["shed"] + v["errors"]
                                 + v["inflight"])
    finally:
        rt.stop()
        worker.stop()


def test_no_workers_yields_unavailable(clf):
    rt = RouterThread()
    try:
        host, port = rt.start()
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="unavailable|failed"):
                client.classify(np.zeros(N_FEATURES), rid=1)
            stats = client.stats()
        assert stats["shed"]["unavailable"] == 1
    finally:
        rt.stop()


def test_dead_worker_sheds_then_reconnect_recovers(clf, pool):
    rt, workers, client = pool
    rng = np.random.default_rng(10)
    # Find a source routed to w0, then take w0 down.
    source = next(f"k-{i}" for i in range(64)
                  if rt.router.ring.assign(f"k-{i}") == "w0")
    rt.call(rt.router.mark_worker_down, "w0")
    with pytest.raises(ServeError, match="unavailable"):
        client.classify_batch(rng.normal(size=(4, N_FEATURES)),
                              rid=1, source=source)
    # Sources on w1 are untouched while w0 is down.
    other = next(f"k-{i}" for i in range(64)
                 if rt.router.ring.assign(f"k-{i}") == "w1")
    assert len(client.classify_batch(rng.normal(size=(4, N_FEATURES)),
                                     rid=2, source=other)) == 4
    # Reconnect at a fresh address: same name, shard assignment intact.
    replacement = ServerThread(clf)
    try:
        whost, wport = replacement.start()
        before = rt.router.ring.assign(source)
        rt.call(rt.router.set_worker_address, "w0", whost, wport)
        assert rt.router.ring.assign(source) == before
        assert len(client.classify_batch(rng.normal(size=(4, N_FEATURES)),
                                         rid=3, source=source)) == 4
        stats = client.stats()
        assert stats["workers"]["w0"]["restarts"] == 1
        assert stats["shed"]["unavailable"] == 4
        v = stats["vectors"]
        assert v["received"] == (v["completed"] + v["shed"] + v["errors"]
                                 + v["inflight"])
    finally:
        replacement.stop()


def test_raw_bytes_forwarded_verbatim(pool):
    """Oddly-formatted (but valid) classify lines survive the fast path:
    the worker sees the client's exact bytes, not a re-encoding."""
    rt, _, client = pool
    rng = np.random.default_rng(12)
    vec = ", ".join(repr(float(v)) for v in rng.normal(size=N_FEATURES))
    line = ('{ "op" : "classify" ,\t"id": 42, "source": "spaced out", '
            f'"features": [{vec}]}}\n')
    resp = client.request(json.loads(line))  # sanity: it is valid JSON
    assert "label" in resp
    # Now raw over the wire, preserving the weird whitespace.
    with socket.create_connection((rt.router.host, rt.router.port)) as s:
        s.sendall(line.encode())
        buf = s.makefile("rb").readline()
    raw_resp = json.loads(buf)
    assert raw_resp["id"] == 42
    assert raw_resp["label"] == resp["label"]


def test_bad_json_answered_not_forwarded(pool):
    rt, _, client = pool
    resp = client.request({"op": "nonsense"})
    assert resp["error"] == "bad_request"
    with socket.create_connection((rt.router.host, rt.router.port)) as s:
        s.sendall(b'this is not json\n')
        resp2 = json.loads(s.makefile("rb").readline())
    assert resp2["error"] == "bad_request"
    # Malformed input is answered by the router, never forwarded, so the
    # ledger is untouched and worker FIFOs stay aligned.
    v = client.stats()["vectors"]
    assert v["received"] == (v["completed"] + v["shed"] + v["errors"]
                             + v["inflight"])


def test_ping_identifies_router(pool):
    _, _, client = pool
    resp = client.request({"op": "ping"})
    assert resp["ok"] is True
    assert resp["server"] == "repro-serve-router"


def test_reload_broadcasts_to_all_workers(clf, tmp_path, pool):
    from repro.ml.persistence import save_classifier

    _, workers, client = pool
    path = tmp_path / "model.json"
    save_classifier(clf, path)
    resp = client.request({"op": "reload", "path": str(path)})
    assert resp["reloaded"] is True
    assert set(resp["workers"]) == set(workers)
