"""Tests for the command-line tools."""

import json

import pytest

from repro.cli import (
    analyze_main,
    experiment_main,
    main,
    perf_main,
)


class TestPerfList:
    def test_list_shows_workloads_and_events(self, capsys):
        assert perf_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pdot" in out
        assert "streamcluster" in out
        assert "Snoop_Response.HIT_M" in out


class TestPerfStat:
    def test_stat_mini_program(self, capsys):
        rc = perf_main(["stat", "psums", "-t", "3", "-n", "1500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Instructions_Retired" in out
        assert "counting overhead" in out

    def test_stat_raw_counts(self, capsys):
        rc = perf_main(["stat", "psums", "-t", "3", "-n", "1500", "--raw"])
        assert rc == 0
        assert "raw count" in capsys.readouterr().out

    def test_stat_custom_events(self, capsys):
        rc = perf_main(["stat", "psums", "-t", "3", "-n", "1500",
                        "-e", "Snoop_Response.HIT_M,Instructions_Retired"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Snoop_Response.HIT_M" in out
        assert "DTLB" not in out

    def test_stat_suite_program(self, capsys):
        # argparse cannot take "-O2" as a separate token; the CLI accepts
        # the dashless form (or --opt=-O2)
        rc = perf_main(["stat", "blackscholes", "-t", "4",
                        "--input", "simsmall", "--opt", "O2"])
        assert rc == 0

    def test_unknown_workload_fails_cleanly(self, capsys):
        rc = perf_main(["stat", "nonesuch"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_event_fails_cleanly(self, capsys):
        rc = perf_main(["stat", "psums", "-e", "Bogus_Event"])
        assert rc == 2

    def test_bad_mode_fails_cleanly(self, capsys):
        rc = perf_main(["stat", "psums", "-m", "awful"])
        assert rc == 2


class TestAnalyzeCLI:
    def test_good_run_exits_zero(self, capsys):
        rc = analyze_main(["psums", "-t", "4", "-m", "good", "-n", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict: good" in out
        assert "clean" in out

    def test_bad_fs_run_exits_one_with_findings(self, capsys):
        rc = analyze_main(["psums", "-t", "4", "-m", "bad-fs",
                           "-n", "2000"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "verdict: bad-fs" in out
        assert "FS001" in out
        assert "fix:" in out

    def test_json_output(self, capsys):
        rc = analyze_main(["psums", "-t", "4", "-m", "bad-fs",
                           "-n", "2000", "--json"])
        assert rc == 1
        d = json.loads(capsys.readouterr().out)
        assert d["report"]["verdict"] == "bad-fs"
        assert any(f["rule"] == "FS001" for f in d["findings"])

    def test_bad_ma_sequential(self, capsys):
        rc = analyze_main(["seq_matmul", "-t", "1", "-m", "bad-ma"])
        assert rc == 1
        assert "FS003" in capsys.readouterr().out

    def test_workload_required_without_crosscheck(self, capsys):
        with pytest.raises(SystemExit):
            analyze_main([])

    def test_unknown_workload_fails_cleanly(self, capsys):
        rc = analyze_main(["nonesuch"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestPredictCLI:
    def test_good_run_exits_zero(self, capsys):
        rc = analyze_main(["predict", "psums", "-t", "4", "-m", "good"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted verdict: good" in out
        assert "no findings" in out

    def test_bad_fs_findings_with_objects(self, capsys):
        rc = analyze_main(["predict", "psums", "-t", "4", "-m", "bad-fs"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FS006" in out
        assert "psum[t0]" in out
        assert "id: " in out

    def test_json_format_stable_keys(self, capsys):
        rc = analyze_main(["predict", "psums", "-t", "4", "-m", "bad-fs",
                           "--format", "json"])
        assert rc == 1
        d = json.loads(capsys.readouterr().out)
        (case,) = d["cases"]
        assert case["verdict"] == "bad-fs"
        assert any(f["rule"] == "FS006" for f in d["findings"])
        # stable key order: re-serializing sorted must be a no-op
        raw = json.dumps(d, indent=2, sort_keys=True)
        assert json.loads(raw) == d

    def test_all_sweep_against_baseline(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        rc = analyze_main([
            "predict", "--all", "--baseline", "analysis-baseline.json",
            "--fail-on-new", "--output", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 new" in out
        doc = json.loads(out_path.read_text())
        assert doc["baseline_diff"]["clean"]
        assert doc["baseline_diff"]["counts"]["new"] == 0

    def test_fail_on_new_without_baseline_entry(self, capsys, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text('{"version": 1, "findings": []}\n')
        rc = analyze_main(["predict", "--all", "--baseline", str(empty),
                           "--fail-on-new"])
        assert rc == 1
        assert "NEW" in capsys.readouterr().out

    def test_update_baseline_round_trip(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        rc = analyze_main(["predict", "--all", "--baseline", str(base),
                           "--update-baseline"])
        assert rc == 0
        rc = analyze_main(["predict", "--all", "--baseline", str(base),
                           "--fail-on-new"])
        assert rc == 0

    def test_workload_required_without_all(self):
        with pytest.raises(SystemExit):
            analyze_main(["predict"])

    def test_unknown_workload_fails_cleanly(self, capsys):
        rc = analyze_main(["predict", "nonesuch"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestSymbolsCLI:
    def test_table_lists_objects(self, capsys):
        rc = analyze_main(["symbols", "psums", "-t", "4", "-m", "bad-fs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Symbol table" in out
        assert "psum[t0]" in out

    def test_json_format(self, capsys):
        rc = analyze_main(["symbols", "psums", "-t", "4", "-m", "good",
                           "--format", "json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["n_symbols"] == len(d["symbols"])
        assert any(s["name"] == "psum[t0]" for s in d["symbols"])

    def test_line_query_resolves_objects(self, capsys):
        rc = analyze_main(["symbols", "psums", "-t", "4", "-m", "bad-fs",
                           "--format", "json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        line = next(s["lines"][0] for s in d["symbols"]
                    if s["name"] == "psum[t0]")
        rc = analyze_main(["symbols", "psums", "-t", "4", "-m", "bad-fs",
                           "--line", str(line)])
        assert rc == 0
        assert "psum[t0]" in capsys.readouterr().out

    def test_line_query_hex_and_empty(self, capsys):
        rc = analyze_main(["symbols", "psums", "-t", "4",
                           "--line", "0x1"])
        assert rc == 0
        assert "no named objects" in capsys.readouterr().out

    def test_suite_program_plan(self, capsys):
        rc = analyze_main(["symbols", "blackscholes", "-t", "4",
                           "--input", "simsmall", "--opt", "O1"])
        assert rc == 0
        assert "Symbol table" in capsys.readouterr().out


class TestUmbrellaMain:
    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 2
        assert "usage: repro" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0

    def test_unknown_subcommand(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_dispatches_to_analyze(self, capsys):
        rc = main(["analyze", "psums", "-t", "4", "-m", "good",
                   "-n", "2000"])
        assert rc == 0
        assert "verdict: good" in capsys.readouterr().out

    def test_dispatches_to_perf(self, capsys):
        assert main(["perf", "list"]) == 0
        assert "pdot" in capsys.readouterr().out

    def test_usage_lists_serve(self, capsys):
        main([])
        assert "serve" in capsys.readouterr().out

    def test_dispatches_to_serve(self, capsys):
        # ping against a dead port: dispatch works, command fails cleanly.
        rc = main(["serve", "ping", "--port", "1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestServeCLI:
    @pytest.fixture
    def model_path(self, tmp_path):
        import numpy as np

        from repro.core.training import FEATURES
        from repro.ml.c45 import C45Classifier
        from repro.ml.dataset import Dataset
        from repro.ml.persistence import save_classifier

        rng = np.random.default_rng(11)
        X = rng.normal(size=(120, len(FEATURES)))
        y = ["bad-fs" if r[0] > 0 else "good" for r in X]
        clf = C45Classifier().fit(
            Dataset(X, y, [e.name for e in FEATURES])
        )
        path = tmp_path / "model.json"
        save_classifier(clf, path)
        return path

    def test_bench_smoke_writes_result(self, model_path, tmp_path, capsys):
        from repro.serve.cli import serve_main

        out = tmp_path / "BENCH_serve.json"
        rc = serve_main([
            "bench", "--model", str(model_path), "--requests", "48",
            "--window", "16", "--output", str(out), "--max-shed", "0",
        ])
        assert rc == 0
        assert "serve bench: PASS" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["bench"] == "serve-throughput"
        assert doc["loadgen"]["requests"] == 48
        assert doc["loadgen"]["shed"] == 0
        assert doc["predict_batch_vectors_per_s"] > 0

    def test_classify_against_running_server(self, model_path, capsys):
        from repro.serve.cli import serve_main
        from repro.serve.server import ServerThread

        with ServerThread(str(model_path), port=0) as (host, port):
            rc = serve_main([
                "classify", "psums", "-t", "4", "-m", "bad-fs",
                "-n", "2000", "--host", host, "--port", str(port),
            ])
        out = capsys.readouterr().out
        assert rc in (0, 1)  # verdict-dependent exit, not a crash
        assert "->" in out

    def test_classify_windowed(self, model_path, capsys):
        from repro.serve.cli import serve_main
        from repro.serve.server import ServerThread

        with ServerThread(str(model_path), port=0) as (host, port):
            rc = serve_main([
                "classify", "psums", "-t", "4", "-m", "good",
                "-n", "2000", "--windows", "4",
                "--host", host, "--port", str(port),
            ])
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert out.count("window") >= 4

    def test_ping_dead_server_fails(self, capsys):
        from repro.serve.cli import serve_main

        assert serve_main(["ping", "--port", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestExperimentCLI:
    def test_no_args_lists_experiments(self, capsys):
        assert experiment_main([]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "figure2" in out

    def test_run_table1(self, capsys):
        assert experiment_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Method" in out

    def test_unknown_experiment_fails(self, capsys):
        assert experiment_main(["tableX"]) == 2
