"""Tests for the bump allocator and per-thread slot layout."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.allocator import BumpAllocator
from repro.memory.layout import line_of


class TestBumpAllocator:
    def test_monotonic(self):
        a = BumpAllocator()
        x = a.alloc(10)
        y = a.alloc(10)
        assert y >= x + 10

    def test_alignment_honoured(self):
        a = BumpAllocator()
        a.alloc(3)
        addr = a.alloc(8, align=64)
        assert addr % 64 == 0

    def test_never_hands_out_low_addresses(self):
        a = BumpAllocator()
        assert a.alloc(1) >= 4096

    def test_zero_bytes_ok(self):
        a = BumpAllocator()
        x = a.alloc(0)
        assert a.alloc(0) == x  # cursor unchanged

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BumpAllocator().alloc(-1)
        with pytest.raises(ValueError):
            BumpAllocator(base=-4)

    def test_alloc_array(self):
        a = BumpAllocator()
        arr = a.alloc_array(8, 100)
        assert arr.length == 100
        assert arr.base % 8 == 0
        assert a.cursor >= arr.end

    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.sampled_from([1, 8, 64])), max_size=20))
    def test_allocations_never_overlap(self, requests):
        a = BumpAllocator()
        spans = []
        for nbytes, align in requests:
            addr = a.alloc(nbytes, align)
            spans.append((addr, addr + nbytes))
        spans.sort()
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2


class TestPerThreadSlots:
    def test_packed_slots_share_lines(self):
        a = BumpAllocator()
        slots = a.per_thread_slots(8, 8, padded=False)
        lines = {line_of(s) for s in slots}
        assert len(lines) == 1  # 8 x 8B = one 64B line

    def test_padded_slots_on_distinct_lines(self):
        a = BumpAllocator()
        slots = a.per_thread_slots(8, 8, padded=True)
        lines = [line_of(s) for s in slots]
        assert len(set(lines)) == 8

    def test_packed_slots_contiguous(self):
        a = BumpAllocator()
        slots = a.per_thread_slots(4, 16, padded=False)
        assert slots == [slots[0] + 16 * i for i in range(4)]

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            BumpAllocator().per_thread_slots(0)

    def test_many_threads_packed_span_minimal_lines(self):
        a = BumpAllocator()
        slots = a.per_thread_slots(12, 8, padded=False)
        lines = {line_of(s) for s in slots}
        assert len(lines) == 2  # 96 bytes -> 2 lines (line-aligned start)
