"""Tests for the deterministic load generator (repro.serve.loadgen)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lab import Lab
from repro.core.training import FEATURES
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.serve.loadgen import (
    LoadGenResult,
    bench_payload,
    generate_stream,
    measure_predict_batch,
    run_loadgen,
)
from repro.serve.server import ServerThread


@pytest.fixture(scope="module")
def stream():
    """A small deterministic request stream (shared: simulation is the
    expensive part)."""
    lab = Lab(disk_cache=None)
    return generate_stream(24, seed=0, lab=lab, distinct=12)


class TestGenerateStream:
    def test_shape_and_tags(self, stream):
        X, tags = stream
        assert X.shape == (24, len(FEATURES))
        assert len(tags) == 24
        assert {"good", "bad-fs", "bad-ma", "suite"} <= {
            t.split(":")[0] for t in tags
        }
        assert np.isfinite(X).all()

    def test_deterministic(self):
        lab_a = Lab(disk_cache=None)
        lab_b = Lab(disk_cache=None)
        Xa, ta = generate_stream(10, seed=0, lab=lab_a, distinct=6)
        Xb, tb = generate_stream(10, seed=0, lab=lab_b, distinct=6)
        assert np.array_equal(Xa, Xb)
        assert ta == tb

    def test_distinct_vectors_then_tiled(self, stream):
        X, _ = stream
        # 12 distinct measurement draws tiled to 24 rows.
        assert np.array_equal(X[:12], X[12:24])
        assert not np.array_equal(X[0], X[6])  # different noise draws

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_stream(0)


class TestRunLoadgen:
    def test_end_to_end_zero_shed(self, stream):
        X, _ = stream
        rng = np.random.default_rng(2)
        Xt = rng.normal(size=(150, len(FEATURES)))
        y = ["bad-fs" if r[0] > 0 else "good" for r in Xt]
        clf = C45Classifier().fit(
            Dataset(Xt, y, [e.name for e in FEATURES])
        )
        thread = ServerThread(clf, port=0)
        host, port = thread.start()
        try:
            result = run_loadgen(host, port, X, window=8)
        finally:
            thread.stop()
        assert isinstance(result, LoadGenResult)
        assert result.requests == 24
        assert result.shed == 0 and result.errors == 0
        assert result.throughput_rps > 0
        assert sum(result.labels.values()) == 24
        assert result.server["shed"] == 0

    def test_payload_shape(self, stream):
        result = LoadGenResult(
            requests=10, window=4, seconds=0.5, throughput_rps=20.0,
            latency_ms={"p50": 1.0, "p95": 2.0, "p99": 3.0,
                        "mean": 1.2, "max": 3.5},
            shed=0, errors=0, labels={"good": 10},
            server={"batches": 3, "max_batch_seen": 4, "shed": 0,
                    "config": {}},
        )
        doc = bench_payload(result, predict_batch_vps=1e6, mode="smoke")
        assert doc["bench"] == "serve-throughput"
        assert doc["mode"] == "smoke"
        assert doc["loadgen"]["requests"] == 10
        assert doc["loadgen"]["latency_ms"]["p99"] == 3.0
        assert doc["predict_batch_vectors_per_s"] == 1_000_000
        import json

        json.dumps(doc)  # must be JSON-serializable as-is


class TestMeasurePredictBatch:
    def test_positive_rate(self, stream):
        X, _ = stream
        root = C45Classifier()
        rng = np.random.default_rng(3)
        Xt = rng.normal(size=(60, len(FEATURES)))
        y = ["a" if r[1] > 0 else "b" for r in Xt]
        root.fit(Dataset(Xt, y, [e.name for e in FEATURES]))
        from repro.serve.inference import as_compiled

        vps = measure_predict_batch(as_compiled(root), X, repeats=2)
        assert vps > 0


def _router_pool(clf, n_workers=2):
    from repro.serve.router import RouterThread

    workers = [ServerThread(clf) for _ in range(n_workers)]
    rt = RouterThread()
    host, port = rt.start()
    for i, thread in enumerate(workers):
        whost, wport = thread.start()
        rt.call(rt.router.add_worker, f"w{i}", whost, wport)
    return rt, workers, host, port


class TestRunScaleLoadgen:
    @pytest.fixture(scope="class")
    def clf(self):
        rng = np.random.default_rng(2)
        Xt = rng.normal(size=(150, len(FEATURES)))
        y = ["bad-fs" if r[0] > 0 else "good" for r in Xt]
        return C45Classifier().fit(Dataset(Xt, y, [e.name for e in FEATURES]))

    def test_scale_run_accounting_exact(self, clf, stream):
        from repro.serve.loadgen import ScaleResult, run_scale_loadgen

        X, tags = stream
        reps = 40  # 960 vectors across 5 distinct sources
        Xs = np.tile(X, (reps, 1))
        tags_s = tags * reps
        rt, workers, host, port = _router_pool(clf)
        try:
            result = run_scale_loadgen(host, port, Xs, tags_s,
                                       connections=3, batch=64)
        finally:
            rt.stop()
            for w in workers:
                w.stop()
        assert isinstance(result, ScaleResult)
        assert result.vectors == Xs.shape[0]
        assert result.completed + result.shed + result.errors == \
            result.vectors
        assert result.errors == 0 and result.shed == 0
        assert result.throughput_vps > 0
        assert sum(result.labels.values()) == result.completed
        # Router ledger agrees with the client-side tallies.
        v = result.router["vectors"]
        assert v["received"] == result.vectors
        assert v["completed"] == result.completed
        assert v["inflight"] == 0
        # Verdict aggregation saw every window of every source.
        assert result.fleet["windows"] == result.completed
        assert result.fleet["sources"] == len(set(tags))

    def test_scale_verdicts_match_single_server(self, clf, stream):
        """The batched multi-connection router path produces exactly the
        label multiset of the direct single-server path."""
        from repro.serve.client import ServeClient
        from repro.serve.loadgen import run_scale_loadgen

        X, tags = stream
        rt, workers, host, port = _router_pool(clf)
        try:
            result = run_scale_loadgen(host, port, X, tags,
                                       connections=2, batch=8)
        finally:
            rt.stop()
            for w in workers:
                w.stop()
        with ServerThread(clf) as (dhost, dport):
            with ServeClient(dhost, dport) as direct:
                expected = direct.classify_batch(X, rid=1)
        from repro.utils.stats import tally

        assert result.labels == tally(expected)

    def test_payload_scale_section_provenance(self, clf, stream):
        import os

        from repro.serve.loadgen import run_scale_loadgen

        X, tags = stream
        rt, workers, host, port = _router_pool(clf)
        try:
            scale = run_scale_loadgen(host, port, X, tags,
                                      connections=2, batch=8)
        finally:
            rt.stop()
            for w in workers:
                w.stop()
        single = LoadGenResult(
            requests=10, window=4, seconds=0.5, throughput_rps=20.0,
            latency_ms={"p50": 1.0, "p95": 2.0, "p99": 3.0,
                        "mean": 1.2, "max": 3.5},
            shed=0, errors=0, labels={"good": 10}, server={},
        )
        doc = bench_payload(single, predict_batch_vps=1e6, mode="smoke",
                            scale=scale, scale_shed_ceiling=0)
        assert doc["cpus"] == os.cpu_count()
        assert doc["affinity_cpus"] >= 1
        section = doc["scale"]
        assert section["workers"] == 2
        assert section["router_config"]["max_worker_inflight"] > 0
        assert section["shed_ceiling"] == 0
        assert section["speedup_vs_single"] == pytest.approx(
            scale.throughput_vps / 20.0, rel=0.01
        )
        import json

        json.dumps(doc)  # must be JSON-serializable as-is

    def test_rejects_mismatched_tags(self, clf):
        from repro.serve.loadgen import run_scale_loadgen

        with pytest.raises(Exception):
            run_scale_loadgen("127.0.0.1", 1, np.zeros((4, 3)), ["a"])
