"""Tests for the sharing lint rules (FS001-FS004)."""

import numpy as np
import pytest

from repro.analysis.lint import (
    SLOT_SPAN,
    Finding,
    SharingLinter,
    findings_table,
    render_findings,
)
from repro.trace.access import ProgramTrace, make_thread
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload


def rmw_thread(addr, n):
    addrs = np.full(2 * n, addr, dtype=np.int64)
    writes = np.zeros(2 * n, bool)
    writes[1::2] = True
    return make_thread(addrs, writes)


@pytest.fixture(scope="module")
def linter():
    return SharingLinter()


def rules(findings):
    return sorted({f.rule for f in findings})


class TestFS001:
    def test_fires_on_packed_counters(self, linter):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        findings = linter.lint(prog)
        (f,) = [f for f in findings if f.rule == "FS001"]
        assert f.severity == "error"  # significance ~1.0
        assert f.lines == [64]
        assert f.threads == [0, 1]
        assert "padding" in f.suggestion
        assert "+padded" in f.suggestion

    def test_warning_below_error_threshold(self, linter):
        # contended line carries ~0.4% of instructions: above the report
        # threshold, below the error escalation
        t0 = rmw_thread(4096, 10).concat(rmw_thread(8192, 2500))
        t1 = rmw_thread(4104, 10).concat(rmw_thread(12288, 2500))
        findings = [f for f in linter.lint(ProgramTrace([t0, t1]))
                    if f.rule == "FS001"]
        assert [f.severity for f in findings] == ["warning"]

    def test_silent_on_handoff(self, linter):
        t0 = rmw_thread(4096, 10).concat(rmw_thread(8192, 500))
        t1 = rmw_thread(12288, 500).concat(rmw_thread(4104, 10))
        assert "FS001" not in rules(linter.lint(ProgramTrace([t0, t1])))


class TestFS002:
    def test_fires_on_tight_adjacent_writers(self, linter):
        prog = ProgramTrace([rmw_thread(4096 + 60, 100),
                             rmw_thread(4160, 100)])
        (f,) = [f for f in linter.lint(prog) if f.rule == "FS002"]
        assert f.severity == "info"
        assert f.lines == [64, 65]
        assert f.data["slack_bytes"] == 3

    def test_silent_on_roomy_layout(self, linter):
        prog = ProgramTrace([rmw_thread(4096, 100),
                             rmw_thread(4160 + 60, 100)])
        assert "FS002" not in rules(linter.lint(prog))


class TestFS003:
    def test_fires_on_hostile_scan(self, linter):
        once = np.arange(0, 512 * 64, 64, dtype=np.int64)
        prog = ProgramTrace([make_thread(np.tile(once, 4)),
                             rmw_thread(1 << 20, 100)])
        (f,) = [f for f in linter.lint(prog) if f.rule == "FS003"]
        assert f.severity == "warning"
        assert f.threads == [0]
        assert f.data["footprint_lines"] == 512

    def test_silent_on_streaming_scan(self, linter):
        addrs = np.arange(0, 512 * 64, 8, dtype=np.int64)
        prog = ProgramTrace([make_thread(addrs)])
        assert "FS003" not in rules(linter.lint(prog))


class TestFS004:
    def test_fires_on_slot_packed_line(self, linter):
        prog = ProgramTrace([rmw_thread(4096 + 8 * t, 200)
                             for t in range(4)])
        (f,) = [f for f in linter.lint(prog) if f.rule == "FS004"]
        assert f.severity == "info"
        assert f.threads == [0, 1, 2, 3]
        assert f.data["slot_bytes"] <= SLOT_SPAN

    def test_silent_when_spans_are_wide(self, linter):
        # each thread sweeps a 28-byte range of the line: false sharing
        # (FS001) but not the packed-slot shape
        def wide(base):
            addrs = np.tile(np.arange(base, base + 28, 4, dtype=np.int64),
                            50)
            return make_thread(addrs, np.ones(addrs.size, bool))

        prog = ProgramTrace([wide(4096), wide(4096 + 32)])
        got = rules(linter.lint(prog))
        assert "FS001" in got
        assert "FS004" not in got


class TestLinterFrontend:
    def test_clean_program_no_findings(self, linter):
        prog = ProgramTrace([rmw_thread(4096, 100), rmw_thread(8192, 100)])
        assert linter.lint(prog) == []

    def test_severity_ordering(self, linter):
        # error (FS001) must precede info (FS004) regardless of rule id
        prog = ProgramTrace([rmw_thread(4096 + 8 * t, 200)
                             for t in range(4)])
        sevs = [f.severity for f in linter.lint(prog)]
        assert sevs == sorted(
            sevs, key=lambda s: {"error": 0, "warning": 1, "info": 2}[s]
        )

    def test_precomputed_report_reused(self, linter):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        rep = linter.analyzer.analyze(prog)
        assert rules(linter.lint(prog, rep)) == rules(linter.lint(prog))

    def test_mini_program_bad_fs(self, linter):
        w = get_workload("psums")
        prog = w.trace(RunConfig(threads=4, mode="bad-fs", size=2000))
        got = rules(linter.lint(prog))
        assert "FS001" in got
        assert "FS004" in got  # 8-byte slots packed into one line

    def test_mini_program_good_clean_of_fs(self, linter):
        w = get_workload("psums")
        prog = w.trace(RunConfig(threads=4, mode="good", size=2000))
        assert "FS001" not in rules(linter.lint(prog))


class TestRendering:
    def test_render_findings_empty(self):
        assert "clean" in render_findings([])

    def test_render_findings_counts(self):
        fs = [Finding("FS001", "error", "m", [1]),
              Finding("FS003", "warning", "m")]
        out = render_findings(fs)
        assert "2 finding(s)" in out
        assert "1 error(s)" in out

    def test_findings_table(self):
        out = findings_table([Finding("FS001", "error", "msg", [64], [0])])
        assert "FS001" in out
        assert "0x1000" in out

    def test_finding_to_dict(self):
        d = Finding("FS002", "info", "m", [1, 2], [0, 3], "fix",
                    {"k": 1}).to_dict()
        assert d["rule"] == "FS002"
        assert d["lines"] == [1, 2]
        assert d["data"] == {"k": 1}
