"""Tests for the sharing lint rules (FS001-FS008)."""

import numpy as np
import pytest

from repro.analysis.lint import (
    SLOT_SPAN,
    Finding,
    SharingLinter,
    findings_table,
    render_findings,
)
from repro.analysis.predict import predict_plan
from repro.analysis.symbols import Symbol
from repro.trace.access import ProgramTrace, make_thread
from repro.workloads.base import RunConfig
from repro.workloads.plan import PlanBuilder
from repro.workloads.registry import get_workload


def rmw_thread(addr, n):
    addrs = np.full(2 * n, addr, dtype=np.int64)
    writes = np.zeros(2 * n, bool)
    writes[1::2] = True
    return make_thread(addrs, writes)


@pytest.fixture(scope="module")
def linter():
    return SharingLinter()


def rules(findings):
    return sorted({f.rule for f in findings})


class TestFS001:
    def test_fires_on_packed_counters(self, linter):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        findings = linter.lint(prog)
        (f,) = [f for f in findings if f.rule == "FS001"]
        assert f.severity == "error"  # significance ~1.0
        assert f.lines == [64]
        assert f.threads == [0, 1]
        assert "padding" in f.suggestion
        assert "+padded" in f.suggestion

    def test_warning_below_error_threshold(self, linter):
        # contended line carries ~0.4% of instructions: above the report
        # threshold, below the error escalation
        t0 = rmw_thread(4096, 10).concat(rmw_thread(8192, 2500))
        t1 = rmw_thread(4104, 10).concat(rmw_thread(12288, 2500))
        findings = [f for f in linter.lint(ProgramTrace([t0, t1]))
                    if f.rule == "FS001"]
        assert [f.severity for f in findings] == ["warning"]

    def test_silent_on_handoff(self, linter):
        t0 = rmw_thread(4096, 10).concat(rmw_thread(8192, 500))
        t1 = rmw_thread(12288, 500).concat(rmw_thread(4104, 10))
        assert "FS001" not in rules(linter.lint(ProgramTrace([t0, t1])))


class TestFS002:
    def test_fires_on_tight_adjacent_writers(self, linter):
        prog = ProgramTrace([rmw_thread(4096 + 60, 100),
                             rmw_thread(4160, 100)])
        (f,) = [f for f in linter.lint(prog) if f.rule == "FS002"]
        assert f.severity == "info"
        assert f.lines == [64, 65]
        assert f.data["slack_bytes"] == 3

    def test_silent_on_roomy_layout(self, linter):
        prog = ProgramTrace([rmw_thread(4096, 100),
                             rmw_thread(4160 + 60, 100)])
        assert "FS002" not in rules(linter.lint(prog))


class TestFS003:
    def test_fires_on_hostile_scan(self, linter):
        once = np.arange(0, 512 * 64, 64, dtype=np.int64)
        prog = ProgramTrace([make_thread(np.tile(once, 4)),
                             rmw_thread(1 << 20, 100)])
        (f,) = [f for f in linter.lint(prog) if f.rule == "FS003"]
        assert f.severity == "warning"
        assert f.threads == [0]
        assert f.data["footprint_lines"] == 512

    def test_silent_on_streaming_scan(self, linter):
        addrs = np.arange(0, 512 * 64, 8, dtype=np.int64)
        prog = ProgramTrace([make_thread(addrs)])
        assert "FS003" not in rules(linter.lint(prog))


class TestFS004:
    def test_fires_on_slot_packed_line(self, linter):
        prog = ProgramTrace([rmw_thread(4096 + 8 * t, 200)
                             for t in range(4)])
        (f,) = [f for f in linter.lint(prog) if f.rule == "FS004"]
        assert f.severity == "info"
        assert f.threads == [0, 1, 2, 3]
        assert f.data["slot_bytes"] <= SLOT_SPAN

    def test_silent_when_spans_are_wide(self, linter):
        # each thread sweeps a 28-byte range of the line: false sharing
        # (FS001) but not the packed-slot shape
        def wide(base):
            addrs = np.tile(np.arange(base, base + 28, 4, dtype=np.int64),
                            50)
            return make_thread(addrs, np.ones(addrs.size, bool))

        prog = ProgramTrace([wide(4096), wide(4096 + 32)])
        got = rules(linter.lint(prog))
        assert "FS001" in got
        assert "FS004" not in got


class TestLinterFrontend:
    def test_clean_program_no_findings(self, linter):
        prog = ProgramTrace([rmw_thread(4096, 100), rmw_thread(8192, 100)])
        assert linter.lint(prog) == []

    def test_severity_ordering(self, linter):
        # error (FS001) must precede info (FS004) regardless of rule id
        prog = ProgramTrace([rmw_thread(4096 + 8 * t, 200)
                             for t in range(4)])
        sevs = [f.severity for f in linter.lint(prog)]
        assert sevs == sorted(
            sevs, key=lambda s: {"error": 0, "warning": 1, "info": 2}[s]
        )

    def test_precomputed_report_reused(self, linter):
        prog = ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        rep = linter.analyzer.analyze(prog)
        assert rules(linter.lint(prog, rep)) == rules(linter.lint(prog))

    def test_mini_program_bad_fs(self, linter):
        w = get_workload("psums")
        prog = w.trace(RunConfig(threads=4, mode="bad-fs", size=2000))
        got = rules(linter.lint(prog))
        assert "FS001" in got
        assert "FS004" in got  # 8-byte slots packed into one line

    def test_mini_program_good_clean_of_fs(self, linter):
        w = get_workload("psums")
        prog = w.trace(RunConfig(threads=4, mode="good", size=2000))
        assert "FS001" not in rules(linter.lint(prog))


class TestRendering:
    def test_render_findings_empty(self):
        assert "clean" in render_findings([])

    def test_render_findings_counts(self):
        fs = [Finding("FS001", "error", "m", [1]),
              Finding("FS003", "warning", "m")]
        out = render_findings(fs)
        assert "2 finding(s)" in out
        assert "1 error(s)" in out

    def test_findings_table(self):
        out = findings_table([Finding("FS001", "error", "msg", [64], [0])])
        assert "FS001" in out
        assert "0x1000" in out

    def test_finding_to_dict(self):
        d = Finding("FS002", "info", "m", [1, 2], [0, 3], "fix",
                    {"k": 1}).to_dict()
        assert d["rule"] == "FS002"
        assert d["lines"] == [1, 2]
        assert d["data"] == {"k": 1}


# --------------------------------------------------------------------------
# Layout-aware rules (FS005-FS008) over symbolic predictions.

def plan_cfg(name, mode, threads=4):
    w = get_workload(name)
    t = threads if w.kind == "mt" else 1
    return w.plan(RunConfig(threads=t, mode=mode, size=w.train_sizes[0],
                            pattern="random"))


def adjacency_plan():
    """Hot fields of two *unrelated* per-thread objects on one line."""
    pb = PlanBuilder("adj", 2)
    base = pb.alloc.alloc(64, align=64)
    a = pb.symbols.add(Symbol("hot_a", base, 8, kind="slot", tid=0,
                              group="ga"))
    b = pb.symbols.add(Symbol("hot_b", base + 8, 8, kind="slot", tid=1,
                              group="gb"))
    pb.use(a, 0, reads=50_000, writes=50_000, order="scattered")
    pb.use(b, 1, reads=50_000, writes=50_000, order="scattered")
    return pb.finish(3.0, workload="adj", mode="synthetic")


def misaligned_plan():
    """A written array whose base straddles into the sync word's line."""
    pb = PlanBuilder("mis", 2)
    sync = pb.line_region("sync", 16, size=8, kind="sync")
    out_base = pb.alloc.alloc(256, align=16)  # lands 16 bytes into a line
    out = pb.symbols.add(Symbol("out", out_base, 256, kind="array", tid=1,
                                elem_size=8))
    pb.use(sync, 0, reads=1000, writes=1000, order="scattered", phase=1)
    pb.use(out, 1, writes=10_000, order="linear")
    return pb.finish(3.0, workload="mis", mode="synthetic")


class TestFS005:
    def test_fires_on_incidental_adjacency(self, linter):
        findings = linter.lint_prediction(predict_plan(adjacency_plan()))
        (f,) = [x for x in findings if x.rule == "FS005"]
        assert f.severity == "error"
        assert f.objects == ["hot_a", "hot_b"]
        assert f.threads == [0, 1]
        assert sorted(f.data["groups"]) == ["ga", "gb"]
        assert f.scope == "adj/synthetic/t2"

    def test_silent_on_packed_group(self, linter):
        # one packed slot *group* is FS006's shape, not FS005's
        findings = linter.lint_prediction(
            predict_plan(plan_cfg("psums", "bad-fs")))
        assert "FS005" not in rules(findings)


class TestFS006:
    def test_fires_on_packed_slot_group(self, linter):
        findings = linter.lint_prediction(
            predict_plan(plan_cfg("psums", "bad-fs")))
        (f,) = [x for x in findings if x.rule == "FS006"]
        assert f.severity == "error"
        assert f.objects == [f"psum[t{t}]" for t in range(4)]
        assert f.data["pitch"] < 64
        assert "pad" in f.suggestion

    def test_silent_on_padded_group(self, linter):
        findings = linter.lint_prediction(
            predict_plan(plan_cfg("psums", "good")))
        assert "FS006" not in rules(findings)


class TestFS007:
    def test_fires_on_interleaved_partition(self, linter):
        findings = linter.lint_prediction(
            predict_plan(plan_cfg("pmatmult", "bad-fs")))
        (f,) = [x for x in findings if x.rule == "FS007"]
        assert f.severity == "error"
        assert f.objects == ["C"]
        assert f.data["step"] > 1
        assert f.data["elems_per_line"] > 1

    def test_silent_on_block_partition(self, linter):
        findings = linter.lint_prediction(
            predict_plan(plan_cfg("pmatmult", "good")))
        assert "FS007" not in rules(findings)


class TestFS008:
    def test_info_on_latent_straddle(self, linter):
        findings = linter.lint_prediction(predict_plan(misaligned_plan()))
        (f,) = [x for x in findings if x.rule == "FS008"]
        assert f.severity == "info"
        assert f.objects == ["out", "sync"]
        assert f.data["misalignment"] == 16
        assert "align" in f.suggestion

    def test_warning_when_line_contended(self, linter):
        findings = linter.lint_prediction(predict_plan(adjacency_plan()))
        (f,) = [x for x in findings if x.rule == "FS008"]
        assert f.severity == "warning"
        assert "hot_a" in f.objects and "hot_b" in f.objects


class TestPredictionLintFrontend:
    def test_clean_plan_no_findings(self, linter):
        assert linter.lint_prediction(
            predict_plan(plan_cfg("false1", "good"))) == []

    def test_scope_set_on_every_finding(self, linter):
        findings = linter.lint_prediction(
            predict_plan(plan_cfg("psums", "bad-fs")))
        assert findings
        assert all(f.scope == "psums/bad-fs/t4" for f in findings)

    def test_severity_ordering(self, linter):
        sevs = [f.severity for f in
                linter.lint_prediction(predict_plan(adjacency_plan()))]
        assert sevs == sorted(
            sevs, key=lambda s: {"error": 0, "warning": 1, "info": 2}[s])


class TestSymbolEnrichment:
    def test_trace_lint_gains_objects_and_scope(self, linter):
        w = get_workload("psums")
        cfg = RunConfig(threads=4, mode="bad-fs", size=2000)
        plan = w.plan(cfg)
        findings = linter.lint(w.trace(cfg), symbols=plan.symbols,
                               scope=plan.scope())
        (f,) = [x for x in findings if x.rule == "FS001"]
        assert f.scope == "psums/bad-fs/t4"
        assert f.objects == [f"psum[t{t}]" for t in range(4)]

    def test_scope_changes_fingerprint(self, linter):
        w = get_workload("psums")
        cfg = RunConfig(threads=4, mode="bad-fs", size=2000)
        trace = w.trace(cfg)
        a = linter.lint(trace, scope="scope-a")
        b = linter.lint(trace, scope="scope-b")
        assert a and b
        assert a[0].fingerprint != b[0].fingerprint


class TestFindingIdentityRendering:
    def test_render_includes_objects_and_id(self):
        f = Finding("FS006", "error", "packed", [64], [0, 1],
                    "pad", {}, objects=["psum[t0]"], scope="s/t2")
        out = f.render()
        assert "objects: psum[t0]" in out
        assert f"id: {f.fingerprint}" in out

    def test_findings_table_shows_fingerprint(self):
        f = Finding("FS006", "error", "packed", [64], [0],
                    "", {}, objects=["psum[t0]"], scope="s/t2")
        out = findings_table([f])
        assert f.fingerprint in out
        assert "psum[t0]" in out
