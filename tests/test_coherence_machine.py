"""Tests for the multicore machine: events, coherence, timing."""

import numpy as np
import pytest

from repro.coherence.machine import (
    MachineSpec,
    MulticoreMachine,
    SCALED_WESTMERE,
    WESTMERE_SPEC,
)
from repro.errors import SimulationError
from repro.trace.access import ProgramTrace, make_thread



def run(machine, threads, chunk=4):
    return machine.run(ProgramTrace(threads), chunk=chunk)


def rmw_thread(addr, n, ipa=3.0):
    addrs = np.empty(2 * n, np.int64)
    writes = np.zeros(2 * n, bool)
    addrs[:] = addr
    writes[1::2] = True
    return make_thread(addrs, writes, instr_per_access=ipa)


def stream_thread(base, n, step=8):
    return make_thread(base + np.arange(n, dtype=np.int64) * step)


class TestSpecs:
    def test_westmere_defaults(self):
        assert WESTMERE_SPEC.cores == 12
        assert WESTMERE_SPEC.l1_lines == 512
        assert WESTMERE_SPEC.l2_lines == 4096
        assert WESTMERE_SPEC.cores_per_socket == 6

    def test_scaled_geometry_ratio(self):
        assert WESTMERE_SPEC.l1_kib == SCALED_WESTMERE.l1_kib * 4
        assert WESTMERE_SPEC.l2_kib == SCALED_WESTMERE.l2_kib * 4

    def test_socket_of(self):
        assert WESTMERE_SPEC.socket_of(0) == 0
        assert WESTMERE_SPEC.socket_of(6) == 1

    def test_invalid_spec_rejected(self):
        with pytest.raises(SimulationError):
            MachineSpec(cores=5, sockets=2)
        with pytest.raises(SimulationError):
            MachineSpec(l1_kib=0)
        with pytest.raises(SimulationError):
            MachineSpec(freq_ghz=0)


class TestSingleCore:
    def test_cold_misses_counted(self, machine):
        r = run(machine, [stream_thread(4096, 16, step=64)])
        assert r.counts["L1D.REPL"] == 16

    def test_repeat_hits_not_misses(self, machine):
        t = make_thread(np.full(100, 4096, dtype=np.int64))
        r = run(machine, [t])
        assert r.counts["L1D.REPL"] == 1

    def test_instructions_accounted(self, machine):
        t = make_thread(np.full(10, 4096, dtype=np.int64),
                        instr_per_access=4.0)
        r = run(machine, [t])
        assert r.instructions == 40

    def test_dtlb_misses_on_page_walks(self, machine):
        # touch 20 distinct pages with an 8-entry TLB
        t = make_thread(np.arange(20, dtype=np.int64) * 4096 + 4096)
        r = run(machine, [t])
        assert r.counts["DTLB_MISSES.ANY"] == 20

    def test_tlb_capacity_rewalk(self, machine):
        # cycle over 16 pages twice: second pass misses again (8 entries)
        pages = np.tile(np.arange(16, dtype=np.int64), 2) * 4096 + 4096
        r = run(machine, [make_thread(pages)])
        assert r.counts["DTLB_MISSES.ANY"] == 32

    def test_l2_capacity_misses(self, machine):
        # stream far beyond L2 (16 KiB = 256 lines), twice
        n = 1024
        addrs = np.tile(np.arange(n, dtype=np.int64) * 64, 2) + (1 << 20)
        r = machine.run(ProgramTrace([make_thread(addrs)]))
        assert r.counts["L2_TRANSACTIONS.FILL"] >= 2 * n - 256

    def test_prefetch_cheapens_linear_streams(self, small_spec):
        noisy = MulticoreMachine(small_spec, prefetch=False)
        quick = MulticoreMachine(small_spec, prefetch=True)
        def t():
            return [stream_thread(1 << 20, 512, step=64)]
        slow = noisy.run(ProgramTrace(t()))
        fast = quick.run(ProgramTrace(t()))
        assert fast.seconds < slow.seconds
        assert fast.counts["L1D_PREFETCH.REQUESTS"] > 400

    def test_seconds_positive_and_scaled(self, machine):
        r = run(machine, [stream_thread(4096, 1000)])
        assert r.seconds > 0
        assert r.cycles >= r.instructions * machine.spec.base_cpi * 0.99


class TestCoherence:
    def test_ping_pong_generates_hitm(self, machine):
        t0 = rmw_thread(4096, 500)
        t1 = rmw_thread(4104, 500)  # same line, different word
        r = run(machine, [t0, t1])
        assert r.counts["SNOOP_RESPONSE.HITM"] > 200
        assert r.counts["L2_WRITE.RFO.S_STATE"] > 200

    def test_padded_threads_no_hitm(self, machine):
        t0 = rmw_thread(4096, 500)
        t1 = rmw_thread(4096 + 64, 500)  # next line
        r = run(machine, [t0, t1])
        assert r.counts["SNOOP_RESPONSE.HITM"] == 0

    def test_single_thread_never_snoops(self, machine):
        r = run(machine, [rmw_thread(4096, 500)])
        for k in ("SNOOP_RESPONSE.HIT", "SNOOP_RESPONSE.HITE",
                  "SNOOP_RESPONSE.HITM"):
            assert r.counts[k] == 0

    def test_read_sharing_uses_hite_then_hit(self, machine):
        # three threads read the same line; no writes anywhere
        def t():
            return make_thread(np.full(50, 4096, dtype=np.int64))
        r = run(machine, [t(), t(), t()], chunk=8)
        assert r.counts["SNOOP_RESPONSE.HITM"] == 0
        assert r.counts["SNOOP_RESPONSE.HITE"] >= 1
        assert r.counts["SNOOP_RESPONSE.HIT"] >= 1

    def test_true_sharing_also_hitms(self, machine):
        # same word written by both: true sharing also ping-pongs (the PMU
        # cannot tell true from false sharing; the classifier never needs
        # to — both are genuine coherence traffic)
        t0 = rmw_thread(4096, 300)
        t1 = rmw_thread(4096, 300)
        r = run(machine, [t0, t1])
        assert r.counts["SNOOP_RESPONSE.HITM"] > 100

    def test_prefetch_never_breaks_coherence(self, small_spec):
        """Regression: a next-line prefetch must not blind-install E over a
        line another core holds Modified (this silently killed the false-
        sharing signature for struct-packed layouts)."""
        m = MulticoreMachine(small_spec, prefetch=True)
        # Thread 1 sweeps lines L..L+9 (reads) 50 times; thread 0 keeps
        # RMW-ing a word on L+1.  Every sweep must re-steal the hot line
        # with a HITM; the buggy prefetch installed it Exclusive once and
        # the ping-pong silently stopped.
        base = 1 << 16
        hot = base + 64
        t0 = rmw_thread(hot, 2000)
        sweep = stream_thread(base, 80, step=8).addrs  # 10 lines x 8 words
        t1 = make_thread(np.concatenate([sweep] * 50))
        r = run(m, [t0, t1])
        assert r.counts["SNOOP_RESPONSE.HITM"] >= 40

    def test_writeback_on_dirty_eviction(self, machine):
        # write many lines mapping beyond L2 capacity
        n = 2048
        addrs = np.arange(n, dtype=np.int64) * 64 + (1 << 20)
        t = make_thread(addrs, np.ones(n, bool))
        r = run(machine, [t])
        assert r.counts["L2_LINES_OUT.DEMAND_DIRTY"] > 0
        assert r.counts["L2_WRITEBACKS"] > 0

    def test_clean_eviction_counted(self, machine):
        n = 2048
        addrs = np.arange(n, dtype=np.int64) * 64 + (1 << 20)
        r = run(MulticoreMachine(machine.spec, prefetch=False),
                [make_thread(addrs)])
        assert r.counts["L2_LINES_OUT.DEMAND_CLEAN"] > 0


class TestTiming:
    def test_false_sharing_slower_than_padded(self, machine):
        shared = run(machine, [rmw_thread(4096, 2000),
                               rmw_thread(4104, 2000)])
        padded = run(machine, [rmw_thread(4096, 2000),
                               rmw_thread(4096 + 64, 2000)])
        assert shared.seconds > 2 * padded.seconds

    def test_remote_socket_hitm_costlier(self, small_spec):
        m = MulticoreMachine(small_spec)
        # cores 0,1 share a socket; 0,2 do not (4 cores / 2 sockets)
        same = m.run(ProgramTrace([rmw_thread(4096, 1000),
                                   rmw_thread(4104, 1000)]))
        t0 = rmw_thread(4096, 1000)
        idle = make_thread(np.full(1000 * 2, 1 << 21, dtype=np.int64))
        t2 = rmw_thread(4104, 1000)
        cross = m.run(ProgramTrace([t0, idle, t2]))
        assert cross.counts["SNOOP_HITM_REMOTE_SOCKET"] > 0
        assert same.counts["SNOOP_HITM_REMOTE_SOCKET"] == 0


class TestValidation:
    def test_too_many_threads_rejected(self, machine):
        threads = [rmw_thread(4096 + 64 * i, 4) for i in range(5)]
        with pytest.raises(SimulationError):
            run(machine, threads)  # SMALL_SPEC has 4 cores

    def test_normalized_requires_instructions(self, machine):
        r = run(machine, [stream_thread(4096, 10)])
        assert r.normalized("L1D.REPL") > 0

    def test_derived_counts_present(self, machine):
        r = run(machine, [stream_thread(4096, 100)])
        for key in ("BR_INST_RETIRED.ALL_BRANCHES", "UOPS_RETIRED.ANY",
                    "MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM"):
            assert key in r.counts

    def test_meta_propagated(self, machine):
        prog = ProgramTrace([stream_thread(4096, 4)], name="n",
                            meta={"workload": "w"})
        r = machine.run(prog)
        assert r.name == "n"
        assert r.meta["workload"] == "w"

    def test_determinism(self, machine):
        def prog():
            return ProgramTrace([rmw_thread(4096, 200),
                                 rmw_thread(4104, 200)])
        a = machine.run(prog())
        b = machine.run(prog())
        assert a.counts == b.counts
        assert a.seconds == b.seconds
