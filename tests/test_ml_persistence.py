"""Tests for tree serialization (save/load trained models)."""

import json

import numpy as np
import pytest

from repro.errors import DatasetError, NotFittedError
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.ml.persistence import (
    classifier_from_dict,
    classifier_to_dict,
    load_classifier,
    save_classifier,
)


@pytest.fixture
def fitted():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = ["a" if r[0] > 0 else ("b" if r[1] > 0.5 else "c") for r in X]
    clf = C45Classifier()
    clf.fit(Dataset(X, y, ["f0", "f1", "f2"]))
    return clf


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, fitted):
        clone = classifier_from_dict(classifier_to_dict(fitted))
        probe = np.random.default_rng(1).normal(size=(100, 3))
        assert list(clone.predict(probe)) == list(fitted.predict(probe))

    def test_structure_preserved(self, fitted):
        clone = classifier_from_dict(classifier_to_dict(fitted))
        assert clone.n_leaves == fitted.n_leaves
        assert clone.n_nodes == fitted.n_nodes
        assert clone.render() == fitted.render()

    def test_file_round_trip(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_classifier(fitted, path)
        clone = load_classifier(path)
        probe = np.zeros((1, 3))
        assert clone.predict(probe)[0] == fitted.predict(probe)[0]

    def test_file_is_plain_json(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_classifier(fitted, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-c45"
        assert doc["feature_names"] == ["f0", "f1", "f2"]

    def test_params_preserved(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 2))
        y = ["x" if r[0] > 0 else "y" for r in X]
        clf = C45Classifier(cf=0.1, min_leaf=5, prune=False)
        clf.fit(Dataset(X, y, ["a", "b"]))
        clone = classifier_from_dict(classifier_to_dict(clf))
        assert clone.cf == 0.1
        assert clone.min_leaf == 5
        assert clone.prune is False


class TestErrors:
    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            classifier_to_dict(C45Classifier())

    def test_wrong_format_rejected(self):
        with pytest.raises(DatasetError):
            classifier_from_dict({"format": "something-else"})

    def test_newer_version_rejected(self, fitted):
        doc = classifier_to_dict(fitted)
        doc["version"] = 999
        with pytest.raises(DatasetError):
            classifier_from_dict(doc)

    def test_malformed_tree_rejected(self, fitted):
        doc = classifier_to_dict(fitted)
        del doc["tree"]["leaf"]
        with pytest.raises((DatasetError, KeyError)):
            classifier_from_dict(doc)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_classifier(path)


class TestCompiledRegression:
    def test_round_trip_compiles_to_identical_arrays(self, fitted, tmp_path):
        """Persistence must preserve enough structure that the serving
        layer's compiled arrays come out identical (preorder layout is a
        pure function of the tree)."""
        from repro.serve.inference import as_compiled

        path = tmp_path / "model.json"
        save_classifier(fitted, path)
        a = as_compiled(fitted)
        b = as_compiled(load_classifier(path))
        for name in ("feature", "threshold", "left", "right", "leaf"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), name
        assert a.classes == b.classes

    def test_round_trip_batch_predictions_identical(self, fitted):
        clone = classifier_from_dict(classifier_to_dict(fitted))
        probe = np.random.default_rng(9).normal(size=(500, 3))
        assert np.array_equal(clone.predict(probe), fitted.predict(probe))


class TestDetectorIntegration:
    def test_detector_model_portable(self, tmp_path):
        """Train on mini-programs, save, reload into a fresh detector-less
        classifier, and classify a run it never saw."""
        from repro.core.detector import FalseSharingDetector
        from repro.core.lab import Lab
        from repro.core.training import (
            PlanRow, ScreeningReport, TrainingData, collect_plan)
        from repro.core.training import FEATURES
        from repro.pmu.events import TABLE2_EVENTS
        from repro.workloads.base import Mode, RunConfig
        from repro.workloads.registry import get_workload

        lab = Lab(disk_cache=None)
        plan = [
            PlanRow("psums", Mode.GOOD, (2_000,), (3, 6), ("random",), 2),
            PlanRow("psums", Mode.BAD_FS, (2_000,), (3, 6), ("random",), 2),
        ]
        a = collect_plan(lab, plan, "A")
        td = TrainingData(a, [], a, [], ScreeningReport(a, [], {}),
                          ScreeningReport([], [], {}))
        det = FalseSharingDetector(lab).fit(training=td)
        path = tmp_path / "detector.json"
        save_classifier(det.classifier, path)

        clf = load_classifier(path)
        pdot = get_workload("pdot")
        vec = lab.measure(pdot, RunConfig(threads=4, mode="bad-fs",
                                          size=65_536), TABLE2_EVENTS)
        assert clf.predict_one(vec.features(FEATURES)) == "bad-fs"
