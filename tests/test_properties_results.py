"""Property-based tests: run-store append/dedup laws and band safety.

Hypothesis drives the two contracts the CI history leans on: ingest is
*monotone* (run ids only grow, rows are never rewritten) and *idempotent
modulo digest* (re-ingesting any permutation of already-seen payloads
adds nothing), and the MAD band is defined — with ordered, finite
edges — for every non-empty history the gate can encounter.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.results.schema import payload_digest
from repro.results.store import ResultsStore
from repro.results.trend import mad_band

from tests.test_results_store import bench_payload

#: A small value pool so generated sequences actually collide.
payload_values = st.integers(min_value=1, max_value=8).map(
    lambda i: i * 100_000)


@settings(max_examples=30, deadline=None)
@given(st.lists(payload_values, min_size=1, max_size=12))
def test_ingest_is_monotone_and_dedups_on_digest(tmp_path_factory, values):
    path = tmp_path_factory.mktemp("props") / "h.db"
    payloads = [bench_payload(fast=v) for v in values]
    distinct = {payload_digest(p) for p in payloads}
    with ResultsStore(path) as store:
        ids = [store.ingest(p).run_id for p in payloads]
        runs = store.runs()
        # Monotone append: ids of fresh rows strictly increase, and the
        # store holds exactly one row per distinct digest.
        assert [r.run_id for r in runs] == sorted(r.run_id for r in runs)
        assert len(runs) == len(distinct)
        assert {r.digest for r in runs} == distinct
        # Every ingest outcome points at a live row.
        assert set(ids) == {r.run_id for r in runs}
        # Idempotence: re-ingesting every payload in reverse order adds
        # nothing and reports dedup for all of them.
        outcomes = [store.ingest(p) for p in reversed(payloads)]
        assert not any(o.fresh for o in outcomes)
        assert len(store.runs()) == len(distinct)
        # The metric series keeps first-ingest order of distinct values.
        seen: list = []
        for v in values:
            if float(v) not in seen:
                seen.append(float(v))
        assert store.series(
            "drive.psums/bad-fs/t4.fast_accesses_per_s") == seen


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=20,
    ),
    st.floats(min_value=0.0, max_value=0.99),
)
def test_mad_band_is_always_defined_and_ordered(values, max_regression):
    band = mad_band(values, max_regression=max_regression)
    assert math.isfinite(band.lo) and math.isfinite(band.hi)
    assert band.lo <= band.median <= band.hi
    assert band.mad >= 0.0
    # The median itself is always inside its own band.
    assert band.contains(band.median)


@settings(max_examples=25, deadline=None)
@given(st.lists(payload_values, min_size=1, max_size=6))
def test_gate_never_raises_on_any_small_history(tmp_path_factory, values):
    from repro.results.gate import gate_store

    path = tmp_path_factory.mktemp("gate") / "h.db"
    with ResultsStore(path) as store:
        for v in values:
            store.ingest(bench_payload(fast=v))
        report = gate_store(store)
    # Verdicts may go either way; the invariant is no crash and a full
    # row set for the latest run's gatable metrics.
    assert {r.name for r in report.rows} >= {
        "drive.psums/bad-fs/t4.fast_accesses_per_s",
        "routing.coverage",
    }
