"""Fleet supervision: spawn, hot restart, watchdog, end-to-end identity.

These tests boot real worker *processes* (multiprocessing spawn), so the
pool is kept small and module-scoped.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.training import FEATURES
from repro.errors import ServeError
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.ml.persistence import classifier_to_dict
from repro.serve.client import ServeClient
from repro.serve.fleet import FleetThread, load_model_doc
from repro.serve.server import ServerThread

N_FEATURES = len(FEATURES)


def _make_clf():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(200, N_FEATURES))
    y = ["bad-fs" if r[0] > 0 else "good" for r in X]
    return C45Classifier().fit(Dataset(X, y, [e.name for e in FEATURES]))


@pytest.fixture(scope="module")
def clf():
    return _make_clf()


@pytest.fixture(scope="module")
def model_doc(clf):
    return classifier_to_dict(clf)


@pytest.fixture(scope="module")
def fleet(model_doc):
    thread = FleetThread(model_doc, workers=2)
    try:
        host, port = thread.start()
        yield thread, host, port
    finally:
        thread.stop()


def test_load_model_doc_accepts_clf_dict_and_path(clf, model_doc, tmp_path):
    import json

    assert load_model_doc(model_doc) is model_doc
    assert load_model_doc(clf)["tree"] == model_doc["tree"]
    path = tmp_path / "m.json"
    path.write_text(json.dumps(model_doc))
    assert load_model_doc(path)["tree"] == model_doc["tree"]
    with pytest.raises(ServeError):
        load_model_doc(tmp_path / "missing.json")
    with pytest.raises(ServeError):
        load_model_doc(42)


def test_fleet_serves_and_reports_topology(fleet):
    thread, host, port = fleet
    rng = np.random.default_rng(1)
    with ServeClient(host, port) as client:
        labels = client.classify_batch(rng.normal(size=(16, N_FEATURES)),
                                       rid=1, source="boot-check")
        assert len(labels) == 16
        router_stats = client.stats()
    stats = thread.stats()
    assert stats["supervisor"]["alive"] == 2
    assert sorted(router_stats["workers"]) == ["w0", "w1"]
    assert all(w["up"] for w in router_stats["workers"].values())


def test_fleet_bit_identical_to_direct_server(clf, fleet):
    _, host, port = fleet
    rng = np.random.default_rng(2)
    X = rng.normal(size=(128, N_FEATURES))
    with ServeClient(host, port) as client:
        via_fleet = client.classify_batch(X, rid=1, source="identity")
    with ServerThread(clf) as (dhost, dport):
        with ServeClient(dhost, dport) as direct:
            expected = direct.classify_batch(X, rid=1)
    assert via_fleet == expected


def test_hot_restart_preserves_other_shards(clf, fleet):
    """Restarting one worker sheds only its own in-flight work; the other
    shard's stream continues uninterrupted and verdicts stay identical."""
    thread, host, port = fleet
    router = thread.fleet.router
    rng = np.random.default_rng(3)
    X = rng.normal(size=(64, N_FEATURES))
    src_w0 = next(f"a-{i}" for i in range(64)
                  if router.ring.assign(f"a-{i}") == "w0")
    src_w1 = next(f"b-{i}" for i in range(64)
                  if router.ring.assign(f"b-{i}") == "w1")

    with ServerThread(clf) as (dhost, dport):
        with ServeClient(dhost, dport) as direct:
            expected = direct.classify_batch(X, rid=0)

    with ServeClient(host, port, timeout=60.0) as client:
        assert client.classify_batch(X, rid=1, source=src_w0) == expected
        thread.restart_worker("w0")
        # The untouched shard answers throughout; the restarted shard
        # resumes with bit-identical verdicts on the same vectors.
        assert client.classify_batch(X, rid=2, source=src_w1) == expected
        assert client.classify_batch(X, rid=3, source=src_w0) == expected
        stats = client.stats()
    assert stats["workers"]["w0"]["restarts"] >= 1
    assert router.ring.assign(src_w0) == "w0"
    v = stats["vectors"]
    assert v["received"] == (v["completed"] + v["shed"] + v["errors"]
                             + v["inflight"])


def test_watchdog_respawns_crashed_worker(fleet):
    thread, host, port = fleet
    sup = thread.fleet.supervisor
    victim = sup._workers["w1"]
    victim.process.terminate()
    victim.process.join(timeout=10.0)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        # The worker is briefly absent from the pool mid-respawn.
        fresh = sup._workers.get("w1")
        if fresh is not None and fresh.alive() and not sup.dead_workers():
            link = thread.fleet.router._links.get("w1")
            if link is not None and link.up:
                break
        time.sleep(0.1)
    else:
        pytest.fail("watchdog did not respawn the crashed worker")
    rng = np.random.default_rng(4)
    src_w1 = next(f"c-{i}" for i in range(64)
                  if thread.fleet.router.ring.assign(f"c-{i}") == "w1")
    with ServeClient(host, port, timeout=60.0, retries=3) as client:
        labels = client.classify_batch(rng.normal(size=(8, N_FEATURES)),
                                       rid=1, source=src_w1)
    assert len(labels) == 8
    assert sup.restarts >= 1


def test_fleet_rejects_bad_worker_count(model_doc):
    with pytest.raises(ServeError):
        FleetThread(model_doc, workers=0)
