"""Binary trace store: round-trips, corruption handling, streamed drives.

The store (``repro.trace.store``) is the zero-copy transport for traces:
fixed-width little-endian columns behind a versioned JSON header, opened as
read-only memmap views.  These tests pin the format contract — bit-exact
round-trips (including through a simulator drive), hard ``TraceError`` on
any corrupt/truncated/foreign file, and the streamed-merge/streamed-run
equivalences the memmap path relies on.
"""

from __future__ import annotations

import json
import os
import struct

import numpy as np
import pytest

from repro.coherence.machine import MulticoreMachine
from repro.errors import TraceError
from repro.trace import (
    MergedTrace,
    ProgramTrace,
    ThreadTrace,
    interleave,
    interleave_stream,
    open_program,
    open_store,
    read_store,
    save_program,
    write_store,
)
from repro.trace.store import STORE_MAGIC, STORE_VERSION

from tests.conftest import SMALL_SPEC


def _random_program(rng, nthreads=3, max_len=600):
    threads = []
    for t in range(nthreads):
        k = int(rng.integers(0, max_len))
        addrs = rng.integers(0, 1 << 14, size=k, dtype=np.int64)
        writes = rng.random(k) < 0.4
        threads.append(ThreadTrace(addrs, writes,
                                   instr_per_access=2.0 + t,
                                   extra_instructions=10 * t))
    return ProgramTrace(threads, name="rand", meta={"mode": "unit"})


# --------------------------------------------------------------- round-trips


def test_store_round_trips_columns_bitwise(tmp_path, rng):
    path = tmp_path / "cols.rtrc"
    a = rng.integers(0, 1 << 40, size=1000, dtype=np.int64)
    b = rng.integers(0, 2, size=1000).astype(np.uint8)
    digest = write_store(path, [("addr", a), ("is_write", b)],
                         meta={"kind": "unit"})
    st = open_store(path)
    assert st.digest == digest
    assert st.n == 1000
    assert st.meta["kind"] == "unit"
    assert np.array_equal(st["addr"], a)
    assert np.array_equal(st["is_write"], b)
    # memmap views are read-only and zero-copy
    assert not st["addr"].flags.writeable
    rd = read_store(path)
    assert rd["addr"].flags.writeable
    assert np.array_equal(rd["addr"], a)


def test_store_digest_is_content_stable(tmp_path, rng):
    a = rng.integers(0, 1 << 30, size=64, dtype=np.int64)
    d1 = write_store(tmp_path / "x1.rtrc", [("addr", a)], meta={"k": 1})
    d2 = write_store(tmp_path / "x2.rtrc", [("addr", a)], meta={"k": 2})
    d3 = write_store(tmp_path / "x3.rtrc", [("addr", a + 1)], meta={"k": 1})
    assert d1 == d2      # digest covers column bytes, not meta
    assert d1 != d3


def test_program_round_trip_drives_bit_identical(tmp_path, rng):
    prog = _random_program(rng)
    path = tmp_path / "prog.rtrc"
    prog.to_file(path)
    for loader in (ProgramTrace.open_mmap, ProgramTrace.from_file):
        back = loader(path)
        assert back.nthreads == prog.nthreads
        for t0, t1 in zip(prog.threads, back.threads):
            assert np.array_equal(t0.addrs, t1.addrs)
            assert np.array_equal(t0.is_write, t1.is_write)
            assert t0.instr_per_access == t1.instr_per_access
            assert t0.extra_instructions == t1.extra_instructions
        res_a = MulticoreMachine(SMALL_SPEC, fast="auto").run(prog)
        res_b = MulticoreMachine(SMALL_SPEC, fast="auto").run(back)
        assert res_a.counts == res_b.counts
        assert res_a.cycles_per_core == res_b.cycles_per_core


def test_program_store_records_digest_and_kind(tmp_path, rng):
    prog = _random_program(rng, nthreads=2)
    path = tmp_path / "p.rtrc"
    digest = save_program(prog, path)
    back = open_program(path)
    assert back.meta["store_digest"] == digest
    assert back.meta["mode"] == "unit"
    assert back.name == "rand"


def test_thread_round_trip(tmp_path, rng):
    t = ThreadTrace(rng.integers(0, 1 << 20, size=128, dtype=np.int64),
                    rng.random(128) < 0.5, instr_per_access=4.5,
                    extra_instructions=7)
    t.to_file(tmp_path / "t.rtrc")
    back = ThreadTrace.open_mmap(tmp_path / "t.rtrc")
    assert np.array_equal(back.addrs, t.addrs)
    assert np.array_equal(back.is_write, t.is_write)
    assert back.instr_per_access == 4.5
    assert back.extra_instructions == 7


def test_merged_round_trip(tmp_path, rng):
    prog = _random_program(rng)
    merged = interleave(prog)
    merged.to_file(tmp_path / "m.rtrc")
    back = MergedTrace.open_mmap(tmp_path / "m.rtrc")
    assert np.array_equal(back.core, merged.core)
    assert np.array_equal(back.addr, merged.addr)
    assert np.array_equal(back.is_write, merged.is_write)


def test_wrong_kind_is_a_trace_error(tmp_path, rng):
    prog = _random_program(rng, nthreads=2)
    path = tmp_path / "p.rtrc"
    prog.to_file(path)
    with pytest.raises(TraceError, match="kind"):
        ThreadTrace.open_mmap(path)
    with pytest.raises(TraceError, match="kind"):
        MergedTrace.open_mmap(path)


# ------------------------------------------------------- zero-copy post_init


def test_post_init_does_not_copy_contiguous_columns(tmp_path, rng):
    t = ThreadTrace(rng.integers(0, 1 << 20, size=64, dtype=np.int64),
                    rng.random(64) < 0.5)
    t.to_file(tmp_path / "t.rtrc")
    st = open_store(tmp_path / "t.rtrc")
    addr = st["addr"]
    wr = st["is_write"]
    back = ThreadTrace(addr, wr)
    # same memory, not a private copy — GB-scale traces stay page-shared
    assert back.addrs is addr
    same = back.is_write if back.is_write.base is None else back.is_write.base
    assert same is wr or same is wr.base
    # and an already-contiguous in-memory array passes through too
    a2 = np.arange(16, dtype=np.int64)
    w2 = np.zeros(16, dtype=bool)
    t2 = ThreadTrace(a2, w2)
    assert t2.addrs is a2
    assert t2.is_write is w2


def test_post_init_still_validates(rng):
    with pytest.raises(TraceError):
        ThreadTrace(np.array([-1], dtype=np.int64), np.array([False]))
    with pytest.raises(TraceError):
        ThreadTrace(np.arange(4, dtype=np.int64), np.zeros(3, dtype=bool))


# ----------------------------------------------------------- corrupt inputs


def _valid_store_bytes(tmp_path, rng):
    path = tmp_path / "ok.rtrc"
    write_store(path, [
        ("addr", rng.integers(0, 1 << 20, size=32, dtype=np.int64)),
        ("is_write", rng.integers(0, 2, size=32).astype(np.uint8)),
    ], meta={"kind": "unit"})
    return path.read_bytes()


@pytest.mark.parametrize("mangle", [
    "empty", "short-magic", "bad-magic", "truncated-header",
    "mangled-json", "truncated-columns", "header-overrun",
])
def test_corrupt_stores_raise_trace_error(tmp_path, rng, mangle):
    raw = _valid_store_bytes(tmp_path, rng)
    if mangle == "empty":
        raw = b""
    elif mangle == "short-magic":
        raw = raw[:3]
    elif mangle == "bad-magic":
        raw = b"XXXX" + raw[4:]
    elif mangle == "truncated-header":
        raw = raw[:10]
    elif mangle == "mangled-json":
        raw = raw[:8] + b"X" + raw[9:]
    elif mangle == "truncated-columns":
        raw = raw[:-16]
    elif mangle == "header-overrun":
        raw = raw[:4] + struct.pack("<I", 1 << 20) + raw[8:]
    bad = tmp_path / f"{mangle}.rtrc"
    bad.write_bytes(raw)
    with pytest.raises(TraceError):
        open_store(bad)
    with pytest.raises(TraceError):
        read_store(bad)


def test_wrong_version_is_a_trace_error(tmp_path, rng):
    raw = _valid_store_bytes(tmp_path, rng)
    (hlen,) = struct.unpack_from("<I", raw, 4)
    header = json.loads(raw[8:8 + hlen].decode("utf-8"))
    header["version"] = STORE_VERSION + 41
    enc = json.dumps(header, sort_keys=True).encode("utf-8")
    bad = tmp_path / "ver.rtrc"
    # keep the payload offsets stable by padding the header back to size
    enc = enc.ljust(hlen, b" ")
    bad.write_bytes(STORE_MAGIC + struct.pack("<I", len(enc)) + enc
                    + raw[8 + hlen:])
    with pytest.raises(TraceError, match="version"):
        open_store(bad)


def test_missing_file_and_missing_column(tmp_path, rng):
    with pytest.raises(TraceError):
        open_store(tmp_path / "nope.rtrc")
    path = tmp_path / "one.rtrc"
    write_store(path, [("addr", np.arange(4, dtype=np.int64))], meta={})
    st = open_store(path)
    with pytest.raises(TraceError, match="column"):
        st["is_write"]


# -------------------------------------------------------- streamed merging


@pytest.mark.parametrize("max_accesses", [64, 333, 1 << 20])
def test_interleave_stream_matches_monolithic(tmp_path, rng, max_accesses):
    prog = _random_program(rng)
    mono = interleave(prog)
    pieces = list(interleave_stream(prog, max_accesses=max_accesses))
    assert sum(len(p) for p in pieces) == len(mono)
    assert np.array_equal(np.concatenate([p.core for p in pieces]), mono.core)
    assert np.array_equal(np.concatenate([p.addr for p in pieces]), mono.addr)
    assert np.array_equal(
        np.concatenate([p.is_write for p in pieces]), mono.is_write)


def test_interleave_stream_single_thread(rng):
    prog = ProgramTrace([ThreadTrace(
        rng.integers(0, 1 << 12, size=500, dtype=np.int64),
        rng.random(500) < 0.3)])
    mono = interleave(prog)
    pieces = list(interleave_stream(prog, max_accesses=128))
    assert np.array_equal(np.concatenate([p.addr for p in pieces]), mono.addr)


def test_run_stream_is_bit_identical_to_run(tmp_path, rng):
    prog = _random_program(rng, nthreads=4, max_len=2000)
    prog.to_file(tmp_path / "p.rtrc")
    mapped = ProgramTrace.open_mmap(tmp_path / "p.rtrc")
    ref = MulticoreMachine(SMALL_SPEC, fast="auto").run(prog)
    for max_accesses in (256, 4096):
        res = MulticoreMachine(SMALL_SPEC, fast="auto").run_stream(
            mapped, max_accesses=max_accesses)
        assert res.counts == ref.counts
        assert res.cycles_per_core == ref.cycles_per_core
        assert res.instructions_per_core == ref.instructions_per_core
        assert res.seconds == ref.seconds
        assert res.hitm_samples == ref.hitm_samples


def test_run_stream_populates_path_accesses(rng):
    prog = _random_program(rng, nthreads=2, max_len=3000)
    m = MulticoreMachine(SMALL_SPEC, fast="auto")
    m.run_stream(prog, max_accesses=512)
    assert sum(m.path_accesses.values()) == prog.total_accesses
    assert set(m.path_accesses) == set(m.path_counts)


# ------------------------------------------------------- store consumers


def test_lab_simulate_store_keys_on_digest(tmp_path, rng):
    from repro.core.lab import Lab

    prog = _random_program(rng, nthreads=2, max_len=800)
    p1 = tmp_path / "a" / "trace.rtrc"
    p2 = tmp_path / "b" / "renamed.rtrc"
    prog.to_file(p1)
    prog.to_file(p2)
    lab = Lab(spec=SMALL_SPEC, disk_cache=None)
    res = lab.simulate_store(p1)
    assert lab.cache_size() == 1
    # A renamed copy with identical bytes is the same cache entry.
    assert lab.simulate_store(p2) is res
    assert lab.cache_size() == 1
    # And both streaming and monolithic drives agree with a plain run.
    direct = lab.machine.run(prog, chunk=lab.chunk)
    assert res.counts == direct.counts
    assert res.cycles_per_core == direct.cycles_per_core
    mono = Lab(spec=SMALL_SPEC, disk_cache=None).simulate_store(
        p1, stream=False)
    assert mono.counts == res.counts


def test_engine_simulate_stores_reports_worker_rss(tmp_path, rng):
    from repro.coherence.timing import DEFAULT_LATENCY
    from repro.parallel import ExecutionEngine

    prog = _random_program(rng, nthreads=2, max_len=800)
    path = tmp_path / "p.rtrc"
    prog.to_file(path)
    engine = ExecutionEngine(jobs=1)  # serial: same code path, no forks
    pairs = engine.simulate_stores([path, path], SMALL_SPEC,
                                   latency=DEFAULT_LATENCY)
    assert len(pairs) == 2
    direct = MulticoreMachine(SMALL_SPEC, fast=True).run(prog)
    for result, rss_kib in pairs:
        assert result.counts == direct.counts
        assert isinstance(rss_kib, int) and rss_kib > 0


def test_shadow_run_store_matches_in_memory(tmp_path, rng):
    from repro.baselines.shadow import ShadowMemoryDetector

    prog = _random_program(rng, nthreads=3, max_len=800)
    path = tmp_path / "p.rtrc"
    prog.to_file(path)
    det = ShadowMemoryDetector()
    mem = det.run(prog)
    st = det.run_store(path)
    assert (st.fs_misses, st.ts_misses, st.cold_misses, st.instructions) == \
        (mem.fs_misses, mem.ts_misses, mem.cold_misses, mem.instructions)


def test_context_shadow_report_store_caches_by_digest(tmp_path, rng):
    from repro.core.lab import Lab
    from repro.experiments.context import PipelineContext

    prog = _random_program(rng, nthreads=2, max_len=800)
    p1 = tmp_path / "one.rtrc"
    p2 = tmp_path / "two.rtrc"
    prog.to_file(p1)
    prog.to_file(p2)
    ctx = PipelineContext(lab=Lab(spec=SMALL_SPEC, disk_cache=None))
    rep1 = ctx.shadow_report_store(p1)
    assert len(ctx._shadow_cache) == 1
    rep2 = ctx.shadow_report_store(p2)  # identical bytes: cache hit
    assert len(ctx._shadow_cache) == 1
    assert (rep1.fs_misses, rep1.ts_misses, rep1.cold_misses,
            rep1.instructions) == (rep2.fs_misses, rep2.ts_misses,
                                   rep2.cold_misses, rep2.instructions)
    assert rep2.nthreads == prog.nthreads
    direct = ctx.shadow.run(prog)
    assert rep1.fs_misses == direct.fs_misses
    assert rep1.instructions == direct.instructions


@pytest.mark.skipif(not os.environ.get("REPRO_BIG_TRACE"),
                    reason="set REPRO_BIG_TRACE=1 to run the 2GB drive")
def test_two_gigabyte_trace_streams_end_to_end(tmp_path):
    # ~2.1 GB on disk: 2 threads x 120M accesses x (8B addr + 1B write).
    # The assertion of interest is completion under memmap streaming —
    # the merged order is never materialized, only DEFAULT_SEGMENT rows.
    per = 120_000_000
    rng = np.random.default_rng(7)
    threads = []
    for t in range(2):
        addrs = (np.arange(per, dtype=np.int64) % (1 << 12)) << 6
        writes = np.zeros(per, dtype=bool)
        writes[t::7] = True
        threads.append(ThreadTrace(addrs, writes))
    prog = ProgramTrace(threads, name="big")
    path = tmp_path / "big.rtrc"
    prog.to_file(path)
    assert path.stat().st_size > 2 * (1 << 30)
    del prog, threads, addrs, writes
    mapped = ProgramTrace.open_mmap(path)
    res = MulticoreMachine(SMALL_SPEC, fast="auto").run_stream(mapped)
    assert res.counts["INST_RETIRED.ANY"] > 0
