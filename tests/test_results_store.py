"""``repro.results``: store schema, ingest, dedup and corruption."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ResultsError
from repro.results.schema import (
    STORE_SCHEMA,
    classify_payload,
    extract_metrics,
    payload_digest,
)
from repro.results.store import EXPORT_FORMAT, ResultsStore

REPO = Path(__file__).parent.parent


def bench_payload(fast=1_000_000, speedup=2.0, floor=None, coverage=0.97):
    row = {"accesses": 1000, "fast_accesses_per_s": fast, "speedup": speedup}
    if floor is not None:
        row["speedup_floor"] = floor
    return {
        "bench": "simulator-throughput",
        "drive": {"psums/bad-fs/t4": row},
        "routing": {"floor": 0.95, "coverage": coverage},
        "e2e": {},
    }


def serve_payload(rps=23_000.0, shed=0):
    return {
        "bench": "serve-throughput",
        "loadgen": {
            "throughput_rps": rps,
            "latency_ms": {"p50": 20.0, "p95": 30.0, "p99": 34.0},
            "shed": shed,
            "errors": 0,
        },
        "predict_batch_vectors_per_s": 16_000_000,
    }


def scale_payload(vps=150_000.0, shed=0, ceiling=0, workers=2):
    return {
        "bench": "serve-scale",
        "cpus": 4,
        "affinity_cpus": 4,
        "scale": {
            "throughput_vps": vps,
            "latency_ms": {"p50": 10.0, "p95": 40.0, "p99": 80.0},
            "completed": 100_000 - shed,
            "shed": shed,
            "shed_ceiling": ceiling,
            "errors": 0,
            "workers": workers,
            "connections": 4,
            "batch": 256,
            "speedup_vs_single": 6.5,
        },
    }


# ------------------------------------------------------------- schema


def test_classify_every_committed_artifact_kind():
    sim = json.loads((REPO / "BENCH_simulator.json").read_text())
    srv = json.loads((REPO / "BENCH_serve.json").read_text())
    assert classify_payload(sim) == "bench"
    assert classify_payload(srv) == "serve"
    assert classify_payload({"schema": "repro-manifest/1",
                             "counters": {"x": 1}}) == "manifest"
    assert classify_payload({"report": "crosscheck",
                             "pairwise_fs_agreement": {}}) == "crosscheck"
    assert classify_payload({"report": "predict-validation"}) == "validate"
    assert classify_payload({"pairwise_fs_agreement": {"a-b": 1.0},
                             "disagreements": []}) == "crosscheck"
    assert classify_payload({"line_precision": 0.9}) == "validate"


def test_classify_rejects_unknown_payloads():
    with pytest.raises(ResultsError):
        classify_payload({"totally": "unrelated"})
    with pytest.raises(ResultsError):
        classify_payload([1, 2, 3])
    with pytest.raises(ResultsError):
        classify_payload({})


def test_extract_bench_metrics_carry_floors():
    metrics = {m.name: m for m in
               extract_metrics("bench", bench_payload(floor=1.3))}
    assert metrics["drive.psums/bad-fs/t4.speedup"].bound == 1.3
    assert metrics["routing.coverage"].bound == 0.95
    assert metrics["drive.psums/bad-fs/t4.fast_accesses_per_s"].direction \
        == "higher"


def test_extract_serve_metrics_shed_has_zero_ceiling():
    metrics = {m.name: m for m in
               extract_metrics("serve", serve_payload())}
    assert metrics["loadgen.shed"].direction == "lower"
    assert metrics["loadgen.shed"].bound == 0.0
    assert metrics["loadgen.latency_ms.p99"].direction == "lower"


def test_classify_serve_scale_payload():
    assert classify_payload(scale_payload()) == "serve-scale"
    # An embedded scale section on a full serve doc stays kind "serve".
    merged = {**serve_payload(), **{"scale": scale_payload()["scale"]}}
    assert classify_payload(merged) == "serve"


def test_extract_scale_metrics_carry_shed_ceiling():
    metrics = {m.name: m for m in
               extract_metrics("serve-scale", scale_payload(ceiling=100))}
    assert metrics["scale.throughput_vps"].direction == "higher"
    assert metrics["scale.shed"].bound == 100.0
    assert metrics["scale.errors"].bound == 0.0
    assert metrics["scale.latency_ms.p99"].direction == "lower"
    assert metrics["scale.speedup_vs_single"].direction == "higher"
    # Host/topology provenance is trended (info) for cross-host sanity.
    assert metrics["scale.workers"].direction == "info"
    assert metrics["host.cpus"].direction == "info"


def test_extract_scale_shed_ceiling_defaults_to_zero():
    doc = scale_payload()
    del doc["scale"]["shed_ceiling"]
    metrics = {m.name: m for m in extract_metrics("serve-scale", doc)}
    assert metrics["scale.shed"].bound == 0.0


def test_extract_serve_with_embedded_scale_section():
    merged = {**serve_payload(), "scale": scale_payload()["scale"],
              "cpus": 4}
    metrics = {m.name: m for m in extract_metrics("serve", merged)}
    assert "loadgen.throughput_rps" in metrics
    assert "scale.throughput_vps" in metrics
    assert metrics["host.cpus"].value == 4.0


def test_store_ingests_serve_scale_kind(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        outcome = store.ingest(scale_payload(), source="scale.json")
        assert outcome.kind == "serve-scale"
        assert store.series("scale.throughput_vps",
                            kind="serve-scale") == [150_000.0]


def test_extract_refuses_empty_payload():
    with pytest.raises(ResultsError):
        extract_metrics("bench", {"bench": "simulator-throughput",
                                  "drive": {}})
    with pytest.raises(ResultsError):
        extract_metrics("nonsense", {})


def test_digest_is_formatting_invariant():
    a = {"bench": "simulator-throughput", "drive": {"x": {"speedup": 1.0}}}
    b = json.loads(json.dumps(a, indent=4, sort_keys=True))
    assert payload_digest(a) == payload_digest(b)
    assert payload_digest(a) != payload_digest(bench_payload())


# -------------------------------------------------------------- store


def test_store_roundtrip_and_dedup(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        one = store.ingest(bench_payload(), source="a.json")
        again = store.ingest(bench_payload(), source="b.json")
        other = store.ingest(bench_payload(fast=2_000_000))
        assert one.fresh and not again.fresh and other.fresh
        assert again.run_id == one.run_id
        runs = store.runs()
        assert [r.run_id for r in runs] == [one.run_id, other.run_id]
        assert runs[0].kind == "bench" and runs[0].source == "a.json"
        assert store.payload(one.run_id)["bench"] == "simulator-throughput"
        assert store.series("drive.psums/bad-fs/t4.fast_accesses_per_s") \
            == [1_000_000.0, 2_000_000.0]


def test_store_persists_across_reopen(tmp_path):
    path = tmp_path / "h.db"
    with ResultsStore(path) as store:
        store.ingest(bench_payload())
    with ResultsStore(path) as store:
        assert len(store.runs()) == 1
        assert store.kinds() == ["bench"]


def test_store_mixed_kinds_are_separated(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        store.ingest(bench_payload())
        store.ingest(serve_payload())
        assert store.kinds() == ["bench", "serve"]
        assert len(store.runs(kind="serve")) == 1
        assert store.latest_run("serve").kind == "serve"
        assert store.latest_run("manifest") is None


def test_store_manifest_ingest_uses_payload_provenance(tmp_path):
    doc = {"schema": "repro-manifest/1", "created_unix": 1_700_000_000.0,
           "git": {"sha": "cafebabe" * 5, "dirty": False},
           "counters": {"sim.accesses": 123.0}}
    with ResultsStore(tmp_path / "h.db") as store:
        outcome = store.ingest(doc)
        run = store.runs()[0]
        assert outcome.kind == "manifest"
        assert run.created_unix == 1_700_000_000.0
        assert run.git_sha.startswith("cafebabe")
        # Manifest metrics are informational: trended, never gated.
        assert all(m.direction == "info"
                   for m in store.metrics_for(run.run_id))


def test_store_max_bound_never_weakens(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        store.ingest(bench_payload(floor=1.3))
        # A later payload that drops its floor must not relax the gate.
        store.ingest(bench_payload(fast=999_999, floor=None))
        assert store.max_bound("drive.psums/bad-fs/t4.speedup",
                               "higher") == 1.3
        # ...and a stricter floor wins over a looser one.
        store.ingest(bench_payload(fast=999_998, floor=1.5))
        assert store.max_bound("drive.psums/bad-fs/t4.speedup",
                               "higher") == 1.5


def test_corrupt_store_raises_results_error(tmp_path):
    path = tmp_path / "corrupt.db"
    path.write_bytes(b"this is not a sqlite database, not even close\x00\x01")
    with pytest.raises(ResultsError):
        ResultsStore(path)


def test_foreign_sqlite_database_raises_results_error(tmp_path):
    import sqlite3

    path = tmp_path / "foreign.db"
    db = sqlite3.connect(str(path))
    db.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
    db.execute("INSERT INTO meta VALUES ('schema', 'someone-elses/9')")
    db.commit()
    db.close()
    with pytest.raises(ResultsError) as err:
        ResultsStore(path)
    assert STORE_SCHEMA in str(err.value)


def test_store_refuses_unrecognized_payload(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        with pytest.raises(ResultsError):
            store.ingest({"mystery": True})
        assert store.runs() == []  # nothing half-ingested


def test_export_columnar_roundtrip(tmp_path):
    with ResultsStore(tmp_path / "h.db") as store:
        store.ingest(bench_payload())
        store.ingest(serve_payload())
        out = store.export_columnar(tmp_path / "export.json")
    doc = json.loads(out.read_text())
    assert doc["format"] == EXPORT_FORMAT
    assert doc["runs"]["kind"] == ["bench", "serve"]
    cols = doc["metrics"]
    n = len(cols["name"])
    # Column-major: every column has one entry per metric row.
    assert n > 0
    assert all(len(cols[c]) == n
               for c in ("run_id", "value", "unit", "direction", "bound"))
    assert "loadgen.throughput_rps" in cols["name"]
