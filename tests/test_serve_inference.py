"""Tests for compiled-tree inference (repro.serve.inference).

The central claim: ``CompiledTree.predict_batch`` is bit-identical to the
recursive walk of :class:`~repro.ml.tree_model.TreeNode` — same labels,
same str objects, on everything from hand-built trees to randomly
generated ones, including rows landing exactly on split thresholds and
rows with NaN features.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError, NotFittedError
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.ml.tree_model import TreeModel, TreeNode
from repro.serve.inference import CompiledTree, as_compiled


def _recursive(root: TreeNode, X: np.ndarray) -> np.ndarray:
    return np.array([root.predict_one(row) for row in np.atleast_2d(X)],
                    dtype=object)


@pytest.fixture
def fitted():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(300, 5))
    y = np.where(X[:, 1] + 0.5 * X[:, 3] > 0.1, "bad-fs",
                 np.where(X[:, 0] < -0.4, "bad-ma", "good"))
    return C45Classifier().fit(
        Dataset(X, list(y), [f"f{i}" for i in range(5)])
    )


class TestLayout:
    def test_single_leaf(self):
        ct = CompiledTree.from_tree(TreeNode(label="good"))
        assert ct.n_nodes == 1 and ct.n_leaves == 1
        assert ct.n_features == 0
        assert list(ct.predict_batch(np.zeros((3, 4)))) == ["good"] * 3

    def test_preorder_children_follow_parent(self, fitted):
        ct = as_compiled(fitted)
        internal = np.flatnonzero(ct.feature >= 0)
        # Preorder: the left child is always the next node.
        assert np.array_equal(ct.left[internal], internal + 1)
        assert (ct.right[internal] > ct.left[internal]).all()

    def test_missing_child_rejected(self):
        node = TreeNode(feature=0, threshold=0.0,
                        left=TreeNode(label="a"), right=None)
        with pytest.raises(DatasetError):
            CompiledTree.from_tree(node)

    def test_classes_fix_label_index_space(self):
        root = TreeNode(feature=0, threshold=0.0,
                        left=TreeNode(label="b"), right=TreeNode(label="a"))
        ct = CompiledTree.from_tree(root, classes=["a", "b", "c"])
        assert ct.classes == ("a", "b", "c")
        # Unlisted labels are appended, not rejected.
        ct2 = CompiledTree.from_tree(root, classes=["a"])
        assert ct2.classes == ("a", "b")

    def test_to_dict_round_trips_arrays(self, fitted):
        ct = as_compiled(fitted)
        d = ct.to_dict()
        assert d["feature"] == ct.feature.tolist()
        assert d["classes"] == list(ct.classes)
        assert len(d["threshold"]) == ct.n_nodes


class TestEquivalence:
    def test_matches_recursive_on_random_batch(self, fitted, rng):
        P = rng.normal(size=(2000, 5))
        assert np.array_equal(as_compiled(fitted).predict_batch(P),
                              _recursive(fitted.root_, P))

    def test_classifier_predict_routes_through_compiled(self, fitted, rng):
        P = rng.normal(size=(500, 5))
        got = fitted.predict(P)
        assert got.dtype == object
        assert np.array_equal(got, _recursive(fitted.root_, P))

    def test_treenode_batch_predict_parity(self, fitted, rng):
        P = rng.normal(size=(200, 5))
        assert np.array_equal(fitted.root_.predict(P),
                              fitted.predict(P))

    def test_tree_model_alias(self):
        assert TreeModel is TreeNode

    def test_exact_threshold_goes_left(self, fitted):
        ct = as_compiled(fitted)
        internal = np.flatnonzero(ct.feature >= 0)
        Q = np.zeros((internal.size, 5))
        for i, nidx in enumerate(internal):
            Q[i, ct.feature[nidx]] = ct.threshold[nidx]
        assert np.array_equal(ct.predict_batch(Q),
                              _recursive(fitted.root_, Q))

    def test_nan_takes_right_branch(self, fitted, rng):
        P = rng.normal(size=(300, 5))
        P[::3, :] = np.nan
        assert np.array_equal(as_compiled(fitted).predict_batch(P),
                              _recursive(fitted.root_, P))

    def test_same_string_objects_as_recursive(self, fitted):
        P = np.zeros((1, 5))
        got = as_compiled(fitted).predict_batch(P)[0]
        rec = _recursive(fitted.root_, P)[0]
        assert got is rec  # identical interned label objects

    def test_verify_helper(self, fitted, rng):
        P = rng.normal(size=(50, 5))
        assert as_compiled(fitted).verify(fitted.root_, P)

    def test_compiled_cache_invalidates_on_refit(self, fitted, rng):
        first = fitted.compiled
        assert fitted.compiled is first  # cached while root_ unchanged
        X = rng.normal(size=(80, 5))
        y = ["p" if r[0] > 0 else "q" for r in X]
        fitted.fit(Dataset(X, y, [f"f{i}" for i in range(5)]))
        assert fitted.compiled is not first


class TestCoercion:
    def test_as_compiled_identity(self, fitted):
        ct = as_compiled(fitted)
        assert as_compiled(ct) is ct

    def test_as_compiled_from_path(self, fitted, tmp_path):
        from repro.ml.persistence import save_classifier

        path = tmp_path / "m.json"
        save_classifier(fitted, path)
        ct = as_compiled(str(path))
        assert ct.n_nodes == as_compiled(fitted).n_nodes

    def test_as_compiled_rejects_junk(self):
        with pytest.raises(DatasetError):
            as_compiled(42)

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            as_compiled(C45Classifier())
        with pytest.raises(NotFittedError):
            _ = C45Classifier().compiled


class TestShapes:
    def test_1d_input_promoted(self, fitted):
        out = as_compiled(fitted).predict_batch(np.zeros(5))
        assert out.shape == (1,)

    def test_3d_rejected(self, fitted):
        with pytest.raises(DatasetError):
            as_compiled(fitted).predict_batch(np.zeros((2, 2, 5)))

    def test_too_narrow_rejected(self, fitted):
        ct = as_compiled(fitted)
        if ct.n_features > 0:
            with pytest.raises(DatasetError):
                ct.predict_batch(np.zeros((3, ct.n_features - 1)))


# ---------------------------------------------------------------- property


@st.composite
def random_trees(draw, n_features=4, max_depth=5):
    """A random well-formed decision tree over ``n_features`` features."""
    labels = ["good", "bad-fs", "bad-ma"]

    def build(depth):
        if depth >= max_depth or draw(st.booleans()):
            return TreeNode(label=draw(st.sampled_from(labels)))
        return TreeNode(
            feature=draw(st.integers(0, n_features - 1)),
            threshold=draw(st.floats(-2.0, 2.0)),
            left=build(depth + 1),
            right=build(depth + 1),
        )

    return build(0)


class TestPropertyEquivalence:
    @given(tree=random_trees(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_tree_random_batch(self, tree, data):
        n = data.draw(st.integers(1, 40))
        rows = data.draw(
            st.lists(
                st.lists(st.floats(-3.0, 3.0), min_size=4, max_size=4),
                min_size=n, max_size=n,
            )
        )
        X = np.asarray(rows, dtype=float)
        ct = CompiledTree.from_tree(tree)
        assert np.array_equal(ct.predict_batch(X), _recursive(tree, X))

    @given(tree=random_trees())
    @settings(max_examples=40, deadline=None)
    def test_threshold_probes(self, tree):
        ct = CompiledTree.from_tree(tree)
        internal = np.flatnonzero(ct.feature >= 0)
        if internal.size == 0:
            return
        X = np.zeros((internal.size, 4))
        for i, nidx in enumerate(internal):
            X[i, ct.feature[nidx]] = ct.threshold[nidx]
        assert np.array_equal(ct.predict_batch(X), _recursive(tree, X))
