"""Tests for Dataset and Instance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError
from repro.ml.dataset import Dataset, Instance


def toy(n=30, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = ["a" if i % 3 else "b" for i in range(n)]
    return Dataset(X, y, [f"f{i}" for i in range(d)])


class TestInstance:
    def test_basic(self):
        inst = Instance(np.array([1.0, 2.0]), "good")
        assert inst.features.shape == (1, 2)[1:] or inst.features.shape == (2,)

    def test_rejects_2d(self):
        with pytest.raises(DatasetError):
            Instance(np.zeros((2, 2)), "good")

    def test_rejects_empty_label(self):
        with pytest.raises(DatasetError):
            Instance(np.zeros(2), "")


class TestDataset:
    def test_shapes_validated(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((3, 2)), ["a"] * 2, ["x", "y"])
        with pytest.raises(DatasetError):
            Dataset(np.zeros((3, 2)), ["a"] * 3, ["x"])
        with pytest.raises(DatasetError):
            Dataset(np.zeros(3), ["a"] * 3, ["x"])

    def test_nonfinite_rejected(self):
        X = np.array([[np.nan]])
        with pytest.raises(DatasetError):
            Dataset(X, ["a"], ["x"])

    def test_classes_first_appearance_order(self):
        ds = Dataset(np.zeros((3, 1)), ["z", "a", "z"], ["x"])
        assert ds.classes == ["z", "a"]

    def test_class_counts(self):
        assert toy().class_counts() == {"b": 10, "a": 20}

    def test_subset_by_indices(self):
        ds = toy()
        sub = ds.subset([0, 3, 6])
        assert len(sub) == 3
        assert (sub.X[0] == ds.X[0]).all()

    def test_subset_by_mask(self):
        ds = toy()
        mask = ds.y == "a"
        sub = ds.subset(mask)
        assert len(sub) == 20
        assert all(lab == "a" for lab in sub.y)

    def test_select_features(self):
        ds = toy()
        sub = ds.select_features(["f2", "f0"])
        assert sub.feature_names == ["f2", "f0"]
        assert (sub.X[:, 0] == ds.X[:, 2]).all()

    def test_select_unknown_feature_rejected(self):
        with pytest.raises(DatasetError):
            toy().select_features(["nope"])

    def test_concat(self):
        a, b = toy(10), toy(5, seed=1)
        c = a.concat(b)
        assert len(c) == 15

    def test_concat_mismatched_features_rejected(self):
        a = toy(5, d=2)
        b = toy(5, d=3)
        with pytest.raises(DatasetError):
            a.concat(b)

    def test_from_instances(self):
        insts = [Instance(np.array([1.0, 2.0]), "g", {"i": i})
                 for i in range(4)]
        ds = Dataset.from_instances(insts, ["a", "b"])
        assert len(ds) == 4
        assert ds.meta[2]["i"] == 2

    def test_from_empty_instances(self):
        ds = Dataset.from_instances([], ["a"])
        assert len(ds) == 0


class TestStratifiedFolds:
    def test_partition_property(self):
        ds = toy(40)
        seen = []
        for train, test in ds.stratified_folds(k=5):
            assert len(train) + len(test) == len(ds)
            seen.append(len(test))
        assert sum(seen) == len(ds)

    def test_stratification(self):
        ds = toy(60)
        for train, test in ds.stratified_folds(k=5):
            frac = (test.y == "a").mean()
            assert 0.5 < frac < 0.85  # population fraction is 2/3

    def test_deterministic_by_seed(self):
        ds = toy(40)
        a = [len(t) for _, t in ds.stratified_folds(k=4, seed=7)]
        b = [len(t) for _, t in ds.stratified_folds(k=4, seed=7)]
        assert a == b

    def test_too_few_rows_rejected(self):
        with pytest.raises(DatasetError):
            list(toy(3).stratified_folds(k=5))

    def test_k_below_two_rejected(self):
        with pytest.raises(DatasetError):
            list(toy().stratified_folds(k=1))

    @settings(max_examples=10)
    @given(st.integers(2, 8))
    def test_every_row_tested_exactly_once(self, k):
        ds = toy(50)
        tested = np.zeros(50, dtype=int)
        # tag rows through meta
        ds = Dataset(ds.X, ds.y, ds.feature_names,
                     [{"row": i} for i in range(50)])
        for _, test in ds.stratified_folds(k=k):
            for m in test.meta:
                tested[m["row"]] += 1
        assert (tested == 1).all()
