"""Integrity checks for the example scripts.

Full example runs need the trained pipeline (exercised by the benchmark
harness); here we verify every script parses, imports, and exposes a main()
— the cheap regressions that break examples silently.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
EXAMPLES = [p for p in EXAMPLES if p.name != "__init__.py"]


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} needs a docstring"

    def test_defines_main_with_guard(self, path):
        src = path.read_text()
        assert "def main(" in src
        assert '__name__ == "__main__"' in src or \
            "__name__ == '__main__'" in src

    def test_imports_resolve(self, path, monkeypatch):
        # import the module (does not execute main() thanks to the guard)
        monkeypatch.syspath_prepend(str(path.parent))
        spec = importlib.util.spec_from_file_location(
            f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
        finally:
            sys.modules.pop(spec.name, None)
        assert callable(getattr(module, "main"))


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5
