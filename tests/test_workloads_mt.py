"""Tests for the multi-threaded mini-programs."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.memory.layout import line_of
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload, mt_miniprograms

ALL_MT = ("psums", "padding", "false1", "psumv", "pdot", "count",
          "pmatmult", "pmatcompare")


def cfg(mode="good", threads=4, size=None, name="psums", pattern="random"):
    w = get_workload(name)
    return w, RunConfig(threads=threads, mode=mode,
                        size=size or w.train_sizes[0], pattern=pattern)


class TestRegistry:
    def test_all_eight_registered(self):
        assert {w.name for w in mt_miniprograms()} == set(ALL_MT)

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("bogus")


class TestTraceShape:
    @pytest.mark.parametrize("name", ALL_MT)
    def test_one_trace_per_thread(self, name):
        w, c = cfg(name=name, threads=3)
        tr = w.trace(c)
        assert tr.nthreads == 3
        for t in tr.threads:
            assert t.n_accesses > 0

    @pytest.mark.parametrize("name", ALL_MT)
    def test_meta_fields(self, name):
        w, c = cfg(name=name, threads=3)
        tr = w.trace(c)
        assert tr.meta["workload"] == name
        assert tr.meta["mode"] == "good"
        assert tr.meta["threads"] == 3

    @pytest.mark.parametrize("name", ALL_MT)
    def test_deterministic(self, name):
        w, c = cfg(name=name, threads=3)
        a, b = w.trace(c), w.trace(c)
        for ta, tb in zip(a.threads, b.threads):
            assert (ta.addrs == tb.addrs).all()
            assert (ta.is_write == tb.is_write).all()

    @pytest.mark.parametrize("name", ALL_MT)
    def test_rep_does_not_change_computation(self, name):
        w, c = cfg(name=name, threads=3)
        a = w.trace(c)
        b = w.trace(c.with_(rep=5))
        for ta, tb in zip(a.threads, b.threads):
            assert (ta.addrs == tb.addrs).all()


class TestModeSemantics:
    @pytest.mark.parametrize("name", ALL_MT)
    def test_same_computation_across_modes(self, name):
        """good and bad-fs traces have identical access & instruction counts
        (placement differs, work does not)."""
        w = get_workload(name)
        size = w.train_sizes[0]
        good = w.trace(RunConfig(threads=4, mode="good", size=size))
        bad = w.trace(RunConfig(threads=4, mode="bad-fs", size=size))
        assert good.total_accesses == bad.total_accesses
        assert good.total_instructions == bad.total_instructions

    @pytest.mark.parametrize("name", ("psumv", "pdot", "count", "pmatcompare"))
    def test_bad_ma_same_computation(self, name):
        w = get_workload(name)
        size = w.train_sizes[0]
        good = w.trace(RunConfig(threads=4, mode="good", size=size))
        bad = w.trace(RunConfig(threads=4, mode="bad-ma", size=size))
        assert good.total_accesses == bad.total_accesses
        assert good.total_instructions == bad.total_instructions

    @pytest.mark.parametrize("name", ("psums", "padding", "false1"))
    def test_scalar_programs_reject_bad_ma(self, name):
        w = get_workload(name)
        with pytest.raises(WorkloadError):
            w.trace(RunConfig(threads=4, mode="bad-ma",
                              size=w.train_sizes[0]))

    @pytest.mark.parametrize("name", ("psums", "false1", "psumv", "count"))
    def test_bad_fs_slots_share_lines(self, name):
        """In bad-fs mode, different threads write the same cache line."""
        w = get_workload(name)
        tr = w.trace(RunConfig(threads=4, mode="bad-fs",
                               size=w.train_sizes[0]))
        write_lines = [set(line_of(t.addrs[t.is_write]).tolist())
                       for t in tr.threads]
        assert write_lines[0] & write_lines[1]

    @pytest.mark.parametrize("name", ("psums", "false1", "psumv", "count"))
    def test_good_slots_disjoint_lines(self, name):
        """In good mode, hot per-thread writes land on private lines (only
        the rare sync word is shared)."""
        w = get_workload(name)
        tr = w.trace(RunConfig(threads=4, mode="good", size=w.train_sizes[0]))
        hot_write_lines = []
        for t in tr.threads:
            lines, counts = np.unique(line_of(t.addrs[t.is_write]),
                                      return_counts=True)
            # "hot" = clearly more than sync-word traffic
            hot_write_lines.append(set(lines[counts > 50].tolist()))
        assert not (hot_write_lines[0] & hot_write_lines[1])

    def test_bad_fs_single_thread_allowed(self):
        # Table 1 runs Method 2 sequentially: packed layout, no sharing.
        w = get_workload("pdot")
        tr = w.trace(RunConfig(threads=1, mode="bad-fs", size=1024))
        assert tr.nthreads == 1


class TestSpecifics:
    def test_false1_is_store_only(self):
        w, c = cfg(name="false1", threads=2, size=500)
        tr = w.trace(c)
        t = tr.threads[0]
        # stores dominate: only sync loads are reads
        assert t.n_writes > 0.95 * t.n_accesses / 2

    def test_padding_touches_two_fields(self):
        w, c = cfg(name="padding", threads=2, size=100)
        t = w.trace(c).threads[0]
        slots = set(t.addrs.tolist())
        # two slot fields plus the sync word
        assert len({a for a in slots}) >= 2

    def test_pdot_has_two_vector_loads_per_iter(self):
        w, c = cfg(name="pdot", threads=2, size=4096)
        t = w.trace(c).threads[0]
        # 4 accesses per iteration: 2 loads, 1 slot load, 1 slot store
        assert t.n_writes == pytest.approx(t.n_accesses / 4, rel=0.05)

    def test_count_predicate_fraction(self):
        w, c = cfg(name="count", threads=2, size=65536)
        t = w.trace(c).threads[0]
        # writes happen on ~1/64 of iterations
        frac = t.n_writes / (t.n_accesses - 2 * t.n_writes)
        assert 0.5 / 64 < frac < 2.0 / 64

    def test_pmatmult_bad_fs_interleaves_c_cells(self):
        w = get_workload("pmatmult")
        tr = w.trace(RunConfig(threads=4, mode="bad-fs", size=16))
        wl = [set(line_of(t.addrs[t.is_write]).tolist()) for t in tr.threads]
        assert wl[0] & wl[1]

    def test_pmatmult_access_count_is_4n3(self):
        n = 16
        w = get_workload("pmatmult")
        tr = w.trace(RunConfig(threads=2, mode="good", size=n))
        total = tr.total_accesses
        assert total == pytest.approx(4 * n**3, rel=0.02)
