"""Fleet verdict aggregation: majority windows, streaks, fleet census."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.aggregate import VerdictAggregator
from repro.utils.stats import majority


def test_single_source_majority_and_streak():
    agg = VerdictAggregator(majority_window=4)
    agg.observe("pid-1", ["good", "good", "bad-fs", "bad-fs", "bad-fs"])
    s = agg.source_summary("pid-1")
    assert s["majority"] == "bad-fs"
    assert s["streak"] == {"label": "bad-fs", "length": 3}
    assert s["windows"] == 5
    assert s["counts"] == {"good": 2, "bad-fs": 3}


def test_majority_window_forgets_old_labels():
    agg = VerdictAggregator(majority_window=3)
    agg.observe("s", ["bad-fs"] * 10 + ["good"] * 3)
    assert agg.source_summary("s")["majority"] == "good"


def test_majority_tiebreak_matches_stats_helper():
    agg = VerdictAggregator(majority_window=4)
    labels = ["bad-fs", "good", "bad-fs", "good"]
    agg.observe("s", labels)
    assert agg.source_summary("s")["majority"] == majority(labels)


def test_streak_resets_on_flip():
    agg = VerdictAggregator()
    agg.observe("s", ["good", "good", "bad-ma"])
    s = agg.source_summary("s")
    assert s["streak"] == {"label": "bad-ma", "length": 1}


def test_fleet_summary_census_and_alerts():
    agg = VerdictAggregator(majority_window=4)
    agg.observe("quiet", ["good"] * 4, worker="w0")
    agg.observe("noisy", ["bad-fs"] * 6, worker="w1")
    agg.observe("drift", ["bad-ma"] * 2, worker="w0")
    fleet = agg.fleet_summary()
    assert fleet["sources"] == 3
    assert fleet["windows"] == 12
    assert fleet["sources_by_verdict"] == {"good": 1, "bad-fs": 1,
                                           "bad-ma": 1}
    assert fleet["labels"] == {"good": 4, "bad-fs": 6, "bad-ma": 2}
    # Alerts exclude the healthy source and sort by streak, longest first.
    assert [a["source"] for a in fleet["alerts"]] == ["noisy", "drift"]
    assert fleet["alerts"][0]["worker"] == "w1"


def test_worker_attribution_follows_restart():
    agg = VerdictAggregator()
    agg.observe("s", ["good"], worker="w0")
    agg.observe("s", ["good"], worker="w1")
    assert agg.source_summary("s")["worker"] == "w1"


def test_verdict_streams_keyed_by_source():
    agg = VerdictAggregator()
    agg.observe("b", ["good"])
    agg.observe("a", ["bad-fs"])
    streams = agg.verdict_streams()
    assert list(streams) == ["a", "b"]
    assert streams["a"]["majority"] == "bad-fs"


def test_unknown_source_and_bad_window_raise():
    agg = VerdictAggregator()
    with pytest.raises(ServeError):
        agg.source_summary("nope")
    with pytest.raises(ServeError):
        VerdictAggregator(majority_window=0)
