"""Tests for table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.tables import render_grid, render_table


class TestRenderTable:
    def test_basic_structure(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 6  # rule, header, rule, 2 rows, rule

    def test_title_prepended(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = render_table(["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_column_alignment_consistent(self):
        out = render_table(["col"], [[1], [100000]])
        rows = [l for l in out.splitlines() if l.startswith("|")]
        widths = {len(r) for r in rows}
        assert len(widths) == 1

    @given(
        st.lists(
            st.lists(st.integers(-10**6, 10**6), min_size=2, max_size=2),
            min_size=1,
            max_size=6,
        )
    )
    def test_all_cells_present(self, rows):
        out = render_table(["a", "b"], rows)
        for row in rows:
            for cell in row:
                assert str(cell) in out


class TestRenderGrid:
    def test_row_and_col_labels(self):
        out = render_grid(["r1", "r2"], ["c1", "c2"], [[1, 2], [3, 4]],
                          corner="x")
        assert "r1" in out and "c2" in out and "x" in out

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError):
            render_grid(["r1"], ["c1"], [[1], [2]])
