"""Telemetry core: spans, counters, gauges, and the disabled no-op."""

from __future__ import annotations

import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry.core import TELEMETRY, Telemetry, get_telemetry
from repro.telemetry.core import _NOOP_SPAN


@pytest.fixture
def tel():
    return Telemetry(enabled=True)


# ----------------------------------------------------------------- spans


def test_span_records_interval(tel):
    with tel.span("work", kind="unit"):
        pass
    assert len(tel.spans) == 1
    span = tel.spans[0]
    assert span.name == "work"
    assert span.attrs == {"kind": "unit"}
    assert span.seconds >= 0.0
    assert span.parent == -1


def test_span_nesting_builds_tree(tel):
    with tel.span("outer"):
        with tel.span("mid"):
            with tel.span("inner"):
                pass
        with tel.span("mid2"):
            pass
    names = [s.name for s in tel.spans]
    parents = [s.parent for s in tel.spans]
    assert names == ["outer", "mid", "inner", "mid2"]
    assert parents == [-1, 0, 1, 0]
    tree = tel.span_tree()
    assert len(tree) == 1
    assert [c["name"] for c in tree[0]["children"]] == ["mid", "mid2"]
    assert tree[0]["children"][0]["children"][0]["name"] == "inner"


def test_span_exception_safety(tel):
    with pytest.raises(ValueError):
        with tel.span("outer"):
            with tel.span("boom"):
                raise ValueError("x")
    # Both spans closed, error recorded, and the stack is clean again.
    assert [s.name for s in tel.spans] == ["outer", "boom"]
    assert tel.spans[1].attrs["error"] == "ValueError"
    assert tel.spans[0].attrs["error"] == "ValueError"
    with tel.span("after"):
        pass
    assert tel.spans[-1].parent == -1


def test_span_set_attaches_attributes(tel):
    with tel.span("s", a=1) as sp:
        sp.set(b=2)
    sp.set(c=3)  # post-exit attachment lands on the record too
    assert tel.spans[0].attrs == {"a": 1, "b": 2, "c": 3}


def test_span_reenter_rejected(tel):
    span = tel.span("s")
    with span:
        with pytest.raises(TelemetryError):
            span.__enter__()


def test_timed_decorator(tel):
    @tel.timed()
    def helper():
        return 7

    @tel.timed("custom.name")
    def other():
        return 8

    assert helper() == 7 and other() == 8
    names = [s.name for s in tel.spans]
    assert names[0].endswith("helper")
    assert names[1] == "custom.name"


def test_span_seconds_aggregates_by_name(tel):
    for _ in range(3):
        with tel.span("x"):
            pass
    assert tel.span_seconds("x") == pytest.approx(
        sum(s.seconds for s in tel.spans))
    assert tel.span_seconds("missing") == 0.0


def test_aggregate_tree_groups_by_name(tel):
    for _ in range(2):
        with tel.span("phase"):
            with tel.span("step"):
                pass
    agg = tel.aggregate_tree()
    assert agg["phase"]["count"] == 2
    assert agg["phase"]["children"]["step"]["count"] == 2


def test_spans_record_thread_identity(tel):
    def work():
        with tel.span("in-thread"):
            pass

    t = threading.Thread(target=work)
    t.start()
    t.join()
    with tel.span("in-main"):
        pass
    by_name = {s.name: s for s in tel.spans}
    assert by_name["in-thread"].thread != by_name["in-main"].thread
    # Spans from another thread never nest under this thread's stack.
    assert by_name["in-thread"].parent == -1


# -------------------------------------------------- counters and gauges


def test_counters_accumulate_and_gauges_overwrite(tel):
    tel.count("n")
    tel.count("n", 4)
    tel.gauge("g", 1.0)
    tel.gauge("g", 2.5)
    assert tel.counters == {"n": 5}
    assert tel.gauges == {"g": 2.5}


def test_reset_clears_everything(tel):
    with tel.span("s"):
        tel.count("c")
        tel.gauge("g", 1)
    tel.reset()
    assert tel.spans == [] and tel.counters == {} and tel.gauges == {}


# ------------------------------------------------------ disabled no-op


def test_disabled_span_is_shared_noop_singleton():
    tel = Telemetry(enabled=False)
    assert tel.span("a") is _NOOP_SPAN
    assert tel.span("b", attr=1) is _NOOP_SPAN
    with tel.span("c") as sp:
        sp.set(x=1)  # must not raise, must not record
    tel.count("c")
    tel.gauge("g", 1)
    assert tel.spans == [] and tel.counters == {} and tel.gauges == {}


def test_disabled_decorator_passthrough():
    tel = Telemetry(enabled=False)

    @tel.timed()
    def f(x):
        return x * 2

    assert f(21) == 42
    assert tel.spans == []


def test_global_singleton_disabled_by_default():
    assert get_telemetry() is TELEMETRY
    assert TELEMETRY.enabled is False


def test_enable_disable_cycle():
    tel = Telemetry()
    tel.enable()
    with tel.span("s"):
        pass
    tel.disable()
    with tel.span("gone"):
        pass
    assert [s.name for s in tel.spans] == ["s"]  # data kept, hooks off
    tel.enable(reset=False)
    assert [s.name for s in tel.spans] == ["s"]
    tel.enable(reset=True)
    assert tel.spans == []
