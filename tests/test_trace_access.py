"""Tests for trace containers."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.access import ProgramTrace, ThreadTrace, empty_thread, make_thread


def _trace(n=10, writes_every=2, ipa=3.0, extra=0):
    addrs = np.arange(n, dtype=np.int64) * 8
    writes = np.zeros(n, dtype=bool)
    writes[::writes_every] = True
    return ThreadTrace(addrs, writes, instr_per_access=ipa,
                       extra_instructions=extra)


class TestThreadTrace:
    def test_basic_counts(self):
        t = _trace(10, writes_every=2)
        assert t.n_accesses == 10
        assert t.n_writes == 5
        assert t.n_reads == 5

    def test_instructions(self):
        t = _trace(10, ipa=3.0, extra=7)
        assert t.instructions == 37

    def test_footprint_lines(self):
        t = make_thread(np.array([0, 8, 64, 65]))
        assert t.footprint_lines() == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            ThreadTrace(np.zeros(3, np.int64), np.zeros(2, bool))

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError, match="non-negative"):
            make_thread(np.array([-1]))

    def test_negative_address_among_valid_rejected(self):
        with pytest.raises(TraceError, match="non-negative"):
            make_thread(np.array([0, 64, -8, 128]))

    def test_ipa_below_one_rejected(self):
        with pytest.raises(TraceError):
            ThreadTrace(np.zeros(1, np.int64), np.zeros(1, bool),
                        instr_per_access=0.5)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_ipa_rejected(self, bad):
        # NaN compares False against 1.0, so only an explicit finiteness
        # check catches it; inf would silently blow up instruction counts.
        with pytest.raises(TraceError, match="finite"):
            ThreadTrace(np.zeros(1, np.int64), np.zeros(1, bool),
                        instr_per_access=bad)

    def test_negative_extra_rejected(self):
        with pytest.raises(TraceError):
            ThreadTrace(np.zeros(1, np.int64), np.zeros(1, bool),
                        extra_instructions=-1)

    def test_2d_rejected(self):
        with pytest.raises(TraceError):
            ThreadTrace(np.zeros((2, 2), np.int64), np.zeros((2, 2), bool))

    def test_concat_preserves_instructions(self):
        a = _trace(10, ipa=2.0, extra=5)
        b = _trace(20, ipa=4.0, extra=1)
        c = a.concat(b)
        assert c.n_accesses == 30
        assert c.instructions == pytest.approx(a.instructions + b.instructions,
                                               abs=1)

    def test_concat_empty(self):
        e = empty_thread()
        c = e.concat(e)
        assert c.n_accesses == 0

    def test_empty_thread_instructions(self):
        assert empty_thread(instr=42).instructions == 42


class TestProgramTrace:
    def test_aggregates(self):
        p = ProgramTrace([_trace(10), _trace(20)])
        assert p.nthreads == 2
        assert p.total_accesses == 30
        assert p.total_instructions == 90

    def test_footprint_union(self):
        t1 = make_thread(np.array([0, 8]))       # line 0
        t2 = make_thread(np.array([64, 128]))    # lines 1, 2
        assert ProgramTrace([t1, t2]).footprint_lines() == 3

    def test_meta_is_carried(self):
        p = ProgramTrace([_trace()], name="x", meta={"k": 1})
        assert p.name == "x"
        assert p.meta["k"] == 1

    def test_empty_threads_rejected(self):
        with pytest.raises(TraceError):
            ProgramTrace([])

    def test_non_trace_rejected(self):
        with pytest.raises(TraceError):
            ProgramTrace(["nope"])


class TestMakeThread:
    def test_default_all_loads(self):
        t = make_thread(np.array([1, 2, 3]))
        assert t.n_writes == 0

    def test_explicit_writes(self):
        t = make_thread(np.array([1, 2]), np.array([True, False]))
        assert t.n_writes == 1
