"""Token-bucket admission control: rates, bursts, ledger exactness."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------- TokenBucket


def test_bucket_starts_full_and_drains():
    clock = FakeClock()
    bucket = TokenBucket(rate=10, burst=5, clock=clock)
    assert bucket.try_take(5)
    assert not bucket.try_take(1)


def test_bucket_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=10, burst=5, clock=clock)
    assert bucket.try_take(5)
    clock.advance(0.3)  # 3 tokens back
    assert bucket.try_take(3)
    assert not bucket.try_take(1)


def test_bucket_refill_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100, burst=5, clock=clock)
    clock.advance(1000.0)
    assert bucket.available() == pytest.approx(5.0)


def test_zero_rate_is_unlimited():
    bucket = TokenBucket(rate=0)
    assert bucket.unlimited
    assert all(bucket.try_take(10 ** 9) for _ in range(100))
    assert bucket.available() == float("inf")


def test_give_back_restores_tokens():
    clock = FakeClock()
    bucket = TokenBucket(rate=10, burst=10, clock=clock)
    assert bucket.try_take(8)
    bucket.give_back(8)
    assert bucket.try_take(10)


def test_bucket_rejects_bad_config():
    with pytest.raises(ServeError):
        TokenBucket(rate=-1)
    with pytest.raises(ServeError):
        TokenBucket(rate=5, burst=0)


# ---------------------------------------------------- AdmissionController


def test_admit_unlimited_by_default():
    ctrl = AdmissionController()
    assert not ctrl.enabled
    assert all(ctrl.admit("s", 1000) for _ in range(50))
    assert ctrl.shed == 0


def test_global_budget_shed_accounted():
    clock = FakeClock()
    ctrl = AdmissionController(rate=100, burst=10, clock=clock)
    assert ctrl.admit("a", 10)
    assert not ctrl.admit("a", 5)
    snap = ctrl.snapshot()
    assert snap["admitted"] == 10
    assert snap["shed"] == 5
    assert snap["shed_by_reason"] == {"global": 5}
    assert snap["shed_by_source"] == {"a": 5}


def test_source_budget_refunds_global():
    clock = FakeClock()
    ctrl = AdmissionController(rate=100, burst=100,
                               source_rate=10, source_burst=10, clock=clock)
    # Source "hog" exhausts its own bucket; the global tokens it briefly
    # held must be refunded so "quiet" still fits the global budget.
    assert ctrl.admit("hog", 10)
    assert not ctrl.admit("hog", 10)
    assert ctrl.admit("quiet", 10)
    snap = ctrl.snapshot()
    assert snap["shed_by_reason"] == {"source": 10}
    assert snap["admitted_by_source"] == {"hog": 10, "quiet": 10}
    # Global bucket charged only for admitted work: 100 - 20 = 80 left.
    assert ctrl.global_bucket.available() == pytest.approx(80.0)


def test_vector_cost_cannot_be_smuggled_by_batching():
    clock = FakeClock()
    ctrl = AdmissionController(rate=100, burst=50, clock=clock)
    assert not ctrl.admit("s", 51)  # one big batch > burst: refused whole
    assert ctrl.admit("s", 50)
    assert ctrl.shed == 51


def test_admit_rejects_nonpositive_cost():
    ctrl = AdmissionController()
    with pytest.raises(ServeError):
        ctrl.admit("s", 0)


def test_ledger_invariant_under_mixed_traffic():
    clock = FakeClock()
    ctrl = AdmissionController(rate=50, burst=20,
                               source_rate=30, source_burst=15, clock=clock)
    offered = 0
    for i in range(200):
        ctrl.admit(f"src-{i % 4}", 1 + i % 7)
        offered += 1 + i % 7
        if i % 10 == 0:
            clock.advance(0.05)
    snap = ctrl.snapshot()
    assert snap["admitted"] + snap["shed"] == offered
    assert sum(snap["shed_by_reason"].values()) == snap["shed"]
    assert sum(snap["shed_by_source"].values()) == snap["shed"]
    assert sum(snap["admitted_by_source"].values()) == snap["admitted"]
