"""Tests for the static sharing analyzer."""

import numpy as np
import pytest

from repro.analysis.sharing import (
    HOSTILE_MIN_FOOTPRINT,
    SIGNIFICANCE_THRESHOLD,
    SharingReport,
    StaticSharingAnalyzer,
    ThreadLineUse,
    analyze_trace,
)
from repro.trace.access import ProgramTrace, empty_thread, make_thread
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload


def rmw_thread(addr, n, ipa=3.0):
    """n read-modify-write pairs on one address."""
    addrs = np.full(2 * n, addr, dtype=np.int64)
    writes = np.zeros(2 * n, bool)
    writes[1::2] = True
    return make_thread(addrs, writes, instr_per_access=ipa)


@pytest.fixture(scope="module")
def analyzer():
    return StaticSharingAnalyzer()


class TestClassification:
    def test_private_lines_counted_not_detailed(self, analyzer):
        prog = ProgramTrace([rmw_thread(0, 50), rmw_thread(4096, 50)])
        rep = analyzer.analyze(prog)
        assert rep.n_lines == 2
        assert rep.n_private == 2
        assert rep.shared == []
        assert rep.verdict == "good"

    def test_read_shared(self, analyzer):
        a = make_thread(np.full(50, 4096, dtype=np.int64))
        b = make_thread(np.full(50, 4100, dtype=np.int64))
        rep = analyzer.analyze(ProgramTrace([a, b]))
        assert rep.category_counts()["read-shared"] == 1
        assert rep.verdict == "good"

    def test_true_shared_same_word(self, analyzer):
        # both threads write the same 4-byte word
        rep = analyzer.analyze(
            ProgramTrace([rmw_thread(4096, 50), rmw_thread(4096, 50)])
        )
        assert rep.category_counts()["true-shared"] == 1
        assert rep.category_counts()["false-shared"] == 0

    def test_true_shared_writer_vs_reader_word(self, analyzer):
        # one thread writes a word another thread only reads — the shadow
        # oracle's true-sharing rule, not false sharing
        writer = rmw_thread(4096, 50)
        reader = make_thread(np.full(50, 4096, dtype=np.int64))
        rep = analyzer.analyze(ProgramTrace([writer, reader]))
        assert rep.category_counts()["true-shared"] == 1

    def test_false_shared_disjoint_words(self, analyzer):
        rep = analyzer.analyze(
            ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)])
        )
        fs = rep.false_shared()
        assert len(fs) == 1
        ls = fs[0]
        assert ls.line == 64
        assert ls.contended
        assert sorted(ls.writers) == [0, 1]
        assert ls.evidence() == {0: (0, 0), 1: (8, 8)}
        # both threads' whole streams are implicated
        assert ls.significance == pytest.approx(1.0)
        assert rep.verdict == "bad-fs"

    def test_handoff_not_contended(self, analyzer):
        # T0 writes line 64 early then moves on; T1 arrives much later:
        # layout-false-shared, but the position intervals are disjoint,
        # so no ping-pong is possible and the verdict stays good.
        t0 = rmw_thread(4096, 10).concat(rmw_thread(8192, 500))
        t1 = rmw_thread(12288, 500).concat(rmw_thread(4104, 10))
        rep = analyzer.analyze(ProgramTrace([t0, t1]))
        fs_all = rep.false_shared(contended_only=False)
        assert [ls.line for ls in fs_all] == [64]
        assert not fs_all[0].contended
        assert fs_all[0].significance == 0.0
        assert rep.false_shared() == []
        assert rep.verdict == "good"

    def test_significance_scales_with_share(self, analyzer):
        # contended line carries ~20% of each thread's accesses
        t0 = rmw_thread(4096, 100).concat(rmw_thread(8192, 400))
        t1 = rmw_thread(4104, 100).concat(rmw_thread(12288, 400))
        rep = analyzer.analyze(ProgramTrace([t0, t1]))
        (ls,) = rep.false_shared()
        assert ls.significance == pytest.approx(0.2, rel=0.05)

    def test_empty_program(self, analyzer):
        rep = analyzer.analyze(ProgramTrace([empty_thread(10)]))
        assert rep.n_lines == 0
        assert rep.verdict == "good"

    def test_single_thread_never_shares(self, analyzer):
        t = rmw_thread(4096, 100).concat(rmw_thread(4104, 100))
        rep = analyzer.analyze(ProgramTrace([t]))
        assert rep.n_private == rep.n_lines == 1
        assert rep.shared == []


class TestNearMisses:
    def _pair(self, lo_addr, hi_addr):
        # two threads, each the sole writer of one of two adjacent lines
        return ProgramTrace([rmw_thread(lo_addr, 100),
                             rmw_thread(hi_addr, 100)])

    def test_tight_pair_reported(self, analyzer):
        # T0 writes byte 60 of line 64, T1 writes byte 0 of line 65:
        # 3 bytes of slack across the seam
        rep = analyzer.analyze(self._pair(4096 + 60, 4160))
        (nm,) = rep.near_misses
        assert (nm.line, nm.tid_low, nm.tid_high) == (64, 0, 1)
        assert nm.slack_bytes == 3

    def test_loose_pair_not_reported(self, analyzer):
        # spans sit at the far ends of their lines: plenty of slack
        rep = analyzer.analyze(self._pair(4096, 4160 + 60))
        assert rep.near_misses == []

    def test_same_thread_not_reported(self, analyzer):
        t = rmw_thread(4096 + 60, 100).concat(rmw_thread(4160, 100))
        rep = analyzer.analyze(ProgramTrace([t, rmw_thread(8192, 100)]))
        assert rep.near_misses == []

    def test_temporally_disjoint_pair_not_reported(self, analyzer):
        # same tight layout, but T1 only arrives after T0 is long gone
        t0 = rmw_thread(4096 + 60, 10).concat(rmw_thread(8192, 500))
        t1 = rmw_thread(12288, 500).concat(rmw_thread(4160, 10))
        rep = analyzer.analyze(ProgramTrace([t0, t1]))
        assert rep.near_misses == []


class TestProfiles:
    def test_sequential_scan_not_hostile(self, analyzer):
        addrs = np.arange(0, HOSTILE_MIN_FOOTPRINT * 64 * 2, 8,
                          dtype=np.int64)
        rep = analyzer.analyze(ProgramTrace([make_thread(addrs)]))
        (p,) = rep.profiles
        assert p.footprint_lines >= HOSTILE_MIN_FOOTPRINT
        assert p.refetch_rate == 0.0
        assert not p.hostile

    def test_repeated_large_scan_is_hostile(self, analyzer):
        # sweep a large footprint line-by-line, many times over: every
        # revisit is far outside the refetch window
        once = np.arange(0, HOSTILE_MIN_FOOTPRINT * 64 * 2, 64,
                         dtype=np.int64)
        addrs = np.tile(once, 4)
        rep = analyzer.analyze(ProgramTrace([make_thread(addrs)]))
        (p,) = rep.profiles
        assert p.hostile
        assert rep.verdict == "bad-ma"
        assert rep.hostile_threads == [0]

    def test_small_footprint_never_hostile(self, analyzer):
        # heavy re-fetching over a handful of lines is cache-resident
        once = np.arange(0, 40 * 64, 64, dtype=np.int64)
        rep = analyzer.analyze(ProgramTrace([make_thread(np.tile(once, 50))]))
        assert not rep.profiles[0].hostile

    def test_refetch_window_validation(self):
        with pytest.raises(ValueError):
            StaticSharingAnalyzer(refetch_window=0)


class TestThreadLineUse:
    def test_overlap_rule(self):
        def use(first, last):
            return ThreadLineUse(0, 1, 1, first, last, (0, 0), (0, 0))

        assert use(0, 10).overlaps(use(5, 20))
        assert use(5, 20).overlaps(use(0, 10))
        assert use(0, 10).overlaps(use(10, 20))  # touching counts
        assert not use(0, 9).overlaps(use(10, 20))


class TestReport:
    @pytest.fixture(scope="class")
    def bad(self):
        return analyze_trace(
            ProgramTrace([rmw_thread(4096, 200), rmw_thread(4104, 200)],
                         name="demo")
        )

    def test_render_mentions_verdict_and_line(self, bad):
        out = bad.render()
        assert "demo" in out
        assert "bad-fs" in out
        assert "0x1000" in out

    def test_to_dict_round_trips_essentials(self, bad):
        d = bad.to_dict()
        assert d["verdict"] == "bad-fs"
        assert d["category_counts"]["false-shared"] == 1
        assert d["shared_lines"][0]["address"] == "0x1000"

    def test_fs_significance_thresholding(self, bad):
        assert bad.fs_significance > SIGNIFICANCE_THRESHOLD
        assert bad.has_false_sharing

    def test_empty_report_defaults(self):
        rep = SharingReport("x", 1, 0, 0, 0, [])
        assert rep.verdict == "good"
        assert rep.category_counts()["private"] == 0
        assert "x" in rep.render()


class TestOnMiniPrograms:
    @pytest.mark.parametrize("mode,expected", [("good", "good"),
                                               ("bad-fs", "bad-fs")])
    def test_psums_verdicts(self, analyzer, mode, expected):
        w = get_workload("psums")
        prog = w.trace(RunConfig(threads=4, mode=mode, size=2000))
        assert analyzer.analyze(prog).verdict == expected

    def test_pmatmult_good_boundaries_not_contended(self, analyzer):
        # partition-boundary lines are layout-false-shared but only ever
        # handed off — the case that forced the temporal gate
        w = get_workload("pmatmult")
        prog = w.trace(RunConfig(threads=6, mode="good",
                                 size=w.train_sizes[0]))
        rep = analyzer.analyze(prog)
        assert rep.false_shared(contended_only=False)
        assert rep.false_shared() == []
        assert rep.verdict == "good"
