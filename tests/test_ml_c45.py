"""Tests for the C4.5/J48 learner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError, NotFittedError
from repro.ml.c45 import C45Classifier, entropy
from repro.ml.dataset import Dataset


def dataset_from_rule(n=200, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = []
    for row in X:
        lab = "pos" if row[0] > 0.2 else ("mid" if row[1] > 0.5 else "neg")
        if noise and rng.random() < noise:
            lab = rng.choice(["pos", "mid", "neg"])
        y.append(lab)
    return Dataset(X, y, ["a", "b", "c"])


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.array([10, 0, 0])) == 0.0

    def test_uniform_two_class(self):
        assert entropy(np.array([5, 5])) == pytest.approx(1.0)

    def test_uniform_four_class(self):
        assert entropy(np.array([2, 2, 2, 2])) == pytest.approx(2.0)

    def test_empty(self):
        assert entropy(np.array([0, 0])) == 0.0

    @given(st.lists(st.integers(0, 50), min_size=2, max_size=6))
    def test_bounds(self, counts):
        h = entropy(np.array(counts))
        assert 0.0 <= h <= np.log2(len(counts)) + 1e-9


class TestFit:
    def test_learns_separable_rule(self):
        ds = dataset_from_rule()
        clf = C45Classifier().fit(ds)
        assert clf.score(ds) > 0.98

    def test_pure_dataset_single_leaf(self):
        ds = Dataset(np.random.default_rng(0).normal(size=(20, 2)),
                     ["x"] * 20, ["a", "b"])
        clf = C45Classifier().fit(ds)
        assert clf.n_leaves == 1
        assert clf.predict_one(np.zeros(2)) == "x"

    def test_empty_rejected(self):
        ds = Dataset(np.empty((0, 2)), [], ["a", "b"])
        with pytest.raises(DatasetError):
            C45Classifier().fit(ds)

    def test_unfitted_raises(self):
        clf = C45Classifier()
        with pytest.raises(NotFittedError):
            clf.predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            clf.render()
        with pytest.raises(NotFittedError):
            _ = clf.n_leaves

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            C45Classifier(cf=0.0)
        with pytest.raises(DatasetError):
            C45Classifier(cf=0.6)
        with pytest.raises(DatasetError):
            C45Classifier(min_leaf=0)

    def test_max_depth_respected(self):
        ds = dataset_from_rule()
        clf = C45Classifier(max_depth=1, prune=False).fit(ds)
        assert clf.root_.depth() <= 1

    def test_min_leaf_respected(self):
        ds = dataset_from_rule(n=100)
        clf = C45Classifier(min_leaf=10, prune=False).fit(ds)

        def check(node):
            if node.is_leaf:
                assert node.n >= 10 or node.n == clf.root_.n
                return
            check(node.left)
            check(node.right)

        check(clf.root_)

    def test_constant_features_yield_leaf(self):
        X = np.ones((20, 2))
        y = ["a"] * 12 + ["b"] * 8
        clf = C45Classifier().fit(Dataset(X, y, ["a", "b"]))
        assert clf.n_leaves == 1
        assert clf.predict_one(np.ones(2)) == "a"


class TestPruning:
    def test_pruning_never_grows_tree(self):
        ds = dataset_from_rule(noise=0.1)
        unpruned = C45Classifier(prune=False).fit(ds)
        pruned = C45Classifier(prune=True).fit(ds)
        assert pruned.n_leaves <= unpruned.n_leaves

    def test_noisy_data_gets_pruned(self):
        ds = dataset_from_rule(n=400, noise=0.25)
        unpruned = C45Classifier(prune=False).fit(ds)
        pruned = C45Classifier(prune=True).fit(ds)
        assert pruned.n_leaves < unpruned.n_leaves

    def test_smaller_cf_prunes_more(self):
        ds = dataset_from_rule(n=400, noise=0.2)
        lax = C45Classifier(cf=0.45).fit(ds)
        strict = C45Classifier(cf=0.01).fit(ds)
        assert strict.n_leaves <= lax.n_leaves


class TestPredict:
    def test_predict_batch_and_single_agree(self):
        ds = dataset_from_rule()
        clf = C45Classifier().fit(ds)
        batch = clf.predict(ds.X[:5])
        singles = [clf.predict_one(ds.X[i]) for i in range(5)]
        assert list(batch) == singles

    def test_generalizes(self):
        train = dataset_from_rule(seed=0)
        test = dataset_from_rule(seed=1)
        clf = C45Classifier().fit(train)
        assert clf.score(test) > 0.9

    def test_1d_input_promoted(self):
        ds = dataset_from_rule()
        clf = C45Classifier().fit(ds)
        assert clf.predict(ds.X[0]).shape == (1,)


class TestStructure:
    def test_render_contains_feature_names(self):
        ds = dataset_from_rule()
        clf = C45Classifier().fit(ds)
        out = clf.render()
        assert "a <= " in out or "a > " in out

    def test_used_features_subset(self):
        ds = dataset_from_rule()
        clf = C45Classifier().fit(ds)
        assert set(clf.used_feature_names()) <= {"a", "b", "c"}

    def test_node_counts_consistent(self):
        ds = dataset_from_rule()
        clf = C45Classifier().fit(ds)
        assert clf.n_nodes == 2 * clf.n_leaves - 1  # binary tree

    def test_threshold_between_observed_values(self):
        ds = dataset_from_rule()
        clf = C45Classifier().fit(ds)
        root = clf.root_
        col = ds.X[:, root.feature]
        assert col.min() < root.threshold < col.max()


class TestInvariances:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 5))
    def test_row_permutation_invariance(self, seed):
        ds = dataset_from_rule(n=120, seed=42)
        perm = np.random.default_rng(seed).permutation(len(ds))
        shuffled = ds.subset(perm)
        a = C45Classifier().fit(ds)
        b = C45Classifier().fit(shuffled)
        probe = np.random.default_rng(7).normal(size=(50, 3))
        assert list(a.predict(probe)) == list(b.predict(probe))

    def test_feature_scaling_changes_thresholds_not_structure(self):
        ds = dataset_from_rule(n=150)
        scaled = Dataset(ds.X * 100.0, list(ds.y), ds.feature_names)
        a = C45Classifier().fit(ds)
        b = C45Classifier().fit(scaled)
        assert a.n_leaves == b.n_leaves
        assert a.root_.feature == b.root_.feature
        assert b.root_.threshold == pytest.approx(a.root_.threshold * 100,
                                                  rel=1e-6)

    def test_determinism(self):
        ds = dataset_from_rule(n=200, noise=0.05)
        a = C45Classifier().fit(ds)
        b = C45Classifier().fit(ds)
        assert a.render() == b.render()
