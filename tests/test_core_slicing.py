"""Tests for time-sliced detection (paper Section 6 future work)."""

import numpy as np
import pytest

from repro.core.slicing import SlicedDetector, phased_program
from repro.errors import ConfigError
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload

from tests.test_core_detector import fitted  # noqa: F401  (reuse fixture)


def _phase(mode, threads=4, size=65_536):
    pdot = get_workload("pdot")
    return pdot.trace(RunConfig(threads=threads, mode=mode, size=size))


class TestPhasedProgram:
    def test_concatenates_thread_by_thread(self):
        a, b = _phase("good"), _phase("bad-fs")
        prog = phased_program([a, b])
        assert prog.nthreads == 4
        assert prog.total_accesses == a.total_accesses + b.total_accesses

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            phased_program([])

    def test_rejects_mismatched_threads(self):
        with pytest.raises(ConfigError):
            phased_program([_phase("good", threads=2), _phase("good", threads=4)])


class TestSlicedDetector:
    def test_localizes_false_sharing_phase(self, fitted):
        prog = phased_program([_phase("good"), _phase("bad-fs"),
                               _phase("good")], name="3-phase")
        diag = SlicedDetector(fitted, n_slices=9).diagnose_trace(prog)
        labels = diag.labels
        assert len(labels) == 9
        # the middle third falsely shares, the edges do not
        assert all(lab == "bad-fs" for lab in labels[3:6])
        assert all(lab != "bad-fs" for lab in labels[:3])
        assert all(lab != "bad-fs" for lab in labels[6:])

    def test_overall_flags_any_fs_phase(self, fitted):
        prog = phased_program([_phase("good"), _phase("bad-fs"),
                               _phase("good")])
        diag = SlicedDetector(fitted, n_slices=9).diagnose_trace(prog)
        assert diag.overall == "bad-fs"

    def test_pure_good_run_all_slices_clean(self, fitted):
        diag = SlicedDetector(fitted, n_slices=6).diagnose(
            get_workload("pdot"),
            RunConfig(threads=4, mode="good", size=131_072))
        assert "bad-fs" not in diag.labels
        assert diag.fs_time_fraction() == 0.0

    def test_phase_segments(self, fitted):
        prog = phased_program([_phase("good"), _phase("bad-fs"),
                               _phase("good")])
        diag = SlicedDetector(fitted, n_slices=9).diagnose_trace(prog)
        phases = diag.phases()
        assert ("bad-fs", 3, 5) in phases

    def test_fs_time_fraction_dominated_by_fs_phase(self, fitted):
        # FS slices are much slower, so their time share exceeds 1/3
        prog = phased_program([_phase("good"), _phase("bad-fs"),
                               _phase("good")])
        diag = SlicedDetector(fitted, n_slices=9).diagnose_trace(prog)
        assert diag.fs_time_fraction() > 0.5

    def test_render_mentions_all_slices(self, fitted):
        diag = SlicedDetector(fitted, n_slices=4).diagnose(
            get_workload("pdot"),
            RunConfig(threads=4, mode="bad-fs", size=65_536))
        out = diag.render()
        assert "Time-sliced diagnosis" in out
        assert "overall: bad-fs" in out

    def test_invalid_slice_count(self, fitted):
        with pytest.raises(ConfigError):
            SlicedDetector(fitted, n_slices=0)


class TestRunSliced:
    def test_slice_totals_equal_whole(self):
        from repro.coherence.machine import MulticoreMachine
        from tests.conftest import SMALL_SPEC

        prog = _phase("bad-fs", threads=3, size=32_768)
        m = MulticoreMachine(SMALL_SPEC)
        whole = m.run(prog)
        parts = m.run_sliced(prog, 7)
        for key in ("L1D.REPL", "SNOOP_RESPONSE.HITM",
                    "MEM_INST_RETIRED.LOADS", "DTLB_MISSES.ANY"):
            total = sum(p.counts[key] for p in parts)
            assert total == pytest.approx(whole.counts[key], abs=1), key
        assert sum(p.instructions for p in parts) == pytest.approx(
            whole.instructions, rel=0.001)

    def test_slices_carry_meta(self):
        from repro.coherence.machine import MulticoreMachine
        from tests.conftest import SMALL_SPEC

        prog = _phase("good", threads=2, size=16_384)
        parts = MulticoreMachine(SMALL_SPEC).run_sliced(prog, 3)
        assert [p.meta["slice"] for p in parts] == [0, 1, 2]
        assert all(p.meta["n_slices"] == 3 for p in parts)

    def test_single_slice_equals_run(self):
        from repro.coherence.machine import MulticoreMachine
        from tests.conftest import SMALL_SPEC

        prog = _phase("good", threads=2, size=16_384)
        m = MulticoreMachine(SMALL_SPEC)
        assert m.run_sliced(prog, 1)[0].counts == m.run(prog).counts

    def test_invalid_n_slices(self):
        from repro.coherence.machine import MulticoreMachine
        from repro.errors import SimulationError
        from tests.conftest import SMALL_SPEC

        prog = _phase("good", threads=2, size=16_384)
        with pytest.raises(SimulationError):
            MulticoreMachine(SMALL_SPEC).run_sliced(prog, 0)


class TestSliceEdgeCases:
    def test_more_slices_than_accesses(self):
        from repro.coherence.machine import MulticoreMachine
        from repro.trace.access import ProgramTrace, make_thread
        import numpy as np
        from tests.conftest import SMALL_SPEC

        prog = ProgramTrace([make_thread(np.array([4096, 4100, 4104]))])
        parts = MulticoreMachine(SMALL_SPEC).run_sliced(prog, 10)
        # empty slices contribute nothing but the totals still match
        total = sum(p.counts["MEM_INST_RETIRED.LOADS"] for p in parts)
        assert total == 3

    def test_empty_slices_skipped_in_diagnosis(self, fitted):
        prog = _phase("bad-fs", threads=2, size=4_096)
        diag = SlicedDetector(fitted, n_slices=50).diagnose_trace(prog)
        # every reported verdict corresponds to a slice that did work
        assert all(v.instructions > 0 for v in diag.verdicts)

    def test_warm_caches_across_slices(self):
        """Slices share cache state: a later slice re-reading the first
        slice's data must not pay cold misses again."""
        import numpy as np
        from repro.coherence.machine import MulticoreMachine
        from repro.trace.access import ProgramTrace, make_thread
        from tests.conftest import SMALL_SPEC

        # one thread reads 32 lines twice
        addrs = np.tile(np.arange(32, dtype=np.int64) * 64 + 4096, 2)
        prog = ProgramTrace([make_thread(addrs)])
        parts = MulticoreMachine(SMALL_SPEC, prefetch=False).run_sliced(
            prog, 2)
        assert parts[0].counts["L1D.REPL"] == 32
        assert parts[1].counts["L1D.REPL"] == 0  # warm
