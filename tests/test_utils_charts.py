"""Tests for terminal charts."""

import pytest

from repro.utils.charts import hbar_chart, series_chart, sparkline


class TestHBar:
    def test_renders_all_rows(self):
        out = hbar_chart(["a", "bb"], [1.0, 2.0])
        lines = out.splitlines()
        assert len(lines) == 2
        assert "a" in lines[0] and "bb" in lines[1]

    def test_longest_bar_for_largest_value(self):
        out = hbar_chart(["a", "b"], [1.0, 4.0], width=40)
        bars = [l.count("#") for l in out.splitlines()]
        assert bars[1] == 40
        assert bars[0] == 10

    def test_zero_value_empty_bar(self):
        out = hbar_chart(["z"], [0.0])
        assert out.splitlines()[0].count("#") == 0

    def test_title_and_unit(self):
        out = hbar_chart(["a"], [2.5], title="T", unit="ms")
        assert out.splitlines()[0] == "T"
        assert "2.5ms" in out

    def test_log_scale_compresses(self):
        lin = hbar_chart(["a", "b"], [1.0, 1000.0], width=40)
        log = hbar_chart(["a", "b"], [1.0, 1000.0], width=40, log=True)
        lin_small = lin.splitlines()[0].count("#")
        log_small = log.splitlines()[0].count("#")
        assert log_small > lin_small

    def test_validation(self):
        with pytest.raises(ValueError):
            hbar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            hbar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            hbar_chart(["a"], [1.0], width=2)

    def test_empty(self):
        assert "(no data)" in hbar_chart([], [])


class TestSeries:
    def test_groups_and_series(self):
        out = series_chart(["T=1", "T=4"],
                           {"good": [4.0, 1.0], "bad": [4.0, 4.0]})
        assert out.count("T=") == 2
        assert out.count("good") == 2
        assert out.count("bad") == 2

    def test_flat_series_constant_bars(self):
        out = series_chart(["a", "b", "c"], {"flat": [2.0, 2.0, 2.0]})
        bars = [l.count("#") for l in out.splitlines() if "#" in l]
        assert len(set(bars)) == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_chart(["a"], {"s": [1.0, 2.0]})


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_values_monotone_blocks(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == " .:-=+*#"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_empty(self):
        assert sparkline([]) == ""
