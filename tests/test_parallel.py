"""Determinism of the parallel execution engine.

The engine's contract is that any ``jobs`` value produces *bit-identical*
artifacts: workers only simulate, the parent measures and classifies
serially in case order, and all randomness comes from blake2b-keyed streams
that do not depend on the process doing the drawing.  These tests run the
same grids serially and through a multi-process engine and demand equality
of every float.
"""

from __future__ import annotations

import pytest

from repro.baselines.shadow import ShadowMemoryDetector
from repro.core.detector import FalseSharingDetector
from repro.core.lab import Lab
from repro.core.training import (
    PlanRow,
    ScreeningReport,
    TrainingData,
    collect_plan,
)
from repro.errors import ReproError
from repro.parallel import (
    ExecutionEngine,
    default_jobs,
    resolve_target,
    set_default_jobs,
)
from repro.suites import get_program
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

MINI_PLAN = [
    PlanRow("psums", Mode.GOOD, (1_500, 3_000), (3, 6), ("random",), 2),
    PlanRow("psums", Mode.BAD_FS, (1_500, 3_000), (3, 6), ("random",), 2),
    PlanRow("seq_read", Mode.BAD_MA, (32_768,), (1,),
            ("random", "stride8"), 1),
]

CASES = [
    RunConfig(threads=t, mode=m, size=1_500)
    for t in (3, 4) for m in (Mode.GOOD, Mode.BAD_FS)
]


def _double(x: int) -> int:
    """Module-level so worker processes can unpickle it by reference."""
    return x * 2


def _instances_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.label == y.label
        assert list(x.features) == list(y.features)
        assert x.meta == y.meta


class TestEngine:
    def test_jobs_default_and_override(self):
        assert ExecutionEngine(3).jobs == 3
        try:
            set_default_jobs(5)
            assert default_jobs() == 5
            assert ExecutionEngine().jobs == 5
        finally:
            set_default_jobs(None)
        assert default_jobs() >= 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ReproError):
            ExecutionEngine(0)
        with pytest.raises(ReproError):
            set_default_jobs(0)

    def test_chunksize_default_and_override(self):
        # The 4x rule: enough chunks for load balance, few enough that
        # thousands of small tasks do not pay per-task IPC.
        eng = ExecutionEngine(4)
        assert eng.chunksize is None
        assert eng._chunksize(1000, 4) == 62
        assert eng._chunksize(3, 4) == 1
        forced = ExecutionEngine(4, chunksize=7)
        assert forced.chunksize == 7
        assert forced._chunksize(1000, 4) == 7
        with pytest.raises(ReproError):
            ExecutionEngine(2, chunksize=0)

    @pytest.mark.parametrize("chunksize", [1, 3, 64])
    def test_map_preserves_order_for_any_chunksize(self, chunksize):
        # Chunked dispatch must never reorder results relative to tasks.
        tasks = list(range(23))
        out = ExecutionEngine(2, chunksize=chunksize).map(_double, tasks)
        assert out == [t * 2 for t in tasks]

    def test_resolve_target_both_kinds(self):
        assert resolve_target("psums") is get_workload("psums")
        assert (resolve_target("linear_regression")
                is get_program("linear_regression"))
        with pytest.raises(ReproError):
            resolve_target("no-such-program")

    def test_prefetch_skips_unknown_workloads(self):
        class Adhoc:
            name = "not-in-any-registry"

            def cache_key(self, cfg):
                return ("x",)

        lab = Lab(disk_cache=None)
        n = ExecutionEngine(2).prefetch_simulations(
            lab, [(Adhoc(), RunConfig(threads=2, mode=Mode.GOOD, size=8))]
        )
        assert n == 0 and lab.cache_size() == 0


class TestTrainingDeterminism:
    def test_collect_plan_parallel_identical(self):
        serial = collect_plan(Lab(disk_cache=None), MINI_PLAN, "A")
        parallel = collect_plan(Lab(disk_cache=None), MINI_PLAN, "A",
                                engine=ExecutionEngine(2))
        _instances_equal(serial, parallel)

    def test_collect_plan_with_interference_identical(self):
        serial = collect_plan(Lab(disk_cache=None), MINI_PLAN[:1], "B",
                              interference_p=0.4)
        parallel = collect_plan(Lab(disk_cache=None), MINI_PLAN[:1], "B",
                                interference_p=0.4,
                                engine=ExecutionEngine(2))
        _instances_equal(serial, parallel)


class TestClassifyDeterminism:
    @pytest.fixture(scope="class")
    def trained(self):
        lab = Lab(disk_cache=None)
        inst = collect_plan(lab, MINI_PLAN, "A")
        td = TrainingData(inst, [], inst, [],
                          ScreeningReport(inst, [], {}),
                          ScreeningReport([], [], {}))
        det = FalseSharingDetector(lab)
        det.fit(training=td)
        return det

    def test_classify_cases_jobs4_identical(self, trained):
        w = get_workload("psums")
        serial_det = FalseSharingDetector(Lab(disk_cache=None))
        serial_det.classifier = trained.classifier
        parallel_det = FalseSharingDetector(Lab(disk_cache=None))
        parallel_det.classifier = trained.classifier

        serial = serial_det.classify_cases(w, CASES)
        parallel = parallel_det.classify_cases(w, CASES, jobs=4)
        assert [r.label for r in serial] == [r.label for r in parallel]
        assert [r.seconds for r in serial] == [r.seconds for r in parallel]
        assert [r.meta for r in serial] == [r.meta for r in parallel]


class TestShadowDeterminism:
    def test_run_many_matches_serial(self):
        p = get_program("linear_regression")
        cases = p.verification_cases()[:3]
        det = ShadowMemoryDetector()
        serial = [det.run(p.trace(c)) for c in cases]
        batch = det.run_many([(p.name, c) for c in cases],
                             engine=ExecutionEngine(2))
        for a, b in zip(serial, batch):
            assert (a.fs_misses, a.ts_misses, a.cold_misses,
                    a.instructions, a.nthreads) == \
                   (b.fs_misses, b.ts_misses, b.cold_misses,
                    b.instructions, b.nthreads)
