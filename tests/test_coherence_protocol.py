"""Tests for MESI protocol rules."""

import pytest

from repro.coherence.protocol import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    fill_state,
    holder_reaction,
    snoop_response_kind,
    state_name,
    write_upgrade,
)


class TestStateNames:
    def test_all_states_named(self):
        assert state_name(INVALID) == "I"
        assert state_name(SHARED) == "S"
        assert state_name(EXCLUSIVE) == "E"
        assert state_name(MODIFIED) == "M"

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            state_name(42)

    def test_strength_ordering(self):
        # max() over holder states must pick the authoritative responder.
        assert MODIFIED > EXCLUSIVE > SHARED > INVALID


class TestFillState:
    def test_write_always_modified(self):
        assert fill_state(True, False) == MODIFIED
        assert fill_state(True, True) == MODIFIED

    def test_read_alone_gets_exclusive(self):
        assert fill_state(False, False) == EXCLUSIVE

    def test_read_with_sharer_gets_shared(self):
        assert fill_state(False, True) == SHARED


class TestHolderReaction:
    def test_rfo_invalidates_everyone(self):
        for st in (SHARED, EXCLUSIVE, MODIFIED):
            new, wb = holder_reaction(st, requester_writes=True)
            assert new == INVALID
            assert wb == (st == MODIFIED)

    def test_read_downgrades_m_with_writeback(self):
        assert holder_reaction(MODIFIED, False) == (SHARED, True)

    def test_read_downgrades_e_silently(self):
        assert holder_reaction(EXCLUSIVE, False) == (SHARED, False)

    def test_read_leaves_s(self):
        assert holder_reaction(SHARED, False) == (SHARED, False)

    def test_invalid_holder_stays_invalid(self):
        assert holder_reaction(INVALID, True) == (INVALID, False)


class TestWriteUpgrade:
    def test_m_stays(self):
        assert write_upgrade(MODIFIED) == (MODIFIED, False)

    def test_e_upgrades_silently(self):
        assert write_upgrade(EXCLUSIVE) == (MODIFIED, False)

    def test_s_needs_rfo(self):
        assert write_upgrade(SHARED) == (MODIFIED, True)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            write_upgrade(INVALID)


class TestSnoopResponse:
    def test_mapping(self):
        assert snoop_response_kind(MODIFIED) == "hitm"
        assert snoop_response_kind(EXCLUSIVE) == "hite"
        assert snoop_response_kind(SHARED) == "hit"
        assert snoop_response_kind(INVALID) == "miss"
