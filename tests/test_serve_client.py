"""ServeClient robustness: dead servers, restarts, timeouts, batch op."""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.core.training import FEATURES
from repro.errors import ServeError
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread

N_FEATURES = len(FEATURES)


def _make_clf():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(200, N_FEATURES))
    y = ["bad-fs" if r[0] > 0 else "good" for r in X]
    return C45Classifier().fit(Dataset(X, y, [e.name for e in FEATURES]))


@pytest.fixture(scope="module")
def clf():
    return _make_clf()


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def test_dead_server_raises_serve_error_not_oserror():
    port = _free_port()  # bound then released: nothing listens here
    with pytest.raises(ServeError, match="cannot connect"):
        ServeClient("127.0.0.1", port, timeout=0.5)


def test_connect_retries_are_counted():
    port = _free_port()
    with pytest.raises(ServeError, match="after 3 attempt"):
        ServeClient("127.0.0.1", port, timeout=0.2, retries=2,
                    backoff_s=0.01)


def test_read_timeout_surfaces_as_serve_error():
    """A server that accepts but never answers trips the read timeout."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    accepted = []
    t = threading.Thread(
        target=lambda: accepted.append(listener.accept()), daemon=True
    )
    t.start()
    try:
        client = ServeClient("127.0.0.1", port, timeout=0.3)
        with pytest.raises(ServeError, match="timed out"):
            client.request({"op": "ping"})
        client.close()
    finally:
        listener.close()
        for conn, _ in accepted:
            conn.close()


def test_mid_stream_restart_with_retries_recovers(clf):
    """The server dies between requests and comes back on the same port;
    with a retry budget the client reconnects transparently."""
    first = ServerThread(clf)
    host, port = first.start()
    client = ServeClient(host, port, timeout=10.0, retries=5,
                         backoff_s=0.05)
    rng = np.random.default_rng(7)
    vec = rng.normal(size=N_FEATURES)
    before = client.classify(vec, rid=1)
    first.stop()
    second = ServerThread(clf, host=host, port=port)
    try:
        second.start()
        after = client.classify(vec, rid=2)
        assert after == before
    finally:
        client.close()
        second.stop()


def test_mid_stream_death_without_retries_raises(clf):
    first = ServerThread(clf)
    host, port = first.start()
    client = ServeClient(host, port, timeout=5.0)
    rng = np.random.default_rng(7)
    client.classify(rng.normal(size=N_FEATURES), rid=1)
    first.stop()
    with pytest.raises(ServeError):
        client.classify(rng.normal(size=N_FEATURES), rid=2)
    client.close()


def test_classify_batch_matches_per_row_classify(clf):
    rng = np.random.default_rng(8)
    X = rng.normal(size=(32, N_FEATURES))
    with ServerThread(clf) as (host, port):
        with ServeClient(host, port) as client:
            batched = client.classify_batch(X, rid=1, source="pid-1")
            singles = [client.classify(row, rid=2 + i)
                       for i, row in enumerate(X)]
    assert batched == singles


def test_classify_batch_echoes_source_and_n(clf):
    rng = np.random.default_rng(9)
    X = rng.normal(size=(4, N_FEATURES))
    with ServerThread(clf) as (host, port):
        with ServeClient(host, port) as client:
            resp = client.request({
                "op": "classify", "id": 5, "source": "pid-3", "n": 4,
                "batch": [[float(v) for v in row] for row in X],
            })
    assert resp["source"] == "pid-3"
    assert resp["n"] == 4
    assert len(resp["labels"]) == 4


def test_batch_n_mismatch_rejected(clf):
    rng = np.random.default_rng(10)
    X = rng.normal(size=(4, N_FEATURES))
    with ServerThread(clf) as (host, port):
        with ServeClient(host, port) as client:
            resp = client.request({
                "op": "classify", "id": 6, "n": 5,
                "batch": [[float(v) for v in row] for row in X],
            })
    assert resp["error"] == "bad_request"


def test_batch_wrong_width_rejected(clf):
    with ServerThread(clf) as (host, port):
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="batch"):
                client.classify_batch(np.zeros((2, N_FEATURES + 1)))
