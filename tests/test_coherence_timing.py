"""Tests for the latency model."""

import pytest

from repro.coherence.timing import DEFAULT_LATENCY, LatencyModel


class TestValidation:
    def test_default_is_valid(self):
        assert DEFAULT_LATENCY.l2_hit > 0

    def test_overlap_bounds(self):
        with pytest.raises(ValueError):
            LatencyModel(load_overlap=1.0)
        with pytest.raises(ValueError):
            LatencyModel(store_overlap=-0.1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(memory=-1)
        with pytest.raises(ValueError):
            LatencyModel(hitm_local=-5)


class TestHierarchyOrdering:
    def test_latencies_ordered_by_distance(self):
        lat = DEFAULT_LATENCY
        assert lat.l2_hit < lat.l3_hit < lat.memory
        assert lat.hitm_local < lat.hitm_remote

    def test_dirty_transfer_costlier_than_clean(self):
        lat = DEFAULT_LATENCY
        assert lat.hitm_local > lat.snoop_clean


class TestEffective:
    def test_stores_hide_more_than_loads(self):
        lat = DEFAULT_LATENCY
        assert lat.effective(100, is_write=True) < lat.effective(100, False)

    def test_effective_never_exceeds_penalty(self):
        lat = DEFAULT_LATENCY
        assert lat.effective(100, True) <= 100
        assert lat.effective(100, False) <= 100

    def test_zero_penalty(self):
        assert DEFAULT_LATENCY.effective(0, True) == 0.0


class TestHitm:
    def test_socket_selection(self):
        lat = DEFAULT_LATENCY
        assert lat.hitm(same_socket=True) == lat.hitm_local
        assert lat.hitm(same_socket=False) == lat.hitm_remote


class TestContention:
    def test_single_contender_unscaled(self):
        lat = DEFAULT_LATENCY
        assert lat.contended(100, 1) == 100
        assert lat.contended(100, 0) == 100

    def test_queueing_grows_linearly(self):
        lat = LatencyModel(contention_factor=1.0)
        assert lat.contended(100, 2) == pytest.approx(200)
        assert lat.contended(100, 5) == pytest.approx(500)

    def test_factor_scales_queueing(self):
        lat = LatencyModel(contention_factor=0.5)
        assert lat.contended(100, 3) == pytest.approx(200)
