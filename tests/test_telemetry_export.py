"""Exporter round-trips (JSON + Chrome-trace) and the run manifest."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.errors import TelemetryError
from repro.telemetry.core import Telemetry
from repro.telemetry.export import (
    TELEMETRY_SCHEMA,
    export_chrome_trace,
    export_json,
    spans_from_json,
)
from repro.telemetry.manifest import RunManifest, git_revision


@pytest.fixture
def tel():
    t = Telemetry(enabled=True)
    with t.span("pipeline", stage="demo"):
        with t.span("simulate"):
            pass
        with t.span("classify"):
            pass
    t.count("cases", 3)
    t.gauge("utilization", 0.5)
    return t


# ------------------------------------------------------------- histograms


def test_observe_buckets_by_power_of_two():
    t = Telemetry(enabled=True)
    for v in (1, 2, 3, 64, 65, 0, -5):
        t.observe("batch", v)
    assert t.histograms["batch"] == {
        "<=1": 1, "<=2": 1, "<=4": 1, "<=64": 1, "<=128": 1, "<=0": 2,
    }
    snap = t.snapshot()
    assert snap["histograms"]["batch"]["<=128"] == 1


def test_observe_noop_when_disabled_and_cleared_on_reset():
    t = Telemetry(enabled=False)
    t.observe("batch", 7)
    assert t.histograms == {}
    t.enable()
    t.observe("batch", 7)
    assert t.histograms["batch"] == {"<=8": 1}
    t.reset()
    assert t.histograms == {}


# ------------------------------------------------------------ JSON export


def test_json_export_roundtrip(tel, tmp_path):
    path = tmp_path / "telemetry.json"
    payload = export_json(tel, path)
    # File contents equal the returned payload.
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(payload))
    spans = spans_from_json(on_disk)
    assert [s["name"] for s in spans] == ["pipeline", "simulate", "classify"]
    assert on_disk["counters"] == {"cases": 3}
    assert on_disk["gauges"] == {"utilization": 0.5}
    # Parent indices reconstruct the original tree.
    assert [s["parent"] for s in spans] == [-1, 0, 0]
    # Durations survive serialization exactly.
    for rec, span in zip(spans, tel.spans):
        assert rec["seconds"] == pytest.approx(span.seconds)


def test_spans_from_json_rejects_wrong_schema(tel):
    payload = export_json(tel)
    payload["schema"] = "something-else/9"
    with pytest.raises(TelemetryError):
        spans_from_json(payload)


def test_spans_from_json_rejects_malformed_span(tel):
    payload = export_json(tel)
    payload["spans"][1] = {"name": 42}
    with pytest.raises(TelemetryError):
        spans_from_json(payload)
    with pytest.raises(TelemetryError):
        spans_from_json({"schema": TELEMETRY_SCHEMA, "spans": "nope"})


# ----------------------------------------------------------- Chrome trace


def test_chrome_trace_schema(tel, tmp_path):
    path = tmp_path / "trace.json"
    payload = export_chrome_trace(tel, path)
    assert json.loads(path.read_text()) == json.loads(json.dumps(payload))
    events = payload["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    meta = [e for e in events if e["ph"] == "M"]
    assert [e["name"] for e in complete] == ["pipeline", "simulate",
                                            "classify"]
    assert meta and meta[0]["args"]["name"] == "repro"
    # Timestamps are microseconds; children sit inside the parent interval.
    parent, child = complete[0], complete[1]
    for e in complete:
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert e["pid"] == complete[0]["pid"]
        assert "tid" in e
    assert parent["ts"] <= child["ts"]
    assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-3
    # Span seconds -> microseconds.
    assert parent["dur"] == pytest.approx(tel.spans[0].seconds * 1e6)
    assert counters and counters[0] == {
        "name": "cases", "ph": "C", "ts": pytest.approx(counters[0]["ts"]),
        "pid": parent["pid"], "args": {"value": 3},
    }
    assert payload["otherData"]["gauges"] == {"utilization": 0.5}


def test_chrome_trace_attrs_coerced_to_json(tmp_path):
    tel = Telemetry(enabled=True)
    with tel.span("s", num=1, text="x", obj=object()):
        pass
    payload = export_chrome_trace(tel)
    args = payload["traceEvents"][1]["args"]
    assert args["num"] == 1 and args["text"] == "x"
    assert isinstance(args["obj"], str)
    json.dumps(payload)  # must be serializable end to end


# -------------------------------------------------------------- manifest


def test_manifest_collects_environment(tel):
    manifest = RunManifest.collect(config={"mode": "smoke"}, seed=7,
                                   telemetry=tel)
    assert manifest.seed == 7
    assert manifest.config == {"mode": "smoke"}
    assert manifest.python and manifest.numpy
    assert manifest.sim_version and manifest.shadow_version
    assert manifest.counters == {"cases": 3}
    tree = manifest.wall_time_tree
    assert set(tree) == {"pipeline"}
    assert set(tree["pipeline"]["children"]) == {"simulate", "classify"}


def test_manifest_git_sha_matches_repo():
    sha, _dirty = git_revision()
    expected = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True)
    if expected.returncode == 0:
        assert sha == expected.stdout.strip()
        assert len(sha) == 40
    else:  # pragma: no cover - sandbox without git
        assert sha == "unknown"


def test_git_revision_degrades_outside_repo(tmp_path):
    sha, dirty = git_revision(cwd=tmp_path)
    assert sha == "unknown" and dirty is False


def test_manifest_save_load_roundtrip(tel, tmp_path):
    manifest = RunManifest.collect(config={"k": "v"}, seed=1, telemetry=tel)
    path = manifest.save(tmp_path / "sub" / "manifest.json")
    loaded = RunManifest.load(path)
    assert loaded.to_dict() == manifest.to_dict()
    raw = json.loads(path.read_text())
    assert raw["schema"] == manifest.schema
    assert raw["versions"]["sim"] == manifest.sim_version
