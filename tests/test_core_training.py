"""Tests for training-data collection and screening."""

import numpy as np
import pytest

from repro.core.lab import Lab
from repro.core.training import (
    FEATURE_NAMES,
    PART_A_PLAN,
    PART_B_PLAN,
    PlanRow,
    collect_plan,
    plan_counts,
    screen_instances,
)
from repro.errors import ConfigError
from repro.ml.dataset import Instance
from repro.workloads.base import Mode


class TestPlans:
    def test_part_a_matches_table3_initial(self):
        assert plan_counts(PART_A_PLAN) == {
            "good": 324, "bad-fs": 216, "bad-ma": 135}

    def test_part_b_matches_table3_initial(self):
        assert plan_counts(PART_B_PLAN) == {"good": 171, "bad-ma": 100}

    def test_planrow_config_expansion(self):
        row = PlanRow("psums", Mode.GOOD, (10, 20), (2, 4), ("random",), 3)
        cfgs = list(row.configs())
        assert len(cfgs) == row.count() == 12
        assert len({c.run_id() for c in cfgs}) == 12

    def test_plan_rows_reference_real_workloads(self):
        from repro.workloads.registry import get_workload

        for row in PART_A_PLAN + PART_B_PLAN:
            w = get_workload(row.workload)
            assert row.mode in w.modes


class TestCollect:
    def test_small_plan_collects_instances(self):
        lab = Lab(disk_cache=None)
        plan = [PlanRow("psums", Mode.GOOD, (1500,), (3,), ("random",), 2)]
        insts = collect_plan(lab, plan, part="A")
        assert len(insts) == 2
        for inst in insts:
            assert inst.label == "good"
            assert inst.features.shape == (15,)
            assert inst.meta["part"] == "A"

    def test_features_are_normalized_counts(self):
        lab = Lab(disk_cache=None, noisy=False)
        plan = [PlanRow("psums", Mode.BAD_FS, (1500,), (4,), ("random",), 1)]
        inst = collect_plan(lab, plan, part="A")[0]
        hitm_idx = FEATURE_NAMES.index("Snoop_Response.HIT_M")
        assert 0.001 < inst.features[hitm_idx] < 0.5


def make_inst(label, workload="w", threads=3, size=10,
              fill=0.01, repl=0.01, dtlb=0.0001):
    feats = np.zeros(15)
    feats[FEATURE_NAMES.index("L2_Transactions.FILL")] = fill
    feats[FEATURE_NAMES.index("L1D_Cache_Replacements")] = repl
    feats[FEATURE_NAMES.index("DTLB_Misses")] = dtlb
    return Instance(feats, label, {"workload": workload, "threads": threads,
                                   "size": size})


class TestScreening:
    def test_weak_badma_removed(self):
        insts = (
            [make_inst("good") for _ in range(4)]
            + [make_inst("bad-ma", repl=0.011)]   # ~1x good: weak
            + [make_inst("bad-ma", repl=0.30)]    # 30x good: strong
        )
        rep = screen_instances(insts)
        assert rep.removed_by_mode == {"bad-ma": 1}
        assert len(rep.kept) == 5

    def test_good_outlier_removed(self):
        insts = ([make_inst("good") for _ in range(6)]
                 + [make_inst("good", repl=0.2)])
        rep = screen_instances(insts)
        assert rep.removed_by_mode == {"good": 1}

    def test_bad_fs_never_removed(self):
        insts = ([make_inst("good") for _ in range(4)]
                 + [make_inst("bad-fs", repl=0.01)])
        rep = screen_instances(insts)
        assert rep.removed_by_mode == {}

    def test_badma_without_good_sibling_uses_fallback(self):
        insts = (
            [make_inst("good", size=10) for _ in range(4)]
            + [make_inst("bad-ma", size=99, repl=0.012)]  # no good at size 99
        )
        rep = screen_instances(insts)
        assert rep.removed_by_mode == {"bad-ma": 1}

    def test_badma_with_no_reference_kept(self):
        insts = [make_inst("bad-ma", workload="lonely", repl=0.01)]
        rep = screen_instances(insts)
        assert rep.removed_by_mode == {}

    def test_bad_ratio_params_rejected(self):
        with pytest.raises(ConfigError):
            screen_instances([], min_badma_ratio=1.0)
        with pytest.raises(ConfigError):
            screen_instances([], good_outlier_ratio=0.5)

    def test_screening_deterministic(self):
        insts = ([make_inst("good") for _ in range(4)]
                 + [make_inst("bad-ma", repl=0.011)])
        a = screen_instances(insts)
        b = screen_instances(insts)
        assert a.removed_by_mode == b.removed_by_mode
