"""``repro-results`` CLI: ingest/list/trend/gate/export round-trips."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as umbrella_main
from repro.results.cli import results_main

from tests.test_results_store import bench_payload, serve_payload

REPO = Path(__file__).parent.parent


def _write(path, doc):
    path.write_text(json.dumps(doc, indent=2))
    return str(path)


def test_cli_ingest_list_trend_gate_export_roundtrip(tmp_path, capsys):
    store = str(tmp_path / "history.db")
    sim = _write(tmp_path / "sim.json", bench_payload())
    srv = _write(tmp_path / "srv.json", serve_payload())

    assert results_main(["ingest", store, sim, srv]) == 0
    out = capsys.readouterr().out
    assert "ingested" in out and "[bench]" in out and "[serve]" in out

    assert results_main(["list", store]) == 0
    out = capsys.readouterr().out
    assert "sim.json" in out and "srv.json" in out and "2 ingested" in out

    assert results_main(["trend", store, "--fail-empty"]) == 0
    out = capsys.readouterr().out
    assert "routing.coverage" in out and "loadgen.throughput_rps" in out

    assert results_main(["gate", store]) == 0
    out = capsys.readouterr().out
    assert "results gate: PASS" in out

    export = tmp_path / "export.json"
    assert results_main(["export", store, str(export)]) == 0
    doc = json.loads(export.read_text())
    assert doc["runs"]["kind"] == ["bench", "serve"]


def test_cli_ingest_committed_baselines_round_trip(tmp_path, capsys):
    # The results-smoke CI job in miniature: committed artifacts must
    # ingest, trend non-empty, and gate clean on a fresh store.
    store = str(tmp_path / "smoke.db")
    assert results_main([
        "ingest", store,
        str(REPO / "BENCH_simulator.json"),
        str(REPO / "BENCH_serve.json"),
    ]) == 0
    capsys.readouterr()
    assert results_main(["trend", store, "--fail-empty"]) == 0
    assert "drive.psums/bad-fs/t4.speedup" in capsys.readouterr().out
    assert results_main(["gate", store]) == 0


def test_cli_ingest_dedups_and_reports_it(tmp_path, capsys):
    store = str(tmp_path / "h.db")
    sim = _write(tmp_path / "sim.json", bench_payload())
    assert results_main(["ingest", store, sim]) == 0
    capsys.readouterr()
    assert results_main(["ingest", store, sim]) == 0
    assert "deduped" in capsys.readouterr().out


def test_cli_gate_regression_exit_1(tmp_path, capsys):
    store = str(tmp_path / "h.db")
    good = _write(tmp_path / "good.json", bench_payload(fast=1_000_000))
    bad = _write(tmp_path / "bad.json", bench_payload(fast=100_000))
    assert results_main(["ingest", store, good, bad]) == 0
    capsys.readouterr()
    assert results_main(["gate", store]) == 1
    captured = capsys.readouterr()
    assert "results gate: FAIL" in captured.err


def test_cli_gate_writes_markdown_summary(tmp_path, capsys):
    store = str(tmp_path / "h.db")
    sim = _write(tmp_path / "sim.json", bench_payload())
    md = tmp_path / "summary.md"
    assert results_main(["ingest", store, sim]) == 0
    assert results_main(["gate", store, "--markdown", str(md)]) == 0
    text = md.read_text()
    assert text.startswith("**results gate: PASS**")


def test_cli_trend_markdown_and_output_file(tmp_path, capsys):
    store = str(tmp_path / "h.db")
    sim = _write(tmp_path / "sim.json", bench_payload())
    out = tmp_path / "trend.md"
    assert results_main(["ingest", store, sim]) == 0
    capsys.readouterr()
    assert results_main(["trend", store, "--markdown",
                         "--output", str(out)]) == 0
    assert out.read_text().startswith("| kind |")


def test_cli_trend_fail_empty_on_fresh_store(tmp_path, capsys):
    store = str(tmp_path / "empty.db")
    assert results_main(["trend", store, "--fail-empty"]) == 1
    assert "no metric rows" in capsys.readouterr().err


def test_cli_errors_exit_2(tmp_path, capsys):
    store = str(tmp_path / "h.db")
    bogus = _write(tmp_path / "bogus.json", {"mystery": 1})
    assert results_main(["ingest", store, bogus]) == 2
    assert "error:" in capsys.readouterr().err
    notjson = tmp_path / "notjson.txt"
    notjson.write_text("{nope")
    assert results_main(["ingest", store, str(notjson)]) == 2
    # Corrupt store file.
    corrupt = tmp_path / "corrupt.db"
    corrupt.write_bytes(b"garbage bytes, definitely not sqlite")
    assert results_main(["list", str(corrupt)]) == 2


def test_umbrella_dispatches_results(tmp_path, capsys):
    store = str(tmp_path / "h.db")
    sim = _write(tmp_path / "sim.json", bench_payload())
    assert umbrella_main(["results", "ingest", store, sim]) == 0
    assert "[bench]" in capsys.readouterr().out


def test_bench_cli_results_store_hook(tmp_path, capsys):
    # --input mode: the payload is ingested without re-running the grid.
    from repro.telemetry.bench import bench_main

    store = tmp_path / "h.db"
    cur = _write(tmp_path / "cur.json", bench_payload())
    assert bench_main(["--input", cur,
                       "--results-store", str(store)]) == 0
    assert "results:" in capsys.readouterr().out
    assert results_main(["list", str(store)]) == 0
    assert "1 ingested" in capsys.readouterr().out
