"""Tests for workload abstractions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.workloads.base import (
    Mode,
    RunConfig,
    ordered_visit,
    parse_mode,
    partition,
    stride_of,
)
from repro.utils.rng import rng_for


class TestMode:
    def test_parse_strings(self):
        assert parse_mode("good") is Mode.GOOD
        assert parse_mode("bad-fs") is Mode.BAD_FS
        assert parse_mode("bad-ma") is Mode.BAD_MA

    def test_parse_mode_passthrough(self):
        assert parse_mode(Mode.GOOD) is Mode.GOOD

    def test_parse_unknown_rejected(self):
        with pytest.raises(ConfigError):
            parse_mode("terrible")


class TestRunConfig:
    def test_defaults(self):
        cfg = RunConfig()
        assert cfg.threads == 1
        assert cfg.mode is Mode.GOOD

    def test_string_mode_coerced(self):
        assert RunConfig(mode="bad-fs").mode is Mode.BAD_FS

    def test_run_id_distinguishes_reps(self):
        a = RunConfig(rep=0).run_id()
        b = RunConfig(rep=1).run_id()
        assert a != b

    def test_with_(self):
        cfg = RunConfig(threads=2).with_(threads=4)
        assert cfg.threads == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunConfig(threads=0)
        with pytest.raises(ConfigError):
            RunConfig(size=0)
        with pytest.raises(ConfigError):
            RunConfig(pattern="zigzag")
        with pytest.raises(ConfigError):
            RunConfig(rep=-1)

    def test_hashable(self):
        assert hash(RunConfig()) == hash(RunConfig())


class TestStrideOf:
    def test_values(self):
        assert stride_of("linear") == 1
        assert stride_of("stride4") == 4
        assert stride_of("stride16") == 16

    def test_rejects(self):
        with pytest.raises(ConfigError):
            stride_of("random")
        with pytest.raises(ConfigError):
            stride_of("stride1")
        with pytest.raises(ConfigError):
            stride_of("strideX")


class TestPartition:
    def test_even_split(self):
        assert partition(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_uneven_split(self):
        bounds = partition(10, 3)
        sizes = [e - s for s, e in bounds]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        bounds = partition(2, 4)
        assert bounds[0] == (0, 1)
        assert bounds[-1] == (2, 2)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            partition(5, 0)

    @given(st.integers(0, 1000), st.integers(1, 16))
    def test_covers_range_without_overlap(self, total, parts):
        bounds = partition(total, parts)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == total
        for (s1, e1), (s2, e2) in zip(bounds, bounds[1:]):
            assert e1 == s2


class TestOrderedVisit:
    def test_good_is_linear(self):
        out = ordered_visit(8, Mode.GOOD, "random", rng_for("x"))
        assert (out == np.arange(8)).all()

    def test_bad_fs_is_linear_too(self):
        out = ordered_visit(8, Mode.BAD_FS, "random", rng_for("x"))
        assert (out == np.arange(8)).all()

    def test_bad_ma_random_is_permutation(self):
        out = ordered_visit(32, Mode.BAD_MA, "random", rng_for("x"))
        assert sorted(out.tolist()) == list(range(32))
        assert (out != np.arange(32)).any()

    def test_bad_ma_stride_visits_each_once(self):
        out = ordered_visit(16, Mode.BAD_MA, "stride4", rng_for("x"))
        assert sorted(out.tolist()) == list(range(16))
        assert out[1] - out[0] == 4

    @given(st.integers(1, 200),
           st.sampled_from(["random", "stride2", "stride4", "stride8"]))
    def test_same_computation_property(self, n, pattern):
        """bad-ma reorders but never changes the set of visited indices."""
        out = ordered_visit(n, Mode.BAD_MA, pattern, rng_for("p", n))
        assert sorted(out.tolist()) == list(range(n))
