"""Tests for cross-validation and confusion matrices."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.ml.validation import ConfusionMatrix, cross_validate, holdout_score


def toy(n=90, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = ["p" if x[0] > 0 else "n" for x in X]
    return Dataset(X, y, ["a", "b"])


class TestConfusionMatrix:
    def test_add_and_count(self):
        cm = ConfusionMatrix.empty(["a", "b"])
        cm.add("a", "a")
        cm.add("a", "b")
        cm.add("b", "b")
        assert cm.count("a", "a") == 1
        assert cm.count("a", "b") == 1
        assert cm.total == 3
        assert cm.correct == 2
        assert cm.accuracy == pytest.approx(2 / 3)

    def test_unknown_actual_rejected(self):
        cm = ConfusionMatrix.empty(["a"])
        with pytest.raises(DatasetError):
            cm.add("zzz", "a")

    def test_unknown_predicted_grows_matrix(self):
        cm = ConfusionMatrix.empty(["a"])
        cm.add("a", "new")
        assert cm.count("a", "new") == 1
        assert cm.accuracy == 0.0

    def test_merge(self):
        a = ConfusionMatrix.empty(["x", "y"])
        a.add("x", "x")
        b = ConfusionMatrix.empty(["x", "y"])
        b.add("y", "x")
        m = a.merge(b)
        assert m.total == 2
        assert m.correct == 1

    def test_merge_mismatch_rejected(self):
        a = ConfusionMatrix.empty(["x"])
        b = ConfusionMatrix.empty(["y"])
        with pytest.raises(DatasetError):
            a.merge(b)

    def test_per_class_metrics(self):
        cm = ConfusionMatrix.empty(["a", "b"])
        for _ in range(8):
            cm.add("a", "a")
        cm.add("a", "b")
        cm.add("b", "b")
        per = cm.per_class()
        assert per["a"]["recall"] == pytest.approx(8 / 9)
        assert per["b"]["precision"] == pytest.approx(1 / 2)
        assert per["a"]["support"] == 9

    def test_render(self):
        cm = ConfusionMatrix.empty(["a", "b"])
        cm.add("a", "a")
        out = cm.render("T")
        assert "T" in out and "a" in out

    def test_empty_accuracy(self):
        assert ConfusionMatrix.empty(["a"]).accuracy == 0.0


class TestCrossValidate:
    def test_separable_high_accuracy(self):
        cm = cross_validate(C45Classifier, toy(), k=5)
        assert cm.accuracy > 0.9
        assert cm.total == 90

    def test_every_instance_tested_once(self):
        cm = cross_validate(C45Classifier, toy(120), k=10)
        assert cm.total == 120

    def test_deterministic(self):
        a = cross_validate(C45Classifier, toy(), k=5, seed=3)
        b = cross_validate(C45Classifier, toy(), k=5, seed=3)
        assert (a.matrix == b.matrix).all()


class TestHoldout:
    def test_train_test_split(self):
        cm = holdout_score(C45Classifier, toy(seed=0), toy(seed=1))
        assert cm.total == 90
        assert cm.accuracy > 0.85

    def test_unseen_class_in_test(self):
        train = toy()
        X = np.array([[0.5, 0.0]])
        test = Dataset(X, ["weird"], ["a", "b"])
        cm = holdout_score(C45Classifier, train, test)
        assert cm.total == 1
        assert cm.correct == 0
