"""Tests for cache-line geometry and array layouts."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory.layout import (
    LINE_SIZE,
    PAGE_SIZE,
    ArrayLayout,
    align_up,
    line_of,
    offset_in_line,
    page_of,
    shares_line,
)


class TestGeometry:
    def test_line_of_scalar(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1

    def test_line_of_array(self):
        addrs = np.array([0, 64, 130], dtype=np.int64)
        assert (line_of(addrs) == [0, 1, 2]).all()

    def test_page_of(self):
        assert page_of(PAGE_SIZE - 1) == 0
        assert page_of(PAGE_SIZE) == 1

    def test_offset_in_line(self):
        assert offset_in_line(64) == 0
        assert offset_in_line(70) == 6

    def test_shares_line(self):
        assert shares_line(0, 63)
        assert not shares_line(63, 64)

    def test_line_page_consistency(self):
        # every page holds a whole number of lines
        assert PAGE_SIZE % LINE_SIZE == 0


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(65, 64) == 128

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            align_up(10, 3)
        with pytest.raises(ValueError):
            align_up(10, 0)

    @given(st.integers(0, 1 << 40), st.sampled_from([1, 2, 8, 64, 4096]))
    def test_result_aligned_and_minimal(self, addr, align):
        out = align_up(addr, align)
        assert out % align == 0
        assert 0 <= out - addr < align


class TestArrayLayout:
    def test_packed_addressing(self):
        a = ArrayLayout(base=100, elem_size=4, length=10)
        assert a.addr(0) == 100
        assert a.addr(3) == 112
        assert a.size_bytes == 40

    def test_strided_addressing(self):
        a = ArrayLayout(base=0, elem_size=8, length=4, stride=64)
        assert a.addr(1) == 64
        assert a.size_bytes == 3 * 64 + 8

    def test_vectorized_addr(self):
        a = ArrayLayout(base=0, elem_size=4, length=100)
        idx = np.array([0, 2, 99])
        assert (a.addr(idx) == [0, 8, 396]).all()

    def test_addr_out_of_range(self):
        a = ArrayLayout(base=0, elem_size=4, length=3)
        with pytest.raises(IndexError):
            a.addr(3)
        with pytest.raises(IndexError):
            a.addr(np.array([0, 5]))

    def test_addrs_matches_addr(self):
        a = ArrayLayout(base=16, elem_size=8, length=5)
        assert (a.addrs() == [a.addr(i) for i in range(5)]).all()

    def test_lines_spanned(self):
        a = ArrayLayout(base=0, elem_size=4, length=16)  # 64 bytes
        assert a.lines_spanned() == 1
        b = ArrayLayout(base=60, elem_size=4, length=2)  # crosses a boundary
        assert b.lines_spanned() == 2

    def test_empty_layout(self):
        a = ArrayLayout(base=0, elem_size=4, length=0)
        assert a.size_bytes == 0
        assert a.lines_spanned() == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ArrayLayout(base=-1, elem_size=4, length=1)
        with pytest.raises(ValueError):
            ArrayLayout(base=0, elem_size=0, length=1)
        with pytest.raises(ValueError):
            ArrayLayout(base=0, elem_size=8, length=1, stride=4)

    @given(st.integers(1, 64), st.integers(1, 200))
    def test_elements_never_overlap(self, elem, length):
        a = ArrayLayout(base=0, elem_size=elem, length=length)
        addrs = a.addrs()
        assert (np.diff(addrs) >= elem).all()


LINE_SIZES = st.sampled_from([16, 32, 64, 128, 256])
ADDRS = st.integers(0, 1 << 40)


class TestGeometryProperties:
    """Hypothesis sweeps over the line-geometry edge cases."""

    @given(ADDRS, LINE_SIZES)
    def test_line_offset_decomposition(self, addr, line_size):
        # line index and in-line offset must reassemble the address
        assert (int(line_of(addr, line_size)) * line_size
                + int(offset_in_line(addr, line_size))) == addr
        assert 0 <= offset_in_line(addr, line_size) < line_size

    @given(ADDRS, LINE_SIZES)
    def test_shares_line_is_reflexive_and_local(self, addr, line_size):
        assert shares_line(addr, addr, line_size)
        last = addr - offset_in_line(addr, line_size) + line_size - 1
        assert shares_line(addr, last, line_size)
        assert not shares_line(addr, last + 1, line_size)

    @given(ADDRS, st.integers(1, 8).map(lambda k: 1 << k))
    def test_align_up_idempotent(self, addr, align):
        out = align_up(addr, align)
        assert align_up(out, align) == out
        assert out % align == 0
        assert 0 <= out - addr < align

    @given(st.sampled_from([3, 5, 6, 12, 48, 96]))
    def test_non_power_of_two_line_size_rejected(self, line_size):
        with pytest.raises(ValueError):
            line_of(0, line_size)
        with pytest.raises(ValueError):
            offset_in_line(1, line_size)

    @given(ADDRS.filter(lambda a: a % LINE_SIZE != 0))
    def test_default_line_size_consistency(self, addr):
        # the LINE_SHIFT fast path must equal the generic path
        assert line_of(addr) == line_of(addr, LINE_SIZE)
        assert offset_in_line(addr) == offset_in_line(addr, LINE_SIZE)


class TestLayoutProperties:
    @given(st.integers(0, 1 << 20), st.integers(1, 64))
    def test_zero_length_array_is_invisible(self, base, elem):
        a = ArrayLayout(base=base, elem_size=elem, length=0)
        assert a.size_bytes == 0
        assert a.lines_spanned() == 0
        assert a.addrs().size == 0
        with pytest.raises(IndexError):
            a.addr(0)

    @given(st.integers(0, 4 * LINE_SIZE), st.integers(1, 32),
           st.integers(1, 100))
    def test_straddling_base_spans_enough_lines(self, base, elem, length):
        # lines_spanned must match the first/last byte's lines exactly,
        # including bases that straddle a boundary mid-element
        a = ArrayLayout(base=base, elem_size=elem, length=length)
        first = int(line_of(a.base))
        last = int(line_of(a.end - 1))
        assert a.lines_spanned() == last - first + 1

    @given(st.integers(0, 1 << 20), st.integers(1, 16),
           st.integers(2, 50), st.integers(0, 4))
    def test_stride_padding_never_shrinks_span(self, base, elem, length,
                                               pad):
        packed = ArrayLayout(base=base, elem_size=elem, length=length)
        padded = ArrayLayout(base=base, elem_size=elem, length=length,
                             stride=elem + pad)
        assert padded.lines_spanned() >= packed.lines_spanned()
