"""Tests for EXPERIMENTS.md generation (with stubbed experiments)."""

import pytest

from repro.experiments import report
from repro.experiments.base import ExperimentResult


@pytest.fixture
def stubbed(monkeypatch):
    calls = []

    def fake_run(exp_id, ctx):
        calls.append(exp_id)
        return ExperimentResult(
            exp_id=exp_id,
            title=f"title-{exp_id}",
            text=f"text for {exp_id}",
            paper=f"paper says {exp_id}",
        )

    monkeypatch.setattr(report, "run_experiment", fake_run)
    monkeypatch.setattr(report, "experiment_ids",
                        lambda: ["table1", "table5", "zz_custom"])
    monkeypatch.setattr(report, "experiment_title", lambda e: f"T {e}")
    return calls


class TestGenerate:
    def test_contains_all_experiments(self, stubbed):
        text = report.generate(ctx=object())
        for eid in ("table1", "table5", "zz_custom"):
            assert f"## {eid}:" in text
            assert f"text for {eid}" in text
            assert f"paper says {eid}" in text

    def test_canonical_order_respected(self, stubbed):
        text = report.generate(ctx=object())
        assert text.index("## table1:") < text.index("## table5:")
        assert text.index("## table5:") < text.index("## zz_custom:")

    def test_writes_file(self, stubbed, tmp_path):
        out = tmp_path / "EXP.md"
        report.generate(path=out, ctx=object())
        assert out.exists()
        assert "## table1:" in out.read_text()

    def test_header_present(self, stubbed):
        text = report.generate(ctx=object())
        assert text.startswith("# EXPERIMENTS")
        assert "paper vs. measured" in text
