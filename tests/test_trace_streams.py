"""Tests for the chunked round-robin interleaver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.trace.access import ProgramTrace, make_thread
from repro.trace.streams import interleave


def _prog(lengths, base_step=1000):
    threads = []
    for i, n in enumerate(lengths):
        addrs = np.arange(n, dtype=np.int64) + i * base_step
        threads.append(make_thread(addrs))
    return ProgramTrace(threads)


class TestInterleave:
    def test_round_robin_chunks(self):
        m = interleave(_prog([8, 8]), chunk=4)
        assert m.core[:12].tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0]

    def test_preserves_all_accesses(self):
        prog = _prog([10, 7, 3])
        m = interleave(prog, chunk=4)
        assert len(m) == 20

    def test_per_thread_order_preserved(self):
        prog = _prog([13, 9])
        m = interleave(prog, chunk=4)
        for tid in range(2):
            sel = m.core == tid
            assert (m.addr[sel] == prog.threads[tid].addrs).all()

    def test_single_thread_passthrough(self):
        prog = _prog([5])
        m = interleave(prog)
        assert (m.addr == prog.threads[0].addrs).all()
        assert (m.core == 0).all()

    def test_unequal_lengths_finish_early(self):
        m = interleave(_prog([8, 2]), chunk=2)
        # thread 1 contributes only its 2 accesses, in round 0
        assert (m.core == 1).sum() == 2
        assert m.core[-1] == 0

    def test_writes_travel_with_addresses(self):
        a = make_thread(np.array([1, 2]), np.array([True, False]))
        b = make_thread(np.array([3]), np.array([True]))
        m = interleave(ProgramTrace([a, b]), chunk=1)
        for addr, w in [(1, True), (2, False), (3, True)]:
            idx = int(np.flatnonzero(m.addr == addr)[0])
            assert m.is_write[idx] == w

    def test_chunk_one_alternates(self):
        m = interleave(_prog([3, 3]), chunk=1)
        assert m.core.tolist() == [0, 1, 0, 1, 0, 1]

    def test_bad_chunk_rejected(self):
        with pytest.raises(TraceError):
            interleave(_prog([2, 2]), chunk=0)

    def test_empty_threads(self):
        prog = ProgramTrace([make_thread(np.array([], dtype=np.int64)),
                             make_thread(np.array([], dtype=np.int64))])
        m = interleave(prog)
        assert len(m) == 0

    @settings(max_examples=25)
    @given(
        st.lists(st.integers(0, 40), min_size=2, max_size=5),
        st.integers(1, 8),
    )
    def test_merge_is_a_permutation(self, lengths, chunk):
        if sum(lengths) == 0:
            return
        prog = _prog(lengths)
        m = interleave(prog, chunk=chunk)
        assert len(m) == sum(lengths)
        all_addrs = np.concatenate([t.addrs for t in prog.threads])
        assert sorted(m.addr.tolist()) == sorted(all_addrs.tolist())

    @settings(max_examples=25)
    @given(st.integers(1, 6))
    def test_fairness_within_rounds(self, chunk):
        # With equal-length threads, after the merge every prefix contains
        # roughly equal work from each thread (within one chunk).
        prog = _prog([24, 24, 24])
        m = interleave(prog, chunk=chunk)
        for cut in range(0, 72, 12):
            counts = np.bincount(m.core[:cut + 12], minlength=3)
            assert counts.max() - counts.min() <= chunk
