"""Tests for the perf-c2c-style HITM sampling report."""

import numpy as np
import pytest

from repro.coherence.machine import MulticoreMachine
from repro.errors import PMUError
from repro.tools.c2c import c2c_report
from repro.trace.access import ProgramTrace, make_thread
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload

from tests.conftest import SMALL_SPEC


def sample(req, hold, addr, w=True):
    return (req, hold, addr, w)


class TestAggregation:
    def test_groups_by_line(self):
        rep = c2c_report([
            sample(0, 1, 4096), sample(1, 0, 4104), sample(0, 1, 8192),
        ])
        assert len(rep.lines) == 2
        assert rep.lines[0].samples == 2  # hottest first

    def test_offsets_tracked(self):
        rep = c2c_report([sample(0, 1, 4096), sample(1, 0, 4104)])
        cl = rep.lines[0]
        assert set(cl.offsets) == {0, 8}

    def test_store_fraction(self):
        rep = c2c_report([sample(0, 1, 4096, True),
                          sample(1, 0, 4096, False)])
        assert rep.lines[0].write_samples == 1

    def test_requesters_and_holders(self):
        rep = c2c_report([sample(0, 1, 4096), sample(2, 0, 4096)])
        cl = rep.lines[0]
        assert set(cl.requesters) == {0, 2}
        assert set(cl.holders) == {0, 1}
        assert cl.n_cpus == 3

    def test_empty_samples(self):
        rep = c2c_report([])
        assert rep.lines == []
        assert rep.total_samples == 0

    def test_bad_period_rejected(self):
        with pytest.raises(PMUError):
            c2c_report([], sample_period=0)


class TestSharingKind:
    def test_disjoint_offsets_false_sharing(self):
        rep = c2c_report([sample(0, 1, 4096), sample(1, 0, 4104)])
        assert rep.lines[0].sharing_kind == "false-sharing-suspect"

    def test_single_offset_true_sharing(self):
        rep = c2c_report([sample(0, 1, 4096), sample(1, 0, 4096)])
        assert rep.lines[0].sharing_kind == "true-sharing-suspect"

    def test_suspect_filter(self):
        rep = c2c_report([
            sample(0, 1, 4096), sample(1, 0, 4104),   # false sharing
            sample(0, 1, 8192), sample(1, 0, 8192),   # true sharing
        ])
        suspects = rep.false_sharing_suspects()
        assert [cl.line for cl in suspects] == [64]


class TestMachineIntegration:
    def test_sampling_disabled_by_default(self, machine):
        t0 = make_thread(np.full(100, 4096, dtype=np.int64),
                         np.ones(100, bool))
        t1 = make_thread(np.full(100, 4104, dtype=np.int64),
                         np.ones(100, bool))
        res = machine.run(ProgramTrace([t0, t1]))
        assert res.hitm_samples == []

    def test_sampling_period_respected(self):
        m = MulticoreMachine(SMALL_SPEC, hitm_sample_period=5)
        t0 = make_thread(np.full(500, 4096, dtype=np.int64),
                         np.ones(500, bool))
        t1 = make_thread(np.full(500, 4104, dtype=np.int64),
                         np.ones(500, bool))
        res = m.run(ProgramTrace([t0, t1]))
        hitm = res.counts["SNOOP_RESPONSE.HITM"]
        assert hitm > 0
        assert len(res.hitm_samples) == pytest.approx(hitm / 5, abs=1)

    def test_negative_period_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            MulticoreMachine(SMALL_SPEC, hitm_sample_period=-1)

    def test_end_to_end_finds_the_psum_line(self):
        """Sampled c2c attribution agrees with ground truth on pdot."""
        from repro.coherence.machine import SCALED_WESTMERE

        m = MulticoreMachine(SCALED_WESTMERE, hitm_sample_period=11)
        pdot = get_workload("pdot")
        tr = pdot.trace(RunConfig(threads=4, mode="bad-fs", size=65_536))
        res = m.run(tr)
        rep = c2c_report(res.hitm_samples, sample_period=11)
        suspects = rep.false_sharing_suspects()
        assert suspects, "the packed psum line must be flagged"
        top = suspects[0]
        # 4 threads fight over it at 4 distinct 4-byte offsets
        assert top.n_cpus == 4
        assert len(top.offsets) >= 3

    def test_good_run_produces_few_samples(self):
        from repro.coherence.machine import SCALED_WESTMERE

        m = MulticoreMachine(SCALED_WESTMERE, hitm_sample_period=1)
        pdot = get_workload("pdot")
        bad = m.run(pdot.trace(RunConfig(threads=4, mode="bad-fs",
                                         size=65_536)))
        good = m.run(pdot.trace(RunConfig(threads=4, mode="good",
                                          size=65_536)))
        assert len(good.hitm_samples) < len(bad.hitm_samples) / 20


class TestRender:
    def test_render_contains_key_columns(self):
        rep = c2c_report([sample(0, 1, 4096), sample(1, 0, 4104)])
        out = rep.render()
        assert "Shared Data Cache Line Table" in out
        assert "0x1000" in out
        assert "false-sharing-suspect" in out
