"""Tests for windowed PMU-sample aggregation (repro.serve.stream) and the
sampler's streaming mode (PMUSampler.measure_stream)."""

from __future__ import annotations

import pytest

from repro.core.training import FEATURES
from repro.errors import PMUError, ServeError
from repro.pmu.counters import EventVector
from repro.pmu.events import NORMALIZER, TABLE2_EVENTS
from repro.pmu.sampler import PMUSampler
from repro.serve.stream import WindowAggregator
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

INSTR = NORMALIZER.name


def _sample(loads=100.0, instr=1000.0):
    counts = {e.name: 0.0 for e in TABLE2_EVENTS}
    counts[INSTR] = instr
    counts["L1D_Cache_Replacements"] = loads
    return counts


class TestTumbling:
    def test_grid_and_completion(self):
        agg = WindowAggregator(window=1.0)
        assert agg.add("a", 0.1, _sample()) == []
        assert agg.add("a", 0.9, _sample()) == []
        done = agg.add("a", 1.0, _sample())  # t=1.0 closes [0, 1)
        assert len(done) == 1
        w = done[0]
        assert (w.source, w.index, w.t_start, w.t_end) == ("a", 0, 0.0, 1.0)
        assert w.samples == 2
        assert w.vector.count(NORMALIZER) == 2000.0

    def test_feature_vector_is_normalized(self):
        agg = WindowAggregator(window=1.0)
        agg.add("a", 0.2, _sample(loads=300.0, instr=600.0))
        [w] = agg.add("a", 1.5, _sample(loads=100.0, instr=400.0))
        i = [e.name for e in FEATURES].index("L1D_Cache_Replacements")
        assert w.features[i] == pytest.approx(300.0 / 600.0)
        assert len(w.features) == len(FEATURES)

    def test_gap_skips_windows(self):
        agg = WindowAggregator(window=1.0)
        agg.add("a", 0.5, _sample())
        done = agg.add("a", 5.5, _sample())
        assert [w.index for w in done] == [0]  # nothing for empty 1..4
        assert agg.open_windows == 1  # window 5 still open


class TestSliding:
    def test_overlapping_membership(self):
        # window 2s, slide 1s: t=1.5 belongs to windows [0,2) and [1,3).
        agg = WindowAggregator(window=2.0, slide=1.0)
        agg.add("a", 1.5, _sample())
        assert agg.open_windows == 2
        done = agg.add("a", 3.0, _sample(instr=500.0))
        assert [w.index for w in done] == [0, 1]
        assert done[0].samples == 1
        assert done[1].samples == 1  # t=3.0 is outside [1,3)
        # t=3.0 itself sits in [2,4) and [3,5).
        assert agg.open_windows == 2

    def test_bad_slide_rejected(self):
        with pytest.raises(ServeError):
            WindowAggregator(window=1.0, slide=2.0)
        with pytest.raises(ServeError):
            WindowAggregator(window=1.0, slide=0.0)
        with pytest.raises(ServeError):
            WindowAggregator(window=0.0)


class TestSources:
    def test_sources_are_independent(self):
        agg = WindowAggregator(window=1.0)
        agg.add("pid-1", 0.5, _sample(instr=100.0))
        agg.add("pid-2", 0.5, _sample(instr=900.0))
        done = agg.add("pid-1", 1.2, _sample())
        assert [w.source for w in done] == ["pid-1"]
        assert done[0].vector.count(NORMALIZER) == 100.0
        assert agg.sources == ["pid-1", "pid-2"]

    def test_out_of_order_within_source_rejected(self):
        agg = WindowAggregator(window=1.0)
        agg.add("a", 2.0, _sample())
        with pytest.raises(ServeError):
            agg.add("a", 1.0, _sample())
        agg.add("b", 0.0, _sample())  # other sources unaffected

    def test_negative_time_rejected(self):
        with pytest.raises(ServeError):
            WindowAggregator(window=1.0).add("a", -0.1, _sample())


class TestFlushAndDrop:
    def test_flush_emits_partials_sorted(self):
        agg = WindowAggregator(window=1.0)
        agg.add("b", 0.5, _sample())
        agg.add("a", 0.5, _sample())
        out = agg.flush()
        assert [w.source for w in out] == ["a", "b"]
        assert agg.open_windows == 0
        assert agg.flush() == []

    def test_zero_instruction_window_dropped(self):
        agg = WindowAggregator(window=1.0)
        counts = {e.name: 0.0 for e in TABLE2_EVENTS}
        agg.add("idle", 0.5, counts)
        assert agg.flush() == []
        assert agg.dropped == 1

    def test_boundary_timestamp_goes_to_next_window(self):
        # t == window end is outside [0, 1): both samples land in window 1.
        agg = WindowAggregator(window=1.0)
        agg.add("a", 1.0, _sample())
        done = agg.add("a", 1.0, _sample())
        assert done == []
        assert agg.open_windows == 1

    def test_add_vector_requires_timestamp(self):
        agg = WindowAggregator(window=1.0)
        with pytest.raises(ServeError):
            agg.add_vector(EventVector(_sample(), meta={"source": "a"}))


class TestMeasureStream:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.core.lab import Lab

        lab = Lab(disk_cache=None)
        w = get_workload("psums")
        return lab.simulate(
            w, RunConfig(threads=4, mode=Mode.BAD_FS, size=w.train_sizes[0])
        )

    def test_noiseless_windows_sum_to_measure(self, run):
        sampler = PMUSampler(noisy=False)
        whole = sampler.measure(run, TABLE2_EVENTS)
        vecs = list(sampler.measure_stream(run, TABLE2_EVENTS, windows=5))
        assert len(vecs) == 5
        for e in TABLE2_EVENTS:
            total = sum(v.count(e) for v in vecs)
            assert total == pytest.approx(whole.count(e), rel=1e-9)

    def test_meta_shape(self, run):
        vecs = list(PMUSampler(noisy=False).measure_stream(
            run, TABLE2_EVENTS, windows=4, source="pid-9", t0=2.0
        ))
        assert [v.meta["window"] for v in vecs] == [0, 1, 2, 3]
        assert all(v.meta["source"] == "pid-9" for v in vecs)
        assert vecs[0].meta["t_start"] == pytest.approx(2.0)
        assert vecs[0].meta["t"] == vecs[0].meta["t_end"]
        assert vecs[-1].meta["t_end"] == pytest.approx(2.0 + run.seconds)

    def test_deterministic_per_run_id(self, run):
        sampler = PMUSampler(seed=3)
        a = list(sampler.measure_stream(run, TABLE2_EVENTS, windows=3,
                                        run_id="x"))
        b = list(sampler.measure_stream(run, TABLE2_EVENTS, windows=3,
                                        run_id="x"))
        c = list(sampler.measure_stream(run, TABLE2_EVENTS, windows=3,
                                        run_id="y"))
        for va, vb in zip(a, b):
            assert va.values == vb.values
        assert any(va.values != vc.values for va, vc in zip(a, c))

    def test_windows_differ_from_each_other(self, run):
        vecs = list(PMUSampler().measure_stream(run, TABLE2_EVENTS,
                                                windows=3, run_id="z"))
        assert vecs[0].values != vecs[1].values

    def test_aggregator_round_trip(self, run):
        """measure_stream -> WindowAggregator reproduces the run's windows."""
        sampler = PMUSampler(noisy=False)
        agg = WindowAggregator(window=run.seconds / 4)
        wins = agg.add_stream(sampler.measure_stream(run, TABLE2_EVENTS,
                                                     windows=4))
        assert len(wins) == 4
        assert [w.samples for w in wins] == [1, 1, 1, 1]
        assert agg.dropped == 0

    def test_bad_args_rejected(self, run):
        sampler = PMUSampler()
        with pytest.raises(PMUError):
            list(sampler.measure_stream(run, TABLE2_EVENTS, windows=0))
        with pytest.raises(PMUError):
            list(sampler.measure_stream(run, [], windows=2))
        with pytest.raises(PMUError):
            list(sampler.measure_stream(run, [NORMALIZER, NORMALIZER],
                                        windows=2))
