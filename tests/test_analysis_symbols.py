"""Tests for the address-range symbolizer (Symbol / SymbolTable)."""

import numpy as np
import pytest

from repro.analysis.symbols import SYMBOL_KINDS, Symbol, SymbolTable
from repro.memory.layout import LINE_SIZE, ArrayLayout, line_of
from repro.workloads.base import RunConfig
from repro.workloads.registry import all_workloads


class TestSymbol:
    def test_geometry(self):
        s = Symbol("acc", base=4096, size=32, elem_size=8)
        assert s.end == 4128
        assert s.length == 4
        assert s.first_line == 64
        assert s.last_line == 64

    def test_straddling_lines(self):
        s = Symbol("buf", base=4156, size=16, elem_size=4)
        assert s.first_line == 64
        assert s.last_line == 65

    def test_strided_length(self):
        s = Symbol("padded", base=0, size=3 * 64 + 8, elem_size=8, stride=64)
        assert s.length == 4
        assert s.layout().addr(1) == 64

    def test_covers_and_overlaps(self):
        s = Symbol("x", base=100, size=8)
        assert s.covers(100) and s.covers(107)
        assert not s.covers(108)
        assert s.overlaps_line(1)
        assert not s.overlaps_line(2)

    def test_field_label(self):
        s = Symbol("psum", base=4096, size=32)
        assert s.field_label(4096) == "psum"
        assert s.field_label(4104) == "psum+8"
        with pytest.raises(ValueError):
            s.field_label(4095)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Symbol("x", base=-1, size=8)
        with pytest.raises(ValueError):
            Symbol("x", base=0, size=8, kind="heap")
        with pytest.raises(ValueError):
            Symbol("x", base=0, size=8, elem_size=0)

    def test_to_dict_kinds(self):
        for kind in SYMBOL_KINDS:
            d = Symbol("x", base=64, size=8, kind=kind, tid=2).to_dict()
            assert d["kind"] == kind
            assert d["tid"] == 2
            assert d["lines"] == [1, 1]


class TestSymbolTable:
    @pytest.fixture()
    def table(self):
        t = SymbolTable()
        t.add_region("sync", 4096, 8, kind="sync")
        t.add_array("data", ArrayLayout(base=4160, elem_size=8, length=16),
                    tid=None)
        t.add(Symbol("slot[t0]", 4288, 8, kind="slot", tid=0, group="slot"))
        t.add(Symbol("slot[t1]", 4296, 8, kind="slot", tid=1, group="slot"))
        return t

    def test_container_protocol(self, table):
        assert len(table) == 4
        assert "data" in table
        assert table["data"].size == 128
        assert sorted(s.name for s in table)[0] == "data"

    def test_duplicate_name_rejected(self, table):
        with pytest.raises(ValueError):
            table.add_region("data", 8192, 8)

    def test_resolve(self, table):
        assert [s.name for s in table.resolve(4100)] == ["sync"]
        assert table.resolve(4104) == []

    def test_objects_on_line_collision(self, table):
        # both slots live on line 67 (0x10c0)
        hits = table.objects_on_line(4290)
        assert [s.name for s in hits] == ["slot[t0]", "slot[t1]"]

    def test_line_owners_matches_objects_on_line(self, table):
        line = int(line_of(4290))
        assert (table.line_owners(line)
                == table.objects_on_line(line * LINE_SIZE))

    def test_lines_cover_all_symbols(self, table):
        lines = table.lines()
        for s in table:
            assert s.first_line in lines and s.last_line in lines

    def test_label_fallbacks(self, table):
        assert table.label(4168) == "data+8"
        # allocator padding on a symbol's line attributes to the symbol
        assert table.label(4104) == "sync~"
        assert table.label(1 << 30) == f"0x{1 << 30:x}"

    def test_index_invalidated_on_add(self, table):
        table.objects_on_line(4290)  # build the index
        table.add(Symbol("late", 4290 + LINE_SIZE * 10, 8))
        assert "late" in {s.name for s in
                          table.objects_on_line(4290 + LINE_SIZE * 10)}

    def test_render_and_dict(self, table):
        out = table.render()
        assert "slot[t0]" in out and "T1" in out
        d = table.to_dict()
        assert d["n_symbols"] == 4
        bases = [e["base"] for e in d["symbols"]]
        assert bases == sorted(bases)


class TestRegistryCoverage:
    """Acceptance: every traced line of every registry workload resolves
    to at least one named object via the plan's symbol table."""

    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name)
    def test_every_traced_line_symbolized(self, workload):
        t = 4 if workload.kind == "mt" else 1
        for mode in sorted(workload.modes, key=lambda m: m.value):
            cfg = RunConfig(threads=t, mode=mode,
                            size=workload.train_sizes[0], pattern="random")
            plan = workload.plan(cfg)
            trace = workload.trace(cfg)
            traced = np.unique(np.concatenate(
                [line_of(th.addrs) for th in trace.threads]))
            orphans = [int(x) for x in traced.tolist()
                       if not plan.symbols.line_owners(int(x))]
            assert not orphans, (
                f"{workload.name}/{mode.value}: traced lines without a "
                f"named object: {[hex(x * LINE_SIZE) for x in orphans]}")
