"""Golden equivalence: the vectorized drive strategies vs the reference loop.

Both fast strategies — run-compression (run-length compression + O(1) tail
retirement) and the line-partitioned kernel — must produce *bit-identical*
results to the per-access reference loop: every raw counter, every per-core
cycle count, every HITM sample.  These tests sweep all 12 mini-programs in
every supported mode plus suite traces with real coherence churn
(streamcluster's packed work structs), the sliced-run API, and the
stratified compression-gate probe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coherence.machine import (
    MulticoreMachine,
    SCALED_WESTMERE,
    SimulationError,
)
from repro.trace.access import ThreadTrace
from repro.suites import get_program
from repro.suites.base import SuiteCase
from repro.trace.access import ProgramTrace
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import all_workloads, get_workload

from tests.conftest import SMALL_SPEC


def _assert_identical(res_fast, res_ref):
    assert res_fast.counts == res_ref.counts
    assert res_fast.cycles_per_core == res_ref.cycles_per_core
    assert res_fast.instructions_per_core == res_ref.instructions_per_core
    assert res_fast.seconds == res_ref.seconds
    assert res_fast.hitm_samples == res_ref.hitm_samples


def _run_both(program: ProgramTrace, spec=SCALED_WESTMERE,
              strategy: str = "runs", **kw):
    # fast_min_compression=0.0 disables the adaptive gate so run-compression
    # is genuinely exercised even on low-compression traces; the 'lines'
    # strategy ignores the gate and only falls back to the reference loop
    # when a segment fails its no-eviction precondition (identical results
    # either way).
    fast = MulticoreMachine(spec, fast=strategy, fast_min_compression=0.0,
                            **kw).run(program)
    ref = MulticoreMachine(spec, fast=False, **kw).run(program)
    return fast, ref


def _mini_cases():
    for w in all_workloads():
        for mode in sorted(m.value for m in w.modes):
            yield w.name, mode


@pytest.mark.parametrize("strategy", ["runs", "lines"])
@pytest.mark.parametrize("name,mode", list(_mini_cases()))
def test_fast_path_matches_reference_on_miniprograms(name, mode, strategy):
    w = get_workload(name)
    threads = 1 if w.kind == "seq" else 3
    cfg = RunConfig(threads=threads, mode=mode, size=w.train_sizes[0])
    fast, ref = _run_both(w.trace(cfg), strategy=strategy)
    _assert_identical(fast, ref)


def test_fast_path_matches_reference_bad_ma_strides():
    w = get_workload("pdot")
    for pattern in ("stride4", "stride16"):
        cfg = RunConfig(threads=6, mode=Mode.BAD_MA, size=w.train_sizes[0],
                        pattern=pattern)
        fast, ref = _run_both(w.trace(cfg))
        _assert_identical(fast, ref)


@pytest.mark.parametrize("strategy", ["runs", "lines"])
@pytest.mark.parametrize("prog,case", [
    ("streamcluster", SuiteCase("simsmall", "-O2", 4)),
    ("linear_regression", SuiteCase("50MB", "-O0", 3)),
])
def test_fast_path_matches_reference_on_suite_traces(prog, case, strategy):
    p = get_program(prog)
    fast, ref = _run_both(p.trace(case), strategy=strategy)
    _assert_identical(fast, ref)


def test_fast_path_matches_reference_sliced():
    w = get_workload("psums")
    cfg = RunConfig(threads=4, mode=Mode.BAD_FS, size=w.train_sizes[0])
    prog = w.trace(cfg)
    fast = MulticoreMachine(SMALL_SPEC, fast=True).run_sliced(prog, 5)
    ref = MulticoreMachine(SMALL_SPEC, fast=False).run_sliced(prog, 5)
    assert len(fast) == len(ref) == 5
    for f, r in zip(fast, ref):
        _assert_identical(f, r)


def test_fast_path_matches_reference_hitm_sampling():
    w = get_workload("false1")
    cfg = RunConfig(threads=4, mode=Mode.BAD_FS, size=w.train_sizes[0])
    prog = w.trace(cfg)
    fast, ref = _run_both(prog, spec=SMALL_SPEC, hitm_sample_period=7)
    _assert_identical(fast, ref)
    assert fast.hitm_samples  # the sweep actually exercised sampling


def test_fast_path_matches_reference_no_prefetch():
    w = get_workload("seq_read")
    cfg = RunConfig(threads=1, mode=Mode.BAD_MA, size=32_768,
                    pattern="stride8")
    fast, ref = _run_both(w.trace(cfg), prefetch=False)
    _assert_identical(fast, ref)


def test_fast_flag_default_and_override():
    m = MulticoreMachine(SMALL_SPEC)
    assert m.fast is True
    assert m.strategy == "auto"  # True normalizes to the adaptive strategy
    assert m.fast_min_compression > 0  # adaptive fallback on by default
    ref = MulticoreMachine(SMALL_SPEC, fast=False)
    assert ref.fast is False and ref.strategy == "ref"
    assert MulticoreMachine(SMALL_SPEC, fast="lines").strategy == "lines"
    with pytest.raises(SimulationError):
        MulticoreMachine(SMALL_SPEC, fast="fastest")


def test_gate_probe_samples_head_middle_and_tail():
    # Regression: the probe used to sample only the segment's head, so a
    # compressible prefix hid a contended tail and the gate routed the
    # whole segment down the run-compression path it could not pay for.
    n_head, n_tail = 50_000, 150_000
    head = np.repeat(np.arange(n_head // 64, dtype=np.int64) * 64, 64)
    tail = (np.arange(n_tail, dtype=np.int64) * 64) % (512 * 64)
    addrs = np.concatenate([head, tail])
    cores = np.zeros(addrs.size, dtype=np.int64)

    m = MulticoreMachine(SCALED_WESTMERE)
    comp_head, _, _ = m._probe_gate(cores[:n_head], addrs[:n_head])
    assert comp_head >= 16  # the prefix alone looks highly compressible
    comp, _, _ = m._probe_gate(cores, addrs)
    assert comp < m.fast_min_compression  # stratified probe sees the tail

    # End to end: forcing run-compression on this trace must now gate to
    # the reference loop — and stay bit-identical.
    prog = ProgramTrace(
        [ThreadTrace(addrs, np.zeros(addrs.size, dtype=bool))],
        name="prefix-tail",
    )
    forced = MulticoreMachine(SCALED_WESTMERE, fast="runs")
    res = forced.run(prog)
    assert forced.path_counts.get("ref-gated", 0) >= 1
    _assert_identical(res, MulticoreMachine(SCALED_WESTMERE,
                                            fast=False).run(prog))


def test_default_gate_matches_reference():
    # With the default compression gate the fast machine may mix vectorized
    # and reference-driven segments; the result must still be identical.
    w = get_workload("pdot")
    cfg = RunConfig(threads=3, mode=Mode.BAD_FS, size=w.train_sizes[0])
    prog = w.trace(cfg)
    fast = MulticoreMachine(SMALL_SPEC).run(prog)
    ref = MulticoreMachine(SMALL_SPEC, fast=False).run(prog)
    _assert_identical(fast, ref)
