"""Tests for the suite-program abstractions."""

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.suites import all_programs, get_program, parsec_programs, phoenix_programs
from repro.suites.base import OPT_LEVELS, SuiteCase, opt_effects


class TestSuiteCase:
    def test_run_id_unique_per_axis(self):
        base = SuiteCase("simsmall", "-O2", 4)
        assert base.run_id() != base.with_(opt="-O3").run_id()
        assert base.run_id() != base.with_(threads=8).run_id()
        assert base.run_id() != base.with_(rep=1).run_id()

    def test_invalid_opt_rejected(self):
        with pytest.raises(ConfigError):
            SuiteCase("x", "-O9", 4)

    def test_invalid_threads_rejected(self):
        with pytest.raises(ConfigError):
            SuiteCase("x", "-O2", 0)

    def test_hashable(self):
        assert hash(SuiteCase("a", "-O1", 2)) == hash(SuiteCase("a", "-O1", 2))


class TestOptLevels:
    def test_all_four_defined(self):
        assert set(OPT_LEVELS) == {"-O0", "-O1", "-O2", "-O3"}

    def test_instruction_scale_monotone(self):
        scales = [opt_effects(o)["instr_scale"]
                  for o in ("-O0", "-O1", "-O2", "-O3")]
        assert scales == sorted(scales, reverse=True)

    def test_registerization_at_o2(self):
        assert not opt_effects("-O0")["registerized"]
        assert not opt_effects("-O1")["registerized"]
        assert opt_effects("-O2")["registerized"]
        assert opt_effects("-O3")["registerized"]


class TestRegistry:
    def test_counts(self):
        assert len(phoenix_programs()) == 8
        assert len(parsec_programs()) == 11
        assert len(all_programs()) == 19

    def test_lookup(self):
        assert get_program("streamcluster").suite == "parsec"
        assert get_program("linear_regression").suite == "phoenix"

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_program("doom")


class TestGrids:
    def test_phoenix_grid_36_cases(self):
        p = get_program("linear_regression")
        assert len(p.cases()) == 36  # 3 inputs x 3 opts x 4 thread counts

    def test_reverse_index_single_input(self):
        assert len(get_program("reverse_index").cases()) == 12

    def test_parsec_grid_36_cases(self):
        assert len(get_program("streamcluster").cases()) == 36

    def test_verification_grid_totals_paper_322(self):
        total = sum(len(p.verification_cases()) for p in all_programs())
        assert total == 322

    def test_verification_respects_thread_limit(self):
        for p in all_programs():
            for case in p.verification_cases():
                assert case.threads <= 8

    def test_parsec_verification_excludes_native(self):
        for p in parsec_programs():
            inputs = {c.input_set for c in p.verification_cases()}
            assert "native" not in inputs

    def test_freqmine_quirk_16_cases(self):
        assert len(get_program("freqmine").verification_cases()) == 16

    def test_invalid_case_rejected(self):
        p = get_program("streamcluster")
        with pytest.raises(WorkloadError):
            p.trace(SuiteCase("10MB", "-O2", 4))  # a Phoenix input name
        with pytest.raises(WorkloadError):
            p.trace(SuiteCase("simsmall", "-O0", 4))  # PARSEC uses O1-O3
