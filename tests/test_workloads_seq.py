"""Tests for the sequential mini-programs."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload, seq_miniprograms

ALL_SEQ = ("seq_read", "seq_write", "seq_rmw", "seq_matmul")


class TestRegistry:
    def test_all_four_registered(self):
        assert {w.name for w in seq_miniprograms()} == set(ALL_SEQ)

    @pytest.mark.parametrize("name", ALL_SEQ)
    def test_modes_good_and_badma_only(self, name):
        w = get_workload(name)
        assert w.modes == frozenset({Mode.GOOD, Mode.BAD_MA})

    @pytest.mark.parametrize("name", ALL_SEQ)
    def test_multithread_rejected(self, name):
        w = get_workload(name)
        with pytest.raises(WorkloadError):
            w.trace(RunConfig(threads=2, size=w.train_sizes[0]))


class TestArrayPrograms:
    def test_seq_read_all_loads(self):
        w = get_workload("seq_read")
        t = w.trace(RunConfig(size=1024)).threads[0]
        assert t.n_writes == 0
        assert t.n_accesses == 1024

    def test_seq_write_all_stores(self):
        w = get_workload("seq_write")
        t = w.trace(RunConfig(size=1024)).threads[0]
        assert t.n_writes == 1024

    def test_seq_rmw_pairs(self):
        w = get_workload("seq_rmw")
        t = w.trace(RunConfig(size=512)).threads[0]
        assert t.n_accesses == 1024
        assert t.n_writes == 512
        # load then store of the same address
        assert (t.addrs[0::2] == t.addrs[1::2]).all()
        assert (~t.is_write[0::2]).all() and t.is_write[1::2].all()

    @pytest.mark.parametrize("name", ("seq_read", "seq_write", "seq_rmw"))
    @pytest.mark.parametrize("pattern", ("random", "stride4"))
    def test_bad_ma_same_computation(self, name, pattern):
        w = get_workload(name)
        good = w.trace(RunConfig(size=2048, mode="good"))
        bad = w.trace(RunConfig(size=2048, mode="bad-ma", pattern=pattern))
        assert good.total_accesses == bad.total_accesses
        assert sorted(good.threads[0].addrs.tolist()) == \
            sorted(bad.threads[0].addrs.tolist())

    def test_bad_ma_reorders(self):
        w = get_workload("seq_read")
        good = w.trace(RunConfig(size=2048, mode="good"))
        bad = w.trace(RunConfig(size=2048, mode="bad-ma", pattern="random"))
        assert (good.threads[0].addrs != bad.threads[0].addrs).any()


class TestSeqMatMul:
    def test_access_count_both_modes(self):
        w = get_workload("seq_matmul")
        k = 256
        good = w.trace(RunConfig(size=k, mode="good"))
        bad = w.trace(RunConfig(size=k, mode="bad-ma"))
        expected = 4 * w.m_rows * w.n_cols * k
        assert good.total_accesses == expected
        assert bad.total_accesses == expected

    def test_same_multiset_of_addresses(self):
        w = get_workload("seq_matmul")
        good = w.trace(RunConfig(size=128, mode="good"))
        bad = w.trace(RunConfig(size=128, mode="bad-ma"))
        assert sorted(good.threads[0].addrs.tolist()) == \
            sorted(bad.threads[0].addrs.tolist())

    def test_good_b_walk_is_rowwise(self):
        w = get_workload("seq_matmul")
        t = w.trace(RunConfig(size=64, mode="good")).threads[0]
        b_loads = t.addrs[1::4]
        # within a row of B, consecutive loads are 8 bytes apart
        diffs = np.diff(b_loads[: w.n_cols])
        assert (diffs == 8).all()

    def test_bad_b_walk_is_columnwise(self):
        w = get_workload("seq_matmul")
        t = w.trace(RunConfig(size=64, mode="bad-ma")).threads[0]
        b_loads = t.addrs[1::4]
        diffs = np.diff(b_loads[: 8])
        assert (diffs == 8 * w.n_cols).all()  # one full row per step


class TestArchitecturalEffects:
    """The sequential programs must actually produce the cache behaviour
    the paper's Section 2.2.2 relies on (simulated on the small test spec)."""

    def _repl(self, machine, name, mode, pattern="random", size=16_384):
        w = get_workload(name)
        cfg = RunConfig(threads=1, mode=mode, size=size, pattern=pattern)
        res = machine.run(w.trace(cfg))
        return res.normalized("L1D.REPL")

    def test_random_order_misses_more(self, machine):
        good = self._repl(machine, "seq_read", "good")
        bad = self._repl(machine, "seq_read", "bad-ma", "random")
        assert bad > 3 * good

    def test_stride_defeats_prefetcher(self, machine):
        good = self._repl(machine, "seq_read", "good")
        bad = self._repl(machine, "seq_read", "bad-ma", "stride16")
        assert bad > 3 * good

    def test_wider_strides_not_cheaper(self, machine):
        s2 = self._repl(machine, "seq_read", "bad-ma", "stride2")
        s16 = self._repl(machine, "seq_read", "bad-ma", "stride16")
        assert s16 >= s2

    def test_matmul_loop_order_effect(self, machine):
        w = get_workload("seq_matmul")
        good = machine.run(w.trace(RunConfig(threads=1, mode="good",
                                             size=2_048)))
        bad = machine.run(w.trace(RunConfig(threads=1, mode="bad-ma",
                                            size=2_048)))
        assert bad.normalized("L1D.REPL") > 2 * good.normalized("L1D.REPL")
        assert bad.seconds > good.seconds
