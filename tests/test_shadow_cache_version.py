"""The shadow-oracle disk cache is versioned on simulator + oracle semantics.

A stale pickle — produced by an older simulator (different trace semantics)
or an older oracle (different classification rules) — must be discarded, not
silently reused.  The cache file name carries both versions and the payload
is stamped with them, so even a file surviving a rename scheme change is
validated before use.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.lab import Lab
from repro.experiments.context import PipelineContext, _valid_shadow_entry
from repro.trace.access import ThreadTrace
from repro.suites.base import SuiteCase, SuiteProgram
from repro.versioning import SHADOW_VERSION, SIM_VERSION

KEY = ("some_program", "simsmall", "-O2", 4)
COUNTS = (11, 22, 33, 44)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _ctx():
    return PipelineContext(lab=Lab(), jobs=1)


def test_cache_file_keyed_on_both_versions(cache_dir):
    ctx = _ctx()
    assert SIM_VERSION in ctx._shadow_path.name
    assert SHADOW_VERSION in ctx._shadow_path.name


def test_roundtrip_with_matching_versions(cache_dir):
    ctx = _ctx()
    ctx._shadow_cache[KEY] = COUNTS
    ctx._flush_shadow()
    assert _ctx()._shadow_cache == {KEY: COUNTS}


def test_stale_version_stamp_discarded(cache_dir):
    ctx = _ctx()
    payload = {"versions": ("v0", "s0"), "entries": {KEY: COUNTS}}
    ctx._shadow_path.parent.mkdir(parents=True, exist_ok=True)
    with open(ctx._shadow_path, "wb") as fh:
        pickle.dump(payload, fh)
    assert _ctx()._shadow_cache == {}


def test_legacy_bare_dict_discarded(cache_dir):
    ctx = _ctx()
    ctx._shadow_path.parent.mkdir(parents=True, exist_ok=True)
    with open(ctx._shadow_path, "wb") as fh:
        pickle.dump({KEY: COUNTS}, fh)
    assert _ctx()._shadow_cache == {}


def test_corrupt_file_discarded(cache_dir):
    ctx = _ctx()
    ctx._shadow_path.parent.mkdir(parents=True, exist_ok=True)
    ctx._shadow_path.write_bytes(b"not a pickle")
    assert _ctx()._shadow_cache == {}


def test_disk_cache_disabled_has_no_path(cache_dir):
    ctx = PipelineContext(lab=Lab(disk_cache=None), jobs=1)
    assert ctx._shadow_path is None
    ctx._flush_shadow()  # must be a no-op, not an error


# ------------------------------------------------- corruption regression
#
# A corrupted or partially-written cache is an accelerator failure, never a
# pipeline failure: load must log, drop the bad data, and let the oracle
# recompute.


def _write_payload(ctx, entries):
    ctx._shadow_path.parent.mkdir(parents=True, exist_ok=True)
    with open(ctx._shadow_path, "wb") as fh:
        pickle.dump(
            {"versions": (SIM_VERSION, SHADOW_VERSION), "entries": entries},
            fh,
        )


def test_valid_shadow_entry_predicate():
    assert _valid_shadow_entry((1, 2, 3, 4))
    assert _valid_shadow_entry([0, 0, 0, 0])
    assert not _valid_shadow_entry((1, 2, 3))          # wrong arity
    assert not _valid_shadow_entry((1, 2, 3, 4, 5))
    assert not _valid_shadow_entry((1.0, 2, 3, 4))     # non-int count
    assert not _valid_shadow_entry((True, 2, 3, 4))    # bool is not a count
    assert not _valid_shadow_entry("1234")
    assert not _valid_shadow_entry(None)


def test_mangled_entries_dropped_valid_kept(cache_dir, caplog):
    ctx = _ctx()
    other = ("other_program", "simlarge", "-O0", 2)
    mangled = {
        ("short",): (1, 2, 3),
        ("floats",): (1.0, 2, 3, 4),
        ("none",): None,
        ("text",): "11,22,33,44",
    }
    _write_payload(ctx, {KEY: COUNTS, other: list(COUNTS), **mangled})
    with caplog.at_level("WARNING"):
        fresh = _ctx()
    # Valid entries survive (lists normalized to tuples); mangled ones are
    # dropped — and will simply be recomputed on first use.
    assert fresh._shadow_cache == {KEY: COUNTS, other: COUNTS}
    assert "dropped 4 mangled entries" in caplog.text


def test_truncated_cache_file_is_a_miss(cache_dir, caplog):
    ctx = _ctx()
    ctx._shadow_cache[KEY] = COUNTS
    ctx._flush_shadow()
    data = ctx._shadow_path.read_bytes()
    ctx._shadow_path.write_bytes(data[: len(data) // 2])
    with caplog.at_level("WARNING"):
        fresh = _ctx()
    assert fresh._shadow_cache == {}
    assert "unreadable" in caplog.text


def test_non_mapping_entries_discarded(cache_dir):
    ctx = _ctx()
    ctx._shadow_path.parent.mkdir(parents=True, exist_ok=True)
    with open(ctx._shadow_path, "wb") as fh:
        pickle.dump(
            {"versions": (SIM_VERSION, SHADOW_VERSION), "entries": [KEY]},
            fh,
        )
    assert _ctx()._shadow_cache == {}


class _StubProgram(SuiteProgram):
    name = "zz-stub-shadow"
    inputs = ("x",)
    opts = ("-O2",)
    threads = (2,)

    def _generate(self, case):
        addrs = np.arange(64, dtype=np.int64) * 8
        return [ThreadTrace(addrs.copy(), np.zeros(64, dtype=bool))
                for _ in range(case.threads)]


def test_read_time_mangled_entry_recomputed_not_raised(cache_dir, caplog):
    ctx = PipelineContext(lab=Lab(disk_cache=None), jobs=1)
    prog = _StubProgram()
    case = SuiteCase("x", "-O2", 2)
    key = (prog.name,) + tuple(prog.cache_key(case))
    ctx._shadow_cache[key] = ("oops", None)  # mangled after load
    with caplog.at_level("WARNING"):
        rep = ctx.shadow_report(prog, case)
    assert "mangled" in caplog.text
    assert isinstance(rep.instructions, int) and rep.instructions > 0
    # The recomputed entry replaced the mangled one.
    assert _valid_shadow_entry(ctx._shadow_cache[key])
    # A second read is now a clean hit with identical counts.
    rep2 = ctx.shadow_report(prog, case)
    assert (rep2.fs_misses, rep2.ts_misses, rep2.cold_misses) == (
        rep.fs_misses, rep.ts_misses, rep.cold_misses)
