"""The shadow-oracle disk cache is versioned on simulator + oracle semantics.

A stale pickle — produced by an older simulator (different trace semantics)
or an older oracle (different classification rules) — must be discarded, not
silently reused.  The cache file name carries both versions and the payload
is stamped with them, so even a file surviving a rename scheme change is
validated before use.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.lab import Lab
from repro.experiments.context import PipelineContext
from repro.versioning import SHADOW_VERSION, SIM_VERSION

KEY = ("some_program", "simsmall", "-O2", 4)
COUNTS = (11, 22, 33, 44)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _ctx():
    return PipelineContext(lab=Lab(), jobs=1)


def test_cache_file_keyed_on_both_versions(cache_dir):
    ctx = _ctx()
    assert SIM_VERSION in ctx._shadow_path.name
    assert SHADOW_VERSION in ctx._shadow_path.name


def test_roundtrip_with_matching_versions(cache_dir):
    ctx = _ctx()
    ctx._shadow_cache[KEY] = COUNTS
    ctx._flush_shadow()
    assert _ctx()._shadow_cache == {KEY: COUNTS}


def test_stale_version_stamp_discarded(cache_dir):
    ctx = _ctx()
    payload = {"versions": ("v0", "s0"), "entries": {KEY: COUNTS}}
    ctx._shadow_path.parent.mkdir(parents=True, exist_ok=True)
    with open(ctx._shadow_path, "wb") as fh:
        pickle.dump(payload, fh)
    assert _ctx()._shadow_cache == {}


def test_legacy_bare_dict_discarded(cache_dir):
    ctx = _ctx()
    ctx._shadow_path.parent.mkdir(parents=True, exist_ok=True)
    with open(ctx._shadow_path, "wb") as fh:
        pickle.dump({KEY: COUNTS}, fh)
    assert _ctx()._shadow_cache == {}


def test_corrupt_file_discarded(cache_dir):
    ctx = _ctx()
    ctx._shadow_path.parent.mkdir(parents=True, exist_ok=True)
    ctx._shadow_path.write_bytes(b"not a pickle")
    assert _ctx()._shadow_cache == {}


def test_disk_cache_disabled_has_no_path(cache_dir):
    ctx = PipelineContext(lab=Lab(disk_cache=None), jobs=1)
    assert ctx._shadow_path is None
    ctx._flush_shadow()  # must be a no-op, not an error
