"""Tests for ARFF import/export (Weka interop)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.ml.arff import dataset_from_arff, dataset_to_arff, load_arff, save_arff
from repro.ml.dataset import Dataset


@pytest.fixture
def small():
    X = np.array([[1.0, 2.5], [0.1, -3.0], [4.0, 0.0]])
    return Dataset(X, ["good", "bad-fs", "good"], ["Event.One", "DTLB_Misses"])


class TestExport:
    def test_structure(self, small):
        text = dataset_to_arff(small)
        assert "@RELATION" in text
        assert text.count("@ATTRIBUTE") == 3
        assert "@DATA" in text
        assert "{good,bad-fs}" in text

    def test_rows_present(self, small):
        text = dataset_to_arff(small)
        assert "1.0,2.5,good" in text
        assert "0.1,-3.0,bad-fs" in text

    def test_names_with_spaces_quoted(self):
        ds = Dataset(np.zeros((1, 1)), ["g"], ["my event"])
        text = dataset_to_arff(ds)
        assert "'my event'" in text


class TestRoundTrip:
    def test_round_trip_equal(self, small):
        clone = dataset_from_arff(dataset_to_arff(small))
        assert clone.feature_names == small.feature_names
        assert list(clone.y) == list(small.y)
        assert np.allclose(clone.X, small.X)

    def test_file_round_trip(self, small, tmp_path):
        path = tmp_path / "data.arff"
        save_arff(small, path)
        clone = load_arff(path)
        assert np.allclose(clone.X, small.X)

    def test_training_features_round_trip(self):
        """The real training dataset's 15 Table 2 feature names survive."""
        from repro.core.training import FEATURE_NAMES

        X = np.random.default_rng(0).random((4, 15))
        ds = Dataset(X, ["good", "bad-fs", "bad-ma", "good"], FEATURE_NAMES)
        clone = dataset_from_arff(dataset_to_arff(ds))
        assert clone.feature_names == FEATURE_NAMES


class TestParser:
    def test_comments_and_blank_lines_ignored(self):
        text = """% a comment
@RELATION r

@ATTRIBUTE x NUMERIC
@ATTRIBUTE class {a,b}
% another
@DATA

1.5,a
"""
        ds = dataset_from_arff(text)
        assert len(ds) == 1
        assert ds.y[0] == "a"

    def test_case_insensitive_keywords(self):
        text = ("@relation r\n@attribute x numeric\n"
                "@attribute class {a}\n@data\n2.0,a\n")
        ds = dataset_from_arff(text)
        assert ds.X[0, 0] == 2.0

    def test_empty_data_section(self):
        text = ("@RELATION r\n@ATTRIBUTE x NUMERIC\n"
                "@ATTRIBUTE class {a}\n@DATA\n")
        ds = dataset_from_arff(text)
        assert len(ds) == 0
        assert ds.n_features == 1

    def test_missing_data_section_rejected(self):
        with pytest.raises(DatasetError):
            dataset_from_arff("@RELATION r\n@ATTRIBUTE x NUMERIC\n")

    def test_unknown_class_value_rejected(self):
        text = ("@RELATION r\n@ATTRIBUTE x NUMERIC\n"
                "@ATTRIBUTE class {a}\n@DATA\n1.0,zzz\n")
        with pytest.raises(DatasetError):
            dataset_from_arff(text)

    def test_wrong_arity_rejected(self):
        text = ("@RELATION r\n@ATTRIBUTE x NUMERIC\n"
                "@ATTRIBUTE class {a}\n@DATA\n1.0,2.0,a\n")
        with pytest.raises(DatasetError):
            dataset_from_arff(text)

    def test_non_numeric_cell_rejected(self):
        text = ("@RELATION r\n@ATTRIBUTE x NUMERIC\n"
                "@ATTRIBUTE class {a}\n@DATA\nfoo,a\n")
        with pytest.raises(DatasetError):
            dataset_from_arff(text)

    def test_unsupported_type_rejected(self):
        with pytest.raises(DatasetError):
            dataset_from_arff("@RELATION r\n@ATTRIBUTE x STRING\n@DATA\n")


class TestWekaWorkflow:
    def test_c45_on_reimported_data_matches(self, small):
        """Export -> import -> train gives the same tree as training on the
        original (the Weka round-trip is lossless for the classifier)."""
        from repro.ml.c45 import C45Classifier

        rng = np.random.default_rng(3)
        X = rng.normal(size=(150, 4))
        y = ["p" if r[0] > 0 else "q" for r in X]
        ds = Dataset(X, y, [f"e{i}" for i in range(4)])
        clone = dataset_from_arff(dataset_to_arff(ds))
        a = C45Classifier().fit(ds)
        b = C45Classifier().fit(clone)
        assert a.render() == b.render()
