"""Disabled telemetry is a true no-op; enabled telemetry observes faithfully.

The observability layer's contract (docs/OBSERVABILITY.md) has two halves:

* **Disabled (the default)**: every instrumented code path produces
  bit-identical outputs with hooks on or off, and the hooks cost no more
  than one attribute check per *segment* (never per access).
* **Enabled**: the spans and counters recorded by the simulator drive, the
  execution engine, the suite trace generators, the shadow-oracle cache
  and the experiment runner describe what actually happened.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.shadow import ShadowMemoryDetector
from repro.coherence.machine import SCALED_WESTMERE, MulticoreMachine
from repro.core.lab import Lab
from repro.experiments.base import ExperimentResult, run_experiment
from repro.experiments.context import PipelineContext
from repro.parallel import ExecutionEngine
from repro.suites import get_program
from repro.suites.base import SuiteCase, SuiteProgram
from repro.telemetry.core import TELEMETRY
from repro.trace.access import ProgramTrace, ThreadTrace
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _global_telemetry_off():
    """Every test starts and ends with the global singleton disabled."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


def _psums_trace(size: int = 3_000) -> ProgramTrace:
    w = get_workload("psums")
    return w.trace(RunConfig(threads=4, mode=Mode.BAD_FS, size=size))


def _fragmented_trace(n: int = 4_096) -> ProgramTrace:
    """Every access touches a fresh line: compression ~1, below the gate."""
    addrs = (np.arange(n, dtype=np.int64) % 512) * 64
    return ProgramTrace(
        [ThreadTrace(addrs, np.zeros(n, dtype=bool))], name="fragmented"
    )


# --------------------------------------------------------- disabled = no-op


def test_simulator_results_identical_disabled_vs_enabled():
    prog = _psums_trace()
    machine = MulticoreMachine(SCALED_WESTMERE, fast=True)
    assert not TELEMETRY.enabled
    off = machine.run(prog)
    TELEMETRY.enable(reset=True)
    on = machine.run(prog)
    assert on.counts == off.counts
    assert on.cycles_per_core == off.cycles_per_core
    assert on.instructions_per_core == off.instructions_per_core


def test_engine_results_identical_disabled_vs_enabled():
    engine = ExecutionEngine(jobs=1)
    lab = Lab(disk_cache=None)
    cases = [RunConfig(threads=t, mode=Mode.GOOD, size=1_500) for t in (2, 3)]
    pairs = [(get_workload("psums"), c) for c in cases]
    engine.prefetch_simulations(lab, pairs)
    off = [lab.simulate(w, c).counts for w, c in pairs]

    TELEMETRY.enable(reset=True)
    lab2 = Lab(disk_cache=None)
    engine.prefetch_simulations(lab2, pairs)
    on = [lab2.simulate(w, c).counts for w, c in pairs]
    assert on == off


def test_disabled_hooks_negligible_on_fast_drive():
    # The strict <2% budget is enforced by benchmarks/ (repeats, pinned
    # grid); this tier-1 guard catches gross regressions — e.g. a hook
    # accidentally moved into the per-access loop costs integer multiples,
    # not percent.
    prog = _psums_trace(size=12_000)
    machine = MulticoreMachine(SCALED_WESTMERE, fast=True)
    machine.run(prog)  # warm caches/JIT'd numpy paths

    def best_of(n: int = 5) -> float:
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            machine.run(prog)
            best = min(best, time.perf_counter() - t0)
        return best

    assert not TELEMETRY.enabled
    t_off = best_of()
    TELEMETRY.enable(reset=True)
    t_on = best_of()
    TELEMETRY.disable()
    # Enabled does strictly more work than disabled, so this also bounds
    # the disabled-default overhead.  Generous tolerance: CI timers flake.
    assert t_on <= t_off * 1.5, (t_off, t_on)


# ------------------------------------------------------------- sim.drive


def test_drive_spans_and_counters_describe_the_run():
    prog = _psums_trace()
    TELEMETRY.enable(reset=True)
    MulticoreMachine(SCALED_WESTMERE, fast=True).run(prog)
    spans = [s for s in TELEMETRY.spans if s.name == "sim.drive"]
    assert spans
    for sp in spans:
        assert sp.attrs["path"] in ("runs", "lines", "ref", "ref-gated")
        assert sp.attrs["accesses"] > 0
        assert sp.attrs["accesses_per_s"] > 0
    c = TELEMETRY.counters
    assert c["sim.drive.segments"] == len(spans)
    assert c["sim.drive.accesses"] == sum(s.attrs["accesses"] for s in spans)
    path_total = sum(v for k, v in c.items()
                     if k.startswith("sim.drive.path."))
    assert path_total == len(spans)
    assert TELEMETRY.gauges["sim.drive.accesses_per_s"] > 0


def test_drive_reference_machine_records_ref_path():
    TELEMETRY.enable(reset=True)
    MulticoreMachine(SCALED_WESTMERE, fast=False).run(_psums_trace())
    c = TELEMETRY.counters
    assert c["sim.drive.path.ref"] == c["sim.drive.segments"]
    assert "sim.drive.path.fast" not in c


def test_drive_gate_fallback_recorded_as_ref_gated():
    TELEMETRY.enable(reset=True)
    # Force run-compression: its gate rejects the fragmented trace
    # (compression ~1) and the fallback must be recorded as 'ref-gated'.
    # (Under 'auto' this trace routes to the line kernel instead.)
    MulticoreMachine(SCALED_WESTMERE, fast="runs").run(_fragmented_trace())
    c = TELEMETRY.counters
    assert c.get("sim.drive.path.ref-gated", 0) >= 1
    gated = [s for s in TELEMETRY.spans
             if s.name == "sim.drive" and s.attrs.get("path") == "ref-gated"]
    assert gated


def test_drive_line_kernel_recorded_as_lines():
    TELEMETRY.enable(reset=True)
    MulticoreMachine(SCALED_WESTMERE, fast="lines").run(_psums_trace(12_000))
    c = TELEMETRY.counters
    assert c.get("sim.drive.path.lines", 0) == c["sim.drive.segments"]


# ------------------------------------------------------------ engine.map


def test_engine_map_instrumented_serial_matches_plain():
    engine = ExecutionEngine(jobs=1)
    tasks = [1, 2, 3, 4]
    plain = engine.map(lambda x: x * x, tasks)
    TELEMETRY.enable(reset=True)
    instrumented = engine.map(lambda x: x * x, tasks)
    assert instrumented == plain == [1, 4, 9, 16]
    spans = [s for s in TELEMETRY.spans if s.name == "engine.map"]
    assert len(spans) == 1
    sp = spans[0]
    assert sp.attrs["tasks"] == 4 and sp.attrs["workers"] == 1
    assert sp.attrs["wall_s"] >= sp.attrs["busy_s"] >= 0
    assert sp.attrs["task_min_s"] <= sp.attrs["task_mean_s"] <= sp.attrs["task_max_s"]
    c = TELEMETRY.counters
    assert c["engine.maps"] == 1 and c["engine.tasks"] == 4
    assert 0.0 <= TELEMETRY.gauges["engine.worker_utilization"] <= 1.0


def test_engine_prefetch_instrumented_matches_serial_results():
    # The bit-identical-to-serial invariant must survive instrumentation
    # end to end, through real worker processes.
    cases = [RunConfig(threads=t, mode=m, size=1_500)
             for t in (2, 3) for m in (Mode.GOOD, Mode.BAD_FS)]
    pairs = [(get_workload("psums"), c) for c in cases]

    lab_serial = Lab(disk_cache=None)
    for w, c in pairs:
        lab_serial.simulate(w, c)
    serial = [lab_serial.simulate(w, c).counts for w, c in pairs]

    TELEMETRY.enable(reset=True)
    lab_par = Lab(disk_cache=None)
    ExecutionEngine(jobs=2).prefetch_simulations(lab_par, pairs)
    parallel = [lab_par.simulate(w, c).counts for w, c in pairs]
    assert parallel == serial
    spans = [s for s in TELEMETRY.spans if s.name == "engine.map"]
    assert spans and spans[0].attrs["workers"] == 2
    assert TELEMETRY.counters["engine.tasks"] == len(pairs)


# ----------------------------------------------------------- suites.trace


def test_suite_trace_span_counts_accesses():
    prog = get_program("streamcluster")
    case = prog.cases()[0]
    TELEMETRY.enable(reset=True)
    trace = prog.trace(case)
    spans = [s for s in TELEMETRY.spans if s.name == "suites.trace"]
    assert len(spans) == 1
    sp = spans[0]
    assert sp.attrs["program"] == "streamcluster"
    assert sp.attrs["case"] == case.run_id()
    assert sp.attrs["accesses"] == sum(t.n_accesses for t in trace.threads)
    assert TELEMETRY.counters["suites.traces"] == 1


# ----------------------------------------------------------- shadow cache


class _TinyProgram(SuiteProgram):
    """Smallest possible suite program: keeps the oracle run sub-second."""

    name = "zz-tiny-telemetry"
    inputs = ("small",)
    opts = ("-O2",)
    threads = (2,)

    def _generate(self, case):
        rng = self.rng(case)
        out = []
        for t in range(case.threads):
            addrs = rng.integers(0, 64, size=256).astype(np.int64) * 8
            writes = rng.random(256) < 0.3
            out.append(ThreadTrace(addrs, writes))
        return out


def test_shadow_cache_miss_then_hit_counters():
    ctx = PipelineContext(lab=Lab(disk_cache=None))
    ctx.shadow = ShadowMemoryDetector()
    prog = _TinyProgram()
    case = SuiteCase("small", "-O2", 2)
    TELEMETRY.enable(reset=True)
    first = ctx.shadow_report(prog, case)
    second = ctx.shadow_report(prog, case)
    assert (first.fs_misses, first.ts_misses, first.cold_misses) == (
        second.fs_misses, second.ts_misses, second.cold_misses)
    c = TELEMETRY.counters
    assert c["shadow.cache.miss"] == 1
    assert c["shadow.cache.hit"] == 1
    runs = [s for s in TELEMETRY.spans if s.name == "shadow.run"]
    assert len(runs) == 1  # the hit never re-ran the oracle
    assert runs[0].attrs["program"] == prog.name


# ------------------------------------------------------------ experiments


def test_run_experiment_wrapped_in_span(monkeypatch):
    from repro.experiments import base as exp_base

    def probe(ctx):
        return ExperimentResult("zz-probe", "telemetry probe", "ok")

    monkeypatch.setitem(exp_base._REGISTRY, "zz-probe", probe)
    monkeypatch.setitem(exp_base._TITLES, "zz-probe", "telemetry probe")
    TELEMETRY.enable(reset=True)
    result = run_experiment("zz-probe", ctx=object())
    assert result.text == "ok"
    spans = [s for s in TELEMETRY.spans if s.name == "experiment.zz-probe"]
    assert len(spans) == 1
    assert spans[0].attrs["title"] == "telemetry probe"
    assert TELEMETRY.counters["experiments.runs"] == 1
