"""Tests for the Section 2.3 event-selection procedure.

The full selection over 50 candidates is exercised by the table2 bench;
here we use trimmed candidate and program lists so the logic is tested in
seconds.
"""

import pytest

from repro.core.event_selection import (
    MIN_RATIO,
    select_events,
)
from repro.core.lab import Lab
from repro.pmu.events import (
    NORMALIZER,
    TABLE2_EVENTS,
    event_by_raw_key,
)

HITM = TABLE2_EVENTS[10]
REPL = TABLE2_EVENTS[13]
BRANCHES = event_by_raw_key("BR_INST_RETIRED.ALL_BRANCHES")
UNCORE = event_by_raw_key("MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM")


@pytest.fixture(scope="module")
def selection():
    lab = Lab(disk_cache=None)
    return select_events(
        lab,
        candidates=[HITM, REPL, BRANCHES, UNCORE],
        mt_programs=["psums", "psumv"],
        ma_programs=["psumv", "seq_read"],
    )


class TestSelection:
    def test_hitm_selected_in_pass1(self, selection):
        assert HITM in selection.pass1

    def test_repl_selected(self, selection):
        assert REPL in selection.selected

    def test_branches_rejected(self, selection):
        """Events that scale with instructions carry no signal."""
        assert BRANCHES not in selection.selected

    def test_erratic_uncore_hitm_rejected(self, selection):
        """The paper's surprise: the 'obvious' uncore HITM event fails the
        2x test because its counts are dominated by unrelated loads."""
        assert UNCORE not in selection.selected

    def test_passes_disjoint(self, selection):
        names1 = {e.name for e in selection.pass1}
        names2 = {e.name for e in selection.pass2}
        assert not names1 & names2

    def test_with_normalizer_appends_instructions(self, selection):
        full = selection.with_normalizer()
        assert full[-1].name == NORMALIZER.name
        assert len(full) == len(selection.selected) + 1

    def test_votes_recorded(self, selection):
        assert selection.votes
        vote = selection.votes[0]
        assert vote.median_ratio >= 0
        assert vote.significant == (vote.median_ratio >= MIN_RATIO)

    def test_comparison_structure(self, selection):
        cmp = selection.table2_comparison()
        assert set(cmp) == {"agreed", "missed", "extra"}
        assert "Snoop_Response.HIT_M" in cmp["agreed"]
