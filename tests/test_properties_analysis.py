"""Property tests: the static analyzer against the shadow oracle.

The two detectors answer the same question from opposite ends — layout
versus replayed execution — so their structural claims must line up:

* on every mini-program, the static analyzer flags false-shared lines
  exactly where the shadow oracle attributes false-sharing misses in
  bad-fs mode, and flags none in good (or bad-ma) mode;
* on arbitrary random programs, per-line miss attributions respect the
  static classification (a layout-false-shared line cannot produce a
  true-sharing miss; a private or read-only line cannot produce any
  invalidation miss).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sharing import StaticSharingAnalyzer
from repro.baselines.shadow import ShadowMemoryDetector
from repro.trace.access import ProgramTrace, make_thread
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import mt_miniprograms, seq_miniprograms

ANALYZER = StaticSharingAnalyzer()
ORACLE = ShadowMemoryDetector(track_lines=True)


def _case_grid():
    cases = []
    for w in mt_miniprograms():
        for mode in sorted(w.modes, key=lambda m: m.value):
            for t in (2, 6):
                cases.append(pytest.param(
                    w, RunConfig(threads=t, mode=mode,
                                 size=w.train_sizes[0]),
                    id=f"{w.name}-{mode.value}-t{t}",
                ))
    for w in seq_miniprograms():
        for mode in sorted(w.modes, key=lambda m: m.value):
            cases.append(pytest.param(
                w, RunConfig(threads=1, mode=mode, size=w.train_sizes[0]),
                id=f"{w.name}-{mode.value}-t1",
            ))
    return cases


class TestMiniProgramParity:
    """Exhaustive sweep: all 12 minis, every mode, static == shadow."""

    @pytest.mark.parametrize("w,cfg", _case_grid())
    def test_static_flags_fs_lines_iff_shadow_attributes_misses(
            self, w, cfg):
        prog = w.trace(cfg)
        rep = ANALYZER.analyze(prog)
        shadow = ORACLE.run(prog)
        static_lines = {ls.line for ls in rep.false_shared()}
        shadow_lines = {line for line, (fs, _ts)
                        in (shadow.per_line or {}).items() if fs}
        assert static_lines == shadow_lines
        if cfg.mode is Mode.BAD_FS:
            assert rep.verdict == "bad-fs"
            assert shadow.has_false_sharing
        else:
            # good and bad-ma modes are free of false sharing by design
            assert static_lines == set()
            assert rep.verdict != "bad-fs"
            assert not shadow.has_false_sharing


@st.composite
def shared_region_programs(draw, max_threads=4, max_len=200):
    """Threads hammering a 16-line region: all categories show up."""
    nt = draw(st.integers(1, max_threads))
    threads = []
    for _ in range(nt):
        n = draw(st.integers(1, max_len))
        addrs = draw(st.lists(st.integers(0, 255), min_size=n, max_size=n))
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        threads.append(make_thread(
            (np.array(addrs, dtype=np.int64) * 4) + 4096,
            np.array(writes, dtype=bool)))
    return ProgramTrace(threads)


class TestClassificationProperties:
    @settings(max_examples=40, deadline=None)
    @given(shared_region_programs())
    def test_categories_partition_the_lines(self, prog):
        rep = ANALYZER.analyze(prog)
        assert sum(rep.category_counts().values()) == rep.n_lines
        assert rep.n_private + len(rep.shared) == rep.n_lines

    @settings(max_examples=40, deadline=None)
    @given(shared_region_programs(max_threads=1))
    def test_single_thread_all_private(self, prog):
        rep = ANALYZER.analyze(prog)
        assert rep.n_private == rep.n_lines
        assert rep.verdict != "bad-fs"

    @settings(max_examples=40, deadline=None)
    @given(shared_region_programs())
    def test_thread_order_invariant(self, prog):
        fwd = ANALYZER.analyze(prog)
        rev = ANALYZER.analyze(ProgramTrace(prog.threads[::-1]))
        assert fwd.category_counts() == rev.category_counts()
        assert {ls.line for ls in fwd.false_shared()} == \
               {ls.line for ls in rev.false_shared()}

    @settings(max_examples=30, deadline=None)
    @given(shared_region_programs())
    def test_shadow_attribution_respects_static_categories(self, prog):
        rep = ANALYZER.analyze(prog)
        shadow = ORACLE.run(prog)
        by_cat = {ls.line: ls.category for ls in rep.shared}
        for line, (fs, ts) in (shadow.per_line or {}).items():
            cat = by_cat.get(line, "private")
            # invalidations need a second thread and a writer
            if cat in ("private", "read-shared"):
                assert fs == 0 and ts == 0
            # word sets on a layout-false-shared line are thread-disjoint
            # for the whole run, so no event can be a true-sharing miss
            if cat == "false-shared":
                assert ts == 0
