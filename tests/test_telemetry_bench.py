"""``repro-bench``: baseline comparison logic and the CLI gate."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import bench as bench_mod
from repro.telemetry.bench import bench_main, compare_payloads
from repro.telemetry.core import TELEMETRY
from repro.trace.access import ProgramTrace, ThreadTrace


@pytest.fixture(autouse=True)
def _global_telemetry_off():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


def _payload(fast=1_000_000, e2e=None):
    doc = {
        "bench": "simulator-throughput",
        "drive": {
            "psums/good/t4": {
                "accesses": 96_000,
                "ref_accesses_per_s": fast / 2,
                "fast_accesses_per_s": fast,
                "speedup": 2.0,
            },
        },
        "e2e": {},
    }
    if e2e is not None:
        doc["e2e"] = {"parallel_fast_s": e2e}
    return doc


# -------------------------------------------------------- compare_payloads


def test_compare_within_tolerance_passes():
    cmp = compare_payloads(_payload(fast=800_000), _payload(fast=1_000_000),
                           max_regression=0.30)
    assert cmp.ok
    assert len(cmp.rows) == 1
    row = cmp.rows[0]
    assert row.metric == "fast_accesses_per_s"
    assert row.ratio == pytest.approx(0.8)
    assert not row.regressed
    assert "ok" in cmp.render()


def test_compare_flags_throughput_regression():
    cmp = compare_payloads(_payload(fast=600_000), _payload(fast=1_000_000),
                           max_regression=0.30)
    assert not cmp.ok
    assert [r.label for r in cmp.regressions] == ["psums/good/t4"]
    assert "REGRESSED" in cmp.render()
    d = cmp.to_dict()
    assert d["ok"] is False and d["rows"][0]["regressed"] is True


def test_compare_improvement_always_passes():
    cmp = compare_payloads(_payload(fast=5_000_000), _payload(fast=1_000_000))
    assert cmp.ok and cmp.rows[0].ratio == pytest.approx(5.0)


def test_compare_missing_baseline_case_fails_gate():
    current = _payload()
    del current["drive"]["psums/good/t4"]
    current["drive"]["something/else"] = {"fast_accesses_per_s": 1}
    cmp = compare_payloads(current, _payload())
    assert cmp.missing == ["psums/good/t4"]
    assert not cmp.ok
    assert "missing from current run" in cmp.render()


def test_compare_new_case_without_baseline_is_ignored():
    current = _payload()
    current["drive"]["brand/new"] = {"fast_accesses_per_s": 1}
    assert compare_payloads(current, _payload()).ok


def test_compare_e2e_is_lower_is_better():
    # 10s -> 12s is a 17% slowdown: fine at 30%, fatal at 10%.
    ok = compare_payloads(_payload(e2e=12.0), _payload(e2e=10.0),
                          max_regression=0.30)
    assert ok.ok
    bad = compare_payloads(_payload(e2e=12.0), _payload(e2e=10.0),
                           max_regression=0.10)
    assert [r.label for r in bad.regressions] == ["e2e"]
    assert bad.rows[-1].ratio == pytest.approx(10.0 / 12.0, abs=1e-3)


def test_compare_rejects_bad_threshold():
    with pytest.raises(TelemetryError):
        compare_payloads(_payload(), _payload(), max_regression=1.5)
    with pytest.raises(TelemetryError):
        compare_payloads(_payload(), _payload(), max_regression=-0.1)


def test_compare_accepts_historical_baseline_shape():
    # The committed BENCH_simulator.json predates the "mode"/"repeats"
    # keys; the gate must accept it as-is so the first CI run can use it.
    legacy = {"drive": {"psums/good/t4": {"fast_accesses_per_s": 1_000_000}}}
    assert compare_payloads(_payload(fast=900_000), legacy).ok


# --------------------------------------------------------- CLI: --input


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


def test_cli_input_mode_pass_exit_0(tmp_path, capsys):
    cur = _write(tmp_path / "cur.json", _payload(fast=900_000))
    base = _write(tmp_path / "base.json", _payload(fast=1_000_000))
    assert bench_main(["--input", cur, "--baseline", base]) == 0
    assert "bench gate: PASS" in capsys.readouterr().out


def test_cli_input_mode_regression_exit_1(tmp_path, capsys):
    cur = _write(tmp_path / "cur.json", _payload(fast=500_000))
    base = _write(tmp_path / "base.json", _payload(fast=1_000_000))
    assert bench_main(["--input", cur, "--baseline", base]) == 1
    err = capsys.readouterr().err
    assert "bench gate: FAIL" in err and "1 regression" in err


def test_cli_missing_baseline_exit_2(tmp_path, capsys):
    cur = _write(tmp_path / "cur.json", _payload())
    rc = bench_main(["--input", cur, "--baseline",
                     str(tmp_path / "nope.json")])
    assert rc == 2
    assert "baseline not found" in capsys.readouterr().err


def test_cli_missing_input_exit_2(tmp_path, capsys):
    rc = bench_main(["--input", str(tmp_path / "nope.json")])
    assert rc == 2
    assert "input not found" in capsys.readouterr().err


def test_cli_corrupt_baseline_exit_2(tmp_path, capsys):
    cur = _write(tmp_path / "cur.json", _payload())
    base = tmp_path / "base.json"
    base.write_text("{not json")
    assert bench_main(["--input", cur, "--baseline", str(base)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_input_without_baseline_exit_0(tmp_path):
    cur = _write(tmp_path / "cur.json", _payload())
    assert bench_main(["--input", cur]) == 0


# ------------------------------------------------------- CLI: run mode


def _tiny_traces():
    """Stand-in for the pinned grid: milliseconds instead of seconds."""
    addrs = np.repeat(np.arange(8, dtype=np.int64) * 64, 250)
    writes = np.zeros(addrs.size, dtype=bool)
    yield "tiny/t1", ProgramTrace([ThreadTrace(addrs, writes)], name="tiny")


def _tiny_routing():
    """Stand-in for the 19-program routing sweep."""
    return {"floor": 0.95, "coverage": 0.97, "accesses": 1_000,
            "paths": {"lines": 900, "runs": 70, "ref-gated": 30},
            "programs": {"tiny": {"lines": 900, "runs": 70,
                                  "ref-gated": 30}}}


def _tiny_store_workers():
    """Stand-in for the memmap-worker RSS measurement."""
    return {"case": "tiny/t1", "workers": 2, "store_bytes": 4_096,
            "worker_peak_rss_kib": [10_000, 10_100], "note": "stub"}


@pytest.fixture
def tiny_bench(monkeypatch):
    """Patch every grid-scale measurement down to milliseconds."""
    monkeypatch.setattr(bench_mod, "drive_traces", _tiny_traces)
    monkeypatch.setattr(bench_mod, "measure_routing", _tiny_routing)
    monkeypatch.setattr(bench_mod, "measure_store_workers",
                        _tiny_store_workers)


def test_cli_run_mode_writes_result_and_manifest(tmp_path, tiny_bench, capsys):
    out = tmp_path / "bench" / "result.json"
    trace = tmp_path / "trace.json"
    rc = bench_main(["--smoke", "--output", str(out),
                     "--chrome-trace", str(trace)])
    assert rc == 0
    payload = json.loads(out.read_text())
    # BENCH_simulator.json-compatible shape.
    assert payload["bench"] == "simulator-throughput"
    assert payload["mode"] == "smoke"
    row = payload["drive"]["tiny/t1"]
    assert row["accesses"] == 2_000
    assert row["fast_accesses_per_s"] > 0 and row["ref_accesses_per_s"] > 0
    manifest = json.loads(
        (out.parent / "result-manifest.json").read_text())
    assert manifest["schema"].startswith("repro-manifest/")
    assert manifest["config"]["mode"] == "smoke"
    assert "bench" in manifest["wall_time_tree"]
    chrome = json.loads(trace.read_text())
    assert any(e.get("name") == "bench.drive"
               for e in chrome["traceEvents"])
    assert "result:" in capsys.readouterr().out
    # The run restored the global collector to its disabled default.
    assert not TELEMETRY.enabled


def test_cli_run_mode_gates_against_fresh_baseline(tmp_path, tiny_bench):
    out1 = tmp_path / "one.json"
    assert bench_main(["--smoke", "--output", str(out1)]) == 0
    # Second run gated against the first: same machine, same tiny trace —
    # must pass at the default 30% tolerance.
    out2 = tmp_path / "two.json"
    assert bench_main(["--smoke", "--output", str(out2),
                       "--baseline", str(out1)]) == 0
    # Inflate the baseline 10x: the second run must now fail the gate.
    doc = json.loads(out1.read_text())
    for row in doc["drive"].values():
        row["fast_accesses_per_s"] *= 10
    out1.write_text(json.dumps(doc))
    assert bench_main(["--smoke", "--output", str(out2),
                       "--baseline", str(out1)]) == 1


# ------------------------------------------------- speedup floors / table


def test_compare_enforces_speedup_floor_from_baseline():
    base = _payload()
    base["drive"]["psums/good/t4"]["speedup_floor"] = 1.3
    ok = compare_payloads(_payload(), base)
    assert ok.ok  # current speedup 2.0 clears the 1.3 floor
    cur = _payload()
    cur["drive"]["psums/good/t4"]["speedup"] = 1.1
    bad = compare_payloads(cur, base)
    assert not bad.ok
    assert [r.metric for r in bad.regressions] == ["speedup"]
    # The floor is hard: a huge tolerance must not soften it.
    still_bad = compare_payloads(cur, base, max_regression=0.9)
    assert [r.metric for r in still_bad.regressions] == ["speedup"]
    assert "REGRESSED" in bad.render()


def test_compare_floor_carried_by_current_payload_also_gates():
    # A fresh run records its own floor; gating against a pre-floor
    # baseline must still enforce it.
    cur = _payload()
    cur["drive"]["psums/good/t4"].update(speedup=1.0, speedup_floor=1.3)
    bad = compare_payloads(cur, _payload())
    assert [r.metric for r in bad.regressions] == ["speedup"]


def test_render_speedup_table_lists_every_strategy():
    from repro.telemetry.bench import render_speedup_table

    payload = _payload()
    payload["drive"]["psums/good/t4"].update(
        runs_accesses_per_s=900_000, lines_accesses_per_s=1_100_000,
        strategy="lines", speedup_floor=1.3)
    table = render_speedup_table(payload)
    for col in ("ref acc/s", "runs acc/s", "lines acc/s", "auto acc/s",
                "auto path", "floor"):
        assert col in table
    assert "psums/good/t4" in table and "lines" in table
    assert "1.30x" in table and "2.00x" in table


def test_cli_run_mode_writes_speedup_table(tmp_path, tiny_bench):
    out = tmp_path / "result.json"
    table = tmp_path / "speedups.txt"
    assert bench_main(["--smoke", "--output", str(out),
                       "--speedup-table", str(table)]) == 0
    text = table.read_text()
    assert "tiny/t1" in text and "auto path" in text
    payload = json.loads(out.read_text())
    row = payload["drive"]["tiny/t1"]
    for strat in ("ref", "runs", "lines", "fast"):
        assert row[f"{strat}_accesses_per_s"] > 0
    assert row["strategy"] in ("runs", "lines", "ref", "ref-gated")


# ------------------------------------------------------- routing coverage


def test_compare_enforces_routing_floor():
    cur = _payload()
    cur["routing"] = _tiny_routing()
    assert compare_payloads(cur, _payload()).ok  # 97% clears 95%
    cur["routing"]["coverage"] = 0.91
    bad = compare_payloads(cur, _payload())
    assert [r.label for r in bad.regressions] == ["routing"]
    # Hard floor: tolerance must not soften it.
    still_bad = compare_payloads(cur, _payload(), max_regression=0.9)
    assert [r.label for r in still_bad.regressions] == ["routing"]


def test_compare_routing_floor_from_baseline_demands_current_data():
    base = _payload()
    base["routing"] = _tiny_routing()
    bad = compare_payloads(_payload(), base)
    assert bad.missing == ["routing"]
    assert not bad.ok


def test_compare_without_routing_anywhere_ignores_it():
    assert compare_payloads(_payload(), _payload()).ok


def test_render_routing_report_histogram_and_verdict():
    from repro.telemetry.bench import render_routing_report

    payload = _payload()
    payload["routing"] = _tiny_routing()
    text = render_routing_report(payload)
    assert "tiny" in text and "lines" in text and "ref-gated" in text
    assert "97.00" in text and "PASS" in text
    payload["routing"]["coverage"] = 0.5
    assert "FAIL" in render_routing_report(payload)


def test_cli_run_mode_writes_coverage_report(tmp_path, tiny_bench, capsys):
    out = tmp_path / "result.json"
    cov = tmp_path / "coverage.txt"
    assert bench_main(["--smoke", "--output", str(out),
                       "--coverage-report", str(cov)]) == 0
    text = cov.read_text()
    assert "routing coverage" in text and "PASS" in text
    payload = json.loads(out.read_text())
    assert payload["routing"]["coverage"] == pytest.approx(0.97)
    assert payload["store_workers"]["worker_peak_rss_kib"]
    console = capsys.readouterr().out
    assert "routing coverage" in console and "store workers" in console


def test_measure_routing_shape_on_real_grid_is_gated_in_ci():
    # The real 19-program sweep is minutes of work; the CI bench job runs
    # it via repro-bench.  Here we only pin the contract the gate relies
    # on: the floor constant itself.
    assert bench_mod.ROUTING_FLOOR == 0.95


# ------------------------------------------- silent-drift section guard


def test_compare_rejects_baseline_without_drive_section():
    # The silent-drift hazard: a baseline missing the section the gate
    # keys on used to produce zero comparison rows and exit 0.
    for broken in ({}, {"drive": {}}, {"e2e": {"parallel_fast_s": 1.0}}):
        with pytest.raises(TelemetryError) as err:
            compare_payloads(_payload(), broken)
        assert "drive" in str(err.value)


def test_compare_rejects_current_without_drive_section():
    with pytest.raises(TelemetryError):
        compare_payloads({"bench": "simulator-throughput"}, _payload())


def test_compare_rejects_unknown_sections():
    mystery = _payload()
    mystery["shiny_new_numbers"] = {"x": 1}
    with pytest.raises(TelemetryError) as err:
        compare_payloads(_payload(), mystery)
    assert "shiny_new_numbers" in str(err.value)
    assert "KNOWN_SECTIONS" in str(err.value)
    with pytest.raises(TelemetryError):
        compare_payloads(mystery, _payload())


def test_compare_rejects_baseline_row_without_throughput():
    base = _payload()
    base["drive"]["psums/good/t4"] = {"speedup": 2.0}  # key dropped
    with pytest.raises(TelemetryError) as err:
        compare_payloads(_payload(), base)
    assert "fast_accesses_per_s" in str(err.value)


def test_cli_missing_section_is_exit_2_not_silent_pass(tmp_path, capsys):
    cur = _write(tmp_path / "cur.json", _payload())
    truncated = dict(_payload())
    del truncated["drive"]
    base = _write(tmp_path / "base.json", truncated)
    assert bench_main(["--input", cur, "--baseline", base]) == 2
    assert "drive" in capsys.readouterr().err


def test_committed_baseline_sections_are_all_known():
    # BENCH_simulator.json must always load cleanly through the section
    # guard — otherwise the CI gate would fail on its own baseline.
    from pathlib import Path

    repo = Path(__file__).parent.parent
    doc = json.loads((repo / "BENCH_simulator.json").read_text())
    assert set(doc) <= bench_mod.KNOWN_SECTIONS
