"""Tests for prediction validation against the shadow oracle."""

import pytest

from repro.analysis.validate import (
    MIN_ORACLE_MISSES,
    PredictionValidator,
    canonical_case,
    registry_grid,
    suite_grid,
)
from repro.baselines.shadow import MAX_THREADS
from repro.suites import all_programs
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def validator():
    return PredictionValidator()


def small_grid(names=("psums", "false1", "seq_rmw")):
    grid = []
    for name in names:
        w = get_workload(name)
        t = 4 if w.kind == "mt" else 1
        for mode in sorted(w.modes, key=lambda m: m.value):
            grid.append((w, RunConfig(threads=t, mode=mode,
                                      size=w.train_sizes[0],
                                      pattern="random")))
    return grid


class TestGrids:
    def test_registry_grid_covers_every_mode(self):
        grid = registry_grid()
        seen = {(w.name, cfg.mode.value) for w, cfg in grid}
        w = get_workload("psums")
        for mode in w.modes:
            assert ("psums", mode.value) in seen

    def test_registry_grid_seq_single_threaded(self):
        for w, cfg in registry_grid():
            if w.kind == "seq":
                assert cfg.threads == 1

    def test_canonical_case_respects_oracle_cap(self):
        for p in all_programs():
            case = canonical_case(p)
            assert case.threads <= MAX_THREADS
            assert case.input_set == p.inputs[0]
            assert case.opt == p.opts[0]

    def test_suite_grid_is_full_suite(self):
        assert len(suite_grid()) == len(all_programs())


class TestRegistryValidation:
    @pytest.fixture(scope="class")
    def report(self):
        return PredictionValidator().validate_registry(small_grid())

    def test_perfect_line_metrics_on_subset(self, report):
        assert report.micro_precision == 1.0
        assert report.micro_recall == 1.0

    def test_verdict_agreement(self, report):
        assert report.verdict_agreement == 1.0

    def test_unambiguous_cases_all_agree(self, report):
        agree, total = report.unambiguous_agreement()
        assert total >= 1
        assert agree == total

    def test_all_disagreements_explained(self, report):
        assert report.all_explained()

    def test_case_surface(self, report):
        bad = [c for c in report.cases if "bad-fs" in c.scope]
        assert bad
        for c in bad:
            assert c.predict_verdict == "bad-fs"
            assert c.shadow_fs
            assert c.matched  # oracle attributes misses to predicted lines

    def test_render_and_dict(self, report):
        out = report.render()
        assert "precision" in out and "recall" in out
        d = report.to_dict()
        assert d["n_cases"] == len(report.cases)
        assert d["line_precision"] == 1.0
        assert d["unambiguous_agreement"]["agree"] == \
            d["unambiguous_agreement"]["total"]


class TestExplanations:
    def test_oracle_floor_is_positive(self):
        assert MIN_ORACLE_MISSES >= 1

    def test_suite_case_explained(self, validator):
        # fluidanimate's boundary lines realize as hand-offs: predicted
        # contention stays below significance, and the harness must
        # explain (not just count) the line-level gap.
        (pair,) = [(p, canonical_case(p)) for p in all_programs()
                   if p.name == "fluidanimate"]
        report = validator.validate_suite([pair])
        (case,) = report.cases
        assert case.recall == 1.0
        assert case.fs_agreement
        assert not case.unexplained
        if case.predicted_only:
            assert case.explanations
