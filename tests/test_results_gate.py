"""``repro.results.gate``: trajectory verdicts, fallbacks, acceptance.

The two load-bearing guarantees from the issue are pinned here:

* on a two-run store (committed baseline + fresh payload) the gate
  reproduces **every verdict** the pairwise ``compare_payloads`` gate
  produces on the committed ``BENCH_simulator.json`` — no floor weakened;
* on a 5-run history of ±20% jittered throughput around a stable median,
  the pairwise gate false-positives (unlucky baseline sample vs unlucky
  current sample) while the trajectory gate correctly passes.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.errors import ResultsError
from repro.results.gate import gate_store, render_gate_markdown
from repro.results.store import ResultsStore
from repro.telemetry.bench import compare_payloads

from tests.test_results_store import bench_payload, serve_payload

REPO = Path(__file__).parent.parent


def committed_bench():
    return json.loads((REPO / "BENCH_simulator.json").read_text())


def two_run_gate(tmp_path, baseline, current):
    """Gate a store seeded with (baseline, current) — the CI shape."""
    with ResultsStore(tmp_path / "g.db") as store:
        store.ingest(baseline, source="baseline")
        store.ingest(current, source="current")
        return gate_store(store, kind="bench")


# ---------------------------------------- acceptance: pairwise parity


def test_gate_matches_pairwise_on_committed_baseline_ok(tmp_path):
    base = committed_bench()
    cur = copy.deepcopy(base)
    for row in cur["drive"].values():
        row["fast_accesses_per_s"] = int(row["fast_accesses_per_s"] * 0.9)
    assert compare_payloads(cur, base).ok
    assert two_run_gate(tmp_path, base, cur).ok


def test_gate_matches_pairwise_on_throughput_regression(tmp_path):
    base = committed_bench()
    cur = copy.deepcopy(base)
    cur["drive"]["seq_read/good/t1"]["fast_accesses_per_s"] = int(
        base["drive"]["seq_read/good/t1"]["fast_accesses_per_s"] * 0.5)
    pairwise = compare_payloads(cur, base)
    assert not pairwise.ok
    report = two_run_gate(tmp_path, base, cur)
    assert not report.ok
    assert any(r.name == "drive.seq_read/good/t1.fast_accesses_per_s"
               and r.regressed for r in report.rows)


def test_gate_keeps_speedup_floor_hard(tmp_path):
    base = committed_bench()
    cur = copy.deepcopy(base)
    cur["drive"]["psums/bad-fs/t4"]["speedup"] = 1.1  # floor is 1.3
    assert not compare_payloads(cur, base).ok
    report = two_run_gate(tmp_path, base, cur)
    breached = [r for r in report.rows
                if r.name == "drive.psums/bad-fs/t4.speedup"
                and r.mode == "bound"]
    assert breached and breached[0].regressed
    assert breached[0].reference == 1.3
    # No tolerance softens the floor — huge max_regression, same verdict.
    with ResultsStore(tmp_path / "g2.db") as store:
        store.ingest(base)
        store.ingest(cur)
        loose = gate_store(store, kind="bench", max_regression=0.9)
    assert any(r.mode == "bound" and r.regressed for r in loose.rows)


def test_gate_keeps_routing_floor_hard(tmp_path):
    base = committed_bench()
    cur = copy.deepcopy(base)
    cur["routing"]["coverage"] = 0.91  # floor is 0.95
    assert not compare_payloads(cur, base).ok
    report = two_run_gate(tmp_path, base, cur)
    assert any(r.name == "routing.coverage" and r.mode == "bound"
               and r.regressed for r in report.rows)


def test_gate_fails_on_missing_grid_case_like_pairwise(tmp_path):
    base = committed_bench()
    cur = copy.deepcopy(base)
    del cur["drive"]["psums/bad-fs/t4"]
    assert not compare_payloads(cur, base).ok
    report = two_run_gate(tmp_path, base, cur)
    assert not report.ok
    assert any("psums/bad-fs/t4" in tag for tag in report.missing)


# ------------------------------------ acceptance: jittered trajectory


#: Five throughput samples jittered ±20% around a stable 1.0e6 median —
#: the run-to-run noise profile Röhl et al. describe for counter-derived
#: metrics on shared CI runners.
JITTERED = [1_200_000, 800_000, 1_000_000, 1_150_000, 850_000]


def test_trajectory_gate_beats_pairwise_on_noisy_history(tmp_path):
    # Pairwise methodology: whichever single sample happened to be
    # committed is the baseline.  The unlucky high sample vs the unlucky
    # low sample crosses the 30% line — a false positive, nothing
    # actually regressed.
    unlucky_base = bench_payload(fast=max(JITTERED))
    unlucky_cur = bench_payload(fast=min(JITTERED))
    assert not compare_payloads(unlucky_cur, unlucky_base).ok

    # Trajectory methodology over the same five samples: the median is
    # stable, the MAD captures the jitter, and the same unlucky low
    # sample sits comfortably inside the band.
    with ResultsStore(tmp_path / "g.db") as store:
        for fast in JITTERED:
            store.ingest(bench_payload(fast=fast))
        store.ingest(bench_payload(fast=min(JITTERED) - 1))  # fresh low run
        report = gate_store(store, kind="bench")
    row = next(r for r in report.rows
               if r.name == "drive.psums/bad-fs/t4.fast_accesses_per_s")
    assert row.mode == "trajectory"
    assert not row.regressed
    assert report.ok

    # ...but a genuine collapse still trips the same band.
    with ResultsStore(tmp_path / "g2.db") as store:
        for fast in JITTERED:
            store.ingest(bench_payload(fast=fast))
        store.ingest(bench_payload(fast=100_000))
        bad = gate_store(store, kind="bench")
    assert not bad.ok


# ------------------------------------------------- small-history edges


def test_gate_single_run_checks_bounds_only(tmp_path):
    with ResultsStore(tmp_path / "g.db") as store:
        store.ingest(bench_payload(speedup=2.0, floor=1.3))
        report = gate_store(store)
    assert report.ok
    assert {r.mode for r in report.rows} <= {"new", "bound"}
    # Same single-run store, floor breached: still fails at N=1.
    with ResultsStore(tmp_path / "g2.db") as store:
        store.ingest(bench_payload(speedup=1.1, floor=1.3))
        report = gate_store(store)
    assert not report.ok
    assert all(r.mode == "bound" for r in report.regressions)


def test_gate_two_runs_use_pairwise_not_bands(tmp_path):
    with ResultsStore(tmp_path / "g.db") as store:
        store.ingest(bench_payload(fast=1_000_000))
        store.ingest(bench_payload(fast=500_000))
        report = gate_store(store)
    row = next(r for r in report.rows
               if r.name == "drive.psums/bad-fs/t4.fast_accesses_per_s")
    assert row.mode == "pairwise"
    assert row.regressed  # -50% > 30% tolerance
    assert not report.ok


def test_gate_zero_history_values_never_divide(tmp_path):
    # shed 0 -> 0 passes; shed 0 -> 3 fails, with no ZeroDivisionError.
    with ResultsStore(tmp_path / "g.db") as store:
        store.ingest(serve_payload(shed=0))
        store.ingest(serve_payload(rps=23_001.0, shed=0))
        assert gate_store(store, kind="serve").ok
    with ResultsStore(tmp_path / "g2.db") as store:
        store.ingest(serve_payload(shed=0))
        store.ingest(serve_payload(rps=23_001.0, shed=3))
        report = gate_store(store, kind="serve")
    assert not report.ok
    assert any(r.name == "loadgen.shed" and r.regressed
               for r in report.rows)


def test_gate_improvements_always_pass(tmp_path):
    with ResultsStore(tmp_path / "g.db") as store:
        for fast in JITTERED:
            store.ingest(bench_payload(fast=fast))
        store.ingest(bench_payload(fast=10_000_000))  # 10x better
        assert gate_store(store, kind="bench").ok


def test_gate_parameter_validation(tmp_path):
    with ResultsStore(tmp_path / "g.db") as store:
        store.ingest(bench_payload())
        with pytest.raises(ResultsError):
            gate_store(store, max_regression=1.5)
        with pytest.raises(ResultsError):
            gate_store(store, window=0)
        with pytest.raises(ResultsError):
            gate_store(store, min_history=0)
        with pytest.raises(ResultsError):
            gate_store(store, kind="serve")  # no serve runs ingested


def test_gate_report_renders_and_serializes(tmp_path):
    with ResultsStore(tmp_path / "g.db") as store:
        store.ingest(bench_payload())
        store.ingest(bench_payload(fast=100_000))
        report = gate_store(store)
    text = report.render()
    assert "results gate" in text and "REGRESSED" in text
    doc = report.to_dict()
    assert doc["ok"] is False and doc["rows"]
    md = render_gate_markdown(report)
    assert md.startswith("**results gate: FAIL**")
    assert "| bench |" in md
