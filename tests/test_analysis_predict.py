"""Tests for the trace-free predictive analyzer."""

import pytest

from repro.analysis.predict import PredictiveAnalyzer, predict_plan
from repro.analysis.sharing import StaticSharingAnalyzer
from repro.workloads.base import RunConfig
from repro.workloads.registry import all_workloads, get_workload


@pytest.fixture(scope="module")
def predictor():
    return PredictiveAnalyzer()


@pytest.fixture(scope="module")
def analyzer():
    return StaticSharingAnalyzer()


def _cfg(w, mode, threads=4):
    t = threads if w.kind == "mt" else 1
    return RunConfig(threads=t, mode=mode, size=w.train_sizes[0],
                     pattern="random")


class TestVerdictParity:
    """The symbolic verdict must match the trace-based one on the grid."""

    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name)
    def test_predict_matches_static(self, workload, predictor, analyzer):
        for mode in sorted(workload.modes, key=lambda m: m.value):
            cfg = _cfg(workload, mode)
            pred = predictor.analyze(workload.plan(cfg))
            static = analyzer.analyze(workload.trace(cfg))
            assert pred.verdict == static.verdict, (
                f"{workload.name}/{mode.value}: predicted {pred.verdict}, "
                f"trace says {static.verdict}")


class TestPlanFidelity:
    def test_counts_match_trace(self, predictor):
        w = get_workload("psums")
        cfg = _cfg(w, "bad-fs")
        plan = w.plan(cfg)
        trace = w.trace(cfg)
        assert plan.total_accesses == trace.total_accesses
        assert plan.total_instructions == trace.total_instructions

    def test_fs_lines_name_the_slots(self, predictor):
        w = get_workload("psums")
        pred = predictor.analyze(w.plan(_cfg(w, "bad-fs")))
        assert pred.verdict == "bad-fs"
        hot = pred.false_shared()
        assert hot
        names = {n for pl in hot for n in pl.objects}
        assert any(n.startswith("psum[") for n in names)

    def test_good_mode_clean(self, predictor):
        w = get_workload("psums")
        pred = predictor.analyze(w.plan(_cfg(w, "good")))
        assert pred.verdict == "good"
        assert not pred.false_shared()

    def test_handoff_not_contended(self, predictor):
        # pmatmult/good block-partitions rows: boundary lines are shared
        # but visited at disjoint times — a hand-off, not contention.
        w = get_workload("pmatmult")
        pred = predictor.analyze(w.plan(_cfg(w, "good")))
        assert pred.verdict == "good"

    def test_bad_ma_hostility(self, predictor):
        w = get_workload("seq_rmw")
        pred = predictor.analyze(w.plan(_cfg(w, "bad-ma")))
        assert pred.verdict == "bad-ma"
        assert pred.hostile_threads == [0]


class TestPredictionSurface:
    @pytest.fixture(scope="class")
    def pred(self):
        w = get_workload("psums")
        return predict_plan(w.plan(_cfg(w, "bad-fs")))

    def test_category_counts_cover_all_lines(self, pred):
        counts = pred.category_counts()
        assert sum(counts.values()) == pred.n_lines
        assert counts["false-shared"] >= 1

    def test_object_sharing_ranks_fs_worst(self, pred):
        sharing = pred.object_sharing()
        assert sharing["psum[t0]"] == "false-shared"

    def test_to_dict_stable_surface(self, pred):
        d = pred.to_dict()
        assert d["verdict"] == "bad-fs"
        assert d["category_counts"]["false-shared"] >= 1
        assert all("category" in pl for pl in d["shared_lines"])

    def test_render_mentions_verdict_and_lines(self, pred):
        out = pred.render()
        assert "bad-fs" in out
        assert "false-shared" in out
        assert "0x" in out

    def test_significance_drives_verdict(self, pred):
        assert pred.fs_significance > 0
        assert pred.has_false_sharing
