"""Tests for access-pattern generators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.trace.generators import (
    interleave_streams,
    linear_indices,
    permuted_indices,
    random_indices,
    strided_indices,
    tiled_indices,
)
from repro.utils.rng import rng_for


class TestLinear:
    def test_simple(self):
        assert (linear_indices(4, 10) == [0, 1, 2, 3]).all()

    def test_wraps(self):
        assert (linear_indices(5, 3) == [0, 1, 2, 0, 1]).all()

    def test_empty(self):
        assert linear_indices(0, 5).size == 0

    def test_bad_args(self):
        with pytest.raises(TraceError):
            linear_indices(-1, 5)
        with pytest.raises(TraceError):
            linear_indices(5, 0)


class TestStrided:
    def test_stride_pattern(self):
        assert (strided_indices(4, 8, 2) == [0, 2, 4, 6]).all()

    def test_coprime_stride_covers_everything(self):
        idx = strided_indices(10, 10, 3)
        assert set(idx.tolist()) == set(range(10))

    def test_zero_stride_rejected(self):
        with pytest.raises(TraceError):
            strided_indices(4, 8, 0)

    @given(st.integers(1, 50), st.integers(1, 50), st.integers(1, 7))
    def test_all_in_range(self, n, length, stride):
        idx = strided_indices(n, length, stride)
        assert ((idx >= 0) & (idx < length)).all()


class TestRandomAndPermuted:
    def test_random_in_range(self):
        idx = random_indices(100, 7, rng_for("t"))
        assert ((idx >= 0) & (idx < 7)).all()

    def test_permuted_visits_each_exactly_once_per_sweep(self):
        idx = permuted_indices(10, 10, rng_for("t"))
        assert sorted(idx.tolist()) == list(range(10))

    def test_permuted_multiple_sweeps(self):
        idx = permuted_indices(20, 10, rng_for("t"))
        counts = np.bincount(idx, minlength=10)
        assert (counts == 2).all()

    def test_permuted_partial_sweep(self):
        idx = permuted_indices(7, 10, rng_for("t"))
        assert idx.size == 7
        assert len(set(idx.tolist())) == 7

    def test_deterministic_with_same_rng_seed(self):
        a = permuted_indices(16, 16, rng_for("s"))
        b = permuted_indices(16, 16, rng_for("s"))
        assert (a == b).all()


class TestTiled:
    def test_tile_structure(self):
        idx = tiled_indices(8, 8, 4)
        # visits a 4-element tile before jumping
        assert (idx[:4] == [0, 1, 2, 3]).all()

    def test_in_range(self):
        idx = tiled_indices(100, 32, 8)
        assert ((idx >= 0) & (idx < 32)).all()

    def test_bad_tile(self):
        with pytest.raises(TraceError):
            tiled_indices(8, 8, 0)


class TestInterleaveStreams:
    def test_round_robin(self):
        a = np.array([1, 2], dtype=np.int64)
        b = np.array([10, 20], dtype=np.int64)
        assert (interleave_streams(a, b) == [1, 10, 2, 20]).all()

    def test_single_stream_identity(self):
        a = np.array([5, 6], dtype=np.int64)
        assert (interleave_streams(a) == a).all()

    def test_unequal_rejected(self):
        with pytest.raises(TraceError):
            interleave_streams(np.zeros(2, np.int64), np.zeros(3, np.int64))

    def test_no_streams_rejected(self):
        with pytest.raises(TraceError):
            interleave_streams()
