"""Tests for the PMU event catalog."""

import pytest

from repro.errors import UnknownEventError
from repro.pmu.events import (
    ALL_EVENTS,
    CANDIDATE_EVENTS,
    CLOCK_EVENT,
    NORMALIZER,
    TABLE2_EVENTS,
    event_by_code,
    event_by_name,
    event_by_raw_key,
    event_number,
    feature_events,
)


class TestTable2:
    def test_sixteen_events(self):
        assert len(TABLE2_EVENTS) == 16

    def test_paper_numbering(self):
        # spot-check the paper's Table 2 rows
        assert TABLE2_EVENTS[0].code == 0x26 and TABLE2_EVENTS[0].umask == 0x01
        assert TABLE2_EVENTS[10].name == "Snoop_Response.HIT_M"
        assert TABLE2_EVENTS[10].code == 0xB8 and TABLE2_EVENTS[10].umask == 0x04
        assert TABLE2_EVENTS[12].name == "DTLB_Misses"
        assert TABLE2_EVENTS[15].name == "Instructions_Retired"

    def test_event_number(self):
        assert event_number(TABLE2_EVENTS[10]) == 11
        assert event_number(TABLE2_EVENTS[5]) == 6

    def test_non_table2_has_no_number(self):
        extra = [e for e in CANDIDATE_EVENTS if e not in TABLE2_EVENTS]
        assert event_number(extra[0]) is None

    def test_normalizer_is_instructions(self):
        assert NORMALIZER.name == "Instructions_Retired"
        assert NORMALIZER.raw_key == "INST_RETIRED.ANY"

    def test_feature_events_excludes_normalizer(self):
        feats = feature_events()
        assert len(feats) == 15
        assert NORMALIZER not in feats


class TestCatalog:
    def test_candidate_count_plausible(self):
        # the paper had 60-70 candidates on real hardware; we model ~50
        assert 40 <= len(CANDIDATE_EVENTS) <= 70

    def test_no_duplicate_names(self):
        names = [e.name for e in ALL_EVENTS]
        assert len(names) == len(set(names))

    def test_no_duplicate_code_umask(self):
        pairs = [(e.code, e.umask) for e in ALL_EVENTS]
        assert len(pairs) == len(set(pairs))

    def test_clock_not_a_candidate(self):
        assert CLOCK_EVENT not in CANDIDATE_EVENTS
        assert CLOCK_EVENT in ALL_EVENTS

    def test_erratic_event_flagged(self):
        e = event_by_raw_key("MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM")
        assert e.erratic

    def test_l1d_events_noisier(self):
        ld = event_by_raw_key("L1D_CACHE_LD")
        hitm = event_by_raw_key("SNOOP_RESPONSE.HITM")
        assert ld.noise > 3 * hitm.noise

    def test_selector_format(self):
        e = TABLE2_EVENTS[10]
        assert e.selector == "r04B8"


class TestLookups:
    def test_by_name(self):
        assert event_by_name("Snoop_Response.HIT_M").umask == 0x04

    def test_by_name_case_insensitive(self):
        assert event_by_name("snoop_response.hit_m").umask == 0x04

    def test_by_raw_key(self):
        assert event_by_raw_key("L1D.REPL").name == "L1D_Cache_Replacements"

    def test_by_code(self):
        assert event_by_code(0xB8, 0x04).name == "Snoop_Response.HIT_M"

    def test_unknown_rejected(self):
        with pytest.raises(UnknownEventError):
            event_by_name("No_Such_Event")
        with pytest.raises(UnknownEventError):
            event_by_raw_key("NO.KEY")
        with pytest.raises(UnknownEventError):
            event_by_code(0xFF, 0xFF)
