"""Property-based tests: simulator invariants over random traces.

Hypothesis generates small multi-threaded access traces; the machine must
uphold architectural invariants on all of them — counts that cannot go
negative, containment relations between cache levels, and the guarantee
that a single-threaded run never snoops.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.coherence.machine import MulticoreMachine
from repro.trace.access import ProgramTrace, make_thread

from tests.conftest import SMALL_SPEC


@st.composite
def program_traces(draw, max_threads=4, max_len=300):
    nt = draw(st.integers(1, max_threads))
    threads = []
    for _ in range(nt):
        n = draw(st.integers(1, max_len))
        # Confine addresses to a handful of pages so threads actually share.
        addrs = draw(
            st.lists(st.integers(0, 4096 * 4 - 1), min_size=n, max_size=n)
        )
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        threads.append(
            make_thread(np.array(addrs, dtype=np.int64) + 4096,
                        np.array(writes, dtype=bool))
        )
    return ProgramTrace(threads)


def run(prog, prefetch=True):
    return MulticoreMachine(SMALL_SPEC, prefetch=prefetch).run(prog)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(program_traces())
    def test_counts_non_negative_and_finite(self, prog):
        r = run(prog)
        for key, value in r.counts.items():
            assert value >= 0.0, key
            assert np.isfinite(value), key

    @settings(max_examples=40, deadline=None)
    @given(program_traces())
    def test_l1_fills_at_least_l2_fills(self, prog):
        # inclusive hierarchy: every L2 fill also fills L1
        r = run(prog)
        assert r.counts["L1D.REPL"] >= r.counts["L2_TRANSACTIONS.FILL"]

    @settings(max_examples=40, deadline=None)
    @given(program_traces())
    def test_lines_in_bounded_by_fills(self, prog):
        r = run(prog)
        assert (r.counts["L2_LINES_IN.S_STATE"]
                + r.counts["L2_LINES_IN.E_STATE"]
                <= r.counts["L2_TRANSACTIONS.FILL"] + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(program_traces())
    def test_loads_stores_partition_accesses(self, prog):
        r = run(prog)
        assert (r.counts["MEM_INST_RETIRED.LOADS"]
                + r.counts["MEM_INST_RETIRED.STORES"]
                == prog.total_accesses)

    @settings(max_examples=40, deadline=None)
    @given(program_traces())
    def test_instructions_match_traces(self, prog):
        r = run(prog)
        assert r.instructions == prog.total_instructions

    @settings(max_examples=30, deadline=None)
    @given(program_traces(max_threads=1))
    def test_single_thread_never_snoops(self, prog):
        r = run(prog)
        for key in ("SNOOP_RESPONSE.HIT", "SNOOP_RESPONSE.HITE",
                    "SNOOP_RESPONSE.HITM", "L2_WRITE.RFO.S_STATE"):
            assert r.counts[key] == 0, key

    @settings(max_examples=25, deadline=None)
    @given(program_traces())
    def test_determinism(self, prog):
        a = run(prog)
        b = run(prog)
        assert a.counts == b.counts
        assert a.cycles_per_core == b.cycles_per_core

    @settings(max_examples=25, deadline=None)
    @given(program_traces())
    def test_footprint_bounds_cold_misses(self, prog):
        # L3 misses can't exceed the number of distinct lines touched
        # (nothing is ever evicted from the big L3 in these tiny traces)
        r = run(prog, prefetch=False)
        assert r.counts["LONGEST_LAT_CACHE.MISS"] <= prog.footprint_lines()

    @settings(max_examples=25, deadline=None)
    @given(program_traces())
    def test_seconds_positive_when_work_done(self, prog):
        r = run(prog)
        if prog.total_instructions:
            assert r.seconds > 0.0

    @settings(max_examples=25, deadline=None)
    @given(program_traces(), st.sampled_from([1, 2, 8]))
    def test_chunking_preserves_count_totals(self, prog, chunk):
        """Interleave granularity moves events between categories but never
        invents or loses accesses."""
        r = MulticoreMachine(SMALL_SPEC).run(prog, chunk=chunk)
        assert (r.counts["MEM_INST_RETIRED.LOADS"]
                + r.counts["MEM_INST_RETIRED.STORES"]
                == prog.total_accesses)


class TestCoherenceSoundness:
    @settings(max_examples=30, deadline=None)
    @given(program_traces(max_threads=4, max_len=200))
    def test_mesi_single_owner_invariant(self, prog):
        """The final cache states satisfy MESI: a line Modified or Exclusive
        in one core is resident in no other core; Shared copies agree."""
        from collections import defaultdict

        from repro.coherence.protocol import EXCLUSIVE, MODIFIED, SHARED

        m = MulticoreMachine(SMALL_SPEC)
        m.run(prog, keep_state=True)
        by_line = defaultdict(list)
        for core, l2 in enumerate(m._l2):
            for line, state in l2.lines():
                by_line[line].append((core, state))
        for line, holders in by_line.items():
            states = [s for _, s in holders]
            if MODIFIED in states or EXCLUSIVE in states:
                assert len(holders) == 1, (line, holders)
            else:
                assert all(s == SHARED for s in states), (line, holders)

    @settings(max_examples=30, deadline=None)
    @given(program_traces(max_threads=4, max_len=200))
    def test_l1_contained_in_l2_with_same_state(self, prog):
        """Inclusion invariant: every L1-resident line is in that core's L2
        with an identical MESI state."""
        m = MulticoreMachine(SMALL_SPEC)
        m.run(prog, keep_state=True)
        for l1, l2 in zip(m._l1, m._l2):
            for line, state in l1.lines():
                assert l2.lookup(line) == state, line


@st.composite
def adversarial_traces(draw, max_threads=4):
    """Traces built to stress the line-partitioned kernel: one hot line
    every thread fights over, thread-private lines, and page-crossing
    sequential runs — interleaved in random per-thread segment orders."""
    nt = draw(st.integers(2, max_threads))
    hot = 4096  # one line's byte base, shared by every thread
    threads = []
    for t in range(nt):
        kinds = draw(st.lists(st.sampled_from(["hot", "private", "page"]),
                              min_size=1, max_size=6))
        addrs = []
        for kind in kinds:
            ln = draw(st.integers(1, 48))
            if kind == "hot":
                offs = draw(st.lists(st.integers(0, 63),
                                     min_size=ln, max_size=ln))
                addrs.extend(hot + o for o in offs)
            elif kind == "private":
                base = 8192 + t * 4096  # this thread's page, nobody else's
                offs = draw(st.lists(st.integers(0, 4095),
                                     min_size=ln, max_size=ln))
                addrs.extend(base + o for o in offs)
            else:  # a sequential line run crossing a page boundary
                start = 24576 + draw(st.integers(0, 2)) * 4096 - 128
                addrs.extend(start + i * 64 for i in range(ln))
        n = len(addrs)
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        threads.append(make_thread(np.array(addrs, dtype=np.int64),
                                   np.array(writes, dtype=bool)))
    return ProgramTrace(threads)


class TestDriveStrategyEquivalence:
    """All three drive strategies agree exactly on adversarial traces."""

    @settings(max_examples=30, deadline=None)
    @given(adversarial_traces())
    def test_exact_tally_equality_across_strategies(self, prog):
        ref = MulticoreMachine(SMALL_SPEC, fast=False,
                               hitm_sample_period=5).run(prog)
        for strategy in ("runs", "lines", "auto"):
            # The zero gate forces run-compression to vectorize even the
            # most fragmented draw; 'lines' and 'auto' manage their own
            # fallbacks (which must be just as identical).
            gate = 0.0 if strategy == "runs" else 1.6
            res = MulticoreMachine(SMALL_SPEC, fast=strategy,
                                   fast_min_compression=gate,
                                   hitm_sample_period=5).run(prog)
            assert res.counts == ref.counts, strategy
            assert res.cycles_per_core == ref.cycles_per_core, strategy
            assert res.seconds == ref.seconds, strategy
            assert res.hitm_samples == ref.hitm_samples, strategy
