"""Tests for repro-detect, with a stubbed (fast) pipeline context."""

import pytest

from repro import cli
from repro.core.lab import Lab


class _StubContext:
    def __init__(self, detector):
        self.detector = detector
        self.lab = detector.lab


@pytest.fixture
def stub_context(monkeypatch):
    from tests.test_core_detector import MINI_PLAN_A, MINI_PLAN_B
    from repro.core.detector import FalseSharingDetector
    from repro.core.training import (ScreeningReport, TrainingData,
                                     collect_plan)

    lab = Lab(disk_cache=None)
    a = collect_plan(lab, MINI_PLAN_A, "A")
    b = collect_plan(lab, MINI_PLAN_B, "B")
    td = TrainingData(a, b, a, b, ScreeningReport(a, [], {}),
                      ScreeningReport(b, [], {}))
    det = FalseSharingDetector(lab).fit(training=td)
    ctx = _StubContext(det)

    import repro.experiments.context as context_mod

    monkeypatch.setattr(context_mod, "default_context", lambda: ctx)
    return ctx


class TestDetect:
    def test_bad_fs_run_exits_nonzero(self, stub_context, capsys):
        rc = cli.detect_main(["pdot", "-m", "bad-fs", "-t", "4",
                              "-n", "65536"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "bad-fs" in out
        assert "false sharing detected" in out

    def test_good_run_exits_zero(self, stub_context, capsys):
        rc = cli.detect_main(["pdot", "-m", "good", "-t", "4", "-n", "65536"])
        assert rc == 0
        assert "no memory-system problem" in capsys.readouterr().out

    def test_bad_ma_message(self, stub_context, capsys):
        rc = cli.detect_main(["seq_write", "-m", "bad-ma", "-t", "1",
                              "-n", "65536"])
        assert rc == 1
        assert "cache-hostile" in capsys.readouterr().out

    def test_slices_flag(self, stub_context, capsys):
        rc = cli.detect_main(["pdot", "-m", "bad-fs", "-t", "4",
                              "-n", "65536", "--slices", "4"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "Time-sliced diagnosis" in out
        assert "overall: bad-fs" in out

    def test_advise_flag(self, stub_context, capsys):
        rc = cli.detect_main(["pdot", "-m", "bad-fs", "-t", "4",
                              "-n", "65536", "--advise"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "Falsely shared cache lines" in out
        assert "estimated effect of padding" in out

    def test_advise_on_good_run(self, stub_context, capsys):
        rc = cli.detect_main(["pdot", "-m", "good", "-t", "4",
                              "-n", "65536", "--advise"])
        assert rc == 0
        assert "no false sharing to fix" in capsys.readouterr().out
