"""Tests for the Lab context: caching, measurement, interference."""

import pytest

from repro.core.lab import Lab
from repro.pmu.events import NORMALIZER, TABLE2_EVENTS
from repro.workloads.base import RunConfig
from repro.workloads.registry import get_workload

HITM = TABLE2_EVENTS[10]


@pytest.fixture
def lab():
    return Lab(disk_cache=None)


def small_cfg(mode="good", rep=0):
    return RunConfig(threads=3, mode=mode, size=2000, rep=rep)


class TestSimulationCache:
    def test_identical_config_cached(self, lab):
        w = get_workload("psums")
        a = lab.simulate(w, small_cfg())
        b = lab.simulate(w, small_cfg())
        assert a is b
        assert lab.cache_size() == 1

    def test_rep_shares_simulation(self, lab):
        w = get_workload("psums")
        a = lab.simulate(w, small_cfg(rep=0))
        b = lab.simulate(w, small_cfg(rep=3))
        assert a is b

    def test_different_mode_not_shared(self, lab):
        w = get_workload("psums")
        a = lab.simulate(w, small_cfg("good"))
        b = lab.simulate(w, small_cfg("bad-fs"))
        assert a is not b

    def test_clear_cache(self, lab):
        w = get_workload("psums")
        lab.simulate(w, small_cfg())
        lab.clear_cache()
        assert lab.cache_size() == 0

    def test_disk_cache_roundtrip(self, tmp_path):
        path = tmp_path / "cache.pkl"
        w = get_workload("psums")
        lab1 = Lab(disk_cache=path)
        lab1.simulate(w, small_cfg())
        lab1.flush()
        assert path.exists()
        lab2 = Lab(disk_cache=path)
        assert lab2.cache_size() == 1

    def test_corrupt_disk_cache_tolerated(self, tmp_path):
        path = tmp_path / "cache.pkl"
        path.write_bytes(b"not a pickle")
        lab = Lab(disk_cache=path)
        assert lab.cache_size() == 0


class TestMeasurement:
    def test_measure_default_events(self, lab):
        w = get_workload("psums")
        vec = lab.measure(w, small_cfg())
        assert vec.count(NORMALIZER) > 0
        assert "seconds" in vec.meta

    def test_reps_produce_different_noise(self, lab):
        w = get_workload("psums")
        a = lab.measure(w, small_cfg(rep=0), [HITM, NORMALIZER])
        b = lab.measure(w, small_cfg(rep=1), [HITM, NORMALIZER])
        assert a.count(HITM) != b.count(HITM)

    def test_noiseless_lab_is_exact(self):
        lab = Lab(noisy=False, disk_cache=None)
        w = get_workload("psums")
        a = lab.measure(w, small_cfg(rep=0), [HITM, NORMALIZER])
        b = lab.measure(w, small_cfg(rep=1), [HITM, NORMALIZER])
        assert a.count(HITM) == b.count(HITM)


class TestInterference:
    def test_zero_probability_never_interferes(self, lab):
        w = get_workload("seq_read")
        cfg = RunConfig(threads=1, mode="good", size=4096)
        vec = lab.measure(w, cfg, interference_p=0.0)
        assert "interfered" not in vec.meta

    def test_certain_interference_inflates_cache_events(self, lab):
        w = get_workload("seq_read")
        cfg = RunConfig(threads=1, mode="good", size=4096)
        clean = lab.measure(w, cfg, interference_p=0.0)
        dirty = lab.measure(w, cfg, interference_p=1.0)
        repl = TABLE2_EVENTS[13]  # L1D replacements
        assert dirty.count(repl) > 1.5 * clean.count(repl)
        # instructions are NOT inflated: interference is cache pollution
        assert dirty.count(NORMALIZER) == pytest.approx(
            clean.count(NORMALIZER), rel=0.05)

    def test_interference_deterministic_per_run(self, lab):
        w = get_workload("seq_read")
        cfg = RunConfig(threads=1, mode="good", size=4096)
        a = lab.measure(w, cfg, interference_p=0.5)
        b = lab.measure(w, cfg, interference_p=0.5)
        assert a.values == b.values
