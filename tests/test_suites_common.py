"""Tests for the shared parametric benchmark model."""

import numpy as np
from repro.memory.layout import line_of
from repro.suites.base import SuiteCase
from repro.suites.common import ParamModel, kb, mb


class _Probe(ParamModel):
    """Configurable instance for exercising each mechanism in isolation."""

    name = "probe"
    suite = "phoenix"
    inputs = ("in",)
    opts = ("-O0", "-O2")
    threads = (2, 4)

    iters = 4_000
    acc_fields = 2
    acc_stride = None
    acc_period = 4
    gather_period = 0
    gather_bytes = kb(16)
    gather_shared = False
    stack_every = 1
    merge_rmws = 0

    def p_iters(self, case):
        return self.iters

    def p_acc_fields(self, case):
        return self.acc_fields

    def p_acc_stride(self, case):
        return self.acc_stride

    def p_acc_period(self, case):
        return self.acc_period

    def p_gather_period(self, case):
        return self.gather_period

    def p_gather_bytes(self, case):
        return self.gather_bytes

    def p_gather_shared(self, case):
        return self.gather_shared

    def p_stack_every(self, case):
        return self.stack_every

    def p_merge_rmws(self, case):
        return self.merge_rmws


def probe(**kw):
    p = _Probe()
    for k, v in kw.items():
        setattr(p, k, v)
    return p


CASE = SuiteCase("in", "-O2", 4)


class TestAccumulator:
    def test_padded_by_default(self):
        tr = probe().trace(CASE)
        def acc_lines(tid):
            t = tr.threads[tid]
            lines, counts = np.unique(line_of(t.addrs[t.is_write]),
                                      return_counts=True)
            return set(lines[counts > 100].tolist())
        shared = acc_lines(0) & acc_lines(1)
        assert not shared

    def test_packed_stride_shares_lines(self):
        tr = probe(acc_stride=16).trace(CASE)
        w0 = set(line_of(tr.threads[0].addrs[tr.threads[0].is_write]).tolist())
        w1 = set(line_of(tr.threads[1].addrs[tr.threads[1].is_write]).tolist())
        assert w0 & w1

    def test_period_controls_write_count(self):
        dense = probe(acc_period=1, stack_every=0).trace(CASE)
        sparse = probe(acc_period=16, stack_every=0).trace(CASE)
        assert (sum(t.n_writes for t in dense.threads)
                > 4 * sum(t.n_writes for t in sparse.threads))

    def test_zero_period_disables_accumulator(self):
        tr = probe(acc_period=0, stack_every=0).trace(CASE)
        # only sync-word writes remain
        assert sum(t.n_writes for t in tr.threads) < 50


class TestGather:
    def test_private_tables_disjoint(self):
        tr = probe(gather_period=2, gather_shared=False,
                   gather_bytes=kb(32)).trace(CASE)
        # gather lines of thread 0 and 1 are disjoint (own tables)
        def gather_lines(tid):
            t = tr.threads[tid]
            return set(line_of(t.addrs).tolist())
        # they still share the input stream; compare only high lines
        g0 = {l for l in gather_lines(0)}
        g1 = {l for l in gather_lines(1)}
        # tables dominate the upper address range; require SOME disjointness
        assert g0 != g1

    def test_shared_table_overlaps(self):
        tr = probe(gather_period=2, gather_shared=True,
                   gather_bytes=kb(32)).trace(CASE)
        r0 = set(line_of(tr.threads[0].addrs[~tr.threads[0].is_write]).tolist())
        r1 = set(line_of(tr.threads[1].addrs[~tr.threads[1].is_write]).tolist())
        assert len(r0 & r1) > 20

    def test_gather_fraction(self):
        no = probe(gather_period=0).trace(CASE)
        yes = probe(gather_period=2).trace(CASE)
        assert yes.total_accesses > no.total_accesses


class TestStackAndMerge:
    def test_stack_adds_private_hot_traffic(self):
        with_stack = probe(stack_every=1).trace(CASE)
        without = probe(stack_every=0).trace(CASE)
        assert with_stack.total_accesses > 1.25 * without.total_accesses

        # the stack slots are private (hot write lines disjoint; the rare
        # shared sync-word writes fall under the hotness threshold)
        def hot_writes(tid):
            t = with_stack.threads[tid]
            lines, counts = np.unique(line_of(t.addrs[t.is_write]),
                                      return_counts=True)
            return set(lines[counts > 100].tolist())

        assert not (hot_writes(0) & hot_writes(1))

    def test_merge_rmws_share_lines_across_threads(self):
        tr = probe(merge_rmws=32).trace(CASE)
        tails = [t.addrs[-70:] for t in tr.threads]  # before sync insertions
        tail_lines = [set(line_of(a).tolist()) for a in tails]
        assert tail_lines[0] & tail_lines[1]

    def test_merge_constant_per_thread(self):
        small = probe(merge_rmws=32, iters=2_000).trace(CASE)
        large = probe(merge_rmws=32, iters=8_000).trace(CASE)
        # merge adds the same absolute accesses regardless of iters
        delta_small = small.total_accesses - probe(
            merge_rmws=0, iters=2_000).trace(CASE).total_accesses
        delta_large = large.total_accesses - probe(
            merge_rmws=0, iters=8_000).trace(CASE).total_accesses
        # sync insertions differ slightly; allow small tolerance
        assert abs(delta_small - delta_large) < 16


class TestOptEffects:
    def test_instruction_scale_applied(self):
        o0 = probe().trace(SuiteCase("in", "-O0", 4))
        o2 = probe().trace(SuiteCase("in", "-O2", 4))
        assert o0.total_instructions > 1.5 * o2.total_instructions
        assert o0.total_accesses == o2.total_accesses


class TestHelpers:
    def test_kb_mb(self):
        assert kb(4) == 4096
        assert mb(1) == 1 << 20
        assert kb(0.5) == 512
