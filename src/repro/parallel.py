"""Parallel case-grid execution.

Every expensive artifact in the pipeline — the Table 3 training set, the
Tables 5-10 suite classification grids, the shadow-memory oracle runs — is a
*grid* of independent (workload, configuration) cases.  Simulating one case
shares no state with any other: traces are generated from
:func:`repro.utils.rng.rng_for` (a blake2b-keyed stream, identical in every
process), and measurement noise is drawn in the parent from the same keyed
streams.  That makes the grid embarrassingly parallel *and* lets us demand a
strong invariant:

    parallel execution is **bit-identical** to serial execution.

The :class:`ExecutionEngine` realizes the invariant by construction: worker
processes only *simulate* (the deterministic part) and ship
:class:`~repro.coherence.machine.SimulationResult` objects back; the parent
adopts them into the :class:`~repro.core.lab.Lab` run cache and then drives
the unchanged serial loop, which consumes cache hits in the original case
order.  Noise sampling, screening, classification — everything order- or
RNG-sensitive — still happens serially in the parent, so artifacts cannot
depend on worker scheduling.

``jobs=1`` (or a single-case grid) never spawns processes; ``jobs=None``
uses :func:`default_jobs` (``os.cpu_count()``, overridable by the CLI's
``--jobs``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.telemetry.core import TELEMETRY, Telemetry

__all__ = [
    "ExecutionEngine",
    "default_jobs",
    "set_default_jobs",
    "resolve_target",
]

_DEFAULT_JOBS: Optional[int] = None


def default_jobs() -> int:
    """Worker count used when an engine is built with ``jobs=None``."""
    if _DEFAULT_JOBS is not None:
        return _DEFAULT_JOBS
    return os.cpu_count() or 1


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` restores auto)."""
    global _DEFAULT_JOBS
    if jobs is not None and jobs < 1:
        raise ReproError("jobs must be >= 1")
    _DEFAULT_JOBS = jobs


def resolve_target(name: str):
    """A mini-program or suite program by registry name (workers use this)."""
    from repro.errors import WorkloadError
    from repro.workloads.registry import get_workload

    try:
        return get_workload(name)
    except WorkloadError:
        from repro.suites import get_program

        return get_program(name)


# --------------------------------------------------------------------- tasks
#
# Worker entry points must be module-level functions (pickled by reference).
# Tasks are self-contained tuples: workloads travel as registry names, specs
# as the frozen dataclasses they already are.


def _simulate_task(task: Tuple) -> object:
    """Worker: run one simulation; returns the SimulationResult."""
    name, cfg, spec, latency, prefetch, fast, chunk = task
    from repro.coherence.machine import MulticoreMachine

    workload = resolve_target(name)
    machine = MulticoreMachine(spec, latency, prefetch=prefetch, fast=fast)
    return machine.run(workload.trace(cfg), chunk=chunk)


def _simulate_store_task(task: Tuple) -> Tuple[object, int]:
    """Worker: memmap one program store locally and simulate it.

    The task carries a *path* plus machine parameters — never trace bytes.
    The worker reconstructs zero-copy :class:`ThreadTrace` views from the
    store header's per-thread ``(offset, length)`` spans, so every process
    reads the same OS page-cache pages instead of holding a pickled private
    copy of the trace.  Returns ``(SimulationResult, peak_rss_kib)``: the
    worker's max resident set, reported so callers (the bench harness) can
    document that N workers over a GB-scale trace do not cost N trace-sized
    residencies.
    """
    path, spec, latency, prefetch, fast, chunk, stream = task
    import resource

    from repro.coherence.machine import MulticoreMachine
    from repro.trace.store import open_program

    program = open_program(path)
    machine = MulticoreMachine(spec, latency, prefetch=prefetch, fast=fast)
    if stream:
        result = machine.run_stream(program, chunk=chunk)
    else:
        result = machine.run(program, chunk=chunk)
    rss_kib = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return result, rss_kib


def _shadow_task(task: Tuple) -> Tuple[int, int, int, int]:
    """Worker: run the shadow-memory oracle on one suite case."""
    name, case, chunk, max_threads, fast = task
    from repro.baselines.shadow import ShadowMemoryDetector

    program = resolve_target(name)
    rep = ShadowMemoryDetector(max_threads=max_threads, fast=fast).run(
        program.trace(case), chunk=chunk
    )
    return (rep.fs_misses, rep.ts_misses, rep.cold_misses, rep.instructions)


def _timed_call(payload: Tuple) -> Tuple[float, object]:
    """Worker wrapper: ``(fn, task) -> (exec_seconds, fn(task))``.

    Used when telemetry is enabled so the parent can account per-case
    execution time and worker utilization; ``fn`` is a module-level task
    function, so the pair pickles by reference exactly as before.
    """
    fn, task = payload
    t0 = time.perf_counter()
    out = fn(task)
    return time.perf_counter() - t0, out


# -------------------------------------------------------------------- engine


class ExecutionEngine:
    """Fans a list of independent tasks out over worker processes.

    Results always come back in task order (``ProcessPoolExecutor.map``
    preserves input order regardless of completion order), and dispatch is
    chunked so thousands of small cases do not pay per-task IPC overhead:
    each worker receives ``max(1, n_tasks // (workers * 4))`` tasks per
    round trip by default, or exactly ``chunksize`` when one is given
    (coarser chunks suit grids of many cheap cases, ``chunksize=1`` suits
    a few expensive ones).
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunksize: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ReproError("jobs must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ReproError("chunksize must be >= 1")
        self.jobs = int(jobs) if jobs is not None else default_jobs()
        self.chunksize = int(chunksize) if chunksize is not None else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionEngine(jobs={self.jobs}, chunksize={self.chunksize})"

    def _chunksize(self, ntasks: int, workers: int) -> int:
        """Tasks per worker round trip (explicit override or the 4x rule)."""
        if self.chunksize is not None:
            return self.chunksize
        return max(1, ntasks // (workers * 4))

    def map(self, fn: Callable, tasks: Iterable) -> List:
        """``[fn(t) for t in tasks]``, possibly across processes, in order.

        With telemetry enabled, the dispatch is additionally timed per case
        (workers ship execution seconds back alongside each result) and the
        whole call is recorded as an ``engine.map`` span with queue/exec
        statistics and worker utilization.
        """
        tasks = list(tasks)
        tel = TELEMETRY
        if tel.enabled:
            return self._map_instrumented(fn, tasks, tel)
        if self.jobs <= 1 or len(tasks) <= 1:
            return [fn(t) for t in tasks]
        workers = min(self.jobs, len(tasks))
        chunksize = self._chunksize(len(tasks), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, tasks, chunksize=chunksize))

    def _map_instrumented(self, fn: Callable, tasks: List,
                          tel: Telemetry) -> List:
        """``map`` with per-case timing and utilization accounting."""
        serial = self.jobs <= 1 or len(tasks) <= 1
        workers = 1 if serial else min(self.jobs, len(tasks))
        chunksize = 1 if serial else self._chunksize(len(tasks), workers)
        payloads = [(fn, t) for t in tasks]
        with tel.span("engine.map", fn=getattr(fn, "__name__", str(fn)),
                      tasks=len(tasks), workers=workers,
                      chunksize=chunksize) as sp:
            t0 = time.perf_counter()
            if serial:
                timed = [_timed_call(p) for p in payloads]
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    timed = list(pool.map(_timed_call, payloads,
                                          chunksize=chunksize))
            wall = time.perf_counter() - t0
        busy = sum(s for s, _ in timed)
        util = busy / (workers * wall) if wall > 0 else 0.0
        if timed:
            secs = [s for s, _ in timed]
            sp.set(wall_s=round(wall, 6), busy_s=round(busy, 6),
                   utilization=round(util, 4),
                   task_min_s=round(min(secs), 6),
                   task_max_s=round(max(secs), 6),
                   task_mean_s=round(busy / len(secs), 6))
        tel.count("engine.maps")
        tel.count("engine.tasks", len(tasks))
        tel.count("engine.task_seconds", busy)
        tel.gauge("engine.worker_utilization", round(util, 4))
        return [r for _, r in timed]

    # ------------------------------------------------------------- prefetch

    def prefetch_simulations(self, lab, pairs: Sequence[Tuple]) -> int:
        """Simulate missing ``(workload, cfg)`` cases in parallel.

        Results are adopted into ``lab``'s run cache; the caller then runs
        its normal serial loop, which finds every case already simulated.
        Cases whose workload is not resolvable by registry name (a caller
        passing some ad-hoc object) are skipped and simply get simulated
        serially by that loop.  Returns the number of cases dispatched.
        """
        seen = set()
        missing: List[Tuple] = []
        keys: List[Tuple] = []
        for workload, cfg in pairs:
            key = lab.simulation_key(workload, cfg)
            if key in seen or lab.has_result(key):
                continue
            try:
                if resolve_target(workload.name) is not workload:
                    continue
            except ReproError:
                continue
            seen.add(key)
            keys.append(key)
            missing.append((workload.name, cfg, lab.spec, lab.latency,
                            lab.prefetch, lab.fast, lab.chunk))
        if self.jobs <= 1 or len(missing) <= 1:
            return 0
        for key, result in zip(keys, self.map(_simulate_task, missing)):
            lab.adopt_result(key, result)
        lab.flush()
        return len(missing)

    def simulate_stores(
        self,
        paths: Sequence,
        spec,
        latency=None,
        prefetch: bool = True,
        fast: "bool | str" = True,
        chunk: Optional[int] = None,
        stream: bool = True,
    ) -> List[Tuple[object, int]]:
        """Simulate persisted program stores, one worker memmap per path.

        Workers receive ``(path, machine params)`` handles only; each opens
        the store read-only and drives it straight off the memmap (streamed
        merge by default, so the interleaved order is never materialized).
        Returns ``(SimulationResult, worker_peak_rss_kib)`` pairs in input
        order — the RSS figures substantiate the zero-copy claim in bench
        reports.
        """
        from repro.coherence.timing import DEFAULT_LATENCY
        from repro.trace.streams import DEFAULT_CHUNK

        latency = latency if latency is not None else DEFAULT_LATENCY
        chunk = int(chunk) if chunk is not None else DEFAULT_CHUNK
        tasks = [(str(p), spec, latency, prefetch, fast, chunk, stream)
                 for p in paths]
        return self.map(_simulate_store_task, tasks)

    def shadow_batch(
        self,
        cases: Sequence[Tuple],
        chunk: int,
        max_threads: int,
        fast: "bool | str" = True,
    ) -> List[Tuple[int, int, int, int]]:
        """Oracle counts for ``(program_name, case)`` pairs, in order.

        ``fast`` accepts the shadow detector's vocabulary: a bool, or any
        simulator drive-strategy string (``'ref'`` disables the numpy
        prefilter, everything else enables it).
        """
        tasks = [(name, case, chunk, max_threads, fast)
                 for name, case in cases]
        return self.map(_shadow_task, tasks)
