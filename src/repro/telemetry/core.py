"""Structured telemetry: hierarchical spans, counters and gauges.

The paper's whole method is counting things; this module applies the same
discipline to the reproduction pipeline itself.  A process-wide
:class:`Telemetry` instance collects

* **spans** — named wall-time intervals forming a tree (a span opened while
  another is active becomes its child), recorded via a context manager or
  the :meth:`Telemetry.timed` decorator;
* **counters** — monotonically increasing event tallies
  (``engine.tasks``, ``shadow.cache.miss``, ...);
* **gauges** — last-written values (``engine.worker_utilization``, ...).

Design constraints, in priority order:

1. **Off by default, and a true no-op when off.**  Every hook starts with a
   single attribute check (``if TELEMETRY.enabled``); the disabled
   :meth:`span` call returns a shared singleton context manager that
   allocates nothing.  Instrumentation sites sit at *segment/case/phase*
   granularity — never inside per-access loops — so even the enabled cost
   is a handful of object constructions per simulated run.  The measured
   disabled overhead on the throughput benchmark is pinned < 2 % by
   ``tests/test_telemetry_noop.py``.
2. **Zero dependencies.**  Standard library only.
3. **Exception safe.**  A span closed by an exception records the exception
   type in its attributes and re-raises; the span stack never corrupts.

Use the module-level :data:`TELEMETRY` singleton (what the instrumented
library code binds) or construct private :class:`Telemetry` instances for
isolated measurements (what the tests do).
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import TelemetryError

__all__ = [
    "Telemetry",
    "SpanRecord",
    "TELEMETRY",
    "get_telemetry",
    "enable",
    "disable",
]


class SpanRecord:
    """One finished span: a named interval in the run's wall-time tree.

    ``start``/``end`` are :func:`time.perf_counter` readings relative to the
    owning :class:`Telemetry`'s epoch (its construction or last reset), so
    they are directly comparable across spans of one run.  ``parent`` is the
    index of the enclosing span in ``Telemetry.spans`` (-1 for roots).
    """

    __slots__ = ("name", "start", "end", "parent", "attrs", "thread")

    def __init__(self, name: str, start: float, parent: int,
                 attrs: Dict[str, Any], thread: int) -> None:
        self.name = name
        self.start = start
        self.end = start
        self.parent = parent
        self.attrs = attrs
        self.thread = thread

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_s": self.start,
            "seconds": self.seconds,
            "parent": self.parent,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SpanRecord {self.name!r} {self.seconds * 1e3:.3f}ms>"


class _NoopSpan:
    """Shared do-nothing context manager returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Attribute updates on a disabled span vanish."""


_NOOP_SPAN = _NoopSpan()


class _Span:
    """Live span handle: context manager that records on exit."""

    __slots__ = ("_tel", "_rec", "_idx", "_open", "_pending")

    def __init__(self, tel: "Telemetry", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tel = tel
        self._rec: Optional[SpanRecord] = None
        self._idx = -1
        self._open = False
        # Construction happens before __enter__ so attrs are captured even
        # if the caller builds the span early; timing starts at __enter__.
        self._pending = (name, attrs)

    def __enter__(self) -> "_Span":
        if self._open:
            raise TelemetryError("span entered twice")
        name, attrs = self._pending
        tel = self._tel
        self._rec, self._idx = tel._push(name, attrs)
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._open:
            raise TelemetryError("span exited without being entered")
        self._open = False
        if exc_type is not None:
            self._rec.attrs["error"] = exc_type.__name__
        self._tel._pop(self._idx)
        return False  # never swallow

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (before or during its lifetime)."""
        if self._rec is not None:
            self._rec.attrs.update(attrs)
        else:
            self._pending[1].update(attrs)


class Telemetry:
    """A collector of spans, counters and gauges for one process/run."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, int]] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._epoch_unix = time.time()

    # ------------------------------------------------------------- control

    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded data and restart the epoch."""
        with self._lock:
            self.spans = []
            self.counters = {}
            self.gauges = {}
            self.histograms = {}
            self._local = threading.local()
            self._epoch = time.perf_counter()
            self._epoch_unix = time.time()

    @property
    def epoch_unix(self) -> float:
        """Wall-clock time (``time.time``) of the epoch, for exporters."""
        return self._epoch_unix

    # --------------------------------------------------------------- spans

    def span(self, name: str, **attrs: Any):
        """Context manager timing a named interval (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def timed(self, name: Optional[str] = None) -> Callable:
        """Decorator: wrap a function in a span named after it."""

        def deco(fn: Callable) -> Callable:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(label):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name: str, attrs: Dict[str, Any]):
        stack = self._stack()
        parent = stack[-1] if stack else -1
        rec = SpanRecord(
            name,
            time.perf_counter() - self._epoch,
            parent,
            attrs,
            threading.get_ident(),
        )
        with self._lock:
            idx = len(self.spans)
            self.spans.append(rec)
        stack.append(idx)
        return rec, idx

    def _pop(self, idx: int) -> None:
        stack = self._stack()
        if not stack or stack[-1] != idx:
            raise TelemetryError("span stack corrupted (mismatched exit)")
        stack.pop()
        self.spans[idx].end = time.perf_counter() - self._epoch

    # --------------------------------------------------- counters and gauges

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to a monotonic counter (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Tally ``value`` into a power-of-two-bucket histogram (no-op
        when disabled).

        Buckets are labeled by their inclusive upper bound (``"<=1"``,
        ``"<=2"``, ``"<=4"``, ...; non-positive values land in
        ``"<=0"``), which keeps the export a small dict regardless of
        sample count — the right fidelity for batch-size and queue-depth
        distributions on a serving hot path.
        """
        if not self.enabled:
            return
        if value <= 0:
            label = "<=0"
        else:
            bound = 1
            while bound < value:
                bound <<= 1
            label = f"<={bound}"
        with self._lock:
            bucket = self.histograms.setdefault(name, {})
            bucket[label] = bucket.get(label, 0) + 1

    # ------------------------------------------------------------ read side

    def span_seconds(self, name: str) -> float:
        """Total seconds across all finished spans with this name."""
        return sum(s.seconds for s in self.spans if s.name == name)

    def span_tree(self) -> List[Dict[str, Any]]:
        """The spans as a forest of nested dicts (export/manifest shape)."""
        nodes = [s.to_dict() for s in self.spans]
        for node in nodes:
            node["children"] = []
        roots: List[Dict[str, Any]] = []
        for node in nodes:
            parent = node.pop("parent")
            if 0 <= parent < len(nodes):
                nodes[parent]["children"].append(node)
            else:
                roots.append(node)
        return roots

    def aggregate_tree(self) -> Dict[str, Dict[str, Any]]:
        """The wall-time tree aggregated by span name at each level.

        Maps name -> ``{"seconds", "count", "children"}`` where children is
        the same structure one level down — compact enough to embed in a run
        manifest while still showing where the time went.
        """

        def bucket(out: Dict[str, Dict[str, Any]], idx: int) -> None:
            span = self.spans[idx]
            node = out.setdefault(
                span.name, {"seconds": 0.0, "count": 0, "children": {}}
            )
            node["seconds"] += span.seconds
            node["count"] += 1
            for child_idx in children.get(idx, ()):
                bucket(node["children"], child_idx)

        children: Dict[int, List[int]] = {}
        roots: List[int] = []
        for i, span in enumerate(self.spans):
            if span.parent < 0:
                roots.append(i)
            else:
                children.setdefault(span.parent, []).append(i)
        out: Dict[str, Dict[str, Any]] = {}
        for idx in roots:
            bucket(out, idx)
        return _round_tree(out)

    def snapshot(self) -> Dict[str, Any]:
        """Everything collected so far, as plain JSON-ready data."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: dict(buckets)
                           for name, buckets in self.histograms.items()},
            "spans": [s.to_dict() for s in self.spans],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (f"<Telemetry {state}: {len(self.spans)} spans, "
                f"{len(self.counters)} counters>")


def _round_tree(tree: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    for node in tree.values():
        node["seconds"] = round(node["seconds"], 6)
        node["children"] = _round_tree(node["children"])
    return tree


#: The process-wide collector every instrumentation site binds.  Disabled by
#: default; ``REPRO_TELEMETRY=1`` in the environment enables it at import
#: (handy for instrumenting CLI runs without code changes).
TELEMETRY = Telemetry(
    enabled=os.environ.get("REPRO_TELEMETRY", "").lower() in ("1", "true", "on")
)


def get_telemetry() -> Telemetry:
    """The process-wide :data:`TELEMETRY` instance."""
    return TELEMETRY


def enable(reset: bool = True) -> Telemetry:
    """Enable the process-wide collector (optionally resetting it first)."""
    TELEMETRY.enable(reset=reset)
    return TELEMETRY


def disable() -> None:
    """Disable the process-wide collector (recorded data is kept)."""
    TELEMETRY.disable()
