"""Telemetry exporters: plain JSON and Chrome-trace (Perfetto) formats.

Two serializations of one :class:`~repro.telemetry.core.Telemetry`
collector:

* :func:`export_json` — a self-describing JSON document (schema
  ``repro-telemetry/1``) with the span list (parent-indexed tree),
  counters and gauges.  :func:`spans_from_json` reads it back, so tools
  can post-process runs without importing this package's internals.
* :func:`export_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: one complete event
  (``"ph": "X"``) per span with microsecond timestamps, plus counter
  events (``"ph": "C"``) so counters plot as tracks alongside the spans.

Both return the payload dict and optionally write it to a path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import TelemetryError
from repro.telemetry.core import Telemetry

__all__ = [
    "export_json",
    "export_chrome_trace",
    "spans_from_json",
    "TELEMETRY_SCHEMA",
]

#: Schema tag stamped into (and demanded of) the JSON export.
TELEMETRY_SCHEMA = "repro-telemetry/1"


def export_json(
    telemetry: Telemetry, path: Union[str, Path, None] = None
) -> Dict[str, Any]:
    """Serialize the collector to the ``repro-telemetry/1`` document."""
    payload: Dict[str, Any] = {"schema": TELEMETRY_SCHEMA,
                               "epoch_unix": telemetry.epoch_unix}
    payload.update(telemetry.snapshot())
    if path is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def spans_from_json(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The span list of an :func:`export_json` payload, validated.

    Raises :class:`~repro.errors.TelemetryError` on a wrong schema tag or a
    structurally malformed span entry, so downstream tools fail loudly on
    stale files rather than mis-plotting them.
    """
    if payload.get("schema") != TELEMETRY_SCHEMA:
        raise TelemetryError(
            f"not a {TELEMETRY_SCHEMA} document: "
            f"schema={payload.get('schema')!r}"
        )
    spans = payload.get("spans")
    if not isinstance(spans, list):
        raise TelemetryError("payload has no span list")
    for i, span in enumerate(spans):
        if not (isinstance(span, dict)
                and isinstance(span.get("name"), str)
                and isinstance(span.get("start_s"), (int, float))
                and isinstance(span.get("seconds"), (int, float))):
            raise TelemetryError(f"malformed span entry at index {i}")
    return spans


def export_chrome_trace(
    telemetry: Telemetry, path: Union[str, Path, None] = None
) -> Dict[str, Any]:
    """Serialize to Chrome's Trace Event Format (JSON object form).

    Load the file in ``chrome://tracing`` or Perfetto to see the run as a
    flame chart; counters appear as counter tracks updated at the moment
    the trace ends (they are run totals, not time series).
    """
    pid = os.getpid()
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": "repro"},
    }]
    end_us = 0.0
    for span in telemetry.spans:
        ts = span.start * 1e6
        dur = max(span.seconds, 0.0) * 1e6
        end_us = max(end_us, ts + dur)
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": pid,
            "tid": span.thread,
        }
        if span.attrs:
            event["args"] = {k: _jsonable(v) for k, v in span.attrs.items()}
        events.append(event)
    for name, value in sorted(telemetry.counters.items()):
        events.append({
            "name": name,
            "ph": "C",
            "ts": end_us,
            "pid": pid,
            "args": {"value": value},
        })
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TELEMETRY_SCHEMA,
            "epoch_unix": telemetry.epoch_unix,
            "gauges": dict(telemetry.gauges),
        },
    }
    if path is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload) + "\n")
    return payload


def _jsonable(value: Any) -> Any:
    """Coerce span attributes to something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
