"""``repro.telemetry`` — zero-dependency observability for the pipeline.

Off by default.  Spans (context-manager + decorator), counters and gauges
live in :mod:`repro.telemetry.core`; per-run provenance in
:mod:`repro.telemetry.manifest`; JSON / Chrome-trace serialization in
:mod:`repro.telemetry.export`; the ``repro-bench`` replay + regression gate
in :mod:`repro.telemetry.bench`.

Quickstart::

    from repro import telemetry

    tel = telemetry.enable()          # process-wide collector
    ...                               # run instrumented pipeline code
    telemetry.export_chrome_trace(tel, "trace.json")
    telemetry.RunManifest.collect(telemetry=tel).save("manifest.json")
"""

from repro.telemetry.core import (
    TELEMETRY,
    SpanRecord,
    Telemetry,
    disable,
    enable,
    get_telemetry,
)
from repro.telemetry.export import (
    export_chrome_trace,
    export_json,
    spans_from_json,
)
from repro.telemetry.manifest import (
    RunManifest,
    git_branch,
    git_revision,
    host_fingerprint,
)

__all__ = [
    "TELEMETRY",
    "Telemetry",
    "SpanRecord",
    "enable",
    "disable",
    "get_telemetry",
    "export_json",
    "export_chrome_trace",
    "spans_from_json",
    "RunManifest",
    "git_revision",
    "git_branch",
    "host_fingerprint",
]
