"""``repro-bench``: pinned benchmark replay + perf-regression gate.

Replays the repository's pinned simulator benchmark grid (the same traces
``benchmarks/test_simulator_throughput.py`` measures), with telemetry
enabled, and emits:

* a ``BENCH_simulator.json``-compatible result document (``--output``);
* a :class:`~repro.telemetry.manifest.RunManifest` next to it
  (``--manifest``) pinning git SHA, seeds, versions and the wall-time tree;
* optionally a Chrome-trace of the run (``--chrome-trace``).

With ``--baseline`` it compares the fresh numbers against a committed
baseline and **fails (exit 1) on a throughput regression** beyond
``--max-regression`` (a fraction: ``0.30`` = 30 %).  The CI ``bench`` job
runs ``repro-bench --smoke --baseline BENCH_simulator.json
--max-regression 0.30`` and uploads both documents as artifacts, which
turns every PR into a tracked point on the performance trajectory instead
of an unmeasured guess.

``--smoke`` runs the drive-throughput grid only (seconds); the full mode
adds the end-to-end ``classify_all + verify_all`` pipeline timing
(minutes).  ``--input`` compares an existing result file without
re-running anything.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError, TelemetryError
from repro.telemetry.core import TELEMETRY
from repro.telemetry.export import export_chrome_trace
from repro.telemetry.manifest import RunManifest

__all__ = [
    "drive_traces",
    "measure_drive",
    "run_bench",
    "compare_payloads",
    "BenchComparison",
    "bench_main",
]

#: Fraction of throughput loss tolerated before the gate fails.
DEFAULT_MAX_REGRESSION = 0.30

#: Drive-grid seed state is fully pinned by the workload registry streams;
#: this seed tags the manifest (the grid itself takes no free seed).
BENCH_SEED = 0


def drive_traces() -> Iterator[Tuple[str, Any]]:
    """The pinned drive-throughput grid: ``(label, ProgramTrace)`` pairs.

    Traces span the run-length-compression spectrum: streaming
    (``seq_read``), padded accumulators (``psums`` good), contended
    (``psums`` bad-fs), and a suite model (``streamcluster``).  Labels are
    stable identifiers — the baseline comparison is keyed on them.
    """
    from repro.suites import get_program
    from repro.suites.base import SuiteCase
    from repro.workloads.base import Mode, RunConfig
    from repro.workloads.registry import get_workload

    seq = get_workload("seq_read")
    psums = get_workload("psums")
    yield "seq_read/good/t1", seq.trace(
        RunConfig(threads=1, mode=Mode.GOOD, size=seq.train_sizes[-1]))
    yield "psums/good/t4", psums.trace(
        RunConfig(threads=4, mode=Mode.GOOD, size=psums.train_sizes[-1]))
    yield "psums/bad-fs/t4", psums.trace(
        RunConfig(threads=4, mode=Mode.BAD_FS, size=psums.train_sizes[-1]))
    sc = get_program("streamcluster")
    yield "streamcluster/simsmall", sc.trace(SuiteCase("simsmall", "-O2", 4))


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_drive(repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Reference vs fast drive throughput for every pinned trace."""
    from repro.coherence.machine import MulticoreMachine, SCALED_WESTMERE

    out: Dict[str, Dict[str, float]] = {}
    for label, prog in drive_traces():
        with TELEMETRY.span("bench.drive", trace=label):
            n = int(prog.total_accesses)
            ref = MulticoreMachine(SCALED_WESTMERE, fast=False)
            fast = MulticoreMachine(SCALED_WESTMERE, fast=True)
            t_ref = _best_of(lambda: ref.run(prog), repeats)
            t_fast = _best_of(lambda: fast.run(prog), repeats)
        out[label] = {
            "accesses": n,
            "ref_accesses_per_s": round(n / t_ref),
            "fast_accesses_per_s": round(n / t_fast),
            "speedup": round(t_ref / t_fast, 3),
        }
    return out


def measure_e2e(jobs: Optional[int] = None) -> Dict[str, Any]:  # pragma: no cover - minutes-long
    """End-to-end ``classify_all + verify_all`` wall time (full mode only)."""
    from repro.core.detector import FalseSharingDetector
    from repro.core.lab import Lab
    from repro.experiments.context import PipelineContext
    from repro.parallel import default_jobs

    with TELEMETRY.span("bench.e2e"):
        ctx = PipelineContext(lab=Lab(disk_cache=None),
                              jobs=jobs or default_jobs())
        det = FalseSharingDetector(ctx.lab)
        det.fit(training=ctx.training)
        ctx._detector = det
        t0 = time.perf_counter()
        ctx.classify_all()
        ctx.verify_all()
        seconds = time.perf_counter() - t0
    return {
        "scope": "classify_all + verify_all (cold caches)",
        "parallel_fast_s": round(seconds, 2),
    }


def run_bench(
    smoke: bool = True,
    repeats: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the pinned grid and return the BENCH-compatible payload.

    Telemetry is enabled (and reset) for the duration of the run on the
    process-wide collector, so the instrumented layers — simulator drive,
    execution engine, shadow cache — contribute spans and counters that
    land in the run manifest.  The collector's previous enabled state is
    restored afterwards.
    """
    if repeats is None:
        repeats = 1 if smoke else 3
    was_enabled = TELEMETRY.enabled
    TELEMETRY.enable(reset=True)
    try:
        with TELEMETRY.span("bench", mode="smoke" if smoke else "full"):
            payload: Dict[str, Any] = {
                "bench": "simulator-throughput",
                "mode": "smoke" if smoke else "full",
                "cpus": os.cpu_count(),
                "jobs": jobs or 1,
                "repeats": repeats,
                "drive": measure_drive(repeats=repeats),
                "e2e": {},
            }
            if not smoke:  # pragma: no cover - minutes-long
                payload["e2e"] = measure_e2e(jobs=jobs)
    finally:
        if not was_enabled:
            TELEMETRY.disable()
    return payload


# ------------------------------------------------------------- comparison


@dataclass
class ComparisonRow:
    """One gated metric: current vs baseline."""

    label: str
    metric: str
    current: float
    baseline: float
    #: current/baseline for higher-is-better metrics, baseline/current for
    #: lower-is-better ones — so ratio < 1 always means "got worse".
    ratio: float
    regressed: bool


@dataclass
class BenchComparison:
    """Outcome of gating a result payload against a baseline."""

    max_regression: float
    rows: List[ComparisonRow] = field(default_factory=list)
    #: Labels present in the baseline but absent from the current run —
    #: treated as failures (a silently shrunken grid must not pass).
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def render(self) -> str:
        from repro.utils.tables import render_table

        rows = [
            [r.label, r.metric, f"{r.current:,.0f}", f"{r.baseline:,.0f}",
             f"{r.ratio:.3f}", "REGRESSED" if r.regressed else "ok"]
            for r in self.rows
        ]
        out = render_table(
            ["case", "metric", "current", "baseline", "ratio", "verdict"],
            rows,
            title=f"bench gate (max regression {self.max_regression:.0%})",
        )
        if self.missing:
            out += "\nmissing from current run: " + ", ".join(self.missing)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_regression": self.max_regression,
            "ok": self.ok,
            "rows": [vars(r) for r in self.rows],
            "missing": list(self.missing),
        }


def compare_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> BenchComparison:
    """Gate ``current`` against ``baseline``.

    Gated metrics: per-trace fast-path throughput
    (``drive.<label>.fast_accesses_per_s``, higher is better) and — when
    both payloads carry it — end-to-end wall time
    (``e2e.parallel_fast_s``, lower is better).  A metric regresses when
    it is worse than the baseline by more than ``max_regression``
    (fractional).  Baseline labels missing from the current run fail the
    gate; new labels absent from the baseline are ignored (they gate once
    the baseline is refreshed).
    """
    if not 0 <= max_regression < 1:
        raise TelemetryError("max_regression must be in [0, 1)")
    comparison = BenchComparison(max_regression=max_regression)
    floor = 1.0 - max_regression
    cur_drive = current.get("drive") or {}
    for label, base_row in sorted((baseline.get("drive") or {}).items()):
        base_v = float(base_row.get("fast_accesses_per_s", 0) or 0)
        if base_v <= 0:
            continue
        cur_row = cur_drive.get(label)
        if cur_row is None:
            comparison.missing.append(label)
            continue
        cur_v = float(cur_row.get("fast_accesses_per_s", 0) or 0)
        ratio = cur_v / base_v
        comparison.rows.append(ComparisonRow(
            label=label,
            metric="fast_accesses_per_s",
            current=cur_v,
            baseline=base_v,
            ratio=round(ratio, 4),
            regressed=ratio < floor,
        ))
    base_e2e = float((baseline.get("e2e") or {}).get("parallel_fast_s", 0) or 0)
    cur_e2e = float((current.get("e2e") or {}).get("parallel_fast_s", 0) or 0)
    if base_e2e > 0 and cur_e2e > 0:
        ratio = base_e2e / cur_e2e  # lower is better; <1 means slower now
        comparison.rows.append(ComparisonRow(
            label="e2e",
            metric="parallel_fast_s",
            current=cur_e2e,
            baseline=base_e2e,
            ratio=round(ratio, 4),
            regressed=ratio < floor,
        ))
    return comparison


# -------------------------------------------------------------------- CLI


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-bench`` (exit 0 ok / 1 regression / 2 error)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Replay the pinned simulator benchmark grid, write a "
                    "BENCH-compatible result + run manifest, and optionally "
                    "gate against a committed baseline.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="drive-throughput grid only (seconds, the CI "
                             "configuration); default unless --full")
    parser.add_argument("--full", action="store_true",
                        help="also measure the end-to-end pipeline (minutes)")
    parser.add_argument("--repeats", type=int, default=0,
                        help="timing repeats per case (best-of; default: "
                             "1 smoke, 3 full)")
    parser.add_argument("--baseline", default="",
                        help="baseline JSON to gate against "
                             "(e.g. BENCH_simulator.json)")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="tolerated fractional throughput loss "
                             "(default: %(default)s)")
    parser.add_argument("--input", default="",
                        help="compare this existing result JSON instead of "
                             "running the grid")
    parser.add_argument("--output", default="repro-bench.json",
                        help="where to write the result JSON")
    parser.add_argument("--manifest", default="",
                        help="where to write the run manifest "
                             "(default: <output stem>-manifest.json)")
    parser.add_argument("--chrome-trace", default="",
                        help="also write a chrome://tracing / Perfetto "
                             "trace of the run")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for the full-mode pipeline")
    args = parser.parse_args(argv)

    try:
        baseline = None
        if args.baseline:
            base_path = Path(args.baseline)
            if not base_path.exists():
                print(f"error: baseline not found: {base_path}",
                      file=sys.stderr)
                return 2
            baseline = json.loads(base_path.read_text())

        if args.input:
            in_path = Path(args.input)
            if not in_path.exists():
                print(f"error: input not found: {in_path}", file=sys.stderr)
                return 2
            payload = json.loads(in_path.read_text())
        else:
            smoke = not args.full
            payload = run_bench(
                smoke=smoke,
                repeats=args.repeats or None,
                jobs=args.jobs or None,
            )
            out_path = Path(args.output)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(json.dumps(payload, indent=2) + "\n")
            manifest_path = Path(
                args.manifest
                or out_path.with_name(out_path.stem + "-manifest.json")
            )
            manifest = RunManifest.collect(
                config={
                    "mode": payload["mode"],
                    "repeats": payload["repeats"],
                    "baseline": args.baseline,
                    "max_regression": args.max_regression,
                },
                seed=BENCH_SEED,
                telemetry=TELEMETRY,
            )
            manifest.save(manifest_path)
            if args.chrome_trace:
                export_chrome_trace(TELEMETRY, args.chrome_trace)
            print(f"result:   {out_path}")
            print(f"manifest: {manifest_path}")
            for label, row in payload["drive"].items():
                print(f"  {label:24s} fast {row['fast_accesses_per_s']:>11,} "
                      f"acc/s  (speedup {row['speedup']:.2f}x)")

        if baseline is None:
            return 0
        comparison = compare_payloads(payload, baseline,
                                      max_regression=args.max_regression)
        print(comparison.render())
        if comparison.ok:
            print("bench gate: PASS")
            return 0
        print("bench gate: FAIL "
              f"({len(comparison.regressions)} regression(s), "
              f"{len(comparison.missing)} missing case(s))",
              file=sys.stderr)
        return 1
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(bench_main())
