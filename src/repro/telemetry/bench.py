"""``repro-bench``: pinned benchmark replay + perf-regression gate.

Replays the repository's pinned simulator benchmark grid (the same traces
``benchmarks/test_simulator_throughput.py`` measures), with telemetry
enabled, and emits:

* a ``BENCH_simulator.json``-compatible result document (``--output``);
* a :class:`~repro.telemetry.manifest.RunManifest` next to it
  (``--manifest``) pinning git SHA, seeds, versions and the wall-time tree;
* optionally a Chrome-trace of the run (``--chrome-trace``) and a
  per-strategy speedup table (``--speedup-table``, the CI artifact that
  tracks how ``ref``/``runs``/``lines``/``auto`` compare per trace).

With ``--baseline`` it compares the fresh numbers against a committed
baseline and **fails (exit 1) on a throughput regression** beyond
``--max-regression`` (a fraction: ``0.30`` = 30 %).  The CI ``bench`` job
runs ``repro-bench --smoke --baseline BENCH_simulator.json
--max-regression 0.30`` and uploads both documents as artifacts, which
turns every PR into a tracked point on the performance trajectory instead
of an unmeasured guess.

``--smoke`` runs the drive-throughput grid only (seconds); the full mode
adds the end-to-end ``classify_all + verify_all`` pipeline timing
(minutes).  ``--input`` compares an existing result file without
re-running anything.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError, TelemetryError
from repro.telemetry.core import TELEMETRY
from repro.telemetry.export import export_chrome_trace
from repro.telemetry.manifest import RunManifest

__all__ = [
    "drive_traces",
    "measure_drive",
    "measure_routing",
    "measure_store_workers",
    "render_speedup_table",
    "render_routing_report",
    "run_bench",
    "compare_payloads",
    "BenchComparison",
    "bench_main",
    "ROUTING_FLOOR",
    "SPEEDUP_FLOORS",
]

#: Fraction of throughput loss tolerated before the gate fails.
DEFAULT_MAX_REGRESSION = 0.30

#: Drive strategies measured per trace (``'auto'`` is the shipping default
#: and the one the regression gate keys on via ``fast_accesses_per_s``).
MEASURED_STRATEGIES = ("ref", "runs", "lines", "auto")

#: Hard per-case speedup floors (auto strategy vs the reference loop) for
#: the contended traces the line-partitioned kernel targets.  Recorded in
#: the bench payload as ``speedup_floor`` and enforced *unconditionally* by
#: :func:`compare_payloads` — unlike throughput, a floored speedup is not
#: softened by ``--max-regression``.
SPEEDUP_FLOORS = {
    "psums/bad-fs/t4": 1.3,
    "streamcluster/simsmall": 1.3,
}

#: Minimum fraction of 19-program-grid *accesses* the ``auto`` strategy
#: must route off the scalar reference loop (onto the run-compression or
#: line-partitioned kernels).  Access-weighted, not segment-weighted: one
#: huge segment falling back to ``ref`` must not hide behind many tiny
#: vectorized ones.  Enforced unconditionally by :func:`compare_payloads`,
#: like :data:`SPEEDUP_FLOORS`.
ROUTING_FLOOR = 0.95

#: Drive-grid seed state is fully pinned by the workload registry streams;
#: this seed tags the manifest (the grid itself takes no free seed).
BENCH_SEED = 0

#: Top-level payload sections the gate understands.  Anything else in a
#: gated payload is a hard error: a new section the comparison silently
#: ignores is exactly the kind of drift that let a shrunken baseline
#: pass before (see :func:`_check_sections`).
KNOWN_SECTIONS = frozenset({
    "bench", "mode", "cpus", "jobs", "repeats",
    "drive", "routing", "store_workers", "telemetry", "e2e",
})


def _check_sections(payload: Dict[str, Any], role: str) -> None:
    """Refuse unknown or missing sections in a gated payload.

    ``drive`` is the section every gate verdict hangs off: a payload
    without it (or with an empty one) used to sail through the
    comparison with zero rows and exit 0.  Unknown sections fail for the
    dual reason — the gate has no rule for them, so letting them in
    would mean whatever they measure is silently ungated.
    """
    unknown = sorted(set(payload) - KNOWN_SECTIONS)
    if unknown:
        raise TelemetryError(
            f"{role} payload carries unknown section(s) {unknown}: the "
            "gate has no rule for them — teach compare_payloads about "
            "the new section (and add it to KNOWN_SECTIONS) instead of "
            "letting it ride ungated")
    drive = payload.get("drive")
    if not isinstance(drive, dict) or not drive:
        raise TelemetryError(
            f"{role} payload has no 'drive' section (or an empty one): "
            "refusing to gate nothing and exit 0 — regenerate the "
            "payload with repro-bench, or fix the committed baseline")
    for label, row in drive.items():
        if not isinstance(row, dict):
            raise TelemetryError(
                f"{role} drive row {label!r} is not an object")


def drive_traces() -> Iterator[Tuple[str, Any]]:
    """The pinned drive-throughput grid: ``(label, ProgramTrace)`` pairs.

    Traces span the run-length-compression spectrum: streaming
    (``seq_read``), padded accumulators (``psums`` good), contended
    (``psums`` bad-fs), and a suite model (``streamcluster``).  Labels are
    stable identifiers — the baseline comparison is keyed on them.
    """
    from repro.suites import get_program
    from repro.suites.base import SuiteCase
    from repro.workloads.base import Mode, RunConfig
    from repro.workloads.registry import get_workload

    seq = get_workload("seq_read")
    psums = get_workload("psums")
    yield "seq_read/good/t1", seq.trace(
        RunConfig(threads=1, mode=Mode.GOOD, size=seq.train_sizes[-1]))
    yield "psums/good/t4", psums.trace(
        RunConfig(threads=4, mode=Mode.GOOD, size=psums.train_sizes[-1]))
    yield "psums/bad-fs/t4", psums.trace(
        RunConfig(threads=4, mode=Mode.BAD_FS, size=psums.train_sizes[-1]))
    sc = get_program("streamcluster")
    yield "streamcluster/simsmall", sc.trace(SuiteCase("simsmall", "-O2", 4))


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_drive(repeats: int = 3) -> Dict[str, Dict[str, Any]]:
    """Per-strategy drive throughput for every pinned trace.

    Every strategy in :data:`MEASURED_STRATEGIES` is timed on every trace:
    ``ref`` (per-access loop), ``runs`` (run-compression), ``lines``
    (line-partitioned kernel) and ``auto`` (the shipping default, which
    probes each segment).  ``fast_accesses_per_s`` keeps its historical
    meaning — the default configuration's throughput — so committed
    baselines gate unchanged; ``strategy`` records the path ``auto``
    actually took (from :attr:`MulticoreMachine.path_counts`), and
    contended traces carry their :data:`SPEEDUP_FLOORS` entry.
    """
    from repro.coherence.machine import MulticoreMachine, SCALED_WESTMERE

    out: Dict[str, Dict[str, Any]] = {}
    for label, prog in drive_traces():
        with TELEMETRY.span("bench.drive", trace=label):
            n = int(prog.total_accesses)
            times: Dict[str, float] = {}
            auto_paths: Dict[str, int] = {}
            for strat in MEASURED_STRATEGIES:
                machine = MulticoreMachine(SCALED_WESTMERE, fast=strat)
                times[strat] = _best_of(lambda: machine.run(prog), repeats)
                if strat == "auto":
                    auto_paths = dict(machine.path_counts)
        chosen = (max(auto_paths, key=lambda p: auto_paths[p])
                  if auto_paths else "ref")
        row: Dict[str, Any] = {
            "accesses": n,
            "ref_accesses_per_s": round(n / times["ref"]),
            "runs_accesses_per_s": round(n / times["runs"]),
            "lines_accesses_per_s": round(n / times["lines"]),
            "fast_accesses_per_s": round(n / times["auto"]),
            "strategy": chosen,
            "speedup": round(times["ref"] / times["auto"], 3),
        }
        if label in SPEEDUP_FLOORS:
            row["speedup_floor"] = SPEEDUP_FLOORS[label]
        out[label] = row
    return out


def measure_routing() -> Dict[str, Any]:
    """Access-weighted ``auto`` path routing over the 19-program suite grid.

    Runs every suite program's first case once under the shipping ``auto``
    strategy and accumulates :attr:`MulticoreMachine.path_accesses` — how
    many *accesses* each drive path handled.  Coverage is the fraction
    handled off the scalar reference loop (everything except ``ref`` and
    the eligibility fallback ``ref-gated``); :func:`compare_payloads`
    enforces :data:`ROUTING_FLOOR` on it as a hard gate.
    """
    from repro.coherence.machine import MulticoreMachine, SCALED_WESTMERE
    from repro.suites import all_programs, get_program

    paths: Dict[str, int] = {}
    programs: Dict[str, Dict[str, int]] = {}
    with TELEMETRY.span("bench.routing"):
        for p in all_programs():
            prog = get_program(p.name).trace(p.cases()[0])
            machine = MulticoreMachine(SCALED_WESTMERE, fast="auto")
            machine.run(prog)
            programs[p.name] = dict(machine.path_accesses)
            for path, n in machine.path_accesses.items():
                paths[path] = paths.get(path, 0) + n
    total = sum(paths.values())
    scalar = paths.get("ref", 0) + paths.get("ref-gated", 0)
    coverage = (total - scalar) / total if total else 0.0
    return {
        "floor": ROUTING_FLOOR,
        "coverage": round(coverage, 6),
        "accesses": total,
        "paths": paths,
        "programs": programs,
    }


def measure_store_workers(tmp_dir: Optional[Path] = None) -> Dict[str, Any]:
    """Drive a persisted trace store through memmap workers; report RSS.

    Writes the contended ``psums`` trace to a binary store, fans the same
    path out over worker processes (each opens its own read-only memmap),
    and records every worker's peak resident set.  The note substantiates
    the zero-copy claim in ``BENCH_simulator.json``: workers share the
    store's OS page-cache pages, so N workers do not cost N trace-sized
    private copies.
    """
    import tempfile

    from repro.parallel import ExecutionEngine
    from repro.trace.store import save_program
    from repro.coherence.machine import SCALED_WESTMERE
    from repro.workloads.base import Mode, RunConfig
    from repro.workloads.registry import get_workload

    w = get_workload("psums")
    prog = w.trace(RunConfig(threads=4, mode=Mode.BAD_FS,
                             size=w.train_sizes[-1]))
    with TELEMETRY.span("bench.store_workers"):
        with tempfile.TemporaryDirectory(dir=tmp_dir) as td:
            path = Path(td) / "psums-bad-fs.rtrc"
            save_program(prog, path)
            store_bytes = path.stat().st_size
            engine = ExecutionEngine(jobs=2, chunksize=1)
            pairs = engine.simulate_stores([path, path], SCALED_WESTMERE)
    rss = [int(r) for _, r in pairs]
    return {
        "case": "psums/bad-fs/t4",
        "workers": len(rss),
        "store_bytes": int(store_bytes),
        "worker_peak_rss_kib": rss,
        "note": "workers open the store as read-only memmaps and share OS "
                "page-cache pages; peak RSS stays flat as workers are added "
                "instead of growing by a private trace copy per process",
    }


def render_speedup_table(payload: Dict[str, Any]) -> str:
    """The per-strategy speedup table (the CI bench job's artifact)."""
    from repro.utils.tables import render_table

    rows = []
    for label, row in sorted((payload.get("drive") or {}).items()):
        rows.append([
            label,
            f"{row.get('accesses', 0):,}",
            f"{row.get('ref_accesses_per_s', 0):,}",
            f"{row.get('runs_accesses_per_s', 0):,}",
            f"{row.get('lines_accesses_per_s', 0):,}",
            f"{row.get('fast_accesses_per_s', 0):,}",
            str(row.get("strategy", "-")),
            f"{row.get('speedup', 0):.2f}x",
            (f"{row['speedup_floor']:.2f}x"
             if row.get("speedup_floor") else "-"),
        ])
    return render_table(
        ["case", "accesses", "ref acc/s", "runs acc/s", "lines acc/s",
         "auto acc/s", "auto path", "speedup", "floor"],
        rows,
        title="drive strategies (auto speedup vs reference loop)",
    )


def render_routing_report(payload: Dict[str, Any]) -> str:
    """Per-program path-routing histogram (the CI coverage artifact)."""
    from repro.utils.tables import render_table

    routing = payload.get("routing") or {}
    programs = routing.get("programs") or {}
    all_paths = sorted({p for hist in programs.values() for p in hist}
                       | set(routing.get("paths") or {}))
    rows = []
    for name, hist in sorted(programs.items()):
        total = sum(hist.values()) or 1
        off = total - hist.get("ref", 0) - hist.get("ref-gated", 0)
        rows.append([name, f"{total:,}"]
                    + [f"{hist.get(p, 0):,}" for p in all_paths]
                    + [f"{off / total:.2%}"])
    totals = routing.get("paths") or {}
    total = sum(totals.values()) or 1
    rows.append(["TOTAL", f"{total:,}"]
                + [f"{totals.get(p, 0):,}" for p in all_paths]
                + [f"{routing.get('coverage', 0.0):.2%}"])
    out = render_table(
        ["program", "accesses"] + all_paths + ["off-ref"],
        rows,
        title="auto-strategy routing coverage (access-weighted)",
    )
    floor = routing.get("floor", ROUTING_FLOOR)
    verdict = ("PASS" if routing.get("coverage", 0.0) >= floor else "FAIL")
    out += (f"\ncoverage {routing.get('coverage', 0.0):.4%} "
            f"vs floor {floor:.0%}: {verdict}")
    return out


def measure_e2e(jobs: Optional[int] = None) -> Dict[str, Any]:  # pragma: no cover - minutes-long
    """End-to-end ``classify_all + verify_all`` wall time (full mode only)."""
    from repro.core.detector import FalseSharingDetector
    from repro.core.lab import Lab
    from repro.experiments.context import PipelineContext
    from repro.parallel import default_jobs

    with TELEMETRY.span("bench.e2e"):
        ctx = PipelineContext(lab=Lab(disk_cache=None),
                              jobs=jobs or default_jobs())
        det = FalseSharingDetector(ctx.lab)
        det.fit(training=ctx.training)
        ctx._detector = det
        t0 = time.perf_counter()
        ctx.classify_all()
        ctx.verify_all()
        seconds = time.perf_counter() - t0
    return {
        "scope": "classify_all + verify_all (cold caches)",
        "parallel_fast_s": round(seconds, 2),
    }


def run_bench(
    smoke: bool = True,
    repeats: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the pinned grid and return the BENCH-compatible payload.

    Telemetry is enabled (and reset) for the duration of the run on the
    process-wide collector, so the instrumented layers — simulator drive,
    execution engine, shadow cache — contribute spans and counters that
    land in the run manifest.  The collector's previous enabled state is
    restored afterwards.
    """
    if repeats is None:
        repeats = 1 if smoke else 3
    was_enabled = TELEMETRY.enabled
    TELEMETRY.enable(reset=True)
    try:
        with TELEMETRY.span("bench", mode="smoke" if smoke else "full"):
            payload: Dict[str, Any] = {
                "bench": "simulator-throughput",
                "mode": "smoke" if smoke else "full",
                "cpus": os.cpu_count(),
                "jobs": jobs or 1,
                "repeats": repeats,
                "drive": measure_drive(repeats=repeats),
                "routing": measure_routing(),
                "store_workers": measure_store_workers(),
                "e2e": {},
            }
            if not smoke:  # pragma: no cover - minutes-long
                payload["e2e"] = measure_e2e(jobs=jobs)
    finally:
        if not was_enabled:
            TELEMETRY.disable()
    return payload


# ------------------------------------------------------------- comparison


@dataclass
class ComparisonRow:
    """One gated metric: current vs baseline."""

    label: str
    metric: str
    current: float
    baseline: float
    #: current/baseline for higher-is-better metrics, baseline/current for
    #: lower-is-better ones — so ratio < 1 always means "got worse".
    ratio: float
    regressed: bool


@dataclass
class BenchComparison:
    """Outcome of gating a result payload against a baseline."""

    max_regression: float
    rows: List[ComparisonRow] = field(default_factory=list)
    #: Labels present in the baseline but absent from the current run —
    #: treated as failures (a silently shrunken grid must not pass).
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def render(self) -> str:
        from repro.utils.tables import render_table

        def fmt(v: float) -> str:
            # Throughput rows carry acc/s (large); speedup rows carry
            # small ratios where the decimals are the whole story.
            return f"{v:,.0f}" if v >= 100 else f"{v:.3f}"

        rows = [
            [r.label, r.metric, fmt(r.current), fmt(r.baseline),
             f"{r.ratio:.3f}", "REGRESSED" if r.regressed else "ok"]
            for r in self.rows
        ]
        out = render_table(
            ["case", "metric", "current", "baseline", "ratio", "verdict"],
            rows,
            title=f"bench gate (max regression {self.max_regression:.0%})",
        )
        if self.missing:
            out += "\nmissing from current run: " + ", ".join(self.missing)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_regression": self.max_regression,
            "ok": self.ok,
            "rows": [vars(r) for r in self.rows],
            "missing": list(self.missing),
        }


def compare_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> BenchComparison:
    """Gate ``current`` against ``baseline``.

    Gated metrics: per-trace fast-path throughput
    (``drive.<label>.fast_accesses_per_s``, higher is better) and — when
    both payloads carry it — end-to-end wall time
    (``e2e.parallel_fast_s``, lower is better).  A metric regresses when
    it is worse than the baseline by more than ``max_regression``
    (fractional).  Two hard bounds are enforced with no tolerance: any
    trace carrying a ``speedup_floor`` (the contended cases in
    :data:`SPEEDUP_FLOORS`) must keep its measured ``speedup`` at or above
    that floor, and a payload carrying ``routing`` must keep its
    access-weighted off-``ref`` ``coverage`` at or above the recorded
    routing floor (:data:`ROUTING_FLOOR`); a baseline with routing data
    also demands it of the current run.  Baseline labels missing from the
    current run fail the gate; new labels absent from the baseline are
    ignored (they gate once the baseline is refreshed).

    Both payloads are shape-checked first (:func:`_check_sections`): a
    missing/empty ``drive`` section, a baseline row without a positive
    throughput, or an unknown top-level section is a hard
    :class:`TelemetryError` (exit 2), never a silent exit 0.
    """
    if not 0 <= max_regression < 1:
        raise TelemetryError("max_regression must be in [0, 1)")
    _check_sections(current, "current")
    _check_sections(baseline, "baseline")
    comparison = BenchComparison(max_regression=max_regression)
    floor = 1.0 - max_regression
    cur_drive = current.get("drive") or {}
    for label, base_row in sorted((baseline.get("drive") or {}).items()):
        base_v = float(base_row.get("fast_accesses_per_s", 0) or 0)
        if base_v <= 0:
            # Skipping here used to let a truncated baseline shrink the
            # gate one row at a time without anyone noticing.
            raise TelemetryError(
                f"baseline drive row {label!r} has no positive "
                "fast_accesses_per_s — the gate cannot key on it; "
                "regenerate the baseline")
        cur_row = cur_drive.get(label)
        if cur_row is None:
            comparison.missing.append(label)
            continue
        cur_v = float(cur_row.get("fast_accesses_per_s", 0) or 0)
        ratio = cur_v / base_v
        comparison.rows.append(ComparisonRow(
            label=label,
            metric="fast_accesses_per_s",
            current=cur_v,
            baseline=base_v,
            ratio=round(ratio, 4),
            regressed=ratio < floor,
        ))
        # Contended-path speedup floors are hard: the recorded floor (from
        # either payload) gates the current speedup with no tolerance.
        floor_v = float(base_row.get("speedup_floor")
                        or cur_row.get("speedup_floor") or 0)
        if floor_v > 0:
            cur_s = float(cur_row.get("speedup", 0) or 0)
            comparison.rows.append(ComparisonRow(
                label=label,
                metric="speedup",
                current=cur_s,
                baseline=floor_v,
                ratio=round(cur_s / floor_v, 4),
                regressed=cur_s < floor_v,
            ))
    # Routing-coverage floor: hard, like the speedup floors.  The floor is
    # taken from whichever payload records one (current wins); a baseline
    # with routing data but a current run without any fails as missing.
    base_routing = baseline.get("routing") or {}
    cur_routing = current.get("routing") or {}
    if base_routing or cur_routing:
        if not cur_routing and base_routing:
            comparison.missing.append("routing")
        else:
            floor_v = float(cur_routing.get("floor")
                            or base_routing.get("floor") or ROUTING_FLOOR)
            cur_cov = float(cur_routing.get("coverage", 0.0) or 0.0)
            comparison.rows.append(ComparisonRow(
                label="routing",
                metric="coverage",
                current=cur_cov,
                baseline=floor_v,
                ratio=round(cur_cov / floor_v, 4) if floor_v else 0.0,
                regressed=cur_cov < floor_v,
            ))
    base_e2e = float((baseline.get("e2e") or {}).get("parallel_fast_s", 0) or 0)
    cur_e2e = float((current.get("e2e") or {}).get("parallel_fast_s", 0) or 0)
    if base_e2e > 0 and cur_e2e > 0:
        ratio = base_e2e / cur_e2e  # lower is better; <1 means slower now
        comparison.rows.append(ComparisonRow(
            label="e2e",
            metric="parallel_fast_s",
            current=cur_e2e,
            baseline=base_e2e,
            ratio=round(ratio, 4),
            regressed=ratio < floor,
        ))
    return comparison


# -------------------------------------------------------------------- CLI


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro-bench`` (exit 0 ok / 1 regression / 2 error)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Replay the pinned simulator benchmark grid, write a "
                    "BENCH-compatible result + run manifest, and optionally "
                    "gate against a committed baseline.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="drive-throughput grid only (seconds, the CI "
                             "configuration); default unless --full")
    parser.add_argument("--full", action="store_true",
                        help="also measure the end-to-end pipeline (minutes)")
    parser.add_argument("--repeats", type=int, default=0,
                        help="timing repeats per case (best-of; default: "
                             "1 smoke, 3 full)")
    parser.add_argument("--baseline", default="",
                        help="baseline JSON to gate against "
                             "(e.g. BENCH_simulator.json)")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="tolerated fractional throughput loss "
                             "(default: %(default)s)")
    parser.add_argument("--input", default="",
                        help="compare this existing result JSON instead of "
                             "running the grid")
    parser.add_argument("--output", default="repro-bench.json",
                        help="where to write the result JSON")
    parser.add_argument("--manifest", default="",
                        help="where to write the run manifest "
                             "(default: <output stem>-manifest.json)")
    parser.add_argument("--chrome-trace", default="",
                        help="also write a chrome://tracing / Perfetto "
                             "trace of the run")
    parser.add_argument("--speedup-table", default="",
                        help="write the per-strategy speedup table (text) "
                             "here — uploaded as a CI artifact")
    parser.add_argument("--coverage-report", default="",
                        help="write the auto-routing coverage report (text) "
                             "here — uploaded as a CI artifact")
    parser.add_argument("--results-store", default="",
                        help="also ingest the result payload (and manifest, "
                             "in run mode) into this repro-results store")
    parser.add_argument("-j", "--jobs", type=int, default=0,
                        help="worker processes for the full-mode pipeline")
    args = parser.parse_args(argv)

    try:
        baseline = None
        if args.baseline:
            base_path = Path(args.baseline)
            if not base_path.exists():
                print(f"error: baseline not found: {base_path}",
                      file=sys.stderr)
                return 2
            baseline = json.loads(base_path.read_text())

        if args.input:
            in_path = Path(args.input)
            if not in_path.exists():
                print(f"error: input not found: {in_path}", file=sys.stderr)
                return 2
            payload = json.loads(in_path.read_text())
        else:
            smoke = not args.full
            payload = run_bench(
                smoke=smoke,
                repeats=args.repeats or None,
                jobs=args.jobs or None,
            )
            out_path = Path(args.output)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(json.dumps(payload, indent=2) + "\n")
            manifest_path = Path(
                args.manifest
                or out_path.with_name(out_path.stem + "-manifest.json")
            )
            manifest = RunManifest.collect(
                config={
                    "mode": payload["mode"],
                    "repeats": payload["repeats"],
                    "baseline": args.baseline,
                    "max_regression": args.max_regression,
                },
                seed=BENCH_SEED,
                telemetry=TELEMETRY,
            )
            manifest.save(manifest_path)
            if args.chrome_trace:
                export_chrome_trace(TELEMETRY, args.chrome_trace)
            print(f"result:   {out_path}")
            print(f"manifest: {manifest_path}")
            for label, row in payload["drive"].items():
                print(f"  {label:24s} fast {row['fast_accesses_per_s']:>11,} "
                      f"acc/s  (speedup {row['speedup']:.2f}x)")
            routing = payload.get("routing") or {}
            if routing:
                hist = " ".join(
                    f"{p}={n:,}"
                    for p, n in sorted((routing.get("paths") or {}).items()))
                print(f"  routing: {hist}")
                print(f"  routing coverage {routing.get('coverage', 0.0):.4%}"
                      f" (floor {routing.get('floor', ROUTING_FLOOR):.0%})")
            sw = payload.get("store_workers") or {}
            if sw:
                rss = ", ".join(f"{r:,} KiB"
                                for r in sw.get("worker_peak_rss_kib", []))
                print(f"  store workers: {sw.get('workers', 0)} memmap "
                      f"worker(s) over {sw.get('store_bytes', 0):,} B store, "
                      f"peak RSS {rss}")

        if args.results_store:
            from repro.results.store import ResultsStore

            with ResultsStore(args.results_store) as store:
                src = Path(args.input).name if args.input else out_path.name
                outcome = store.ingest(payload, source=src)
                print(f"results:  run #{outcome.run_id} "
                      f"[{outcome.kind}] -> {args.results_store}"
                      + ("" if outcome.fresh else " (deduped)"))
                if not args.input:
                    store.ingest(manifest.to_dict(),
                                 source=manifest_path.name)

        if args.speedup_table:
            table_path = Path(args.speedup_table)
            table_path.parent.mkdir(parents=True, exist_ok=True)
            table_path.write_text(render_speedup_table(payload) + "\n")
            print(f"speedups: {table_path}")

        if args.coverage_report:
            cov_path = Path(args.coverage_report)
            cov_path.parent.mkdir(parents=True, exist_ok=True)
            cov_path.write_text(render_routing_report(payload) + "\n")
            print(f"coverage: {cov_path}")

        if baseline is None:
            return 0
        comparison = compare_payloads(payload, baseline,
                                      max_regression=args.max_regression)
        print(comparison.render())
        if comparison.ok:
            print("bench gate: PASS")
            return 0
        print("bench gate: FAIL "
              f"({len(comparison.regressions)} regression(s), "
              f"{len(comparison.missing)} missing case(s))",
              file=sys.stderr)
        return 1
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(bench_main())
