"""Per-run provenance: the :class:`RunManifest`.

Röhl et al. argue that event-based measurement is only trustworthy when the
harness that produced it is validated and reproducible.  A manifest pins
everything needed to re-run (or distrust) a measurement: the git SHA and
dirty bit of the tree, the seed and configuration, interpreter and numpy
versions, simulator/oracle semantic versions, host geometry, and — when a
:class:`~repro.telemetry.core.Telemetry` collector is supplied — the
aggregated wall-time tree plus all counters and gauges of the run.

``repro-bench`` writes one next to every result JSON, and the CI bench job
uploads both as workflow artifacts.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.telemetry.core import Telemetry

__all__ = ["RunManifest", "git_revision", "git_branch", "host_fingerprint"]

#: Manifest schema version; bump when the shape changes.
MANIFEST_SCHEMA = "repro-manifest/1"


def git_revision(cwd: Union[str, Path, None] = None):
    """``(sha, dirty)`` of the working tree, or ``("unknown", False)``.

    Never raises: a missing git binary, a non-repo directory, or a timeout
    all degrade to the unknown marker so manifests can be written anywhere.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        if sha.returncode != 0:
            return "unknown", False
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        dirty = bool(status.returncode == 0 and status.stdout.strip())
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return "unknown", False


def git_branch(cwd: Union[str, Path, None] = None) -> str:
    """The checked-out branch name, or ``"unknown"``.

    Degrades like :func:`git_revision` — detached HEADs (the common CI
    checkout state) report ``"HEAD"``, which is still a stable key for
    the results store.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--abbrev-ref", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        if out.returncode != 0 or not out.stdout.strip():
            return "unknown"
        return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def host_fingerprint() -> str:
    """Short stable identifier of the measuring host.

    Hashes the platform string and core count — enough to separate
    trajectories recorded on different runner classes (Röhl et al.:
    counter-derived numbers are only comparable within one validated
    harness) without leaking a hostname into shared artifacts.
    """
    import hashlib

    raw = f"{platform.platform()}|{os.cpu_count() or 0}"
    return hashlib.blake2b(raw.encode("utf-8"), digest_size=6).hexdigest()


@dataclass
class RunManifest:
    """Reproducibility envelope for one measured run."""

    schema: str = MANIFEST_SCHEMA
    created_unix: float = 0.0
    git_sha: str = "unknown"
    git_dirty: bool = False
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    python: str = ""
    numpy: str = ""
    platform: str = ""
    cpu_count: int = 0
    sim_version: str = ""
    shadow_version: str = ""
    wall_time_tree: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        config: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        cwd: Union[str, Path, None] = None,
    ) -> "RunManifest":
        """Snapshot the current environment (and optionally a collector)."""
        import numpy

        from repro.versioning import SHADOW_VERSION, SIM_VERSION

        sha, dirty = git_revision(cwd=cwd)
        manifest = cls(
            created_unix=time.time(),
            git_sha=sha,
            git_dirty=dirty,
            seed=seed,
            config=dict(config or {}),
            python=sys.version.split()[0],
            numpy=numpy.__version__,
            platform=platform.platform(),
            cpu_count=os.cpu_count() or 0,
            sim_version=SIM_VERSION,
            shadow_version=SHADOW_VERSION,
        )
        if telemetry is not None:
            manifest.wall_time_tree = telemetry.aggregate_tree()
            manifest.counters = dict(telemetry.counters)
            manifest.gauges = dict(telemetry.gauges)
        return manifest

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "created_unix": self.created_unix,
            "git": {"sha": self.git_sha, "dirty": self.git_dirty},
            "seed": self.seed,
            "config": self.config,
            "versions": {
                "python": self.python,
                "numpy": self.numpy,
                "sim": self.sim_version,
                "shadow": self.shadow_version,
            },
            "host": {"platform": self.platform, "cpu_count": self.cpu_count},
            "wall_time_tree": self.wall_time_tree,
            "counters": self.counters,
            "gauges": self.gauges,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        git = payload.get("git", {})
        versions = payload.get("versions", {})
        host = payload.get("host", {})
        return cls(
            schema=payload.get("schema", MANIFEST_SCHEMA),
            created_unix=payload.get("created_unix", 0.0),
            git_sha=git.get("sha", "unknown"),
            git_dirty=git.get("dirty", False),
            seed=payload.get("seed"),
            config=dict(payload.get("config", {})),
            python=versions.get("python", ""),
            numpy=versions.get("numpy", ""),
            platform=host.get("platform", ""),
            cpu_count=host.get("cpu_count", 0),
            sim_version=versions.get("sim", ""),
            shadow_version=versions.get("shadow", ""),
            wall_time_tree=dict(payload.get("wall_time_tree", {})),
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))
