"""Deterministic random-number utilities.

Every stochastic component in the library (trace generators, PMU noise,
spin-lock nondeterminism) draws from a generator derived here, so a run is
fully determined by ``(workload, config, seed)``.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

Seedable = Union[int, str, bytes, None]


def stable_hash(*parts: Seedable) -> int:
    """Return a 64-bit hash that is stable across processes and sessions.

    Python's builtin ``hash`` is randomized per process for strings; we need
    reproducible seeds derived from workload names and configuration fields,
    so we hash through blake2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        if part is None:
            h.update(b"\x00none")
        elif isinstance(part, bytes):
            h.update(b"\x01" + part)
        elif isinstance(part, str):
            h.update(b"\x02" + part.encode("utf-8"))
        elif isinstance(part, int):
            h.update(b"\x03" + part.to_bytes(16, "little", signed=True))
        else:
            raise TypeError(f"unhashable seed part: {part!r}")
        h.update(b"\xff")
    return int.from_bytes(h.digest(), "little")


def rng_for(*parts: Seedable) -> np.random.Generator:
    """Return a numpy Generator seeded stably from the given parts."""
    return np.random.default_rng(stable_hash(*parts))


def spawn(rng: np.random.Generator, n: int) -> list:
    """Split a generator into ``n`` independent child generators."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63, size=n)]


def choice_weighted(rng: np.random.Generator, items: Iterable, weights) -> object:
    """Pick one item with the given (unnormalized) weights."""
    items = list(items)
    w = np.asarray(list(weights), dtype=float)
    if len(items) != w.size or not len(items):
        raise ValueError("items and weights must be equal-length and non-empty")
    if (w < 0).any() or w.sum() <= 0:
        raise ValueError("weights must be non-negative and sum > 0")
    return items[int(rng.choice(len(items), p=w / w.sum()))]
