"""Terminal charts for experiment output.

The paper's figures are plots; the experiment harness is terminal-first, so
these helpers render horizontal bar charts and multi-series line summaries
in plain text.  No plotting dependency, deterministic output, fixed widths
— safe to assert on in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

BAR_CHAR = "#"


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: Optional[str] = None,
    unit: str = "",
    log: bool = False,
) -> str:
    """Horizontal bar chart, one row per (label, value).

    ``log=True`` scales bars by log10 — useful when values span orders of
    magnitude (e.g. false-sharing rates).
    """
    import math

    if len(labels) != len(values):
        raise ValueError("labels and values must be equal length")
    if width < 4:
        raise ValueError("width must be >= 4")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    out: List[str] = []
    if title:
        out.append(title)
    if not values:
        return "\n".join(out + ["(no data)"])

    if log:
        floor = min((v for v in values if v > 0), default=1.0)
        scaled = [0.0 if v <= 0 else math.log10(v / floor) + 1.0
                  for v in values]
    else:
        scaled = list(values)
    peak = max(scaled) or 1.0
    lab_w = max(len(str(lab)) for lab in labels)
    for label, value, s in zip(labels, values, scaled):
        bar = BAR_CHAR * max(1 if value > 0 else 0,
                             round(width * s / peak))
        out.append(f"{str(label):>{lab_w}} | {bar:<{width}} "
                   f"{value:.4g}{unit}")
    return "\n".join(out)


def series_chart(
    x_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 48,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Grouped horizontal bars: one group per x value, one bar per series.

    Renders Table-1-like data ("time vs thread count, three methods") in a
    form where flat-vs-scaling rows are visible at a glance.
    """
    for name, vals in series.items():
        if len(vals) != len(x_labels):
            raise ValueError(f"series {name!r} length mismatch")
    out: List[str] = []
    if title:
        out.append(title)
    flat = [v for vals in series.values() for v in vals]
    if not flat:
        return "\n".join(out + ["(no data)"])
    if any(v < 0 for v in flat):
        raise ValueError("bar values must be non-negative")
    peak = max(flat) or 1.0
    name_w = max(len(n) for n in series)
    for i, x in enumerate(x_labels):
        out.append(f"{x}:")
        for name, vals in series.items():
            v = vals[i]
            bar = BAR_CHAR * max(1 if v > 0 else 0,
                                 round(width * v / peak))
            out.append(f"  {name:>{name_w}} | {bar:<{width}} "
                       f"{v:.4g}{unit}")
    return "\n".join(out)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend: eight-level block characters."""
    blocks = " .:-=+*#"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1,
                   int((v - lo) / span * (len(blocks) - 1)))]
        for v in values
    )
