"""Plain-text table rendering used by the experiment harness.

Experiments print the same rows/columns as the paper's tables; this module
keeps the formatting in one place so bench output stays uniform.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    align_right: bool = True,
) -> str:
    """Render rows as an ASCII table with a header rule.

    Column widths fit the widest cell; numeric cells are right-aligned by
    default which matches how the paper prints count/time tables.
    """
    srows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    hdr = [str(h) for h in headers]
    for r in srows:
        if len(r) != len(hdr):
            raise ValueError(f"row width {len(r)} != header width {len(hdr)}")
    widths = [len(h) for h in hdr]
    for r in srows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    def fmt(row: Sequence[str]) -> str:
        cells = []
        for c, w in zip(row, widths):
            cells.append(c.rjust(w) if align_right else c.ljust(w))
        return "| " + " | ".join(cells) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.extend([rule, fmt(hdr), rule])
    out.extend(fmt(r) for r in srows)
    out.append(rule)
    return "\n".join(out)


def render_grid(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence[object]],
    corner: str = "",
    title: Optional[str] = None,
) -> str:
    """Render a labeled 2-D grid (e.g. input-set x thread-count tables)."""
    if len(cells) != len(row_labels):
        raise ValueError("cells must have one row per row label")
    headers = [corner] + list(col_labels)
    rows = [[rl] + list(cr) for rl, cr in zip(row_labels, cells)]
    return render_table(headers, rows, title=title)
