"""Shared utilities: deterministic RNG, table rendering, statistics."""

from repro.utils.charts import hbar_chart, series_chart, sparkline
from repro.utils.rng import rng_for, spawn, stable_hash
from repro.utils.stats import geometric_mean, majority, mean_ci, ratio, tally
from repro.utils.tables import render_grid, render_table

__all__ = [
    "hbar_chart",
    "series_chart",
    "sparkline",
    "rng_for",
    "spawn",
    "stable_hash",
    "geometric_mean",
    "majority",
    "mean_ci",
    "ratio",
    "tally",
    "render_grid",
    "render_table",
]
