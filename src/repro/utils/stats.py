"""Small statistics helpers shared by experiments and tests."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; all values must be positive."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if (arr <= 0).any():
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def ratio(a: float, b: float, eps: float = 1e-12) -> float:
    """max(a,b)/min(a,b) guarded against zero denominators.

    This is the paper's "2x heuristic" comparator: how far apart two event
    counts are, regardless of direction.
    """
    lo, hi = (a, b) if a <= b else (b, a)
    if lo < 0:
        raise ValueError("ratio requires non-negative values")
    return hi / max(lo, eps)


def majority(labels: Iterable[str]) -> str:
    """Most frequent label; ties broken by lexicographic order for determinism."""
    counts: Dict[str, int] = {}
    for lab in labels:
        counts[lab] = counts.get(lab, 0) + 1
    if not counts:
        raise ValueError("majority of empty sequence")
    return max(sorted(counts), key=lambda k: counts[k])


def tally(labels: Iterable[str]) -> Dict[str, int]:
    """Count occurrences of each label."""
    counts: Dict[str, int] = {}
    for lab in labels:
        counts[lab] = counts.get(lab, 0) + 1
    return counts


def mean_ci(values: Sequence[float], z: float = 1.96) -> Tuple[float, float]:
    """Mean and half-width of a normal-approximation confidence interval."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("mean_ci of empty sequence")
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(z * arr.std(ddof=1) / np.sqrt(arr.size))
