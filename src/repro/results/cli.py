"""``repro-results``: the durable run store's command line.

* ``repro-results ingest STORE FILE...`` — classify and append payloads
  (bench, serve, manifest, crosscheck, validation); re-ingesting a
  payload already in the store dedups on its content digest;
* ``repro-results list STORE`` — every ingested run with provenance;
* ``repro-results trend STORE`` — per-metric trajectory table (rolling
  median ± MAD band over the last N runs); ``--markdown`` emits a
  GitHub-flavored table for ``$GITHUB_STEP_SUMMARY``;
* ``repro-results gate STORE`` — trajectory-aware regression gate (exit
  0 pass / 1 regression / 2 error); small histories fall back to the
  classic pairwise rule, hard floors always apply;
* ``repro-results export STORE OUT.json`` — Parquet-style column-major
  JSON export of the whole history.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.results.gate import (
    DEFAULT_MAX_REGRESSION,
    gate_store,
    render_gate_markdown,
)
from repro.results.store import ResultsStore
from repro.results.trend import (
    DEFAULT_WINDOW,
    MIN_TRAJECTORY,
    render_trend_markdown,
    render_trend_table,
    trend_rows,
)

__all__ = ["results_main"]


def _add_store_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("store", help="path to the results store "
                                 "(created on first ingest)")


def _add_kind_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--kind", default="",
                   help="restrict to one payload kind "
                        "(bench, serve, manifest, crosscheck, validate)")


def results_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-results",
        description="Append-only run store + trajectory-aware regression "
                    "gate over bench/serve/manifest/crosscheck payloads.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    ingest = sub.add_parser("ingest",
                            help="append payload JSON files to the store")
    _add_store_arg(ingest)
    ingest.add_argument("files", nargs="+", help="payload JSON files")

    lst = sub.add_parser("list", help="list ingested runs")
    _add_store_arg(lst)
    _add_kind_arg(lst)

    trend = sub.add_parser("trend", help="per-metric trajectory table")
    _add_store_arg(trend)
    _add_kind_arg(trend)
    trend.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                       help="rolling-window length (default: %(default)s)")
    trend.add_argument("--markdown", action="store_true",
                       help="GitHub-flavored markdown (for job summaries)")
    trend.add_argument("--output", default="",
                       help="also write the table to this file")
    trend.add_argument("--fail-empty", action="store_true",
                       help="exit 1 when the store has no metrics "
                            "(CI smoke assertion)")

    gate = sub.add_parser("gate",
                          help="gate the latest run of each kind against "
                               "its history")
    _add_store_arg(gate)
    _add_kind_arg(gate)
    gate.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                      help="history window per metric "
                           "(default: %(default)s)")
    gate.add_argument("--min-history", type=int, default=MIN_TRAJECTORY,
                      help="prior runs needed before median±MAD bands "
                           "replace the pairwise rule "
                           "(default: %(default)s)")
    gate.add_argument("--max-regression", type=float,
                      default=DEFAULT_MAX_REGRESSION,
                      help="pairwise-fallback tolerance and minimum "
                           "band half-width (default: %(default)s)")
    gate.add_argument("--markdown", default="",
                      help="also write a markdown verdict table here "
                           "(e.g. $GITHUB_STEP_SUMMARY)")

    export = sub.add_parser("export",
                            help="columnar (Parquet-style) JSON export")
    _add_store_arg(export)
    export.add_argument("output", help="export file path")

    args = parser.parse_args(argv)
    try:
        if args.cmd == "ingest":
            return _cmd_ingest(args)
        if args.cmd == "list":
            return _cmd_list(args)
        if args.cmd == "trend":
            return _cmd_trend(args)
        if args.cmd == "gate":
            return _cmd_gate(args)
        if args.cmd == "export":
            return _cmd_export(args)
        parser.error(f"unknown command {args.cmd!r}")
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_ingest(args) -> int:
    with ResultsStore(args.store) as store:
        for path in args.files:
            outcome = store.ingest_file(path)
            state = "ingested" if outcome.fresh else "deduped"
            print(f"{state}: {path} -> run #{outcome.run_id} "
                  f"[{outcome.kind}] digest {outcome.digest[:12]}")
    return 0


def _cmd_list(args) -> int:
    from repro.utils.tables import render_table

    with ResultsStore(args.store) as store:
        runs = store.runs(kind=args.kind or None)
        rows = [
            [str(r.run_id), r.kind,
             time.strftime("%Y-%m-%d %H:%M", time.gmtime(r.created_unix)),
             r.git_branch, r.git_sha[:10], r.host, r.source or "-",
             str(len(store.metrics_for(r.run_id)))]
            for r in runs
        ]
    if not rows:
        print("no runs in store")
        return 0
    print(render_table(
        ["run", "kind", "created (UTC)", "branch", "commit", "host",
         "source", "metrics"],
        rows, title=f"{len(rows)} ingested run(s)"))
    return 0


def _cmd_trend(args) -> int:
    with ResultsStore(args.store) as store:
        rows = trend_rows(store, kind=args.kind or None,
                          window=args.window)
    text = (render_trend_markdown(rows) if args.markdown
            else render_trend_table(rows))
    print(text)
    if args.output:
        from pathlib import Path

        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    if args.fail_empty and not rows:
        print("error: store has no metric rows", file=sys.stderr)
        return 1
    return 0


def _cmd_gate(args) -> int:
    with ResultsStore(args.store) as store:
        report = gate_store(
            store,
            kind=args.kind or None,
            window=args.window,
            min_history=args.min_history,
            max_regression=args.max_regression,
        )
    print(report.render())
    if args.markdown:
        from pathlib import Path

        out = Path(args.markdown)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("a") as fh:
            fh.write(render_gate_markdown(report) + "\n")
    if report.ok:
        print("results gate: PASS")
        return 0
    print(f"results gate: FAIL ({len(report.regressions)} regression(s), "
          f"{len(report.missing)} missing metric(s))", file=sys.stderr)
    return 1


def _cmd_export(args) -> int:
    with ResultsStore(args.store) as store:
        out = store.export_columnar(args.output)
        n = len(store.runs())
    print(f"exported {n} run(s) -> {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(results_main())
