"""Result-store schema: payload kinds, metric extraction, digests.

The durable run store (:mod:`repro.results.store`) is deliberately dumb —
append rows, never rewrite them.  All knowledge about *what* a payload is
and *which numbers inside it are worth trending* lives here, so adding a
new artifact kind is one classifier branch plus one extractor, with the
SQLite layout untouched.

Recognized payload kinds (each a JSON document some part of the repo
already emits — the store ingests them as-is, no new wire format):

* ``bench`` — ``repro-bench`` / ``BENCH_simulator.json``: per-trace drive
  throughput + speedups (with their hard ``speedup_floor``), routing
  coverage (with the routing floor), optional e2e wall time;
* ``serve`` — ``repro-serve bench`` / ``BENCH_serve.json``: loadgen
  throughput, latency percentiles, shed/error counts (hard ceiling 0),
  offline batch-inference throughput; when the document embeds a
  ``scale`` section (the sharded fleet run) its throughput, per-line
  latency percentiles, shed/error ceilings and host provenance
  (cpus/workers) are trended too;
* ``serve-scale`` — a standalone sharded-fleet scale payload (a
  ``scale`` section without the single-server ``loadgen`` run): the
  same scale metrics, with the shed ceiling carried as a hard bound;
* ``manifest`` — :class:`~repro.telemetry.manifest.RunManifest`:
  provenance plus telemetry counters/gauges (informational — trended,
  never gated);
* ``crosscheck`` — the predict × static × shadow × tree agreement
  summary (``repro-analyze --crosscheck`` / the ``crosscheck``
  experiment): pairwise agreement fractions plus a hard zero-disagreement
  ceiling;
* ``validate`` — the ``predict-validation`` experiment's line-level
  precision/recall and verdict-agreement accuracy summary.

Anything else is a hard :class:`~repro.errors.ResultsError` — an
unrecognized document in the history would silently dilute every trend,
so the store refuses it (the same "inputs fail loudly" contract as
:class:`~repro.errors.TraceError`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ResultsError

__all__ = [
    "STORE_SCHEMA",
    "PAYLOAD_KINDS",
    "Metric",
    "classify_payload",
    "extract_metrics",
    "payload_digest",
]

#: Store schema tag recorded in the ``meta`` table; readers demand an
#: exact match (a mis-versioned history must be regenerated, not guessed
#: at — same contract as the trace store's ``STORE_VERSION``).
STORE_SCHEMA = "repro-results/1"

#: Every payload kind the store accepts.
PAYLOAD_KINDS = ("bench", "serve", "serve-scale", "manifest", "crosscheck",
                 "validate")

#: Latency percentiles trended from serve payloads.
_SERVE_PERCENTILES = ("p50", "p95", "p99")


@dataclass(frozen=True)
class Metric:
    """One trended number extracted from a payload.

    ``direction`` is ``'higher'`` (more is better), ``'lower'`` (less is
    better) or ``'info'`` (trended but never gated).  ``bound`` is the
    hard backstop no tolerance softens: a *minimum* for higher-is-better
    metrics, a *maximum* for lower-is-better ones.
    """

    name: str
    value: float
    unit: str = ""
    direction: str = "higher"
    bound: Optional[float] = None


def payload_digest(doc: Dict[str, Any]) -> str:
    """Content digest of a payload's canonical JSON form.

    Key order and whitespace do not change the digest, so re-ingesting
    the same document from a differently-formatted file dedups.
    """
    canon = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canon.encode("utf-8"), digest_size=16).hexdigest()


def classify_payload(doc: Any) -> str:
    """The payload kind of ``doc``, or a hard :class:`ResultsError`."""
    if not isinstance(doc, dict):
        raise ResultsError("a results payload must be a JSON object, "
                           f"not {type(doc).__name__}")
    tag = doc.get("report")
    if tag == "crosscheck":
        return "crosscheck"
    if tag == "predict-validation":
        return "validate"
    bench = doc.get("bench")
    if bench == "simulator-throughput" or (bench is None and "drive" in doc):
        return "bench"
    if bench == "serve-throughput" or "loadgen" in doc:
        return "serve"
    if bench == "serve-scale" or "scale" in doc:
        return "serve-scale"
    if str(doc.get("schema", "")).startswith("repro-manifest/"):
        return "manifest"
    if "pairwise_fs_agreement" in doc:
        return "crosscheck"
    if "line_precision" in doc or "verdict_agreement" in doc:
        return "validate"
    keys = ", ".join(sorted(map(str, doc)))[:120] or "<empty>"
    raise ResultsError(
        "unrecognized results payload (keys: "
        f"{keys}); expected one of {PAYLOAD_KINDS} — an unknown document "
        "must not enter the history silently")


def _num(v: Any) -> Optional[float]:
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return None
    return float(v)


def _bench_metrics(doc: Dict[str, Any]) -> List[Metric]:
    out: List[Metric] = []
    for label, row in sorted((doc.get("drive") or {}).items()):
        if not isinstance(row, dict):
            raise ResultsError(f"bench drive row {label!r} is not an object")
        fast = _num(row.get("fast_accesses_per_s"))
        if fast is not None:
            out.append(Metric(f"drive.{label}.fast_accesses_per_s", fast,
                              "acc/s", "higher"))
        speed = _num(row.get("speedup"))
        if speed is not None:
            out.append(Metric(f"drive.{label}.speedup", speed, "x",
                              "higher", bound=_num(row.get("speedup_floor"))))
    routing = doc.get("routing") or {}
    cov = _num(routing.get("coverage"))
    if cov is not None:
        out.append(Metric("routing.coverage", cov, "frac", "higher",
                          bound=_num(routing.get("floor"))))
    e2e = _num((doc.get("e2e") or {}).get("parallel_fast_s"))
    if e2e is not None:
        out.append(Metric("e2e.parallel_fast_s", e2e, "s", "lower"))
    return out


def _serve_metrics(doc: Dict[str, Any]) -> List[Metric]:
    out: List[Metric] = []
    lg = doc.get("loadgen") or {}
    rps = _num(lg.get("throughput_rps"))
    if rps is not None:
        out.append(Metric("loadgen.throughput_rps", rps, "req/s", "higher"))
    lat = lg.get("latency_ms") or {}
    for pct in _SERVE_PERCENTILES:
        v = _num(lat.get(pct))
        if v is not None:
            out.append(Metric(f"loadgen.latency_ms.{pct}", v, "ms", "lower"))
    for counter in ("shed", "errors"):
        v = _num(lg.get(counter))
        if v is not None:
            # Zero shed/errors is the serve job's hard requirement.
            out.append(Metric(f"loadgen.{counter}", v, "req", "lower",
                              bound=0.0))
    vps = _num(doc.get("predict_batch_vectors_per_s"))
    if vps is not None:
        out.append(Metric("predict_batch_vectors_per_s", vps, "vec/s",
                          "higher"))
    out.extend(_scale_section_metrics(doc))
    return out


def _scale_section_metrics(doc: Dict[str, Any]) -> List[Metric]:
    """Metrics of a sharded-fleet ``scale`` section (possibly embedded)."""
    scale = doc.get("scale") or {}
    if not isinstance(scale, dict):
        raise ResultsError("'scale' section must be an object")
    out: List[Metric] = []
    vps = _num(scale.get("throughput_vps"))
    if vps is not None:
        out.append(Metric("scale.throughput_vps", vps, "vec/s", "higher"))
    lat = scale.get("latency_ms") or {}
    for pct in _SERVE_PERCENTILES:
        v = _num(lat.get(pct))
        if v is not None:
            out.append(Metric(f"scale.latency_ms.{pct}", v, "ms", "lower"))
    shed = _num(scale.get("shed"))
    if shed is not None:
        # The explicit shed ceiling is a hard bound: a scale run that
        # shed more than it declared acceptable can never pass the gate.
        ceiling = _num(scale.get("shed_ceiling"))
        out.append(Metric("scale.shed", shed, "vec", "lower",
                          bound=ceiling if ceiling is not None else 0.0))
    errors = _num(scale.get("errors"))
    if errors is not None:
        out.append(Metric("scale.errors", errors, "vec", "lower", bound=0.0))
    speedup = _num(scale.get("speedup_vs_single"))
    if speedup is not None:
        out.append(Metric("scale.speedup_vs_single", speedup, "x", "higher"))
    # Host/topology provenance rides along so cross-host trajectories
    # are comparable (a 1-cpu laptop number never gates a 4-cpu CI one).
    for key in ("workers", "connections", "batch"):
        v = _num(scale.get(key))
        if v is not None:
            out.append(Metric(f"scale.{key}", v, "", "info"))
    for key in ("cpus", "affinity_cpus"):
        v = _num(doc.get(key))
        if v is not None:
            out.append(Metric(f"host.{key}", v, "", "info"))
    return out


def _manifest_metrics(doc: Dict[str, Any]) -> List[Metric]:
    out: List[Metric] = []
    for family in ("counters", "gauges"):
        for name, v in sorted((doc.get(family) or {}).items()):
            num = _num(v)
            if num is not None:
                out.append(Metric(f"{family[:-1]}.{name}", num, "",
                                  "info"))
    return out


def _crosscheck_metrics(doc: Dict[str, Any]) -> List[Metric]:
    out: List[Metric] = []
    for pair, v in sorted((doc.get("pairwise_fs_agreement") or {}).items()):
        num = _num(v)
        if num is not None:
            out.append(Metric(f"agreement.{pair}", num, "frac", "higher"))
    dis = doc.get("disagreements")
    if isinstance(dis, list):
        # Grid accuracy must stay at full agreement: any disagreement is
        # a hard failure, matching `repro-analyze --crosscheck`'s exit 1.
        out.append(Metric("disagreements", float(len(dis)), "cases",
                          "lower", bound=0.0))
    return out


def _validation_metrics(doc: Dict[str, Any],
                        prefix: str = "") -> List[Metric]:
    out: List[Metric] = []
    for key, direction in (("line_precision", "higher"),
                           ("line_recall", "higher"),
                           ("verdict_agreement", "higher")):
        v = _num(doc.get(key))
        if v is not None:
            out.append(Metric(prefix + key, v, "frac", direction))
    for sweep in ("registry", "suite"):
        sub = doc.get(sweep)
        if isinstance(sub, dict):
            out.extend(_validation_metrics(sub, prefix=f"{sweep}."))
    return out


_EXTRACTORS = {
    "bench": _bench_metrics,
    "serve": _serve_metrics,
    "serve-scale": _scale_section_metrics,
    "manifest": _manifest_metrics,
    "crosscheck": _crosscheck_metrics,
    "validate": _validation_metrics,
}


def extract_metrics(kind: str, doc: Dict[str, Any]) -> List[Metric]:
    """All trended metrics of a classified payload.

    An ingestable payload that yields *no* metrics is refused: a run row
    with nothing to trend can only dilute ``list`` output and can never
    be gated, so it is treated as a malformed document.
    """
    try:
        extractor = _EXTRACTORS[kind]
    except KeyError:
        raise ResultsError(f"unknown payload kind {kind!r}; expected one "
                           f"of {PAYLOAD_KINDS}") from None
    metrics = extractor(doc)
    if not metrics:
        raise ResultsError(f"{kind} payload carries no extractable "
                           "metrics — refusing to ingest an empty run")
    seen: Dict[str, Metric] = {}
    for m in metrics:
        if m.name in seen:
            raise ResultsError(f"duplicate metric {m.name!r} in {kind} "
                               "payload")
        seen[m.name] = m
    return metrics
