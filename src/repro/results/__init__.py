"""``repro.results``: durable run store + trajectory-aware CI gating.

Turns the repo's scattered one-shot artifacts (``BENCH_simulator.json``,
``BENCH_serve.json``, run manifests, crosscheck / prediction-validation
summaries) into one append-only queryable history, and replaces pairwise
baseline diffs with rolling median ± MAD regression detection.  See
``docs/RESULTS.md`` for the schema, the gate math and the CI wiring.
"""

from repro.results.gate import (
    DEFAULT_MAX_REGRESSION,
    GateReport,
    GateRow,
    gate_store,
    render_gate_markdown,
)
from repro.results.schema import (
    PAYLOAD_KINDS,
    STORE_SCHEMA,
    Metric,
    classify_payload,
    extract_metrics,
    payload_digest,
)
from repro.results.store import IngestOutcome, ResultsStore, RunRow
from repro.results.trend import (
    DEFAULT_MAD_K,
    DEFAULT_WINDOW,
    MIN_TRAJECTORY,
    Band,
    TrendRow,
    mad_band,
    render_trend_markdown,
    render_trend_table,
    trend_rows,
)

__all__ = [
    "Band",
    "DEFAULT_MAD_K",
    "DEFAULT_MAX_REGRESSION",
    "DEFAULT_WINDOW",
    "GateReport",
    "GateRow",
    "IngestOutcome",
    "Metric",
    "MIN_TRAJECTORY",
    "PAYLOAD_KINDS",
    "ResultsStore",
    "RunRow",
    "STORE_SCHEMA",
    "TrendRow",
    "classify_payload",
    "extract_metrics",
    "gate_store",
    "mad_band",
    "payload_digest",
    "render_gate_markdown",
    "render_trend_markdown",
    "render_trend_table",
    "trend_rows",
]
