"""Trajectory-aware regression gating over the durable run store.

``repro-results gate`` judges the **latest** ingested run of each payload
kind against its own history, per metric, with three escalating modes:

* ``trajectory`` — with at least :data:`~repro.results.trend.MIN_TRAJECTORY`
  prior points, the latest value must stay inside the rolling
  median ± K·MAD band (:func:`~repro.results.trend.mad_band`).  A single
  noisy CI runner neither trips the gate (the band is wide when history
  is noisy) nor masks a real regression later (one outlier barely moves
  a median, where it would wholly define a pairwise baseline);
* ``pairwise`` — with a short history (one or two prior points) the gate
  falls back to exactly the old ``compare_payloads`` rule: worse than
  the previous run by more than ``max_regression`` fails.  No median or
  MAD is computed, so small histories can never divide by zero;
* ``bound`` — hard backstops are enforced **unconditionally** in every
  mode, even for a history of one: contended-trace ``speedup_floor``\\ s,
  the routing-coverage floor, the serve zero-shed/zero-error ceilings,
  the crosscheck zero-disagreement ceiling.  The strictest bound ever
  recorded for a metric is the one that gates
  (:meth:`~repro.results.store.ResultsStore.max_bound`), so a payload
  that drops or relaxes its own floor weakens nothing.

A metric that appeared anywhere in the history window but is absent from
the latest run fails the gate as ``missing`` — a silently shrunken grid
must not pass, mirroring the pairwise gate's missing-case rule.
Improvements always pass: only the regression side of the band is gated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ResultsError
from repro.results.store import ResultsStore
from repro.results.trend import (
    DEFAULT_MAD_K,
    DEFAULT_WINDOW,
    MIN_TRAJECTORY,
    mad_band,
)

__all__ = ["GateRow", "GateReport", "gate_store", "render_gate_markdown",
           "DEFAULT_MAX_REGRESSION"]

#: Tolerated fractional loss in pairwise fallback mode — the same default
#: the ``repro-bench`` gate has always used.
DEFAULT_MAX_REGRESSION = 0.30


@dataclass(frozen=True)
class GateRow:
    """One verdict: a metric of the latest run vs its history."""

    kind: str
    name: str
    mode: str  # 'trajectory' | 'pairwise' | 'bound' | 'new'
    current: float
    #: Band median (trajectory), previous value (pairwise), or the hard
    #: bound itself (bound rows).
    reference: float
    lo: Optional[float]
    hi: Optional[float]
    regressed: bool

    @property
    def verdict(self) -> str:
        return "REGRESSED" if self.regressed else "ok"


@dataclass
class GateReport:
    """All verdicts for one ``gate`` invocation."""

    window: int
    min_history: int
    max_regression: float
    rows: List[GateRow] = field(default_factory=list)
    #: Metrics with history but no value in the latest run, per kind.
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[GateRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def render(self) -> str:
        from repro.utils.tables import render_table

        def fmt(v: Optional[float]) -> str:
            if v is None:
                return "-"
            return f"{v:,.0f}" if abs(v) >= 100 else f"{v:.4g}"

        cells = [
            [r.kind, r.name, r.mode, fmt(r.current), fmt(r.reference),
             (f"[{fmt(r.lo)}, {fmt(r.hi)}]"
              if r.lo is not None or r.hi is not None else "-"),
             r.verdict]
            for r in self.rows
        ]
        out = render_table(
            ["kind", "metric", "mode", "current", "reference", "band",
             "verdict"],
            cells,
            title=(f"results gate (window {self.window}, trajectory from "
                   f"{self.min_history} runs, pairwise tolerance "
                   f"{self.max_regression:.0%})"),
        )
        if self.missing:
            out += "\nmissing from latest run: " + ", ".join(self.missing)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "min_history": self.min_history,
            "max_regression": self.max_regression,
            "ok": self.ok,
            "rows": [vars(r) for r in self.rows],
            "missing": list(self.missing),
        }


def _pairwise_regressed(current: float, previous: float, direction: str,
                        floor_ratio: float) -> bool:
    """The classic one-vs-one rule, zero-safe in both directions."""
    if direction == "higher":
        if current >= previous:
            return False
        # previous > current >= anything, so previous > 0 here unless the
        # series went negative — which no recorded metric does.
        return previous > 0 and current / previous < floor_ratio
    # lower is better
    if current <= previous:
        return False
    if previous <= 0:
        return True  # e.g. shed went from 0 to anything positive
    return previous / current < floor_ratio


def gate_store(
    store: ResultsStore,
    kind: Optional[str] = None,
    window: int = DEFAULT_WINDOW,
    min_history: int = MIN_TRAJECTORY,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    k: float = DEFAULT_MAD_K,
) -> GateReport:
    """Gate the latest run of each (selected) kind against its history."""
    if not 0 <= max_regression < 1:
        raise ResultsError("max_regression must be in [0, 1)")
    if window < 1:
        raise ResultsError("window must be >= 1")
    if min_history < 1:
        raise ResultsError("min_history must be >= 1")
    report = GateReport(window=window, min_history=min_history,
                        max_regression=max_regression)
    floor_ratio = 1.0 - max_regression
    kinds = [kind] if kind is not None else store.kinds()
    if kind is not None and kind not in store.kinds():
        raise ResultsError(f"no {kind!r} runs in the store "
                           f"(kinds present: {store.kinds() or 'none'})")
    for k_ in kinds:
        latest = store.latest_run(k_)
        if latest is None:
            continue
        latest_metrics = {m.name: m for m in store.metrics_for(latest.run_id)}
        # A metric any windowed predecessor carried must still be there.
        for prev in store.runs(kind=k_)[-(window + 1):]:
            if prev.run_id == latest.run_id:
                continue
            for m in store.metrics_for(prev.run_id):
                if m.direction != "info" and m.name not in latest_metrics:
                    tag = f"{k_}:{m.name}"
                    if tag not in report.missing:
                        report.missing.append(tag)
        for metric in latest_metrics.values():
            if metric.direction == "info":
                continue
            bound = store.max_bound(metric.name, metric.direction, kind=k_)
            if bound is not None:
                breached = (metric.value < bound
                            if metric.direction == "higher"
                            else metric.value > bound)
                report.rows.append(GateRow(
                    kind=k_, name=metric.name, mode="bound",
                    current=metric.value, reference=bound,
                    lo=bound if metric.direction == "higher" else None,
                    hi=bound if metric.direction == "lower" else None,
                    regressed=breached))
            history = store.series(metric.name, kind=k_,
                                   before_run=latest.run_id, limit=window)
            if len(history) >= min_history:
                band = mad_band(history, max_regression=max_regression, k=k)
                regressed = (metric.value < band.lo
                             if metric.direction == "higher"
                             else metric.value > band.hi)
                report.rows.append(GateRow(
                    kind=k_, name=metric.name, mode="trajectory",
                    current=metric.value, reference=band.median,
                    lo=band.lo, hi=band.hi, regressed=regressed))
            elif history:
                previous = history[-1]
                report.rows.append(GateRow(
                    kind=k_, name=metric.name, mode="pairwise",
                    current=metric.value, reference=previous,
                    lo=None, hi=None,
                    regressed=_pairwise_regressed(
                        metric.value, previous, metric.direction,
                        floor_ratio)))
            else:
                report.rows.append(GateRow(
                    kind=k_, name=metric.name, mode="new",
                    current=metric.value, reference=metric.value,
                    lo=None, hi=None, regressed=False))
    return report


def render_gate_markdown(report: GateReport) -> str:
    """GitHub-flavored markdown verdict table for job summaries."""
    headers = ["kind", "metric", "mode", "current", "reference", "verdict"]
    lines = [f"**results gate: {'PASS' if report.ok else 'FAIL'}** "
             f"({len(report.regressions)} regression(s), "
             f"{len(report.missing)} missing)",
             "",
             "| " + " | ".join(headers) + " |",
             "|" + "---|" * len(headers)]
    for r in report.rows:
        lines.append(f"| {r.kind} | {r.name} | {r.mode} | {r.current:g} "
                     f"| {r.reference:g} | {r.verdict} |")
    for tag in report.missing:
        lines.append(f"| {tag.split(':', 1)[0]} | {tag.split(':', 1)[1]} "
                     f"| missing | - | - | REGRESSED |")
    return "\n".join(lines)
