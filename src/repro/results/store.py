"""Append-only SQLite run store behind the ``repro-results`` CLI.

One file holds the whole measurement history of a checkout (or of a CI
artifact chain): every ``repro-bench`` payload, ``repro-serve bench``
document, :class:`~repro.telemetry.manifest.RunManifest`, crosscheck and
prediction-validation summary lands as one **run row** keyed by
``(kind, commit, branch, created timestamp, host fingerprint, payload
digest)`` plus a set of flattened **metric rows** (see
:mod:`repro.results.schema`).  The store is append-only by construction —
there is no update or delete API — and re-ingesting a payload whose
``(kind, digest)`` pair is already present is a no-op, so CI can blindly
``ingest`` every artifact it produced and the history stays duplicate-free
across retries and re-runs.

Corruption is a hard :class:`~repro.errors.ResultsError`, mirroring the
trace store's :class:`~repro.errors.TraceError` contract: a results
history is an *input* to the regression gate, so a truncated file, a
non-SQLite file, or a schema-version mismatch must fail loudly rather
than degrade into an empty (and therefore always-green) trend.

The columnar export (:meth:`ResultsStore.export_columnar`) writes a
Parquet-style column-major JSON document — every column as one array —
which dashboards and notebooks can load without SQLite.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ResultsError
from repro.results.schema import (
    STORE_SCHEMA,
    Metric,
    classify_payload,
    extract_metrics,
    payload_digest,
)

__all__ = ["ResultsStore", "RunRow", "IngestOutcome", "EXPORT_FORMAT"]

#: Format tag stamped into columnar exports.
EXPORT_FORMAT = "repro-results-export/1"

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY,
    kind          TEXT NOT NULL,
    digest        TEXT NOT NULL,
    git_sha       TEXT NOT NULL,
    git_branch    TEXT NOT NULL,
    host          TEXT NOT NULL,
    created_unix  REAL NOT NULL,
    ingested_unix REAL NOT NULL,
    source        TEXT NOT NULL,
    payload       TEXT NOT NULL,
    UNIQUE (kind, digest)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id    INTEGER NOT NULL REFERENCES runs(id),
    name      TEXT NOT NULL,
    value     REAL NOT NULL,
    unit      TEXT NOT NULL,
    direction TEXT NOT NULL,
    bound     REAL,
    UNIQUE (run_id, name)
);
CREATE INDEX IF NOT EXISTS metrics_by_name ON metrics (name, run_id);
"""


@dataclass(frozen=True)
class RunRow:
    """One ingested payload (without the full document body)."""

    run_id: int
    kind: str
    digest: str
    git_sha: str
    git_branch: str
    host: str
    created_unix: float
    source: str


@dataclass(frozen=True)
class IngestOutcome:
    """What :meth:`ResultsStore.ingest` did with one payload."""

    run_id: int
    kind: str
    digest: str
    #: False when the ``(kind, digest)`` pair was already in the store
    #: (the ingest deduplicated; ``run_id`` names the existing row).
    fresh: bool


def _provenance() -> Dict[str, str]:
    """Default (sha, branch, host) provenance for ingested rows."""
    from repro.telemetry.manifest import git_branch, git_revision, host_fingerprint

    sha, _dirty = git_revision()
    return {"git_sha": sha, "git_branch": git_branch(),
            "host": host_fingerprint()}


class ResultsStore:
    """Durable, append-only history of measurement payloads."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        try:
            self._db = sqlite3.connect(str(self.path))
            self._db.execute("PRAGMA foreign_keys = ON")
            existing = self._db.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name = 'meta'").fetchone()
            if existing is None:
                with self._db:
                    self._db.executescript(_DDL)
                    self._db.execute(
                        "INSERT OR IGNORE INTO meta VALUES ('schema', ?)",
                        (STORE_SCHEMA,))
            row = self._db.execute(
                "SELECT value FROM meta WHERE key = 'schema'").fetchone()
        except sqlite3.Error as exc:
            raise ResultsError(
                f"results store {self.path} is unreadable or corrupt: "
                f"{exc}") from exc
        if row is None:
            raise ResultsError(f"results store {self.path} has no schema "
                               "tag (corrupt or foreign database)")
        if row[0] != STORE_SCHEMA:
            raise ResultsError(
                f"results store {self.path} has schema {row[0]!r}; this "
                f"build reads {STORE_SCHEMA!r} — regenerate the history")

    # ----------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- ingest

    def ingest(
        self,
        doc: Dict[str, Any],
        source: str = "",
        git_sha: Optional[str] = None,
        git_branch: Optional[str] = None,
        host: Optional[str] = None,
        created_unix: Optional[float] = None,
    ) -> IngestOutcome:
        """Append one payload (classified + flattened); dedup on digest.

        Provenance defaults come from the working tree and host; a
        manifest payload's own ``created_unix``/``git`` fields win over
        the defaults so re-ingesting an old artifact does not forge a
        fresh timestamp.
        """
        kind = classify_payload(doc)
        metrics = extract_metrics(kind, doc)
        digest = payload_digest(doc)
        if kind == "manifest":
            created_unix = created_unix or doc.get("created_unix") or None
            git_sha = git_sha or (doc.get("git") or {}).get("sha")
        defaults = _provenance()
        row = (
            kind,
            digest,
            git_sha or defaults["git_sha"],
            git_branch or defaults["git_branch"],
            host or defaults["host"],
            float(created_unix if created_unix is not None else time.time()),
            time.time(),
            source,
            json.dumps(doc, sort_keys=True, separators=(",", ":")),
        )
        try:
            with self._db:
                cur = self._db.execute(
                    "INSERT OR IGNORE INTO runs (kind, digest, git_sha, "
                    "git_branch, host, created_unix, ingested_unix, "
                    "source, payload) VALUES (?,?,?,?,?,?,?,?,?)", row)
                if cur.rowcount == 0:
                    existing = self._db.execute(
                        "SELECT id FROM runs WHERE kind = ? AND digest = ?",
                        (kind, digest)).fetchone()
                    return IngestOutcome(int(existing[0]), kind, digest,
                                         fresh=False)
                run_id = int(cur.lastrowid or 0)
                self._db.executemany(
                    "INSERT INTO metrics (run_id, name, value, unit, "
                    "direction, bound) VALUES (?,?,?,?,?,?)",
                    [(run_id, m.name, m.value, m.unit, m.direction, m.bound)
                     for m in metrics])
        except sqlite3.Error as exc:
            raise ResultsError(f"results store {self.path} rejected an "
                               f"ingest: {exc}") from exc
        return IngestOutcome(run_id, kind, digest, fresh=True)

    def ingest_file(self, path: Union[str, Path]) -> IngestOutcome:
        """Ingest one JSON file; the file name becomes the source tag."""
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except OSError as exc:
            raise ResultsError(f"cannot read payload {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ResultsError(f"payload {path} is not valid JSON: "
                               f"{exc}") from exc
        return self.ingest(doc, source=path.name)

    # ------------------------------------------------------------- queries

    def _query(self, sql: str, params: Sequence[Any] = ()) -> List[Any]:
        try:
            return self._db.execute(sql, tuple(params)).fetchall()
        except sqlite3.Error as exc:
            raise ResultsError(f"results store {self.path} query failed: "
                               f"{exc}") from exc

    def kinds(self) -> List[str]:
        """Payload kinds present, in first-ingested order."""
        return [r[0] for r in self._query(
            "SELECT kind FROM runs GROUP BY kind ORDER BY MIN(id)")]

    def runs(self, kind: Optional[str] = None) -> List[RunRow]:
        """All run rows (optionally one kind), in append order."""
        sql = ("SELECT id, kind, digest, git_sha, git_branch, host, "
               "created_unix, source FROM runs")
        params: List[Any] = []
        if kind is not None:
            sql += " WHERE kind = ?"
            params.append(kind)
        sql += " ORDER BY id"
        return [RunRow(int(r[0]), r[1], r[2], r[3], r[4], r[5],
                       float(r[6]), r[7])
                for r in self._query(sql, params)]

    def latest_run(self, kind: str) -> Optional[RunRow]:
        rows = self._query(
            "SELECT id, kind, digest, git_sha, git_branch, host, "
            "created_unix, source FROM runs WHERE kind = ? "
            "ORDER BY id DESC LIMIT 1", (kind,))
        if not rows:
            return None
        r = rows[0]
        return RunRow(int(r[0]), r[1], r[2], r[3], r[4], r[5],
                      float(r[6]), r[7])

    def payload(self, run_id: int) -> Dict[str, Any]:
        rows = self._query("SELECT payload FROM runs WHERE id = ?",
                           (run_id,))
        if not rows:
            raise ResultsError(f"no run #{run_id} in {self.path}")
        return json.loads(rows[0][0])

    def metrics_for(self, run_id: int) -> List[Metric]:
        """The flattened metrics of one run, in insertion order."""
        return [Metric(r[0], float(r[1]), r[2], r[3],
                       None if r[4] is None else float(r[4]))
                for r in self._query(
                    "SELECT name, value, unit, direction, bound "
                    "FROM metrics WHERE run_id = ? ORDER BY rowid",
                    (run_id,))]

    def metric_names(self, kind: Optional[str] = None) -> List[str]:
        sql = ("SELECT m.name FROM metrics m JOIN runs r ON r.id = m.run_id")
        params: List[Any] = []
        if kind is not None:
            sql += " WHERE r.kind = ?"
            params.append(kind)
        sql += " GROUP BY m.name ORDER BY MIN(m.rowid)"
        return [r[0] for r in self._query(sql, params)]

    def series(
        self,
        name: str,
        kind: Optional[str] = None,
        before_run: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[float]:
        """One metric's values in append (trajectory) order.

        ``before_run`` excludes the named run and everything after it —
        the gate uses it to split "history" from "the run under test".
        ``limit`` keeps only the most recent values *after* that split.
        """
        sql = ("SELECT m.value FROM metrics m JOIN runs r ON r.id = m.run_id "
               "WHERE m.name = ?")
        params: List[Any] = [name]
        if kind is not None:
            sql += " AND r.kind = ?"
            params.append(kind)
        if before_run is not None:
            sql += " AND r.id < ?"
            params.append(before_run)
        sql += " ORDER BY r.id"
        values = [float(r[0]) for r in self._query(sql, params)]
        if limit is not None and limit >= 0:
            values = values[-limit:] if limit else []
        return values

    def max_bound(self, name: str, direction: str,
                  kind: Optional[str] = None) -> Optional[float]:
        """The strictest hard bound ever recorded for a metric.

        Taking the max (higher-is-better) or min (lower-is-better) over
        the whole history means a payload that *drops* its floor cannot
        weaken the gate — the old floor keeps gating.
        """
        sql = ("SELECT m.bound FROM metrics m JOIN runs r ON r.id = m.run_id "
               "WHERE m.name = ? AND m.bound IS NOT NULL")
        params: List[Any] = [name]
        if kind is not None:
            sql += " AND r.kind = ?"
            params.append(kind)
        bounds = [float(r[0]) for r in self._query(sql, params)]
        if not bounds:
            return None
        return max(bounds) if direction == "higher" else min(bounds)

    # -------------------------------------------------------------- export

    def export_columnar(self, path: Union[str, Path]) -> Path:
        """Write the whole history as column-major JSON (Parquet-style)."""
        runs = self.runs()
        metric_rows = self._query(
            "SELECT run_id, name, value, unit, direction, bound "
            "FROM metrics ORDER BY rowid")
        doc = {
            "format": EXPORT_FORMAT,
            "schema": STORE_SCHEMA,
            "runs": {
                "id": [r.run_id for r in runs],
                "kind": [r.kind for r in runs],
                "digest": [r.digest for r in runs],
                "git_sha": [r.git_sha for r in runs],
                "git_branch": [r.git_branch for r in runs],
                "host": [r.host for r in runs],
                "created_unix": [r.created_unix for r in runs],
                "source": [r.source for r in runs],
            },
            "metrics": {
                "run_id": [int(r[0]) for r in metric_rows],
                "name": [r[1] for r in metric_rows],
                "value": [float(r[2]) for r in metric_rows],
                "unit": [r[3] for r in metric_rows],
                "direction": [r[4] for r in metric_rows],
                "bound": [None if r[5] is None else float(r[5])
                          for r in metric_rows],
            },
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path
