"""Trajectory statistics over the run store: rolling median + MAD bands.

Röhl et al. (PAPERS.md) show that hardware-counter-derived metrics carry
run-to-run noise that a single sample cannot characterize — which is
exactly what the old pairwise CI gate did: compare one fresh number
against one committed number.  This module replaces that with robust
location/scale estimates over the last *N* ingested runs per metric:

* location: the **median** of the rolling window (outlier-immune, unlike
  the mean a single hot CI runner would drag);
* scale: the **median absolute deviation** (MAD), scaled by 1.4826 so it
  estimates a standard deviation under normal noise;
* band: ``median ± K·1.4826·MAD``, half-width floored at
  ``max_regression · |median|`` so a perfectly quiet history (MAD = 0 —
  e.g. deduped re-ingests of one artifact) degrades to the classic
  pairwise tolerance instead of a zero-width band that flags everything.

The same numbers back both the ``repro-results trend`` table (human /
``$GITHUB_STEP_SUMMARY`` views) and the ``gate`` verdicts in
:mod:`repro.results.gate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ResultsError
from repro.results.store import ResultsStore

__all__ = [
    "MAD_SCALE",
    "DEFAULT_MAD_K",
    "DEFAULT_WINDOW",
    "MIN_TRAJECTORY",
    "Band",
    "TrendRow",
    "mad_band",
    "trend_rows",
    "render_trend_table",
    "render_trend_markdown",
]

#: Consistency constant: MAD × 1.4826 estimates σ for normal noise.
MAD_SCALE = 1.4826

#: Band half-width in (scaled) MADs.  3σ-equivalent: a metric has to
#: leave a 99.7%-of-noise envelope before the gate calls it a regression.
DEFAULT_MAD_K = 3.0

#: Rolling-window length (runs per metric) for median/MAD estimation.
DEFAULT_WINDOW = 8

#: Minimum history length for trajectory bands.  Below this the gate
#: falls back to pairwise comparison (N ≥ 1) or hard bounds only (N = 0):
#: a median/MAD over one or two points is not an estimate, it is the
#: sample, and dividing by its zero MAD is exactly the failure mode the
#: small-history fallback exists to avoid.
MIN_TRAJECTORY = 3


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ResultsError("median of an empty series")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class Band:
    """A robust noise envelope around a metric's recent history."""

    median: float
    mad: float
    lo: float
    hi: float

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


def mad_band(
    values: Sequence[float],
    max_regression: float = 0.30,
    k: float = DEFAULT_MAD_K,
) -> Band:
    """The ``median ± K·1.4826·MAD`` band over ``values``.

    The half-width never shrinks below ``max_regression · |median|``:
    the trajectory gate is allowed to be *more* tolerant than the old
    pairwise gate when history is noisy, never stricter when history is
    quiet.  With that floor the band is well-defined for any non-empty
    series — MAD = 0 cannot divide, zero, or pin anything.
    """
    if not values:
        raise ResultsError("cannot band an empty metric series")
    med = _median(values)
    mad = _median([abs(v - med) for v in values])
    half = max(k * MAD_SCALE * mad, max_regression * abs(med))
    return Band(median=med, mad=mad, lo=med - half, hi=med + half)


@dataclass(frozen=True)
class TrendRow:
    """One metric's trajectory summary (the ``trend`` table row)."""

    kind: str
    name: str
    unit: str
    direction: str
    n: int
    latest: float
    band: Optional[Band]
    bound: Optional[float]

    @property
    def status(self) -> str:
        """``ok`` / ``drift`` / ``short`` (not enough history to band)."""
        if self.band is None:
            return "short"
        if self.direction == "higher" and self.latest < self.band.lo:
            return "drift"
        if self.direction == "lower" and self.latest > self.band.hi:
            return "drift"
        if self.direction == "info" and not self.band.contains(self.latest):
            return "drift"
        return "ok"


def trend_rows(
    store: ResultsStore,
    kind: Optional[str] = None,
    window: int = DEFAULT_WINDOW,
    max_regression: float = 0.30,
    k: float = DEFAULT_MAD_K,
) -> List[TrendRow]:
    """Trajectory summaries for every metric of every (selected) kind.

    The band for each metric is computed over its *previous* values (the
    latest value is the point under scrutiny, not part of its own
    envelope) and only once at least :data:`MIN_TRAJECTORY` prior points
    exist.
    """
    kinds = [kind] if kind is not None else store.kinds()
    rows: List[TrendRow] = []
    for k_ in kinds:
        latest = store.latest_run(k_)
        if latest is None:
            continue
        for metric in store.metrics_for(latest.run_id):
            history = store.series(metric.name, kind=k_,
                                   before_run=latest.run_id, limit=window)
            band = (mad_band(history, max_regression=max_regression, k=k)
                    if len(history) >= MIN_TRAJECTORY else None)
            rows.append(TrendRow(
                kind=k_,
                name=metric.name,
                unit=metric.unit,
                direction=metric.direction,
                n=len(history) + 1,
                latest=metric.value,
                band=band,
                bound=store.max_bound(metric.name, metric.direction,
                                      kind=k_),
            ))
    return rows


def _fmt(v: Optional[float]) -> str:
    if v is None:
        return "-"
    return f"{v:,.0f}" if abs(v) >= 100 else f"{v:.4g}"


def _table_cells(rows: Sequence[TrendRow]) -> List[List[str]]:
    return [
        [r.kind, r.name, str(r.n), _fmt(r.latest),
         _fmt(r.band.median if r.band else None),
         (f"[{_fmt(r.band.lo)}, {_fmt(r.band.hi)}]" if r.band else "-"),
         _fmt(r.bound), r.direction, r.status]
        for r in rows
    ]


_HEADERS = ["kind", "metric", "n", "latest", "median", "band",
            "bound", "dir", "status"]


def render_trend_table(rows: Sequence[TrendRow]) -> str:
    """ASCII trend table (the ``repro-results trend`` output)."""
    from repro.utils.tables import render_table

    if not rows:
        return "no runs in store"
    return render_table(_HEADERS, _table_cells(rows),
                        title="metric trajectories (rolling median ± MAD)")


def render_trend_markdown(rows: Sequence[TrendRow]) -> str:
    """GitHub-flavored markdown table for ``$GITHUB_STEP_SUMMARY``."""
    if not rows:
        return "_no runs in store_"
    lines = ["| " + " | ".join(_HEADERS) + " |",
             "|" + "---|" * len(_HEADERS)]
    for cells in _table_cells(rows):
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
