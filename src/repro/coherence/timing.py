"""Cycle-cost model for memory operations.

Latencies are in core cycles and approximate published Westmere figures
(L2 ~10, L3 ~40, DRAM ~190, cross-socket HITM ~2x local).  Absolute wall
times are not the reproduction target — the paper's own Tables 1/6/8 are
testbed-specific — but the *ordering* (false-sharing ping-pong costs more
than a clean snoop, which costs more than an L2 hit) is what makes bad-fs
runs slow down the way the paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Per-event cycle penalties and overlap factors.

    ``*_overlap`` is the fraction of a penalty hidden by out-of-order
    execution and the store buffer: effective stall = penalty * (1-overlap).
    Stall *counters* (Table 2 events 4 and 15) accumulate the full penalty —
    the PMU counts occupied-cycles, not critical-path cycles.
    """

    l1_hit: float = 0.0  # folded into base CPI
    l2_hit: float = 10.0
    l3_hit: float = 38.0
    memory: float = 190.0
    snoop_clean: float = 72.0  # HIT / HITE cache-to-cache or L3 supply
    hitm_local: float = 115.0  # dirty line from a core on the same socket
    hitm_remote: float = 220.0  # dirty line across the QPI link
    rfo_upgrade: float = 55.0  # S->M ownership round-trip
    tlb_walk: float = 28.0
    load_overlap: float = 0.55
    store_overlap: float = 0.82
    #: A contended line is a serial resource: when k cores fight over it,
    #: each transfer queues behind the others' in-flight transfers.  The
    #: effective dirty-transfer penalty is scaled by
    #: ``1 + contention_factor * (k - 1)``.  This is what makes false-sharing
    #: run time *flat* in the thread count (paper Table 1: Method 2 takes
    #: ~77s at 4, 8, 12 and 16 threads alike).
    contention_factor: float = 1.0

    def __post_init__(self) -> None:
        for fld in ("load_overlap", "store_overlap"):
            v = getattr(self, fld)
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{fld} must be in [0, 1), got {v}")
        for fld in ("l2_hit", "l3_hit", "memory", "snoop_clean",
                    "hitm_local", "hitm_remote", "rfo_upgrade", "tlb_walk"):
            if getattr(self, fld) < 0:
                raise ValueError(f"{fld} must be >= 0")

    def effective(self, penalty: float, is_write: bool) -> float:
        """Critical-path cycles actually added for one miss."""
        ov = self.store_overlap if is_write else self.load_overlap
        return penalty * (1.0 - ov)

    def hitm(self, same_socket: bool) -> float:
        """Dirty cache-to-cache transfer penalty."""
        return self.hitm_local if same_socket else self.hitm_remote

    def contended(self, penalty: float, contenders: int) -> float:
        """Penalty after queuing behind the line's other contenders."""
        if contenders <= 1:
            return penalty
        return penalty * (1.0 + self.contention_factor * (contenders - 1))


#: Default model used everywhere unless an experiment overrides it.
DEFAULT_LATENCY = LatencyModel()
