"""MESI multicore cache simulator: the substrate replacing real hardware."""

from repro.coherence.cache import SetAssociativeCache
from repro.coherence.machine import MachineSpec, MulticoreMachine, SimulationResult
from repro.coherence.protocol import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    fill_state,
    holder_reaction,
    snoop_response_kind,
    state_name,
    write_upgrade,
)
from repro.coherence.timing import DEFAULT_LATENCY, LatencyModel

__all__ = [
    "SetAssociativeCache",
    "MachineSpec",
    "MulticoreMachine",
    "SimulationResult",
    "INVALID",
    "SHARED",
    "EXCLUSIVE",
    "MODIFIED",
    "fill_state",
    "holder_reaction",
    "snoop_response_kind",
    "state_name",
    "write_upgrade",
    "DEFAULT_LATENCY",
    "LatencyModel",
]
