"""MESI coherence protocol: states, names, and transition rules.

The simulator encodes states as small ints for speed; this module is the
single place that defines them and the legal transitions, so tests can check
protocol invariants independent of the machine loop.
"""

from __future__ import annotations

from typing import Tuple

# State encoding, ordered by "strength" so max() over holders picks the
# authoritative responder during a snoop.
INVALID = 0
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


def state_name(state: int) -> str:
    """Single-letter MESI name for an encoded state."""
    try:
        return STATE_NAMES[state]
    except KeyError:
        raise ValueError(f"not a MESI state: {state!r}") from None


def fill_state(is_write: bool, had_other_holder: bool) -> int:
    """State a line enters the requester's cache with after a miss.

    Writes always install Modified (write-allocate, RFO).  Reads install
    Shared if any other core held the line (it stays/becomes shared), else
    Exclusive — the E optimization that lets a later local write upgrade
    silently.
    """
    if is_write:
        return MODIFIED
    return SHARED if had_other_holder else EXCLUSIVE


def holder_reaction(holder_state: int, requester_writes: bool) -> Tuple[int, bool]:
    """What happens to a remote holder when it is snooped.

    Returns ``(new_state, writeback)``.  A write request (RFO) invalidates
    every holder; a read downgrades M/E to S (M writes its dirty data back).
    """
    if holder_state == INVALID:
        return INVALID, False
    if requester_writes:
        return INVALID, holder_state == MODIFIED
    if holder_state == MODIFIED:
        return SHARED, True
    if holder_state == EXCLUSIVE:
        return SHARED, False
    return SHARED, False


def write_upgrade(state: int) -> Tuple[int, bool]:
    """Local write to a line already cached: ``(new_state, needs_rfo)``.

    E upgrades to M silently; S must broadcast an RFO (the paper's event 2,
    ``L2_Write.RFO."S" state``); M stays M.
    """
    if state == MODIFIED:
        return MODIFIED, False
    if state == EXCLUSIVE:
        return MODIFIED, False
    if state == SHARED:
        return MODIFIED, True
    raise ValueError("cannot write-upgrade an invalid line")


def snoop_response_kind(best_holder_state: int) -> str:
    """Snoop-response bucket for the strongest remote holder state.

    Maps to Table 2 events 9-11: ``hit`` (S), ``hite`` (E), ``hitm`` (M),
    or ``miss`` when no core held the line.
    """
    if best_holder_state == MODIFIED:
        return "hitm"
    if best_holder_state == EXCLUSIVE:
        return "hite"
    if best_holder_state == SHARED:
        return "hit"
    return "miss"
