"""The multicore machine: runs an interleaved trace through MESI caches.

This is the substrate that replaces the paper's physical Westmere DP system.
``MulticoreMachine.run`` consumes a :class:`ProgramTrace`, simulates per-core
L1D+L2 caches, a shared L3, per-core DTLBs, a next-line prefetcher, and a
snooping bus with MESI coherence, and returns raw hardware event counts
(the inputs to the PMU layer) plus a cycle-accurate-ish execution time.

Performance note (per the HPC guides: profile, keep the hot loop tight): the
access loop iterates plain Python lists, binds everything it touches to
locals, and inlines the L1-hit fast path; only misses and upgrades call out
to helper methods.

The machine ships three drive strategies with pinned-identical event
semantics (``fast`` selects one; see :meth:`MulticoreMachine.__init__`):

* the **reference loop** (``fast=False`` / ``'ref'``): one Python iteration
  per access — the executable specification and always-available oracle;
* the **run-compression path** (``'runs'``): a numpy pre-screen extracts
  cache-line/page columns in one shot and compresses the merged trace into
  maximal runs of adjacent same-core same-line accesses.  Only the leading
  access of each run (the one that can miss, RFO-upgrade, or walk the TLB)
  executes the scalar reference logic; the tail of a run is retired in O(1)
  because within a run no other core acts, so every tail access is an L1 hit
  whose only architectural effects (line-fill-buffer hit accounting, an
  E->M upgrade on the first store, the contender-epoch decay) are computable
  in closed form.  ``tests/test_coherence_fastpath.py`` pins bit-identical
  tallies against the reference loop;
* the **line-partitioned kernel** (``'lines'``): stable-sorts the segment by
  cache line and advances each line's MESI machine over its own access
  subsequence, so fragmented or contended interleavings (where runs are
  short and the run-compression path degenerates) still pay per coherence
  *event* rather than per access.  See :mod:`repro.coherence.linekernel`.

``fast=True`` (the default) resolves to ``'auto'``: a stratified probe
routes compressible segments to run-compression and fragmented or
line-churning (contended) segments to the line kernel, with the reference
loop as the fallback when the line kernel's no-eviction precondition fails.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.coherence.cache import SetAssociativeCache
from repro.coherence.protocol import EXCLUSIVE, MODIFIED, SHARED
from repro.coherence.timing import DEFAULT_LATENCY, LatencyModel
from repro.errors import SimulationError
from repro.memory.layout import LINE_SIZE
from repro.telemetry.core import TELEMETRY
from repro.trace.access import ProgramTrace
from repro.trace.streams import (
    DEFAULT_CHUNK,
    DEFAULT_SEGMENT,
    interleave,
    interleave_stream,
)

#: Accesses between resets of the per-line contender bitmasks.
_CONTENTION_EPOCH = 8192

#: Minimum mean run length (accesses per same-core same-line run) for the
#: vectorized fast path to beat the per-access reference loop.  Below it the
#: pre-screen materializes nearly one run per access and costs more than it
#: saves, so such segments fall back to the reference loop (which is
#: bit-identical by construction).
_FAST_MIN_COMPRESSION = 1.6

#: Accesses inspected to estimate a segment's run-length compression before
#: committing to a vectorized path.  The probe is *stratified* — up to a
#: third of the budget each from the segment's head, middle and tail — so a
#: compressible prefix followed by a contended tail (or vice versa) cannot
#: fool the gate the way a prefix-only probe could.
_GATE_PROBE = 65536

#: Minimum churn ratio (fraction of line-domain runs whose line was last
#: touched by a *different* core within the probe sample) for ``'auto'`` to
#: route a compressible segment to the line-partitioned kernel anyway: high
#: churn means coherence events — the run-compression path's scalar slow
#: path — dominate, which is exactly the regime the line kernel vectorizes.
_CHURN_ROUTE = 0.25

#: ``'auto'`` also routes to the line kernel when the probe finds at most
#: this many line-domain runs per stream-domain run: the line kernel's
#: scalar walk visits line-runs, so a sparser line domain means
#: proportionally less scalar work than run-compression would do.
_LINE_RUNS_ROUTE = 0.5

#: Segments smaller than this skip the line kernel under ``'auto'``: its
#: fixed numpy overhead (sorts, eligibility scan) cannot pay for itself.
_LINES_MIN = 4096

#: Drive strategies accepted by ``MulticoreMachine(fast=...)``.
DRIVE_STRATEGIES = ("auto", "runs", "lines", "ref")


@dataclass(frozen=True)
class MachineSpec:
    """Geometry of the simulated machine (defaults: Xeon X5690, Westmere DP)."""

    cores: int = 12
    sockets: int = 2
    l1_kib: int = 32
    l1_assoc: int = 8
    l2_kib: int = 256
    l2_assoc: int = 8
    l3_mib: int = 12
    l3_assoc: int = 16
    tlb_entries: int = 64
    freq_ghz: float = 3.46
    base_cpi: float = 0.7
    name: str = "westmere-dp-x5690"

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.sockets <= 0 or self.cores % self.sockets:
            raise SimulationError("cores must be a positive multiple of sockets")
        for fld in ("l1_kib", "l1_assoc", "l2_kib", "l2_assoc", "l3_mib",
                    "l3_assoc", "tlb_entries"):
            if getattr(self, fld) <= 0:
                raise SimulationError(f"{fld} must be positive")
        if self.freq_ghz <= 0 or self.base_cpi <= 0:
            raise SimulationError("freq_ghz and base_cpi must be positive")

    @property
    def cores_per_socket(self) -> int:
        return self.cores // self.sockets

    @property
    def l1_lines(self) -> int:
        return self.l1_kib * 1024 // LINE_SIZE

    @property
    def l2_lines(self) -> int:
        return self.l2_kib * 1024 // LINE_SIZE

    @property
    def l3_lines(self) -> int:
        return self.l3_mib * 1024 * 1024 // LINE_SIZE

    def socket_of(self, core: int) -> int:
        return core // self.cores_per_socket


#: The paper's testbed: 12-core (2x6) Xeon X5690 Westmere DP.
WESTMERE_SPEC = MachineSpec()

#: The same machine with the memory hierarchy scaled 1:4 (8 KiB L1, 64 KiB
#: L2, 1 MiB L3, 24-entry DTLB).  Trace-driven experiments use this with
#: problem sizes scaled down by the same factor — the standard scaled-
#: working-set technique — so the full training + detection pipeline runs in
#: minutes while cache/TLB pressure ratios match the full-size machine.
SCALED_WESTMERE = MachineSpec(
    l1_kib=8,
    l2_kib=64,
    l3_mib=1,
    tlb_entries=24,
    name="westmere-dp-scaled-1to4",
)


@dataclass
class SimulationResult:
    """Raw event counts and timing from one simulated run.

    ``counts`` maps raw counter mnemonics (see :mod:`repro.pmu.events`) to
    exact simulated values — the PMU layer adds measurement noise and
    multiplexing on top.
    """

    counts: Dict[str, float]
    cycles_per_core: List[float]
    instructions_per_core: List[int]
    seconds: float
    nthreads: int
    spec: MachineSpec
    name: str = "anonymous"
    meta: Dict[str, object] = field(default_factory=dict)
    #: PEBS-style HITM samples (requester, holder, byte addr, is_write);
    #: populated only when the machine was built with hitm_sample_period.
    hitm_samples: List[tuple] = field(default_factory=list)

    @property
    def instructions(self) -> int:
        return int(sum(self.instructions_per_core))

    @property
    def cycles(self) -> float:
        return float(max(self.cycles_per_core)) if self.cycles_per_core else 0.0

    def normalized(self, key: str) -> float:
        """Count per retired instruction (the paper's normalization)."""
        instr = self.instructions
        if instr <= 0:
            raise SimulationError("no instructions retired; cannot normalize")
        return self.counts.get(key, 0.0) / instr


def _normalize_strategy(fast) -> str:
    """Map the ``fast`` argument (bool or strategy name) to a strategy."""
    if fast is True:
        return "auto"
    if fast is False:
        return "ref"
    if isinstance(fast, str) and fast in DRIVE_STRATEGIES:
        return fast
    raise SimulationError(
        f"fast must be a bool or one of {DRIVE_STRATEGIES}, got {fast!r}")


class MulticoreMachine:
    """Trace-driven simulator of a small cache-coherent multiprocessor."""

    def __init__(
        self,
        spec: Optional[MachineSpec] = None,
        latency: Optional[LatencyModel] = None,
        prefetch: bool = True,
        hitm_sample_period: int = 0,
        fast: "bool | str" = True,
        fast_min_compression: float = _FAST_MIN_COMPRESSION,
    ) -> None:
        """``hitm_sample_period`` > 0 enables PEBS-style sampling: every
        period-th HITM snoop records (requester core, holder core, byte
        address, is_write) into ``SimulationResult.hitm_samples`` — the raw
        material of a perf-c2c-style contention report.

        ``fast`` selects the drive strategy; every strategy produces
        identical event tallies (the vectorized ones exist purely for
        throughput).  ``True`` means ``'auto'`` (probe each segment and pick
        run-compression, the line kernel, or the reference loop), ``False``
        means ``'ref'``, and the strings in :data:`DRIVE_STRATEGIES` force a
        specific path — ``'lines'`` still falls back to the reference loop
        when a segment fails the kernel's no-eviction precondition.

        ``fast_min_compression`` gates the vectorized paths per segment:
        when the trace's mean run length (accesses per same-core same-line
        run) falls below it, run-compression cannot pay for itself and
        ``'auto'`` tries the line kernel (then the reference loop) instead.
        Set it to 0.0 to force the run-compression path regardless of
        compression (used by the equivalence tests)."""
        if hitm_sample_period < 0:
            raise SimulationError("hitm_sample_period must be >= 0")
        self.spec = spec or MachineSpec()
        self.latency = latency or DEFAULT_LATENCY
        self.prefetch = prefetch
        self.hitm_sample_period = hitm_sample_period
        self.fast = fast
        self.strategy = _normalize_strategy(fast)
        self.fast_min_compression = fast_min_compression
        #: True when the last segment fell back to the reference loop
        #: because its compression was below the gate or the line kernel
        #: was ineligible (telemetry).
        self._gate_fallback = False
        #: True when the last forced/auto 'lines' segment was ineligible.
        self._line_fallback = False
        #: Per-run path histogram (``{'lines': 3, 'ref-gated': 1}``): which
        #: strategy actually drove each segment of the most recent
        #: :meth:`run`/:meth:`run_sliced` call.  Always maintained (one dict
        #: increment per *segment*) so benchmarks can report the chosen
        #: strategy without enabling telemetry.
        self.path_counts: Dict[str, int] = {}
        #: Same histogram weighted by *accesses* instead of segments — the
        #: routing-coverage metric ``repro-bench`` gates on (a single huge
        #: segment and a trivial one count the same in ``path_counts`` but
        #: differ by orders of magnitude here).
        self.path_accesses: Dict[str, int] = {}

    # ------------------------------------------------------------------ run

    def run(
        self,
        program: ProgramTrace,
        chunk: int = DEFAULT_CHUNK,
        keep_state: bool = False,
    ) -> SimulationResult:
        """Simulate ``program`` and return raw counts + timing.

        ``keep_state=True`` leaves the final cache structures on the machine
        (``_l1``, ``_l2``, ``_l3``) for post-mortem inspection — used by
        coherence-invariant tests.
        """
        results = self.run_sliced(program, n_slices=1, chunk=chunk,
                                  keep_state=keep_state)
        return results[0]

    def run_sliced(
        self,
        program: ProgramTrace,
        n_slices: int,
        chunk: int = DEFAULT_CHUNK,
        keep_state: bool = False,
    ) -> List[SimulationResult]:
        """Simulate ``program`` in ``n_slices`` consecutive time slices.

        Returns one :class:`SimulationResult` per slice, each holding the
        event counts and cycles of *that slice only* while cache/TLB state
        carries over between slices (warm caches) — the substrate for the
        paper's future-work idea of detecting false sharing "in short time
        slices" rather than over whole executions (Section 6).
        """
        if n_slices < 1:
            raise SimulationError("n_slices must be >= 1")
        nt = program.nthreads
        self._setup_run(nt)
        state = _RunState(nt, self.spec.tlb_entries)

        merged = interleave(program, chunk=chunk)
        cores_a = merged.core
        addrs_a = merged.addr
        writes_a = merged.is_write
        total = int(cores_a.size)

        # Slice boundaries over the merged order.
        bounds = [round(i * total / n_slices) for i in range(n_slices + 1)]

        results: List[SimulationResult] = []
        for s_i in range(n_slices):
            lo, hi = bounds[s_i], bounds[s_i + 1]
            seg = self._drive(
                cores_a[lo:hi], addrs_a[lo:hi], writes_a[lo:hi], state,
            )
            results.append(self._slice_result(program, seg, s_i, n_slices))

        # Samples belong to the whole run; attach them to the last slice's
        # result as well as every slice (cheap shared reference).
        for res in results:
            res.hitm_samples = self._hitm_samples
        # Free the big structures before returning (unless a test wants
        # to inspect the final coherence state).
        if not keep_state:
            del self._l1, self._l2, self._l3, self._nt, self._contenders
        return results

    def run_stream(
        self,
        program: ProgramTrace,
        chunk: int = DEFAULT_CHUNK,
        max_accesses: int = DEFAULT_SEGMENT,
        keep_state: bool = False,
    ) -> SimulationResult:
        """Simulate ``program`` by streaming bounded merged segments.

        Bit-identical to :meth:`run`: segments come from
        :func:`~repro.trace.streams.interleave_stream` (whose concatenation
        is exactly the monolithic merge) and every segment accumulates into
        one shared tally block, continuing the reference loop's accumulation
        sequence — penalties and stall cycles are order-sensitive IEEE sums,
        so the continuation is what makes the equality *bitwise*, not just
        approximate.  The point is memory: a GB-scale memmap-backed trace
        drives end-to-end while only ``max_accesses`` merged rows (plus the
        cache structures) are ever resident.
        """
        nt = program.nthreads
        self._setup_run(nt)
        state = _RunState(nt, self.spec.tlb_entries)
        ev = _EventTallies()
        seg = _SegmentTallies(ev, nt)
        for piece in interleave_stream(program, chunk=chunk,
                                       max_accesses=max_accesses):
            self._drive(piece.core, piece.addr, piece.is_write, state,
                        seg=seg)
        result = self._slice_result(program, seg, 0, 1)
        result.hitm_samples = self._hitm_samples
        if not keep_state:
            del self._l1, self._l2, self._l3, self._nt, self._contenders
        return result

    def _setup_run(self, nt: int) -> None:
        """Fresh per-run coherence structures (persist across slices)."""
        spec = self.spec
        if nt > spec.cores:
            raise SimulationError(
                f"program has {nt} threads but machine has {spec.cores} cores"
            )
        self._l1 = [SetAssociativeCache(spec.l1_lines, spec.l1_assoc,
                                        f"L1-{c}") for c in range(nt)]
        self._l2 = [SetAssociativeCache(spec.l2_lines, spec.l2_assoc,
                                        f"L2-{c}") for c in range(nt)]
        self._l3 = SetAssociativeCache(spec.l3_lines, spec.l3_assoc, "L3")
        self._nt = nt
        # Cores recently fighting over each line (bitmask); decayed by
        # periodic reset so migratory lines don't look contended forever.
        self._contenders: Dict[int, int] = {}
        self._hitm_samples: List[tuple] = []
        self._hitm_seen = 0
        self._cur_addr = -1
        self.path_counts = {}
        self.path_accesses = {}

    def _slice_result(self, program: ProgramTrace, seg: "_SegmentTallies",
                      s_i: int, n_slices: int) -> SimulationResult:
        """Build one slice's :class:`SimulationResult` from its tallies."""
        spec = self.spec
        nt = program.nthreads
        # Attribute instructions to the slice by the accesses each
        # thread completed in it (spin extras spread proportionally).
        instr = []
        for c in range(nt):
            t = program.threads[c]
            share = seg.accesses[c]
            frac = share / t.n_accesses if t.n_accesses else 0.0
            instr.append(int(round(share * t.instr_per_access
                                   + frac * t.extra_instructions)))
        cycles = [i * spec.base_cpi + p
                  for i, p in zip(instr, seg.penalty)]
        seconds = (max(cycles) / (spec.freq_ghz * 1e9)) if cycles else 0.0
        counts = seg.ev.as_dict()
        counts.update({
            "INST_RETIRED.ANY": float(sum(instr)),
            "CPU_CLK_UNHALTED.CORE": float(sum(cycles)),
            "MEM_INST_RETIRED.LOADS": float(seg.n_reads),
            "MEM_INST_RETIRED.STORES": float(seg.n_writes),
            "DTLB_MISSES.ANY": float(seg.n_dtlb),
            "MEM_STORE_RETIRED.DTLB_MISS": float(seg.n_dtlb_st),
            "L1D.REPL": float(seg.n_l1_miss),
            "L1D_CACHE_LD": float(seg.n_reads),
            "L1D_CACHE_ST": float(seg.n_writes),
            "MEM_LOAD_RETIRED.L1D_HIT": float(
                max(0, seg.n_reads - seg.n_l1_miss)),
            "MEM_LOAD_RETIRED.HIT_LFB": float(seg.n_hit_lfb),
            "L2_WRITE.RFO.S_STATE": float(
                seg.n_rfo_s + seg.ev.l2_rfo_hit_s),
        })
        counts.update(_derive_counts(counts, seg.ev))
        meta = dict(program.meta)
        if n_slices > 1:
            meta.update({"slice": s_i, "n_slices": n_slices})
        return SimulationResult(
            counts=counts,
            cycles_per_core=cycles,
            instructions_per_core=instr,
            seconds=seconds,
            nthreads=nt,
            spec=spec,
            name=(program.name if n_slices == 1
                  else f"{program.name}#s{s_i}"),
            meta=meta,
        )

    def _drive(self, cores_a, addrs_a, writes_a,
               state: "_RunState",
               seg: "Optional[_SegmentTallies]" = None) -> "_SegmentTallies":
        """Process one segment of the merged trace against live state.

        Dispatches to the strategy selected at construction (``'auto'``
        probes each segment); all strategies are pinned bit-identical.
        When ``seg`` is given, tallies accumulate into it instead of a
        fresh block — :meth:`run_stream` threads one block through every
        segment so floats continue the monolithic accumulation order.

        With :data:`repro.telemetry.core.TELEMETRY` enabled, each segment
        records a ``sim.drive`` span (path taken, accesses, accesses/s)
        and the path/compression-gate counters; disabled (the default) the
        only cost is the single ``enabled`` attribute check below.
        """
        tel = TELEMETRY
        n = int(len(cores_a))
        if not tel.enabled:
            seg, path = self._drive_dispatch(cores_a, addrs_a, writes_a,
                                             state, seg)
            self.path_counts[path] = self.path_counts.get(path, 0) + 1
            self.path_accesses[path] = self.path_accesses.get(path, 0) + n
            return seg
        t0 = time.perf_counter()
        with tel.span("sim.drive", accesses=n) as sp:
            seg, path = self._drive_dispatch(
                cores_a, addrs_a, writes_a, state, seg)
        dt = time.perf_counter() - t0
        self.path_counts[path] = self.path_counts.get(path, 0) + 1
        self.path_accesses[path] = self.path_accesses.get(path, 0) + n
        rate = round(n / dt) if dt > 0 else 0
        sp.set(path=path, accesses_per_s=rate)
        tel.count("sim.drive.segments")
        tel.count("sim.drive.accesses", n)
        tel.count(f"sim.drive.path.{path}")
        tel.gauge("sim.drive.accesses_per_s", rate)
        return seg

    def _drive_dispatch(self, cores_a, addrs_a, writes_a,
                        state: "_RunState",
                        seg: "Optional[_SegmentTallies]" = None):
        """Run one segment under ``self.strategy``; returns (seg, path).

        ``path`` is the strategy that actually drove the segment:
        ``'ref'``, ``'runs'``, ``'lines'``, or ``'ref-gated'`` when a
        vectorized strategy fell back to the reference loop.
        """
        strategy = self.strategy
        self._gate_fallback = False
        self._line_fallback = False
        if strategy == "ref":
            return (self._drive_ref(cores_a, addrs_a, writes_a, state, seg),
                    "ref")
        if strategy == "runs":
            seg = self._drive_fast(cores_a, addrs_a, writes_a, state,
                                   seg=seg)
            return seg, ("ref-gated" if self._gate_fallback else "runs")
        if strategy == "lines":
            out = self._drive_lines(cores_a, addrs_a, writes_a, state, seg)
            if out is not None:
                return out, "lines"
            self._line_fallback = True
            self._gate_fallback = True
            return (self._drive_ref(cores_a, addrs_a, writes_a, state, seg),
                    "ref-gated")
        return self._drive_auto(cores_a, addrs_a, writes_a, state, seg)

    def _drive_auto(self, cores_a, addrs_a, writes_a, state: "_RunState",
                    seg: "Optional[_SegmentTallies]" = None):
        """``'auto'``: probe the segment, then pick the cheapest strategy.

        * compressible and low-churn -> run-compression;
        * compressible but line-churning (contended) -> line kernel, with
          run-compression as the fallback;
        * fragmented -> line kernel, with the reference loop as fallback;
        * tiny segments -> run-compression (the line kernel's fixed numpy
          overhead cannot pay for itself below :data:`_LINES_MIN`).

        ``fast_min_compression <= 0`` preserves the historical meaning of
        "force the vectorized path": run-compression runs unconditionally.
        """
        min_ratio = self.fast_min_compression
        n = int(len(cores_a))
        if min_ratio <= 0.0 or n < _LINES_MIN:
            out = self._drive_fast(cores_a, addrs_a, writes_a, state,
                                   gated=min_ratio > 0.0, seg=seg)
            return out, ("ref-gated" if self._gate_fallback else "runs")
        compression, churn, line_ratio = self._probe_gate(cores_a, addrs_a)
        if (compression >= min_ratio and churn < _CHURN_ROUTE
                and line_ratio > _LINE_RUNS_ROUTE):
            out = self._drive_fast(cores_a, addrs_a, writes_a, state,
                                   gated=False, seg=seg)
            return out, "runs"
        out = self._drive_lines(cores_a, addrs_a, writes_a, state, seg)
        if out is not None:
            return out, "lines"
        self._line_fallback = True
        if compression >= min_ratio:
            out = self._drive_fast(cores_a, addrs_a, writes_a, state,
                                   gated=False, seg=seg)
            return out, "runs"
        self._gate_fallback = True
        return (self._drive_ref(cores_a, addrs_a, writes_a, state, seg),
                "ref-gated")

    def _probe_gate(self, cores_a, addrs_a):
        """Stratified gate probe: ``(compression, churn, line_ratio)``.

        Samples up to ``_GATE_PROBE`` accesses split across the segment's
        head, middle and tail.  ``compression`` is the mean run length
        (accesses per same-core same-line run, the run-compression path's
        payoff); ``churn`` is the fraction of line-domain runs whose line
        was last touched by a different core within the sample (the line
        kernel's payoff: every such handoff is a coherence event the
        run-compression path would execute scalar); ``line_ratio`` is
        line-domain runs per stream-domain run (how much sparser the line
        kernel's scalar walk would be).
        """
        cores_a = np.asarray(cores_a)
        addrs_a = np.asarray(addrs_a, dtype=np.int64)
        n = int(cores_a.size)
        if n <= _GATE_PROBE:
            slices = [(0, n)]
        else:
            p = _GATE_PROBE // 3
            mid = (n - p) // 2
            slices = [(0, p), (mid, mid + p), (n - p, n)]
        total = 0
        runs = 0
        churn = 0
        lruns = 0
        for lo, hi in slices:
            cs = cores_a[lo:hi]
            ls = addrs_a[lo:hi] >> 6
            m = int(cs.size)
            if not m:
                continue
            total += m
            runs += 1 + int(np.count_nonzero(
                (cs[1:] != cs[:-1]) | (ls[1:] != ls[:-1])))
            o = np.argsort(ls, kind="stable")
            lss = ls[o]
            css = cs[o]
            lead = (lss[1:] != lss[:-1]) | (css[1:] != css[:-1])
            lruns += 1 + int(np.count_nonzero(lead))
            churn += int(np.count_nonzero(lead & (lss[1:] == lss[:-1])))
        if not runs:
            return float("inf"), 0.0, 1.0
        return total / runs, churn / runs, lruns / runs

    def _drive_lines(self, cores_a, addrs_a, writes_a,
                     state: "_RunState",
                     seg: "Optional[_SegmentTallies]" = None,
                     ) -> "Optional[_SegmentTallies]":
        """Line-partitioned kernel; ``None`` when the segment is ineligible."""
        from repro.coherence.linekernel import drive_lines

        return drive_lines(self, cores_a, addrs_a, writes_a, state, seg)

    def _drive_ref(self, cores_a, addrs_a, writes_a,
                   state: "_RunState",
                   seg: "Optional[_SegmentTallies]" = None,
                   ) -> "_SegmentTallies":
        """Reference path: one Python iteration per access (the spec)."""
        cores_l = (cores_a.tolist() if isinstance(cores_a, np.ndarray)
                   else list(cores_a))
        addrs_l = (addrs_a.tolist() if isinstance(addrs_a, np.ndarray)
                   else list(addrs_a))
        writes_l = (writes_a.tolist() if isinstance(writes_a, np.ndarray)
                    else list(writes_a))
        lat = self.latency
        if seg is None:
            seg = _SegmentTallies(_EventTallies(), len(state.penalty))
        ev = seg.ev

        l1_masks = [c.mask for c in self._l1]
        if self._l1 and self._l1[0].nsets > 1 and l1_masks[0] == 0:
            raise SimulationError("L1 set count must be a power of two")
        l1_sets = [c.sets for c in self._l1]
        l2_objs = self._l2
        tlbs = state.tlbs
        tlb_cap = state.tlb_cap
        last_miss_line = state.last_miss_line
        lfb_line = state.lfb_line
        lfb_window = state.lfb_window
        penalty = seg.penalty
        accesses = seg.accesses
        tlb_walk_eff = lat.tlb_walk * 0.5
        prefetch_on = self.prefetch
        service_miss = self._service_miss
        upgrade_shared = self._upgrade_shared

        n_dtlb = 0
        n_dtlb_st = 0
        n_l1_miss = 0
        n_hit_lfb = 0
        n_rfo_s = 0
        n_writes = 0
        decay_countdown = state.decay_countdown

        for c, addr, w in zip(cores_l, addrs_l, writes_l):
            line = addr >> 6
            page = addr >> 12
            self._cur_addr = addr
            accesses[c] += 1
            if w:
                n_writes += 1
            decay_countdown -= 1
            if not decay_countdown:
                self._contenders.clear()
                decay_countdown = _CONTENTION_EPOCH
            # --- DTLB ---------------------------------------------------
            tlb = tlbs[c]
            if page in tlb:
                tlb.move_to_end(page)
            else:
                n_dtlb += 1
                if w:
                    n_dtlb_st += 1
                if len(tlb) >= tlb_cap:
                    tlb.popitem(last=False)
                tlb[page] = None
                penalty[c] += tlb_walk_eff
            # --- L1 fast path --------------------------------------------
            s1 = l1_sets[c][line & l1_masks[c]]
            st = s1.get(line)
            if st is not None:
                s1.move_to_end(line)
                if w:
                    if st == MODIFIED:
                        continue
                    if st == EXCLUSIVE:
                        s1[line] = MODIFIED
                        l2_objs[c].set_state(line, MODIFIED)
                        continue
                    # Shared: needs an RFO upgrade on the bus.
                    n_rfo_s += 1
                    penalty[c] += upgrade_shared(c, line, ev)
                elif lfb_window[c] and line == lfb_line[c]:
                    n_hit_lfb += 1
                    lfb_window[c] -= 1
                continue
            # --- L1 miss -------------------------------------------------
            n_l1_miss += 1
            penalty[c] += service_miss(c, line, w, ev, last_miss_line,
                                       prefetch_on)
            lfb_line[c] = line
            lfb_window[c] = 1

        state.decay_countdown = decay_countdown
        self._cur_addr = -1
        seg.n_dtlb += n_dtlb
        seg.n_dtlb_st += n_dtlb_st
        seg.n_l1_miss += n_l1_miss
        seg.n_hit_lfb += n_hit_lfb
        seg.n_rfo_s += n_rfo_s
        seg.n_writes += n_writes
        seg.n_reads += len(cores_l) - n_writes
        return seg

    def _drive_fast(self, cores_a, addrs_a, writes_a,
                    state: "_RunState", gated: bool = True,
                    seg: "Optional[_SegmentTallies]" = None,
                    ) -> "_SegmentTallies":
        """Vectorized fast path: run-compress the trace, scalar-drive leaders.

        Line/page extraction and per-core run-length detection happen once in
        numpy; the Python loop then visits one *run* (maximal block of
        adjacent accesses by one core to one cache line) instead of one
        access.  A run's leading access executes exactly the reference
        per-access logic; the tail is guaranteed-hit and is retired in O(1)
        (see module docstring for the equivalence argument).

        ``gated=False`` skips the compression probe — used by ``'auto'``,
        which has already probed the segment.
        """
        lat = self.latency
        nt = len(state.penalty)
        if seg is None:
            seg = _SegmentTallies(_EventTallies(), nt)
        ev = seg.ev
        cores_a = np.asarray(cores_a)
        addrs_a = np.asarray(addrs_a, dtype=np.int64)
        writes_a = np.asarray(writes_a, dtype=bool)
        n = int(cores_a.size)
        if n == 0:
            return seg

        min_ratio = self.fast_min_compression
        if gated and min_ratio > 0.0:
            # Stratified probe (head + middle + tail): segments too
            # fragmented for the pre-screen to pay for itself go to the
            # reference loop (bit-identical by construction), and the probe
            # keeps that fallback nearly free.
            compression, _, _ = self._probe_gate(cores_a, addrs_a)
            if compression < min_ratio:
                self._gate_fallback = True
                return self._drive_ref(cores_a, addrs_a, writes_a, state,
                                       seg)

        lines_a = addrs_a >> 6
        # Run boundaries: a new run whenever the core or the line changes.
        same_core = cores_a[1:] == cores_a[:-1]
        brk = np.empty(n, dtype=bool)
        brk[0] = True
        np.logical_not(same_core, out=brk[1:])
        brk[1:] |= lines_a[1:] != lines_a[:-1]
        starts = np.flatnonzero(brk)
        # A leader whose immediately preceding access is the same core on the
        # same page has that page resident and MRU in its DTLB: the whole
        # TLB block can be skipped.
        tlb_res = np.zeros(n, dtype=bool)
        tlb_res[1:] = same_core & ((addrs_a[1:] >> 12) == (addrs_a[:-1] >> 12))
        # Stores per position, prefix-summed, for O(1) tail store counts.
        wcum = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(writes_a, out=wcum[1:])
        n_writes = int(wcum[-1])
        wv = memoryview(wcum)
        wmv = memoryview(writes_a)
        av = memoryview(addrs_a)

        # Whole-segment counters that never depend on hit/miss outcomes.
        acc = seg.accesses
        for c, cnt in enumerate(np.bincount(cores_a, minlength=nt).tolist()):
            acc[c] += cnt
        seg.n_writes += n_writes
        seg.n_reads += n - n_writes

        r_cores = cores_a[starts].tolist()
        r_addrs = addrs_a[starts].tolist()
        r_writes = writes_a[starts].tolist()
        r_len = np.diff(starts, append=n).tolist()
        r_tlbres = tlb_res[starts].tolist()

        l1_masks = [c.mask for c in self._l1]
        if self._l1 and self._l1[0].nsets > 1 and l1_masks[0] == 0:
            raise SimulationError("L1 set count must be a power of two")
        l1_sets = [c.sets for c in self._l1]
        l2_objs = self._l2
        tlbs = state.tlbs
        tlb_cap = state.tlb_cap
        last_miss_line = state.last_miss_line
        lfb_line = state.lfb_line
        lfb_window = state.lfb_window
        penalty = seg.penalty
        tlb_walk_eff = lat.tlb_walk * 0.5
        prefetch_on = self.prefetch
        service_miss = self._service_miss
        upgrade_shared = self._upgrade_shared
        contenders = self._contenders

        n_dtlb = 0
        n_dtlb_st = 0
        n_l1_miss = 0
        n_hit_lfb = 0
        n_rfo_s = 0
        decay_countdown = state.decay_countdown
        epoch = _CONTENTION_EPOCH
        i = 0  # global index of the current run's leading access

        for c, addr, w, m, tlb_ok in zip(r_cores, r_addrs, r_writes,
                                         r_len, r_tlbres):
            line = addr >> 6
            # ---- leading access: the reference per-access path ----------
            decay_countdown -= 1
            if not decay_countdown:
                contenders.clear()
                decay_countdown = epoch
            if not tlb_ok:
                page = addr >> 12
                tlb = tlbs[c]
                if page in tlb:
                    tlb.move_to_end(page)
                else:
                    n_dtlb += 1
                    if w:
                        n_dtlb_st += 1
                    if len(tlb) >= tlb_cap:
                        tlb.popitem(last=False)
                    tlb[page] = None
                    penalty[c] += tlb_walk_eff
            s1 = l1_sets[c][line & l1_masks[c]]
            st = s1.get(line)
            if st is not None:
                s1.move_to_end(line)
                if w:
                    if st == EXCLUSIVE:
                        s1[line] = MODIFIED
                        l2_objs[c].set_state(line, MODIFIED)
                    elif st != MODIFIED:
                        # Shared: needs an RFO upgrade on the bus.
                        self._cur_addr = addr
                        n_rfo_s += 1
                        penalty[c] += upgrade_shared(c, line, ev)
                elif lfb_window[c] and line == lfb_line[c]:
                    n_hit_lfb += 1
                    lfb_window[c] -= 1
            else:
                n_l1_miss += 1
                self._cur_addr = addr
                penalty[c] += service_miss(c, line, w, ev, last_miss_line,
                                           prefetch_on)
                lfb_line[c] = line
                lfb_window[c] = 1

            if m == 1:
                i += 1
                continue

            # ---- tail: m-1 guaranteed L1 hits on this line --------------
            end = i + m
            pos = i + 1
            i = end
            tw_left = wv[end] - wv[pos]
            if not tw_left:
                # All loads: at most one LFB hit, plus epoch decay.
                if lfb_window[c] and line == lfb_line[c]:
                    n_hit_lfb += 1
                    lfb_window[c] -= 1
                decay_countdown -= m - 1
                if decay_countdown <= 0:
                    contenders.clear()
                    decay_countdown = epoch - ((-decay_countdown) % epoch)
                continue
            while True:
                st = s1.get(line)
                if tw_left and st == SHARED:
                    # Loads keep the line Shared; the first store must take
                    # the bus, so it runs the scalar reference path.
                    j = pos
                    while not wmv[j]:
                        j += 1
                    nreads = j - pos
                    if nreads:
                        if lfb_window[c] and line == lfb_line[c]:
                            n_hit_lfb += 1
                            lfb_window[c] -= 1
                        decay_countdown -= nreads
                        if decay_countdown <= 0:
                            contenders.clear()
                            decay_countdown = epoch - (
                                (-decay_countdown) % epoch)
                    decay_countdown -= 1
                    if not decay_countdown:
                        contenders.clear()
                        decay_countdown = epoch
                    s1.move_to_end(line)
                    self._cur_addr = av[j]
                    n_rfo_s += 1
                    penalty[c] += upgrade_shared(c, line, ev)
                    tw_left -= 1
                    pos = j + 1
                    if pos >= end:
                        break
                    continue
                # Line is Modified/Exclusive or no stores remain: the whole
                # remainder retires without bus traffic.
                cnt = end - pos
                if tw_left and st == EXCLUSIVE:
                    s1[line] = MODIFIED
                    l2_objs[c].set_state(line, MODIFIED)
                if cnt - tw_left and lfb_window[c] and line == lfb_line[c]:
                    n_hit_lfb += 1
                    lfb_window[c] -= 1
                decay_countdown -= cnt
                if decay_countdown <= 0:
                    contenders.clear()
                    decay_countdown = epoch - ((-decay_countdown) % epoch)
                break

        state.decay_countdown = decay_countdown
        self._cur_addr = -1
        seg.n_dtlb += n_dtlb
        seg.n_dtlb_st += n_dtlb_st
        seg.n_l1_miss += n_l1_miss
        seg.n_hit_lfb += n_hit_lfb
        seg.n_rfo_s += n_rfo_s
        return seg

    # ---------------------------------------------------------------- slow paths

    def _snoop(self, c: int, line: int, want_write: bool, ev: "_EventTallies") -> int:
        """Broadcast on the bus; adjust remote holders; return best holder state."""
        best = 0
        best_core = -1
        for o in range(self._nt):
            if o == c:
                continue
            l2o = self._l2[o]
            st = l2o.lookup(line)
            if st is None:
                continue
            if st > best:
                best = st
                best_core = o
            if want_write:
                l2o.remove(line)
                self._l1[o].remove(line)
                if st == MODIFIED:
                    ev.writebacks += 1
            else:
                if st == MODIFIED:
                    ev.writebacks += 1
                if st != SHARED:
                    l2o.set_state(line, SHARED)
                    if line in self._l1[o]:
                        self._l1[o].set_state(line, SHARED)
        if best == MODIFIED:
            ev.snoop_hitm += 1
            ev.hitm_socket_remote += int(
                self.spec.socket_of(best_core) != self.spec.socket_of(c)
            )
            period = self.hitm_sample_period
            if period:
                self._hitm_seen += 1
                if self._hitm_seen >= period:
                    self._hitm_seen = 0
                    self._hitm_samples.append(
                        (c, best_core, self._cur_addr, want_write)
                    )
        elif best == EXCLUSIVE:
            ev.snoop_hite += 1
        elif best == SHARED:
            ev.snoop_hit += 1
        self._last_responder = best_core
        return best

    def _contention(self, c: int, line: int) -> int:
        """Record core c as a contender on the line; return contender count."""
        mask = self._contenders.get(line, 0) | (1 << c)
        self._contenders[line] = mask
        return bin(mask).count("1")

    def _upgrade_shared(self, c: int, line: int, ev: "_EventTallies") -> float:
        """Write hit on a Shared line: RFO upgrade.  Returns stall cycles."""
        lat = self.latency
        self._snoop(c, line, True, ev)
        self._l1[c].set_state(line, MODIFIED)
        self._l2[c].set_state(line, MODIFIED)
        penalty = lat.contended(lat.rfo_upgrade, self._contention(c, line))
        ev.stall_store += penalty
        return lat.effective(penalty, True)

    def _service_miss(
        self,
        c: int,
        line: int,
        w: bool,
        ev: "_EventTallies",
        last_miss_line: List[int],
        prefetch_on: bool,
    ) -> float:
        """L1 miss path: L2 lookup, bus, L3, memory.  Returns stall cycles."""
        lat = self.latency
        l2c = self._l2[c]
        st = l2c.touch(line)
        if st is not None:
            # L2 hit.
            if w:
                if st == SHARED:
                    ev.l2_rfo_hit_s += 1
                    self._snoop(c, line, True, ev)
                    st = MODIFIED
                    l2c.set_state(line, MODIFIED)
                    penalty = lat.contended(lat.rfo_upgrade,
                                            self._contention(c, line))
                    ev.stall_store += penalty
                elif st == EXCLUSIVE:
                    st = MODIFIED
                    l2c.set_state(line, MODIFIED)
                    penalty = lat.l2_hit
                else:
                    penalty = lat.l2_hit
                ev.l2_rqsts_rfo_hit += 1
            else:
                ev.l2_ld_hit += 1
                penalty = lat.l2_hit
            self._fill_l1(c, line, st)
            if not w:
                ev.stall_load += penalty
            return lat.effective(penalty, w)

        # L2 miss: demand request leaves the core.
        ev.l2_demand_i += 1
        # The next-line streamer only helps on lines no other core holds:
        # a prefetch that would hit remote data must take the coherent
        # demand path (installing E blindly would break MESI's single-owner
        # invariant and silently erase the false-sharing signature).
        prefetched = (
            prefetch_on
            and not w
            and line == last_miss_line[c] + 1
            and not self._any_remote_holder(c, line)
        )
        last_miss_line[c] = line
        if prefetched:
            # The streamer already pulled this line in: charge an L2 hit,
            # no offcore demand traffic, no snoop.
            ev.prefetch_hits += 1
            ev.l2_fill += 1
            ev.l2_lines_in_e += 1
            self._install(c, line, EXCLUSIVE, ev)
            ev.stall_load += lat.l2_hit
            return lat.effective(lat.l2_hit, False)

        if w:
            ev.l2_rqsts_rfo_miss += 1
            ev.offcore_rfo += 1
        else:
            ev.l2_ld_miss += 1
            ev.offcore_rd += 1

        best = self._snoop(c, line, w, ev)
        if best == MODIFIED:
            same = (
                self.spec.socket_of(self._last_responder)
                == self.spec.socket_of(c)
            )
            penalty = lat.contended(lat.hitm(same),
                                    self._contention(c, line))
            # Dirty data also lands in L3 on the way through the uncore.
            self._l3.insert(line, SHARED)
        elif best:
            penalty = lat.snoop_clean
        else:
            if self._l3.touch(line) is not None:
                ev.l3_hit += 1
                penalty = lat.l3_hit
            else:
                ev.l3_miss += 1
                penalty = lat.memory
                self._l3.insert(line, SHARED)

        new_state = MODIFIED if w else (SHARED if best else EXCLUSIVE)
        ev.l2_fill += 1
        if new_state == SHARED:
            ev.l2_lines_in_s += 1
        elif new_state == EXCLUSIVE:
            ev.l2_lines_in_e += 1
        self._install(c, line, new_state, ev)
        if w:
            ev.stall_store += penalty
        else:
            ev.stall_load += penalty
        return lat.effective(penalty, w)

    def _any_remote_holder(self, c: int, line: int) -> bool:
        """True when any other core caches the line (no state changes)."""
        for o in range(self._nt):
            if o != c and self._l2[o].lookup(line) is not None:
                return True
        return False

    def _install(self, c: int, line: int, state: int, ev: "_EventTallies") -> None:
        """Fill both private levels, handling L2 eviction (back-invalidate)."""
        evicted = self._l2[c].insert(line, state)
        if evicted is not None:
            eline, est = evicted
            self._l1[c].remove(eline)
            if est == MODIFIED:
                ev.l2_lines_out_dirty += 1
                ev.writebacks += 1
                self._l3.insert(eline, SHARED)
            else:
                ev.l2_lines_out_clean += 1
        self._fill_l1(c, line, state)

    def _fill_l1(self, c: int, line: int, state: int) -> None:
        # L1 eviction needs no bookkeeping: the line stays in L2 (inclusive).
        self._l1[c].insert(line, state)


class _RunState:
    """Per-core microarchitectural state that persists across slices."""

    __slots__ = ("tlbs", "tlb_cap", "last_miss_line", "lfb_line",
                 "lfb_window", "decay_countdown", "penalty")

    def __init__(self, nt: int, tlb_entries: int) -> None:
        self.tlbs = [OrderedDict() for _ in range(nt)]
        self.tlb_cap = tlb_entries
        self.last_miss_line = [-(10 ** 9)] * nt
        self.lfb_line = [-1] * nt
        self.lfb_window = [0] * nt
        self.decay_countdown = _CONTENTION_EPOCH
        self.penalty = [0.0] * nt  # total; slices track their own deltas


class _SegmentTallies:
    """Counters accumulated while driving one trace segment."""

    __slots__ = ("ev", "penalty", "accesses", "n_dtlb", "n_dtlb_st",
                 "n_l1_miss", "n_hit_lfb", "n_rfo_s", "n_writes", "n_reads")

    def __init__(self, ev: "_EventTallies", nt: int) -> None:
        self.ev = ev
        self.penalty = [0.0] * nt
        self.accesses = [0] * nt
        self.n_dtlb = 0
        self.n_dtlb_st = 0
        self.n_l1_miss = 0
        self.n_hit_lfb = 0
        self.n_rfo_s = 0
        self.n_writes = 0
        self.n_reads = 0


class _EventTallies:
    """Mutable counter block for one run (kept out of the fast path's way)."""

    __slots__ = (
        "l2_demand_i", "l2_ld_miss", "l2_ld_hit", "l2_rfo_hit_s",
        "l2_rqsts_rfo_miss", "l2_rqsts_rfo_hit", "l2_fill",
        "l2_lines_in_s", "l2_lines_in_e",
        "l2_lines_out_clean", "l2_lines_out_dirty",
        "snoop_hit", "snoop_hite", "snoop_hitm", "hitm_socket_remote",
        "offcore_rd", "offcore_rfo", "l3_hit", "l3_miss",
        "stall_store", "stall_load", "writebacks", "prefetch_hits",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, float]:
        return {
            "L2_DATA_RQSTS.DEMAND.I_STATE": float(self.l2_demand_i),
            "L2_RQSTS.LD_MISS": float(self.l2_ld_miss),
            "L2_RQSTS.LD_HIT": float(self.l2_ld_hit),
            "L2_RQSTS.RFO_MISS": float(self.l2_rqsts_rfo_miss),
            "L2_RQSTS.RFO_HIT": float(self.l2_rqsts_rfo_hit),
            "L2_TRANSACTIONS.FILL": float(self.l2_fill),
            "L2_LINES_IN.S_STATE": float(self.l2_lines_in_s),
            "L2_LINES_IN.E_STATE": float(self.l2_lines_in_e),
            "L2_LINES_IN.ANY": float(self.l2_lines_in_s + self.l2_lines_in_e),
            "L2_LINES_OUT.DEMAND_CLEAN": float(self.l2_lines_out_clean),
            "L2_LINES_OUT.DEMAND_DIRTY": float(self.l2_lines_out_dirty),
            "SNOOP_RESPONSE.HIT": float(self.snoop_hit),
            "SNOOP_RESPONSE.HITE": float(self.snoop_hite),
            "SNOOP_RESPONSE.HITM": float(self.snoop_hitm),
            "OFFCORE_REQUESTS.DEMAND.READ_DATA": float(self.offcore_rd),
            "OFFCORE_REQUESTS.DEMAND.RFO": float(self.offcore_rfo),
            "OFFCORE_REQUESTS.ANY": float(self.offcore_rd + self.offcore_rfo),
            "LONGEST_LAT_CACHE.REFERENCE": float(self.l3_hit + self.l3_miss),
            "LONGEST_LAT_CACHE.MISS": float(self.l3_miss),
            "RESOURCE_STALLS.STORE": float(self.stall_store),
            "RESOURCE_STALLS.LOAD": float(self.stall_load),
            "RESOURCE_STALLS.ANY": float(self.stall_store + self.stall_load),
            "L2_WRITEBACKS": float(self.writebacks),
            "L1D_PREFETCH.REQUESTS": float(self.prefetch_hits),
            "MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM": float(self.snoop_hitm),
            "SNOOP_HITM_REMOTE_SOCKET": float(self.hitm_socket_remote),
        }


def _derive_counts(counts: Dict[str, float], ev: _EventTallies) -> Dict[str, float]:
    """Counters that are deterministic functions of others.

    These pad the candidate catalog with realistic events that carry no
    *extra* signal (branches, uops scale with instructions; walk cycles scale
    with TLB misses) — the event-selection pass must reject them, as the
    paper's did.
    """
    instr = counts["INST_RETIRED.ANY"]
    dtlb = counts["DTLB_MISSES.ANY"]
    return {
        "BR_INST_RETIRED.ALL_BRANCHES": instr * 0.18,
        "UOPS_RETIRED.ANY": instr * 1.32,
        "UOPS_ISSUED.ANY": instr * 1.41,
        "DTLB_MISSES.WALK_CYCLES": dtlb * 24.0,
        "DTLB_LOAD_MISSES.ANY": max(0.0, dtlb - counts["MEM_STORE_RETIRED.DTLB_MISS"]),
        "ITLB_MISSES.ANY": instr * 1e-6,
        "MEM_LOAD_RETIRED.L2_HIT": counts["L2_RQSTS.LD_HIT"],
        "MEM_LOAD_RETIRED.LLC_HIT": float(ev.l3_hit),
        "MEM_LOAD_RETIRED.LLC_MISS": float(ev.l3_miss),
        "SQ_MISC.FILL_DROPPED": counts["OFFCORE_REQUESTS.ANY"] * 0.002,
        "LOAD_DISPATCH.ANY": counts["MEM_INST_RETIRED.LOADS"] * 1.02,
        "FP_COMP_OPS_EXE.SSE_FP": instr * 0.21,
        "MACHINE_CLEARS.CYCLES": instr * 2e-6,
        "BR_MISP_RETIRED.ALL_BRANCHES": instr * 0.003,
        "ARITH.CYCLES_DIV_BUSY": instr * 0.001,
    }
