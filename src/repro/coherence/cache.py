"""Set-associative cache with LRU replacement.

Each set is an OrderedDict mapping cache-line index to MESI state; LRU order
is the dict order.  The machine's hot loop accesses sets directly (see
``MulticoreMachine``) — the methods here are the reference interface used by
the miss path, the baselines, and tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.errors import SimulationError


def _is_pow2(n: int) -> bool:
    return n > 0 and not (n & (n - 1))


class SetAssociativeCache:
    """An ``nsets x assoc`` cache of line indices with per-set LRU."""

    __slots__ = ("nsets", "assoc", "mask", "sets", "name")

    def __init__(self, total_lines: int, assoc: int, name: str = "cache") -> None:
        if assoc <= 0 or total_lines <= 0 or total_lines % assoc:
            raise SimulationError(
                f"{name}: total_lines ({total_lines}) must be a positive "
                f"multiple of assoc ({assoc})"
            )
        nsets = total_lines // assoc
        self.nsets = nsets
        self.assoc = assoc
        # Power-of-two set counts index with a mask (the hot path); others
        # (e.g. a 12 MiB L3: 12288 sets) fall back to modulo, standing in for
        # the hash-based slice selection real uncores use.
        self.mask = nsets - 1 if _is_pow2(nsets) else 0
        self.sets = [OrderedDict() for _ in range(nsets)]
        self.name = name

    def index(self, line: int) -> int:
        """Set index this line maps to."""
        return (line & self.mask) if self.mask else (line % self.nsets)

    # -- reference interface -------------------------------------------------

    def set_for(self, line: int) -> OrderedDict:
        """The OrderedDict backing the set this line maps to."""
        return self.sets[self.index(line)]

    def lookup(self, line: int) -> Optional[int]:
        """State of the line, or None if absent.  Does not update LRU."""
        return self.sets[self.index(line)].get(line)

    def touch(self, line: int) -> Optional[int]:
        """Lookup and mark most-recently-used."""
        s = self.sets[self.index(line)]
        st = s.get(line)
        if st is not None:
            s.move_to_end(line)
        return st

    def set_state(self, line: int, state: int) -> None:
        """Change the state of a resident line."""
        s = self.sets[self.index(line)]
        if line not in s:
            raise SimulationError(f"{self.name}: set_state on absent line {line}")
        s[line] = state

    def insert(self, line: int, state: int) -> Optional[Tuple[int, int]]:
        """Install a line (MRU); return the evicted ``(line, state)`` if any."""
        s = self.sets[self.index(line)]
        if line in s:
            s[line] = state
            s.move_to_end(line)
            return None
        evicted = None
        if len(s) >= self.assoc:
            evicted = s.popitem(last=False)
        s[line] = state
        return evicted

    def remove(self, line: int) -> Optional[int]:
        """Drop a line (invalidation / back-invalidation); return its state."""
        return self.sets[self.index(line)].pop(line, None)

    def __contains__(self, line: int) -> bool:
        return line in self.sets[self.index(line)]

    def __len__(self) -> int:
        return sum(len(s) for s in self.sets)

    def lines(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all resident ``(line, state)`` pairs."""
        for s in self.sets:
            yield from s.items()

    def clear(self) -> None:
        for s in self.sets:
            s.clear()
