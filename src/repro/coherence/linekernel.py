"""Line-partitioned drive kernel: the third drive strategy.

Decomposes a merged-trace segment *by cache line* (stable sort on
``addr >> 6``, original indices kept) and advances each line's MESI state
machine over its own access subsequence.  Within a maximal block of adjacent
same-core same-line accesses (a *run* in the line-sorted domain) no other
core can touch the line, so the line's L2-level state is piecewise constant:
it changes at most at the run's leading access and at the run's first write.
The scalar walk therefore visits one *run* per iteration and emits a sparse
stream of coherence events (L2 misses with their snoop outcome, shared-RFO
upgrades, back-invalidations); everything per-access is resolved afterwards
with vectorized numpy passes.

Why this is exact (see DESIGN.md for the full argument):

* **Line-local state.**  For lines whose L2 sets never evict, a line's
  L2-level MESI evolution depends only on that line's own access
  subsequence — and it is independent of L1 hit/miss outcomes, because a
  read leaves the state unchanged either way and a write on Shared takes
  the same bus upgrade whether it hit L1 or reached L2.  Only *counters*
  split on the L1 outcome, and that split is a pure per-access
  classification over (L1 hit?, L2 state, is-write) resolved vectorized at
  the end.
* **Eviction-aware per-set replay.**  L2 sets that *would* overflow no
  longer disqualify the whole segment.  Lines touched by exactly one core,
  held nowhere else, and mapping to an overfull set are *replay-owned*:
  their L2 behaviour (hit/miss, LRU position, eviction, writeback) is
  reproduced by a per-set dict replay joined with the L1 replay, with the
  whole block of accesses between leaders batched — in particular the
  S->M-free upgrade batching: a replay-owned line's state after a block is
  ``M`` iff the block wrote, computed once per block instead of per access.
  Every *other* touched line in an overfull set is installed as a sentinel;
  if the replay would ever evict a sentinel (i.e. the walk's
  no-eviction model would be violated for a shared/multi-core line) the
  kernel bails out before mutating any state and the caller falls back.
  Untouched residents of overfull sets carry their real state and are
  freely evictable — the reference would evict them identically.
* **L1 victim tracking.**  L1 evictions are always allowed.  Each
  (core, L1 set) is an isolated LRU domain whose events are that core's
  accesses mapping to the set plus the back-invalidations emitted by the
  line walk (plus L1 back-invalidations of L2 replay victims); replaying
  those few events through a dict — with maximal same-line blocks
  collapsed, which is LRU-exact — reproduces hits, misses and the final
  LRU order bit for bit.
* **Cross-line counters.**  DTLB walks and the line-fill-buffer window
  depend on per-core access order, not on lines: the DTLB replays page-run
  leaders through the real LRU dicts, and the LFB hit-window is resolved
  with a vectorized epoch argument over each core's unsorted stream.
* **Float order.**  Stall penalties are IEEE-summed in exactly the
  reference order: every penalty-carrying event is tagged with its global
  access index and a single ordered Python walk performs the same
  ``penalty[c] += ...`` sequence the reference loop would (adding 0.0 for
  the skipped no-penalty accesses would be an identity, so they are simply
  absent).  When the caller threads a shared tally block through several
  segments (:meth:`MulticoreMachine.run_stream`), the stall accumulators
  are seeded from it so the addition sequence continues across segments.

``drive_lines`` returns ``None`` when the segment is ineligible (the L3
would evict, or an overfull L2 set would have to evict a line the scalar
walk owns); the caller falls back to another strategy.
``tests/test_coherence_linekernel.py`` pins bit-identical results against
the reference loop over the full 19-program suite grid.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.coherence.protocol import EXCLUSIVE, MODIFIED, SHARED

__all__ = ["drive_lines"]

#: Replay-dict marker for walk-owned lines living in an overfull L2 set:
#: their MESI state is tracked by the scalar walk, the dict only tracks
#: their LRU position — and evicting one invalidates the walk's model, so
#: the kernel bails instead.
_SENT = -1


def _fits_without_eviction(cache, touched: np.ndarray) -> bool:
    """True when ``touched`` lines can all live in ``cache`` alongside its
    current residents without any set exceeding its associativity."""
    nsets = cache.nsets
    si = (touched & cache.mask) if cache.mask else (touched % nsets)
    occ = np.bincount(si, minlength=nsets)
    assoc = cache.assoc
    if occ.size and int(occ.max()) > assoc:
        return False
    tset = set(touched.tolist())
    for idx, s in enumerate(cache.sets):
        if s:
            extra = sum(1 for ln in s if ln not in tset)
            if extra and int(occ[idx]) + extra > assoc:
                return False
    return True


def _overfull_sets(cache, touched: np.ndarray) -> Optional[np.ndarray]:
    """Boolean mask of sets that would evict, or ``None`` when none would.

    A set is overfull when its touched lines plus its untouched residents
    exceed the associativity — the same per-set budget
    :func:`_fits_without_eviction` checks, reported per set instead of as a
    single verdict so the kernel can switch just those sets to dict replay.
    """
    nsets = cache.nsets
    si = (touched & cache.mask) if cache.mask else (touched % nsets)
    occ = np.bincount(si, minlength=nsets)
    assoc = cache.assoc
    over = occ > assoc
    tset = set(touched.tolist())
    for idx, s in enumerate(cache.sets):
        if s and not over[idx]:
            extra = sum(1 for ln in s if ln not in tset)
            if extra and int(occ[idx]) + extra > assoc:
                over[idx] = True
    return over if over.any() else None


def drive_lines(machine, cores_a, addrs_a, writes_a, state, seg=None):
    """Drive one segment with the line-partitioned kernel.

    Returns a ``_SegmentTallies`` bit-identical to ``_drive_ref``'s, or
    ``None`` when the segment is ineligible for this strategy.  When
    ``seg`` is given, tallies accumulate into it; nothing is written to it
    (or to any machine/run state) before the last bail-out point.
    """
    from repro.coherence.machine import (
        _CONTENTION_EPOCH,
        _EventTallies,
        _SegmentTallies,
    )

    spec = machine.spec
    lat = machine.latency
    nt = machine._nt
    cores_a = np.asarray(cores_a)
    addrs_a = np.asarray(addrs_a, dtype=np.int64)
    writes_a = np.asarray(writes_a, dtype=bool)
    n = int(cores_a.size)
    if seg is None:
        seg = _SegmentTallies(_EventTallies(), nt)
    ev = seg.ev
    if n == 0:
        return seg
    lines_g = addrs_a >> 6

    # ---- partition by line: runs in the (line, original order) domain ----
    order = np.argsort(lines_g, kind="stable")
    sl = lines_g[order]
    sc = cores_a[order]
    sw = writes_a[order]
    brk = np.empty(n, dtype=bool)
    brk[0] = True
    brk[1:] = (sl[1:] != sl[:-1]) | (sc[1:] != sc[:-1])
    rstart = np.flatnonzero(brk)
    nruns = int(rstart.size)
    rlen = np.diff(rstart, append=n)
    r_line_a = sl[rstart]
    r_core_a = sc[rstart]

    # ---- eligibility + ownership classification --------------------------
    # Touched lines come straight from the run leaders (already line-major),
    # so no full-array unique scans are needed.
    nl = np.empty(nruns, dtype=bool)
    nl[0] = True
    nl[1:] = r_line_a[1:] != r_line_a[:-1]
    uniq_all = r_line_a[nl]
    l2_objs = machine._l2
    pord = np.lexsort((r_line_a, r_core_a))
    pl = r_line_a[pord]
    pc = r_core_a[pord]
    keep = np.empty(nruns, dtype=bool)
    keep[0] = True
    keep[1:] = (pl[1:] != pl[:-1]) | (pc[1:] != pc[:-1])
    pl = pl[keep]
    pc = pc[keep]
    # Overfull L2 sets per core: those switch to dict replay instead of
    # disqualifying the segment.  Their current residents join the L3
    # budget below because dirty victims are written back into L3.
    evict_flags: List[Optional[np.ndarray]] = [None] * nt
    evict_residents: List[np.ndarray] = []
    for c in range(nt):
        touched_c = pl[pc == c]
        if not touched_c.size:
            continue
        over = _overfull_sets(l2_objs[c], touched_c)
        if over is not None:
            evict_flags[c] = over
            for sidx in np.flatnonzero(over).tolist():
                s = l2_objs[c].sets[sidx]
                if s:
                    evict_residents.append(
                        np.fromiter(s, dtype=np.int64, count=len(s)))
    have_evict = any(f is not None for f in evict_flags)
    l3_budget = uniq_all
    if evict_residents:
        l3_budget = np.unique(np.concatenate([uniq_all] + evict_residents))
    if not _fits_without_eviction(machine._l3, l3_budget):
        return None

    # Replay-owned lines: touched by exactly one core, mapping to one of
    # that core's overfull sets, held by no other core, and not Shared at
    # the owner (a Shared line's first write takes the bus — walk it).
    touched_set: set = set()
    replay_set: set = set()
    replay_all = np.empty(0, dtype=np.int64)
    if have_evict:
        touched_set = set(uniq_all.tolist())
        line_pos = np.searchsorted(uniq_all, pl)
        tcount = np.bincount(line_pos, minlength=uniq_all.size)
        owner = np.empty(uniq_all.size, dtype=np.int64)
        owner[line_pos] = pc
        single = tcount == 1
        resident_map: List[Dict[int, int]] = [{} for _ in range(nt)]
        for o in range(nt):
            m = resident_map[o]
            for s in l2_objs[o].sets:
                m.update(s)
        rep_parts: List[np.ndarray] = []
        for c in range(nt):
            flags2 = evict_flags[c]
            if flags2 is None:
                continue
            l2c = l2_objs[c]
            si_all = ((uniq_all & l2c.mask) if l2c.mask
                      else (uniq_all % l2c.nsets))
            cand = single & (owner == c) & flags2[si_all]
            if not cand.any():
                continue
            cl = uniq_all[cand]
            blocked = set()
            for o in range(nt):
                if o == c:
                    blocked.update(ln for ln, s0 in resident_map[c].items()
                                   if s0 == SHARED)
                else:
                    blocked.update(resident_map[o])
            if blocked:
                barr = np.fromiter(blocked, dtype=np.int64,
                                   count=len(blocked))
                cl = cl[~np.isin(cl, barr)]
            if cl.size:
                rep_parts.append(cl)
        if rep_parts:
            replay_all = (rep_parts[0] if len(rep_parts) == 1
                          else np.unique(np.concatenate(rep_parts)))
            replay_set = set(replay_all.tolist())

    core_idx: List[np.ndarray] = [
        np.flatnonzero(cores_a == c) for c in range(nt)]
    pos_idx = np.arange(n, dtype=np.int64)
    # First write of each run as a sorted-domain position (2n = no write).
    fw = np.minimum.reduceat(np.where(sw, pos_idx, 2 * n), rstart)
    fwg = np.where(fw < n, order[np.minimum(fw, n - 1)], -1)

    r_line = r_line_a.tolist()
    r_core = r_core_a.tolist()
    r_w = sw[rstart].tolist()
    r_g = order[rstart].tolist()
    r_fw = fw.tolist()
    r_fwg = fwg.tolist()
    rstart_l = rstart.tolist()
    if replay_all.size:
        replay_acc = np.isin(lines_g, replay_all)
        walk_runs = np.flatnonzero(
            ~np.isin(r_line_a, replay_all)).tolist()
    else:
        replay_acc = None
        walk_runs = range(nruns)

    # ---- phase A: scalar walk over runs, one line at a time --------------
    #
    # Replay-owned lines are skipped entirely: single-core, holder-less
    # lines generate no coherence events, and their L2 behaviour (including
    # evictions) is reproduced by the joint replay below.
    #
    # Contender-epoch windows: the reference loop clears the contender map
    # whenever its countdown hits zero, i.e. at global indices
    # d0-1, d0-1+epoch, ...  A per-line (window id, mask) pair replays the
    # same clears without global coupling.
    d0 = state.decay_countdown
    first_clear = d0 - 1
    epoch = _CONTENTION_EPOCH
    sockets = [spec.socket_of(c) for c in range(nt)]
    contenders0 = machine._contenders

    run_prev = [0] * nruns  # leader's L2 state *before* the leader
    run_x = [0] * nruns     # L2 state after the leader

    up_g: List[int] = []    # shared-RFO upgrades (L1- or L2-hit on S)
    up_c: List[int] = []
    up_best: List[int] = []
    up_k: List[int] = []
    ms_g: List[int] = []    # L2 misses (demand requests leaving the core)
    ms_c: List[int] = []
    ms_w: List[bool] = []
    ms_best: List[int] = []
    ms_resp: List[int] = []
    ms_k: List[int] = []
    ms_same: List[bool] = []
    ms_line: List[int] = []
    rm_g: List[int] = []    # back-invalidations (L1+L2 removal at a core)
    rm_c: List[int] = []
    rm_line: List[int] = []
    writebacks = 0

    line_final: Dict[int, List[int]] = {}
    init_sts: Dict[int, List[int]] = {}
    cmask_final: Dict[int, Tuple[int, int]] = {}

    cur_line = -1
    st: List[int] = []
    hmask = 0
    cmask = 0
    cwid = 0

    for i in walk_runs:
        line = r_line[i]
        c = r_core[i]
        if line != cur_line:
            if cur_line >= 0:
                line_final[cur_line] = st
                if cmask:
                    cmask_final[cur_line] = (cwid, cmask)
            cur_line = line
            st = [0] * nt
            hmask = 0
            for o in range(nt):
                s0 = l2_objs[o].lookup(line)
                if s0 is not None:
                    st[o] = s0
                    hmask |= 1 << o
            init_sts[line] = st.copy()
            cmask = contenders0.get(line, 0)
            cwid = 0
        g = r_g[i]
        wl = r_w[i]
        mine = st[c]
        run_prev[i] = mine
        cbit = 1 << c
        if mine:
            # Leader finds the line in its own L2 (L1 hit or L2 hit).
            if wl and mine == SHARED:
                others = hmask & ~cbit
                best = SHARED if others else 0
                if others:
                    m = others
                    while m:
                        low = m & -m
                        o = low.bit_length() - 1
                        st[o] = 0
                        rm_g.append(g)
                        rm_c.append(o)
                        rm_line.append(line)
                        m ^= low
                    hmask = cbit
                wd = 0 if g < first_clear else 1 + (g - first_clear) // epoch
                if wd != cwid:
                    cmask = 0
                    cwid = wd
                cmask |= cbit
                up_g.append(g)
                up_c.append(c)
                up_best.append(best)
                up_k.append(cmask.bit_count())
                st[c] = MODIFIED
            elif wl:
                st[c] = MODIFIED  # E/M -> M, silent
            x = st[c] if wl else mine
        else:
            # Leader misses L2: snoop the bus.
            best = 0
            resp = -1
            m = hmask
            while m:
                low = m & -m
                o = low.bit_length() - 1
                if st[o] > best:
                    best = st[o]
                    resp = o
                m ^= low
            if wl:
                m = hmask
                while m:
                    low = m & -m
                    o = low.bit_length() - 1
                    if st[o] == MODIFIED:
                        writebacks += 1
                    st[o] = 0
                    rm_g.append(g)
                    rm_c.append(o)
                    rm_line.append(line)
                    m ^= low
                hmask = 0
            else:
                if best == MODIFIED:
                    writebacks += 1
                m = hmask
                while m:
                    low = m & -m
                    o = low.bit_length() - 1
                    if st[o] != SHARED:
                        st[o] = SHARED
                    m ^= low
            k = 0
            same = False
            if best == MODIFIED:
                wd = 0 if g < first_clear else 1 + (g - first_clear) // epoch
                if wd != cwid:
                    cmask = 0
                    cwid = wd
                cmask |= cbit
                k = cmask.bit_count()
                same = sockets[resp] == sockets[c]
            newst = MODIFIED if wl else (SHARED if best else EXCLUSIVE)
            st[c] = newst
            hmask |= cbit
            ms_g.append(g)
            ms_c.append(c)
            ms_w.append(wl)
            ms_best.append(best)
            ms_resp.append(resp)
            ms_k.append(k)
            ms_same.append(same)
            ms_line.append(line)
            x = newst
        run_x[i] = x
        # First write in the tail of a read-led run (or an S-led run).
        fwp = r_fw[i]
        if x != MODIFIED and fwp < 2 * n and fwp > rstart_l[i]:
            gf = r_fwg[i]
            if x == SHARED:
                others = hmask & ~cbit
                best = SHARED if others else 0
                if others:
                    m = others
                    while m:
                        low = m & -m
                        o = low.bit_length() - 1
                        st[o] = 0
                        rm_g.append(gf)
                        rm_c.append(o)
                        rm_line.append(line)
                        m ^= low
                    hmask = cbit
                wd = 0 if gf < first_clear else 1 + (gf - first_clear) // epoch
                if wd != cwid:
                    cmask = 0
                    cwid = wd
                cmask |= cbit
                up_g.append(gf)
                up_c.append(c)
                up_best.append(best)
                up_k.append(cmask.bit_count())
            st[c] = MODIFIED
    if cur_line >= 0:
        line_final[cur_line] = st
        if cmask:
            cmask_final[cur_line] = (cwid, cmask)

    # ---- joint L1/L2 replay: per-(core, set) LRU over collapsed blocks ---
    #
    # Pure phase: everything below operates on copies; the only exit that
    # leaves this function before the mutation phases is the sentinel bail.
    l1m_g = np.zeros(n, dtype=bool)
    rm_g_a = np.array(rm_g, dtype=np.int64)
    rm_c_a = np.array(rm_c, dtype=np.int64)
    rm_line_a = np.array(rm_line, dtype=np.int64)
    l1_objs = machine._l1
    last_l2g: Dict[Tuple[int, int], int] = {}
    final_l1: List[List[dict]] = [[] for _ in range(nt)]
    walked_l1 = [False] * nt
    rp_l2hit: List[int] = []    # g of L1-miss L2-hits on replay-owned lines
    rp_ms_g: List[int] = []     # replay-owned L2 misses (holder-less)
    rp_ms_c: List[int] = []
    rp_ms_w: List[bool] = []
    rp_ms_line: List[int] = []
    wb_g: List[int] = []        # dirty L2 victims -> L3 inserts
    wb_line: List[int] = []
    n_out_clean = 0
    n_out_dirty = 0
    d2_final: Dict[Tuple[int, int], dict] = {}
    for c in range(nt):
        idx_c = core_idx[c]
        rsel = np.flatnonzero(rm_c_a == c)
        if not idx_c.size and not rsel.size:
            continue
        walked_l1[c] = True
        lines_c = lines_g[idx_c]
        g_all = np.concatenate([idx_c, rm_g_a[rsel]])
        ln_all = np.concatenate([lines_c, rm_line_a[rsel]])
        kind = np.concatenate([np.zeros(idx_c.size, dtype=np.int8),
                               np.ones(rsel.size, dtype=np.int8)])
        o2 = np.argsort(g_all)
        g_all = g_all[o2]
        ln_all = ln_all[o2]
        kind = kind[o2]
        # Block leaders: collapse maximal same-line access blocks (the tail
        # of a block only re-marks an already-MRU line — LRU-exact).
        lead = np.empty(g_all.size, dtype=bool)
        lead[0] = True
        lead[1:] = ((kind[1:] == 1) | (kind[:-1] == 1)
                    | (ln_all[1:] != ln_all[:-1]))
        sel = np.flatnonzero(lead)
        ge = g_all[sel].tolist()
        le = ln_all[sel].tolist()
        ke = kind[sel].tolist()
        l1c = l1_objs[c]
        mask = l1c.mask
        nsets = l1c.nsets
        assoc = l1c.assoc
        sets_c = [dict.fromkeys(s) for s in l1c.sets]
        misses: List[int] = []
        flags2 = evict_flags[c]
        if flags2 is None:
            for gg, ln, kd in zip(ge, le, ke):
                d = sets_c[(ln & mask) if mask else (ln % nsets)]
                if kd:
                    d.pop(ln, None)
                elif ln in d:
                    del d[ln]
                    d[ln] = None
                else:
                    misses.append(gg)
                    last_l2g[(c, ln)] = gg
                    if len(d) >= assoc:
                        del d[next(iter(d))]
                    d[ln] = None
        else:
            # Evicting core: L2 sets flagged overfull replay through dicts
            # seeded from the live cache; a block that wrote leaves a
            # replay-owned line Modified (the S->M upgrade batching — the
            # E->M transition is silent, so one flag per block suffices).
            w_all = np.concatenate([
                writes_a[idx_c], np.zeros(rsel.size, dtype=bool)])[o2]
            wcum = np.zeros(g_all.size + 1, dtype=np.int64)
            np.cumsum(w_all, out=wcum[1:])
            ends = np.append(sel[1:], g_all.size)
            bw = ((wcum[ends] - wcum[sel]) > 0).tolist()
            we = w_all[sel].tolist()
            l2c = l2_objs[c]
            mask2 = l2c.mask
            nsets2 = l2c.nsets
            assoc2 = l2c.assoc
            d2_map: Dict[int, dict] = {}
            for sidx in np.flatnonzero(flags2).tolist():
                # Residents: walk-owned touched lines become sentinels
                # (their state lives in the walk); replay-owned lines keep
                # their real state (E/M by construction — Shared-at-owner
                # lines are never replay-owned) so hits, upgrades and
                # dirty evictions replay exactly; untouched residents keep
                # their state and are freely evictable.
                d2_map[sidx] = {
                    ln: (_SENT if (ln in touched_set
                                   and ln not in replay_set) else s0)
                    for ln, s0 in l2c.sets[sidx].items()}
            for j, (gg, ln, kd) in enumerate(zip(ge, le, ke)):
                s1i = (ln & mask) if mask else (ln % nsets)
                s2i = (ln & mask2) if mask2 else (ln % nsets2)
                d = sets_c[s1i]
                if kd:
                    d.pop(ln, None)
                    if flags2[s2i]:
                        d2_map[s2i].pop(ln, None)
                    continue
                if ln in d:
                    del d[ln]
                    d[ln] = None
                    if flags2[s2i] and bw[j]:
                        # E->M on an L1 hit updates L2 state in place
                        # (set_state does not touch LRU order).
                        d2 = d2_map[s2i]
                        v = d2.get(ln)
                        if v is not None and v != _SENT:
                            d2[ln] = MODIFIED
                    continue
                misses.append(gg)
                if flags2[s2i]:
                    d2 = d2_map[s2i]
                    v = d2.get(ln)
                    if v is not None:
                        # L2 hit: MRU; replay-owned lines also classify
                        # the miss for the counter passes below.
                        del d2[ln]
                        if v == _SENT:
                            d2[ln] = _SENT
                        else:
                            d2[ln] = MODIFIED if bw[j] else v
                            rp_l2hit.append(gg)
                    else:
                        # L2 miss: install (possibly evicting the LRU way).
                        if len(d2) >= assoc2:
                            vic = next(iter(d2))
                            vs = d2.pop(vic)
                            if vs == _SENT:
                                return None  # walk-owned victim: bail
                            if vs == MODIFIED:
                                n_out_dirty += 1
                                wb_g.append(gg)
                                wb_line.append(vic)
                            else:
                                n_out_clean += 1
                            sets_c[(vic & mask) if mask
                                   else (vic % nsets)].pop(vic, None)
                        if ln in replay_set:
                            d2[ln] = MODIFIED if bw[j] else EXCLUSIVE
                            rp_ms_g.append(gg)
                            rp_ms_c.append(c)
                            rp_ms_w.append(we[j])
                            rp_ms_line.append(ln)
                        else:
                            # Walk-owned: the walk already emitted its
                            # demand event; the dict only tracks LRU.
                            d2[ln] = _SENT
                else:
                    last_l2g[(c, ln)] = gg
                if len(d) >= assoc:
                    del d[next(iter(d))]
                d[ln] = None
            for sidx, d2 in d2_map.items():
                d2_final[(c, sidx)] = d2
        if misses:
            l1m_g[np.array(misses, dtype=np.int64)] = True
        final_l1[c] = sets_c
    if rp_ms_g:
        nrp = len(rp_ms_g)
        ms_g.extend(rp_ms_g)
        ms_c.extend(rp_ms_c)
        ms_w.extend(rp_ms_w)
        ms_best.extend([0] * nrp)
        ms_resp.extend([-1] * nrp)
        ms_k.extend([0] * nrp)
        ms_same.extend([False] * nrp)
        ms_line.extend(rp_ms_line)

    # ---- phase B: prefetch flags for L2 misses (per core, in g order) ----
    nms = len(ms_g)
    ms_g_a = np.array(ms_g, dtype=np.int64)
    ms_c_a = np.array(ms_c, dtype=np.int64)
    ms_w_a = np.array(ms_w, dtype=bool)
    ms_best_a = np.array(ms_best, dtype=np.int64)
    ms_line_a = np.array(ms_line, dtype=np.int64)
    ms_pref = np.zeros(nms, dtype=bool)
    if nms:
        mo = np.argsort(ms_g_a)
        ms_g_a = ms_g_a[mo]
        ms_c_a = ms_c_a[mo]
        ms_w_a = ms_w_a[mo]
        ms_best_a = ms_best_a[mo]
        ms_line_a = ms_line_a[mo]
        ms_resp_a = np.array(ms_resp, dtype=np.int64)[mo]
        ms_k_a = np.array(ms_k, dtype=np.int64)[mo]
        ms_same_a = np.array(ms_same, dtype=bool)[mo]
        prefetch_on = machine.prefetch
        for c in range(nt):
            sel = np.flatnonzero(ms_c_a == c)
            if not sel.size:
                continue
            ml = ms_line_a[sel]
            prev = np.empty(sel.size, dtype=np.int64)
            prev[0] = state.last_miss_line[c]
            prev[1:] = ml[:-1]
            if prefetch_on:
                ms_pref[sel] = (~ms_w_a[sel] & (ml == prev + 1)
                                & (ms_best_a[sel] == 0))
            state.last_miss_line[c] = int(ml[-1])
    else:
        ms_resp_a = np.zeros(0, dtype=np.int64)
        ms_k_a = np.zeros(0, dtype=np.int64)
        ms_same_a = np.zeros(0, dtype=bool)

    # ---- phase C: L3 resolution + per-miss penalties (g order) -----------
    l3 = machine._l3
    l3_present: Dict[int, bool] = {}
    l3_last: Dict[int, int] = {}
    l3_ord = 0
    l3_hits = 0
    l3_misses = 0
    ms_raw = np.zeros(nms, dtype=np.float64)
    ms_weff = np.zeros(nms, dtype=bool)
    nwb = len(wb_g)
    if nms:
        # Contended HITM penalties, vectorized with the reference formulas.
        hitm_mask = ms_best_a == MODIFIED
        base = np.where(ms_same_a, lat.hitm_local, lat.hitm_remote)
        contended = np.where(
            ms_k_a <= 1, base,
            base * (1.0 + lat.contention_factor * (ms_k_a - 1)))
        ms_raw[hitm_mask] = contended[hitm_mask]
        ms_raw[(ms_best_a > 0) & ~hitm_mask] = lat.snoop_clean
        ms_raw[ms_pref] = lat.l2_hit
        ms_weff = ms_w_a.copy()
        ms_weff[ms_pref] = False
        # L3 queries: only holder-less, non-prefetched misses reach L3;
        # HITM services and dirty replay victims insert on the way through
        # the uncore.  Victim writebacks happen *after* the same access's
        # demand query (the reference installs the line, then evicts), so
        # the merge key is (g, query-before-writeback).
        ml_l = ms_line_a.tolist()
        mg_l = ms_g_a.tolist()
        mb_l = ms_best_a.tolist()
        mp_l = ms_pref.tolist()
        if nwb:
            all_g = np.concatenate([ms_g_a,
                                    np.array(wb_g, dtype=np.int64)])
            all_seq = np.concatenate([np.zeros(nms, dtype=np.int8),
                                      np.ones(nwb, dtype=np.int8)])
            eo = np.lexsort((all_seq, all_g)).tolist()
        else:
            eo = range(nms)
        l3q_raw: List[Tuple[int, float]] = []  # (flat ms index, raw penalty)
        for f in eo:
            if f >= nms:
                ln = wb_line[f - nms]
                l3_present[ln] = True
                l3_last[ln] = l3_ord
                l3_ord += 1
                continue
            j = f
            bj = mb_l[j]
            ln = ml_l[j]
            if bj == MODIFIED:
                l3_present[ln] = True
                l3_last[ln] = l3_ord
                l3_ord += 1
            elif bj == 0 and not mp_l[j]:
                present = l3_present.get(ln)
                if present is None:
                    present = ln in l3
                if present:
                    l3_hits += 1
                    l3q_raw.append((j, lat.l3_hit))
                else:
                    l3_misses += 1
                    l3q_raw.append((j, lat.memory))
                    l3_present[ln] = True
                l3_last[ln] = l3_ord
                l3_ord += 1
        for j, raw in l3q_raw:
            ms_raw[j] = raw

    # ---- DTLB: page-run leaders through the real LRU dicts ---------------
    n_dtlb = 0
    n_dtlb_st = 0
    tlb_pen_g: List[int] = []
    tlb_pen_c: List[int] = []
    tlb_cap = state.tlb_cap
    for c in range(nt):
        idx_c = core_idx[c]
        if not idx_c.size:
            continue
        pages_c = addrs_a[idx_c] >> 12
        pg = np.empty(pages_c.size, dtype=bool)
        pg[0] = True
        pg[1:] = pages_c[1:] != pages_c[:-1]
        sel = np.flatnonzero(pg)
        tg = idx_c[sel].tolist()
        tp = pages_c[sel].tolist()
        tw = writes_a[idx_c[sel]].tolist()
        tlb = state.tlbs[c]
        for gg, page, w in zip(tg, tp, tw):
            if page in tlb:
                tlb.move_to_end(page)
            else:
                n_dtlb += 1
                if w:
                    n_dtlb_st += 1
                if len(tlb) >= tlb_cap:
                    tlb.popitem(last=False)
                tlb[page] = None
                tlb_pen_g.append(gg)
                tlb_pen_c.append(c)

    # ---- per-access L2-state column + counter classification -------------
    st2s = np.repeat(np.array(run_x, dtype=np.int8), rlen)
    st2s[rstart] = np.array(run_prev, dtype=np.int8)
    fw_rep = np.repeat(np.minimum(fw, n), rlen)
    np.place(st2s, pos_idx > fw_rep, MODIFIED)
    st2_g = np.empty(n, dtype=np.int8)
    st2_g[order] = st2s

    if replay_acc is not None:
        # st2 is undefined for replay-owned accesses (the walk skipped
        # them); their L2 residency comes from the replay instead, and
        # their state is never Shared (holder-less lines install E/M).
        l2res = st2_g > 0
        l2res &= ~replay_acc
        if rp_l2hit:
            l2res[np.array(rp_l2hit, dtype=np.int64)] = True
        s_state = st2_g == SHARED
        s_state &= ~replay_acc
    else:
        l2res = st2_g > 0
        s_state = st2_g == SHARED
    ld_l2hit = l1m_g & l2res & ~writes_a
    wr_l2hit = l1m_g & l2res & writes_a
    wr_l2hit_em = wr_l2hit & ~s_state
    ev.l2_ld_hit += int(np.count_nonzero(ld_l2hit))
    ev.l2_rqsts_rfo_hit += int(np.count_nonzero(wr_l2hit))
    ev.l2_rfo_hit_s += int(np.count_nonzero(wr_l2hit & s_state))
    seg.n_rfo_s += int(np.count_nonzero(~l1m_g & writes_a & s_state))

    up_best_a = np.array(up_best, dtype=np.int64)
    ev.snoop_hit += (int(np.count_nonzero(ms_best_a == SHARED))
                     + int(np.count_nonzero(up_best_a == SHARED)))
    ev.snoop_hite += int(np.count_nonzero(ms_best_a == EXCLUSIVE))
    hitm_n = int(np.count_nonzero(ms_best_a == MODIFIED))
    ev.snoop_hitm += hitm_n
    ev.hitm_socket_remote += int(np.count_nonzero(
        (ms_best_a == MODIFIED) & ~ms_same_a))
    np_pref = int(np.count_nonzero(ms_pref))
    ev.prefetch_hits += np_pref
    ev.l2_demand_i += nms
    ev.l2_fill += nms
    dem = ~ms_pref
    n_rfo_miss = int(np.count_nonzero(dem & ms_w_a))
    ev.l2_rqsts_rfo_miss += n_rfo_miss
    ev.offcore_rfo += n_rfo_miss
    n_ld_miss = int(np.count_nonzero(dem & ~ms_w_a))
    ev.l2_ld_miss += n_ld_miss
    ev.offcore_rd += n_ld_miss
    ev.l2_lines_in_s += int(np.count_nonzero(dem & ~ms_w_a & (ms_best_a > 0)))
    ev.l2_lines_in_e += np_pref + int(np.count_nonzero(
        dem & ~ms_w_a & (ms_best_a == 0)))
    ev.l3_hit += l3_hits
    ev.l3_miss += l3_misses
    ev.writebacks += writebacks + n_out_dirty
    ev.l2_lines_out_dirty += n_out_dirty
    ev.l2_lines_out_clean += n_out_clean

    # ---- LFB hit-window (per core, vectorized epoch argument) ------------
    n_hit_lfb = 0
    for c in range(nt):
        idx_c = core_idx[c]
        if not idx_c.size:
            continue
        lines_c = lines_g[idx_c]
        l1m_c = l1m_g[idx_c]
        w_c = writes_a[idx_c]
        epoch_ids = np.cumsum(l1m_c)
        miss_pos = np.flatnonzero(l1m_c)
        epoch_lines = np.empty(miss_pos.size + 1, dtype=np.int64)
        epoch_lines[0] = state.lfb_line[c]
        epoch_lines[1:] = lines_c[miss_pos]
        cand = (~w_c) & (~l1m_c) & (lines_c == epoch_lines[epoch_ids])
        ce = np.unique(epoch_ids[cand])
        hits = int(ce.size)
        if ce.size and ce[0] == 0 and state.lfb_window[c] <= 0:
            hits -= 1
        n_hit_lfb += hits
        if miss_pos.size:
            state.lfb_line[c] = int(lines_c[miss_pos[-1]])
            state.lfb_window[c] = (
                0 if (ce.size and int(ce[-1]) == miss_pos.size) else 1)
        elif ce.size and state.lfb_window[c] > 0:
            state.lfb_window[c] -= 1

    # ---- ordered penalty/stall accumulation (bit-exact float order) ------
    load_f = 1.0 - lat.load_overlap
    store_f = 1.0 - lat.store_overlap
    tlb_walk_eff = lat.tlb_walk * 0.5
    up_k_a = np.array(up_k, dtype=np.int64)
    up_raw = np.where(
        up_k_a <= 1, lat.rfo_upgrade,
        lat.rfo_upgrade * (1.0 + lat.contention_factor * (up_k_a - 1)))
    ldh_g = np.flatnonzero(ld_l2hit)
    wrem_g = np.flatnonzero(wr_l2hit_em)
    cores_i64 = cores_a.astype(np.int64)

    pe_g = np.concatenate([
        np.array(tlb_pen_g, dtype=np.int64),
        np.array(up_g, dtype=np.int64),
        ms_g_a, ldh_g, wrem_g])
    pe_seq = np.concatenate([
        np.zeros(len(tlb_pen_g), dtype=np.int8),
        np.ones(len(up_g) + nms + ldh_g.size + wrem_g.size, dtype=np.int8)])
    pe_c = np.concatenate([
        np.array(tlb_pen_c, dtype=np.int64),
        np.array(up_c, dtype=np.int64),
        ms_c_a, cores_i64[ldh_g], cores_i64[wrem_g]])
    pe_raw = np.concatenate([
        np.full(len(tlb_pen_g), tlb_walk_eff),
        up_raw, ms_raw,
        np.full(ldh_g.size, lat.l2_hit),
        np.full(wrem_g.size, lat.l2_hit)])
    pe_eff = np.concatenate([
        np.full(len(tlb_pen_g), tlb_walk_eff),
        up_raw * store_f,
        ms_raw * np.where(ms_weff, store_f, load_f),
        np.full(ldh_g.size, lat.l2_hit * load_f),
        np.full(wrem_g.size, lat.l2_hit * store_f)])
    # stall kind: 0 = none (TLB / silent E->M write), 1 = load, 2 = store
    pe_kind = np.concatenate([
        np.zeros(len(tlb_pen_g), dtype=np.int8),
        np.full(len(up_g), 2, dtype=np.int8),
        np.where(ms_weff, 2, 1).astype(np.int8),
        np.ones(ldh_g.size, dtype=np.int8),
        np.zeros(wrem_g.size, dtype=np.int8)])
    po = np.lexsort((pe_seq, pe_g))
    pen = seg.penalty
    stall_load = ev.stall_load
    stall_store = ev.stall_store
    for c, add, raw, kd in zip(pe_c[po].tolist(), pe_eff[po].tolist(),
                               pe_raw[po].tolist(), pe_kind[po].tolist()):
        pen[c] += add
        if kd == 1:
            stall_load += raw
        elif kd == 2:
            stall_store += raw
    ev.stall_load = stall_load
    ev.stall_store = stall_store

    # ---- HITM sampling (global g order, persistent counter) --------------
    period = machine.hitm_sample_period
    if period and hitm_n:
        seen = machine._hitm_seen
        samples = machine._hitm_samples
        for j in np.flatnonzero(ms_best_a == MODIFIED).tolist():
            seen += 1
            if seen >= period:
                seen = 0
                samples.append((int(ms_c_a[j]), int(ms_resp_a[j]),
                                int(addrs_a[ms_g_a[j]]), bool(ms_w_a[j])))
        machine._hitm_seen = seen

    # ---- final-state reconstruction --------------------------------------
    # L2: removals first, in-place state updates next (neither reorders),
    # then LRU moves in last-touch order (touch/fill happen at L1 misses).
    # Overfull sets are rebuilt wholesale from their replay dicts instead.
    moves: List[List[Tuple[int, int, int]]] = [[] for _ in range(nt)]
    for (c, ln), gg in last_l2g.items():
        f = line_final[ln][c]
        if f:
            moves[c].append((gg, ln, f))
    for ln, fin in line_final.items():
        init = init_sts[ln]
        for c in range(nt):
            flags2 = evict_flags[c]
            if flags2 is not None and flags2[l2_objs[c].index(ln)]:
                continue
            f = fin[c]
            if f == init[c]:
                continue
            if f == 0:
                l2_objs[c].remove(ln)
            elif init[c] and (c, ln) not in last_l2g:
                l2_objs[c].set_state(ln, f)
    for c in range(nt):
        if not moves[c]:
            continue
        moves[c].sort()
        l2c = l2_objs[c]
        for _, ln, f in moves[c]:
            s = l2c.sets[l2c.index(ln)]
            s.pop(ln, None)
            s[ln] = f
    for (c, sidx), d2 in d2_final.items():
        l2_objs[c].sets[sidx] = OrderedDict(
            (ln, (line_final[ln][c] if v == _SENT else v))
            for ln, v in d2.items())
    # L3: presence only grows; order by insertion/touch sequence.
    if l3_last:
        for ln, _ in sorted(l3_last.items(), key=lambda kv: kv[1]):
            s = l3.sets[l3.index(ln)]
            s.pop(ln, None)
            s[ln] = SHARED
    # L1: presence/order from the replay dicts, states mirrored from L2.
    for c in range(nt):
        l1c = l1_objs[c]
        l2c = l2_objs[c]
        if walked_l1[c]:
            for idx, d in enumerate(final_l1[c]):
                l1c.sets[idx] = OrderedDict(
                    (ln, l2c.lookup(ln)) for ln in d)
        else:
            for s in l1c.sets:
                for ln in s:
                    s[ln] = l2c.lookup(ln)
    # Contender map: only masks touched in the final clear-window survive.
    final_wid = (0 if n - 1 < first_clear
                 else 1 + (n - 1 - first_clear) // epoch)
    if final_wid == 0:
        newc = dict(contenders0)
        for ln, (wd, m) in cmask_final.items():
            newc[ln] = m
    else:
        newc = {ln: m for ln, (wd, m) in cmask_final.items()
                if wd == final_wid}
    machine._contenders.clear()
    machine._contenders.update(newc)
    # Decay countdown, closed form.
    if n - 1 < first_clear:
        state.decay_countdown = d0 - n
    else:
        last_clear = first_clear + ((n - 1 - first_clear) // epoch) * epoch
        state.decay_countdown = epoch - (n - 1 - last_clear)
    machine._cur_addr = -1

    # ---- whole-segment tallies -------------------------------------------
    acc = seg.accesses
    for c, cnt in enumerate(np.bincount(cores_a, minlength=nt).tolist()):
        acc[c] += cnt
    nw = int(np.count_nonzero(writes_a))
    seg.n_writes += nw
    seg.n_reads += n - nw
    seg.n_dtlb += n_dtlb
    seg.n_dtlb_st += n_dtlb_st
    seg.n_l1_miss += int(np.count_nonzero(l1m_g))
    seg.n_hit_lfb += n_hit_lfb
    return seg
