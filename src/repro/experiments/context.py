"""Shared pipeline state for all experiments.

Training the detector and classifying two benchmark suites is expensive;
every table/figure experiment needs some slice of it.  A
:class:`PipelineContext` computes each artifact once (lazily) and caches the
slow external-tool results (shadow-memory rates) on disk next to the
simulation cache.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.baselines.shadow import ShadowMemoryDetector, ShadowReport
from repro.core.detector import FalseSharingDetector
from repro.core.lab import Lab
from repro.core.training import TrainingData, collect_training_data
from repro.parallel import ExecutionEngine
from repro.pmu.events import TABLE2_EVENTS
from repro.suites import all_programs, get_program
from repro.suites.base import SuiteCase, SuiteProgram
from repro.telemetry.core import TELEMETRY
from repro.utils.stats import majority, tally

log = logging.getLogger(__name__)

#: Probability that a benchmark-classification measurement was polluted by
#: background activity.  Real collection isn't sterile: the paper saw one
#: unexplained bad-ma cell in linear_regression and attributes it to error.
SUITE_INTERFERENCE = 0.004


def _shadow_versions() -> Tuple[str, str]:
    """The version pair stamped into (and demanded of) the shadow cache."""
    from repro.versioning import SHADOW_VERSION, SIM_VERSION

    return (SIM_VERSION, SHADOW_VERSION)


def _valid_shadow_entry(value: object) -> bool:
    """True for a well-formed cache entry: 4 integer oracle counts."""
    return (
        isinstance(value, (tuple, list))
        and len(value) == 4
        and all(isinstance(v, int) and not isinstance(v, bool)
                for v in value)
    )


@dataclass
class ClassifiedProgram:
    """All case-level labels for one suite program."""

    name: str
    labels: Dict[SuiteCase, str]
    seconds: Dict[SuiteCase, float]

    @property
    def overall(self) -> str:
        return majority(self.labels.values())

    def tally(self) -> Dict[str, int]:
        return tally(self.labels.values())


@dataclass
class VerifiedProgram:
    """Table 10 row: oracle vs detector on the verification subset."""

    name: str
    cases: int
    actual_fs: int
    actual_no_fs: int
    detected_fs: int
    detected_no_fs: int
    #: per-case detail: (case, oracle_rate, our_label)
    detail: List[Tuple[SuiteCase, float, str]]


class PipelineContext:
    """Lazily computed, shared artifacts of the full reproduction pipeline."""

    def __init__(
        self,
        lab: Optional[Lab] = None,
        jobs: Optional[int] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.lab = lab or Lab()
        self.engine = engine or ExecutionEngine(jobs)
        #: The oracle used for verification; replaceable (e.g. ``fast=False``
        #: selects its reference scalar loop for A/B measurements).
        self.shadow = ShadowMemoryDetector()
        self._training: Optional[TrainingData] = None
        self._detector: Optional[FalseSharingDetector] = None
        self._classified: Dict[str, ClassifiedProgram] = {}
        self._verified: Dict[str, VerifiedProgram] = {}
        self._shadow_cache: Dict[Tuple, Tuple[int, int, int, int]] = {}
        self._shadow_path = self._shadow_cache_path()
        self._shadow_dirty = 0
        if self._shadow_path is not None and self._shadow_path.exists():
            self._load_shadow()

    def _load_shadow(self) -> None:
        """Populate the shadow cache from disk; anything suspect is a miss.

        A corrupted or truncated file, a stale version stamp, the legacy
        bare-dict format, or individually mangled entries must never raise:
        the cache is an accelerator, so the correct degradation is to log,
        drop the bad data, and recompute.
        """
        try:
            with open(self._shadow_path, "rb") as fh:
                payload = pickle.load(fh)
        except Exception as exc:
            log.warning("shadow cache %s unreadable (%s: %s); recomputing",
                        self._shadow_path, type(exc).__name__, exc)
            TELEMETRY.count("shadow.cache.corrupt_files")
            return
        # Only a payload stamped with the current simulator + oracle
        # versions is trusted; anything else (including the legacy
        # bare-dict format) is recomputed rather than silently reused
        # with stale semantics.
        if not (isinstance(payload, dict)
                and payload.get("versions") == _shadow_versions()
                and isinstance(payload.get("entries"), dict)):
            TELEMETRY.count("shadow.cache.invalidated")
            return
        dropped = 0
        for key, value in payload["entries"].items():
            if _valid_shadow_entry(value):
                self._shadow_cache[key] = tuple(value)
            else:
                dropped += 1
        if dropped:
            log.warning("shadow cache %s: dropped %d mangled entries; "
                        "they will be recomputed", self._shadow_path, dropped)
            TELEMETRY.count("shadow.cache.dropped_entries", dropped)

    def _shadow_cache_path(self) -> Optional[Path]:
        if self.lab.disk_cache is None:
            return None
        base = Path(
            os.environ.get("REPRO_CACHE_DIR",
                           Path(tempfile.gettempdir()) / "repro-simcache")
        )
        sim_v, shadow_v = _shadow_versions()
        return base / (
            f"shadow-{self.lab.spec.name}-c{self.lab.chunk}"
            f"-{sim_v}-{shadow_v}.pkl"
        )

    # ------------------------------------------------------------- training

    @property
    def training(self) -> TrainingData:
        if self._training is None:
            with TELEMETRY.span("pipeline.training"):
                self._training = collect_training_data(self.lab,
                                                       engine=self.engine)
                self.lab.flush()
        return self._training

    @property
    def detector(self) -> FalseSharingDetector:
        if self._detector is None:
            det = FalseSharingDetector(self.lab)
            det.fit(training=self.training)
            self._detector = det
        return self._detector

    # --------------------------------------------------------- classification

    def classify_program(self, name: str) -> ClassifiedProgram:
        if name not in self._classified:
            program = get_program(name)
            det = self.detector
            with TELEMETRY.span("pipeline.classify", program=name) as sp:
                self.engine.prefetch_simulations(
                    self.lab, [(program, case) for case in program.cases()]
                )
                labels: Dict[SuiteCase, str] = {}
                seconds: Dict[SuiteCase, float] = {}
                for case in program.cases():
                    vec = self.lab.measure(
                        program, case, TABLE2_EVENTS,
                        interference_p=SUITE_INTERFERENCE,
                    )
                    labels[case] = det.classify_vector(vec)
                    seconds[case] = float(vec.meta.get("seconds", 0.0))
                sp.set(cases=len(labels))
            self._classified[name] = ClassifiedProgram(name, labels, seconds)
            self.lab.flush()
        return self._classified[name]

    def classify_all(self) -> Dict[str, ClassifiedProgram]:
        # One engine-wide prefetch over every program's grid beats
        # per-program batches: the pool stays saturated across the seams.
        self.engine.prefetch_simulations(
            self.lab,
            [(program, case)
             for program in all_programs()
             if program.name not in self._classified
             for case in program.cases()],
        )
        for program in all_programs():
            self.classify_program(program.name)
        return dict(self._classified)

    # ------------------------------------------------------------ shadow oracle

    def shadow_report(self, program: SuiteProgram, case: SuiteCase) -> ShadowReport:
        key = (program.name,) + tuple(program.cache_key(case))
        hit = self._shadow_cache.get(key)
        if hit is not None and not _valid_shadow_entry(hit):
            # Defense in depth: an entry mangled after load (or adopted
            # from a hostile pickle) is a miss, not a crash.
            log.warning("shadow cache entry for %s is mangled; recomputing",
                        key)
            TELEMETRY.count("shadow.cache.dropped_entries")
            del self._shadow_cache[key]
            hit = None
        if hit is None:
            TELEMETRY.count("shadow.cache.miss")
            with TELEMETRY.span("shadow.run", program=program.name,
                                case=case.run_id()):
                rep = self.shadow.run(program.trace(case),
                                      chunk=self.lab.chunk)
            hit = (rep.fs_misses, rep.ts_misses, rep.cold_misses,
                   rep.instructions)
            self._shadow_cache[key] = hit
            self._shadow_dirty += 1
            if self._shadow_dirty >= 20:
                self._flush_shadow()
        else:
            TELEMETRY.count("shadow.cache.hit")
        return ShadowReport(
            fs_misses=hit[0], ts_misses=hit[1], cold_misses=hit[2],
            instructions=hit[3], nthreads=case.threads,
        )

    def shadow_report_store(self, path) -> ShadowReport:
        """Oracle counts for a persisted trace store, cached by digest.

        The cache key is the store's content digest (header field, O(1) to
        read), so the entry survives renames and copies and misses when the
        trace bytes change — the same contract as
        :meth:`repro.core.lab.Lab.simulate_store`.
        """
        from repro.trace.store import open_store

        store = open_store(path)
        key = ("store", store.digest, self.lab.chunk)
        hit = self._shadow_cache.get(key)
        if hit is not None and not _valid_shadow_entry(hit):
            log.warning("shadow cache entry for %s is mangled; recomputing",
                        key)
            TELEMETRY.count("shadow.cache.dropped_entries")
            del self._shadow_cache[key]
            hit = None
        if hit is None:
            TELEMETRY.count("shadow.cache.miss")
            with TELEMETRY.span("shadow.run_store", digest=store.digest):
                rep = self.shadow.run_store(path, chunk=self.lab.chunk)
            hit = (rep.fs_misses, rep.ts_misses, rep.cold_misses,
                   rep.instructions)
            self._shadow_cache[key] = hit
            self._shadow_dirty += 1
            if self._shadow_dirty >= 20:
                self._flush_shadow()
            nthreads = rep.nthreads
        else:
            TELEMETRY.count("shadow.cache.hit")
            nthreads = len(list(store.meta.get("threads") or [])) or 1
        return ShadowReport(
            fs_misses=hit[0], ts_misses=hit[1], cold_misses=hit[2],
            instructions=hit[3], nthreads=nthreads,
        )

    def _prefetch_shadow(
        self, pairs: List[Tuple[SuiteProgram, SuiteCase]]
    ) -> None:
        """Run missing oracle cases across the engine's worker pool."""
        seen = set()
        keys: List[Tuple] = []
        missing: List[Tuple[str, SuiteCase]] = []
        for program, case in pairs:
            key = (program.name,) + tuple(program.cache_key(case))
            if key in seen or key in self._shadow_cache:
                continue
            seen.add(key)
            keys.append(key)
            missing.append((program.name, case))
        if self.engine.jobs <= 1 or len(missing) <= 1:
            return
        TELEMETRY.count("shadow.prefetch.dispatched", len(missing))
        counts = self.engine.shadow_batch(missing, self.lab.chunk,
                                          self.shadow.max_threads,
                                          fast=self.shadow.fast)
        for key, hit in zip(keys, counts):
            self._shadow_cache[key] = hit
            self._shadow_dirty += 1
        self._flush_shadow()

    def _flush_shadow(self) -> None:
        if self._shadow_path is None:
            return
        self._shadow_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._shadow_path.with_suffix(".tmp")
        payload = {"versions": _shadow_versions(),
                   "entries": self._shadow_cache}
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh)
        tmp.replace(self._shadow_path)
        self._shadow_dirty = 0

    # ------------------------------------------------------------ verification

    def verify_program(self, name: str) -> VerifiedProgram:
        if name not in self._verified:
            program = get_program(name)
            classified = self.classify_program(name)
            with TELEMETRY.span("pipeline.verify", program=name):
                self._verify_program(name, program, classified)
        return self._verified[name]

    def _verify_program(self, name: str, program: SuiteProgram,
                        classified: ClassifiedProgram) -> None:
        self._prefetch_shadow(
            [(program, case) for case in program.verification_cases()]
        )
        detail: List[Tuple[SuiteCase, float, str]] = []
        actual_fs = detected_fs = 0
        cases = program.verification_cases()
        for case in cases:
            rate = self.shadow_report(program, case).fs_rate
            label = classified.labels.get(case)
            if label is None:
                # Verification grids are subsets of classification grids;
                # classify on demand if a case is outside (defensive).
                vec = self.lab.measure(program, case, TABLE2_EVENTS)
                label = self.detector.classify_vector(vec)
            detail.append((case, rate, label))
            actual_fs += int(rate > 1e-3)
            detected_fs += int(label == "bad-fs")
        n = len(cases)
        self._verified[name] = VerifiedProgram(
            name=name,
            cases=n,
            actual_fs=actual_fs,
            actual_no_fs=n - actual_fs,
            detected_fs=detected_fs,
            detected_no_fs=n - detected_fs,
            detail=detail,
        )
        self._flush_shadow()

    def verify_all(self) -> Dict[str, VerifiedProgram]:
        self._prefetch_shadow(
            [(program, case)
             for program in all_programs()
             if program.name not in self._verified
             for case in program.verification_cases()]
        )
        for program in all_programs():
            self.verify_program(program.name)
        return dict(self._verified)


_DEFAULT_CONTEXT: Optional[PipelineContext] = None


def default_context() -> PipelineContext:
    """The process-wide shared pipeline (used by benches and the CLI).

    Its engine honours :func:`repro.parallel.default_jobs` at construction
    time, so ``set_default_jobs`` (the CLI's ``--jobs``) must run before the
    first call.
    """
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = PipelineContext()
    return _DEFAULT_CONTEXT
