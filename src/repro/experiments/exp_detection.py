"""Experiments for the detection half: Tables 5-11."""

from __future__ import annotations

from typing import Dict

from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.context import PipelineContext
from repro.pmu.events import TABLE2_EVENTS
from repro.suites import get_program, parsec_programs, phoenix_programs
from repro.suites.base import SuiteCase
from repro.utils.tables import render_grid, render_table

#: The paper's Table 5 program-level verdicts.
PAPER_TABLE5: Dict[str, str] = {
    "histogram": "good",
    "linear_regression": "bad-fs",
    "word_count": "good",
    "reverse_index": "good",
    "kmeans": "good",
    "matrix_multiply": "bad-ma",
    "string_match": "good",
    "pca": "good",
    "ferret": "good",
    "canneal": "good",
    "fluidanimate": "good",
    "streamcluster": "bad-fs",
    "swaptions": "good",
    "vips": "good",
    "bodytrack": "good",
    "freqmine": "good",
    "blackscholes": "good",
    "raytrace": "good",
    "x264": "good",
}

#: The paper's Table 10 per-program verification counts
#: (cases, actual FS, detected FS).
PAPER_TABLE10: Dict[str, tuple] = {
    "histogram": (18, 0, 0),
    "linear_regression": (18, 18, 12),
    "word_count": (18, 0, 0),
    "reverse_index": (6, 0, 0),
    "kmeans": (12, 0, 0),
    "matrix_multiply": (18, 0, 0),
    "string_match": (18, 0, 0),
    "pca": (18, 0, 0),
    "ferret": (18, 0, 0),
    "canneal": (18, 0, 0),
    "fluidanimate": (18, 0, 0),
    "streamcluster": (18, 11, 10),
    "swaptions": (18, 0, 0),
    "vips": (18, 0, 0),
    "bodytrack": (18, 0, 0),
    "freqmine": (16, 0, 0),
    "blackscholes": (18, 0, 0),
    "raytrace": (18, 0, 0),
    "x264": (18, 0, 0),
}


@experiment("table5", "Classification of Phoenix and PARSEC programs")
def table5(ctx: PipelineContext) -> ExperimentResult:
    results = ctx.classify_all()
    rows = []
    agreements = 0
    data: Dict[str, Dict[str, object]] = {}
    for prog in phoenix_programs() + parsec_programs():
        cp = results[prog.name]
        expected = PAPER_TABLE5[prog.name]
        agree = cp.overall == expected
        agreements += int(agree)
        rows.append([
            prog.suite, prog.name, cp.overall, expected,
            "ok" if agree else "DIFFERS",
            "; ".join(f"{k}:{v}" for k, v in sorted(cp.tally().items())),
        ])
        data[prog.name] = {
            "overall": cp.overall,
            "paper": expected,
            "tally": cp.tally(),
        }
    text = render_table(
        ["Suite", "Program", "Ours", "Paper", "Agree", "Case tally"],
        rows, title="Program-level classification (majority over all cases)",
    )
    text += f"\nagreement with paper Table 5: {agreements}/{len(rows)}"
    return ExperimentResult(
        exp_id="table5",
        title="Suite classification",
        text=text,
        data={"programs": data, "agreement": agreements, "out_of": len(rows)},
        paper="Table 5: linear_regression bad-fs, matrix_multiply bad-ma, "
              "streamcluster bad-fs, all 16 others good.",
    )


def _grid(ctx, name, inputs, opts, threads, with_seq=False):
    """(rows, labels) for an exec-time+classification grid (Tables 6/8)."""
    prog = get_program(name)
    cp = ctx.classify_program(name)
    det = ctx.detector
    row_labels, cells, labels = [], [], {}
    for inp in inputs:
        for opt in opts:
            row_labels.append(f"{inp} {opt}")
            row = []
            if with_seq:
                case1 = SuiteCase(inp, opt, 1)
                vec = ctx.lab.measure(prog, case1, TABLE2_EVENTS)
                row.append(f"{vec.meta['seconds'] * 1e3:.3f}ms")
            for t in threads:
                case = SuiteCase(inp, opt, t)
                lab = cp.labels.get(case)
                if lab is None:
                    vec = ctx.lab.measure(prog, case, TABLE2_EVENTS)
                    lab = det.classify_vector(vec)
                    secs = float(vec.meta["seconds"])
                else:
                    secs = cp.seconds[case]
                labels[(inp, opt, t)] = lab
                row.append(f"{secs * 1e3:.3f}ms [{lab}]")
            cells.append(row)
    return row_labels, cells, labels


@experiment("table6", "linear_regression: execution time and classification")
def table6(ctx: PipelineContext) -> ExperimentResult:
    inputs = ("50MB", "100MB", "500MB")
    opts = ("-O0", "-O1", "-O2")
    threads = (3, 6, 9, 12)
    row_labels, cells, labels = _grid(
        ctx, "linear_regression", inputs, opts, threads, with_seq=True
    )
    text = render_grid(
        row_labels, ("T=1 (seq)",) + tuple(f"T={t}" for t in threads), cells,
        corner="input/opt",
        title="linear_regression simulated time and classification",
    )
    n_fs = sum(1 for v in labels.values() if v == "bad-fs")
    n_good = sum(1 for v in labels.values() if v == "good")
    n_ma = sum(1 for v in labels.values() if v == "bad-ma")
    text += (f"\ncase tally: bad-fs {n_fs}/36 (paper 24), good {n_good}/36 "
             f"(paper 11), bad-ma {n_ma}/36 (paper 1)")
    return ExperimentResult(
        exp_id="table6",
        title="linear_regression grid",
        text=text,
        data={"labels": {f"{k[0]}|{k[1]}|{k[2]}": v for k, v in labels.items()},
              "tally": {"bad-fs": n_fs, "good": n_good, "bad-ma": n_ma}},
        paper="Table 6: all -O0/-O1 cells bad-fs (24), -O2 good (11) with one "
              "isolated bad-ma; at -O0/-O1 the sequential run beats the "
              "parallel ones.",
    )


def _rates_grid(ctx, name, inputs, opts, threads):
    prog = get_program(name)
    cp = ctx.classify_program(name)
    rows, labels, rates = [], {}, {}
    for inp in inputs:
        for opt in opts:
            row = [f"{inp} {opt}"]
            for t in threads:
                case = SuiteCase(inp, opt, t)
                rate = ctx.shadow_report(prog, case).fs_rate
                label = cp.labels[case]
                rates[(inp, opt, t)] = rate
                labels[(inp, opt, t)] = label
                row.append(f"{rate:.6f} [{label}]")
            rows.append(row)
    return rows, labels, rates


@experiment("table7", "linear_regression: shadow-memory FS rates vs our labels")
def table7(ctx: PipelineContext) -> ExperimentResult:
    inputs = ("50MB", "100MB", "500MB")
    opts = ("-O0", "-O1", "-O2")
    threads = (3, 6)
    rows, labels, rates = _rates_grid(ctx, "linear_regression", inputs, opts,
                                      threads)
    text = render_table(
        ["input/opt"] + [f"T={t}" for t in threads], rows,
        title="False-sharing rate ([33] oracle) and our classification",
    )
    o01 = [r for (i, o, t), r in rates.items() if o in ("-O0", "-O1")]
    o2 = [r for (i, o, t), r in rates.items() if o == "-O2"]
    text += (f"\n-O0/-O1 rates: {min(o01):.4f}..{max(o01):.4f} "
             f"(paper 0.022..0.035); -O2: {min(o2):.6f}..{max(o2):.6f} "
             f"(paper ~0.00145, still above the 1e-3 threshold)")
    return ExperimentResult(
        exp_id="table7",
        title="linear_regression FS rates",
        text=text,
        data={"rates": {f"{k[0]}|{k[1]}|{k[2]}": v for k, v in rates.items()},
              "o01_range": [min(o01), max(o01)], "o2_range": [min(o2), max(o2)]},
        paper="Table 7: bad-fs cells 15-25x the good cells; even -O2 'good' "
              "cells exceed 1e-3.",
    )


@experiment("table8", "streamcluster: execution time and classification")
def table8(ctx: PipelineContext) -> ExperimentResult:
    inputs = ("simsmall", "simmedium", "simlarge", "native")
    opts = ("-O1", "-O2", "-O3")
    threads = (4, 8, 12)
    row_labels, cells, labels = _grid(ctx, "streamcluster", inputs, opts,
                                      threads)
    text = render_grid(
        row_labels, tuple(f"T={t}" for t in threads), cells,
        corner="input/opt",
        title="streamcluster simulated time and classification",
    )
    tally = {}
    for v in labels.values():
        tally[v] = tally.get(v, 0) + 1
    text += (f"\ncase tally: {tally} (paper: bad-fs 15, good 11, bad-ma 10); "
             f"top-right cell (simsmall -O1 T=12): {labels[('simsmall', '-O1', 12)]}"
             f" — unstable across reps (spin-lock instruction inflation)")
    return ExperimentResult(
        exp_id="table8",
        title="streamcluster grid",
        text=text,
        data={"labels": {f"{k[0]}|{k[1]}|{k[2]}": v for k, v in labels.items()},
              "tally": tally},
        paper="Table 8: 15 bad-fs / 11 good / 10 bad-ma; bad-fs rows show no "
              "speedup with threads; the simsmall -O1 T=12 cell flips between "
              "runs because of spin-lock waiting.",
    )


@experiment("table9", "streamcluster: shadow-memory FS rates vs our labels")
def table9(ctx: PipelineContext) -> ExperimentResult:
    inputs = ("simsmall", "simmedium", "simlarge")
    opts = ("-O1", "-O2", "-O3")
    threads = (4, 8)
    rows, labels, rates = _rates_grid(ctx, "streamcluster", inputs, opts,
                                      threads)
    text = render_table(
        ["input/opt"] + [f"T={t}" for t in threads], rows,
        title="False-sharing rate ([33] oracle) and our classification "
              "(native skipped: too slow under instrumentation)",
    )
    mism = [
        (k, r) for (k, r) in rates.items()
        if (r > 1e-3) != (labels[k] == "bad-fs")
    ]
    text += f"\ncells where oracle and classifier disagree: {len(mism)} (paper: 1)"
    return ExperimentResult(
        exp_id="table9",
        title="streamcluster FS rates",
        text=text,
        data={"rates": {f"{k[0]}|{k[1]}|{k[2]}": v for k, v in rates.items()},
              "labels": {f"{k[0]}|{k[1]}|{k[2]}": v for k, v in labels.items()},
              "disagreements": len(mism)},
        paper="Table 9: simsmall ~0.0017-0.0024, simmedium ~0.0009-0.0016, "
              "simlarge ~0.0006-0.0010; one disagreement (simmedium -O1 T=8, "
              "rate 0.00112, classified good).",
    )


@experiment("table10", "Verification against the shadow-memory oracle")
def table10(ctx: PipelineContext) -> ExperimentResult:
    verified = ctx.verify_all()
    rows = []
    tot = {"cases": 0, "afs": 0, "anofs": 0, "dfs": 0, "dnofs": 0}
    data = {}
    for prog in phoenix_programs() + parsec_programs():
        v = verified[prog.name]
        p_cases, p_afs, p_dfs = PAPER_TABLE10[prog.name]
        rows.append([
            prog.name, v.cases, v.actual_fs, v.actual_no_fs,
            v.detected_fs, v.detected_no_fs,
            f"{p_cases}/{p_afs}/{p_dfs}",
        ])
        tot["cases"] += v.cases
        tot["afs"] += v.actual_fs
        tot["anofs"] += v.actual_no_fs
        tot["dfs"] += v.detected_fs
        tot["dnofs"] += v.detected_no_fs
        data[prog.name] = {
            "cases": v.cases, "actual_fs": v.actual_fs,
            "detected_fs": v.detected_fs,
        }
    rows.append(["TOTAL", tot["cases"], tot["afs"], tot["anofs"],
                 tot["dfs"], tot["dnofs"], "322/29/22"])
    text = render_table(
        ["Program", "# cases", "Actual FS", "Actual NoFS",
         "Detected FS", "Detected NoFS", "paper c/aFS/dFS"],
        rows, title="Verification of detection (oracle = [33])",
    )
    return ExperimentResult(
        exp_id="table10",
        title="Verification",
        text=text,
        data={"programs": data, "totals": tot},
        paper="Table 10: 322 cases; 29 actual FS (18 linear_regression + 11 "
              "streamcluster); 22 detected FS; 0 detections outside those "
              "two programs.",
    )


@experiment("table11", "Detection quality: correctness and FP rate")
def table11(ctx: PipelineContext) -> ExperimentResult:
    verified = ctx.verify_all()
    tp = fp = fn = tn = 0
    for v in verified.values():
        for case, rate, label in v.detail:
            actual = rate > 1e-3
            det = label == "bad-fs"
            tp += int(actual and det)
            fp += int(not actual and det)
            fn += int(actual and not det)
            tn += int(not actual and not det)
    total = tp + fp + fn + tn
    correctness = (tp + tn) / total if total else 0.0
    fp_rate = fp / (fp + tn) if (fp + tn) else 0.0
    rows = [
        ["Actual FS", tp, fn],
        ["Actual No FS", fp, tn],
    ]
    text = render_table(["", "Detected FS", "Detected No FS"], rows,
                        title="Detection quality")
    text += (f"\ncorrectness: ({tp}+{tn})/{total} = {100 * correctness:.1f}% "
             f"(paper 97.8%); false-positive rate: {fp}/({tn}+{fp}) = "
             f"{100 * fp_rate:.2f}% (paper 0%)")
    return ExperimentResult(
        exp_id="table11",
        title="Detection quality",
        text=text,
        data={"tp": tp, "fp": fp, "fn": fn, "tn": tn,
              "correctness": correctness, "fp_rate": fp_rate},
        paper="Table 11: TP 22, FN 7, FP 0, TN 293; correctness 97.8%, "
              "FP rate 0%.",
    )
