"""Experiment registry: regenerate every table and figure of the paper."""

from repro.experiments.base import (
    ExperimentResult,
    experiment,
    experiment_ids,
    experiment_title,
    run_experiment,
)
from repro.experiments.context import (
    ClassifiedProgram,
    PipelineContext,
    VerifiedProgram,
    default_context,
)

__all__ = [
    "ExperimentResult",
    "experiment",
    "experiment_ids",
    "experiment_title",
    "run_experiment",
    "ClassifiedProgram",
    "PipelineContext",
    "VerifiedProgram",
    "default_context",
]
