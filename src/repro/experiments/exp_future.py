"""Experiments for the paper's named future work (Section 6).

* finer-granularity detection "in short time slices";
* applying the method "on other hardware platforms" by re-running the
  train-and-classify workflow (steps 2-6 of Section 2.1) on a different
  machine;
* going beyond detection: naming the contended lines and sizing the fix.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.context import PipelineContext
from repro.utils.tables import render_table


@experiment("future_slices", "Time-sliced detection (Section 6 future work)")
def future_slices(ctx: PipelineContext) -> ExperimentResult:
    from repro.core.slicing import SlicedDetector, phased_program
    from repro.workloads.base import RunConfig
    from repro.workloads.registry import get_workload

    pdot = get_workload("pdot")
    good = pdot.trace(RunConfig(threads=6, mode="good", size=98_304))
    bad = pdot.trace(RunConfig(threads=6, mode="bad-fs", size=98_304))
    prog = phased_program([good, bad, good], name="pdot-3-phase")

    sliced = SlicedDetector(ctx.detector, n_slices=9)
    diag = sliced.diagnose_trace(prog)
    text = diag.render()
    text += f"\nphases: {diag.phases()}"
    middle = diag.labels[3:6]
    edges = diag.labels[:3] + diag.labels[6:]
    return ExperimentResult(
        exp_id="future_slices",
        title="Time-sliced detection",
        text=text,
        data={
            "labels": diag.labels,
            "overall": diag.overall,
            "fs_time_fraction": diag.fs_time_fraction(),
            "middle_all_fs": all(lbl == "bad-fs" for lbl in middle),
            "edges_no_fs": all(lbl != "bad-fs" for lbl in edges),
        },
        paper="Section 6: 'detecting false sharing at a finer granularity, "
              "for e.g., in short time slices' — implemented here: a "
              "good/bad-fs/good phased run is localized slice by slice.",
    )


@experiment("future_advisor", "From detection to advice: naming the lines")
def future_advisor(ctx: PipelineContext) -> ExperimentResult:
    from repro.core.advisor import FalseSharingAdvisor
    from repro.workloads.base import RunConfig
    from repro.workloads.registry import get_workload

    advisor = FalseSharingAdvisor(ctx.detector)
    pdot = get_workload("pdot")
    diag = advisor.diagnose(pdot, RunConfig(threads=6, mode="bad-fs",
                                            size=196_608))
    text = diag.render()
    return ExperimentResult(
        exp_id="future_advisor",
        title="Diagnosis advisor",
        text=text,
        data={
            "label": diag.label,
            "n_contended": len(diag.contended),
            "estimated_speedup": diag.estimated_speedup,
        },
        paper="SHERIFF [21] mitigates false sharing at runtime; the paper "
              "notes mitigation as complementary.  Here detection is "
              "extended with line-level attribution and a padding estimate.",
    )


@experiment("ablation_platform", "Portability: retrain on another machine")
def ablation_platform(ctx: PipelineContext) -> ExperimentResult:
    """The paper claims the method "can be applied across different
    hardware/OS platforms" by redoing steps 2-6.  We rerun training and
    validation on a different simulated machine and spot-check detection."""
    from repro.coherence.machine import MachineSpec
    from repro.core.detector import FalseSharingDetector
    from repro.core.lab import Lab
    from repro.core.training import collect_training_data
    from repro.pmu.events import TABLE2_EVENTS
    from repro.suites import get_program
    from repro.suites.base import SuiteCase

    other = MachineSpec(
        cores=8,
        sockets=2,
        l1_kib=8,
        l1_assoc=4,
        l2_kib=32,
        l2_assoc=8,
        l3_mib=2,
        l3_assoc=16,
        tlb_entries=16,
        freq_ghz=2.93,
        base_cpi=0.8,
        name="nehalem-like-scaled",
    )
    lab = Lab(spec=other)
    td = collect_training_data(lab, threads=(2, 4, 6, 8))
    det = FalseSharingDetector(lab).fit(training=td)
    cm = det.cross_validate(k=10)
    lab.flush()

    lr = get_program("linear_regression")
    sc = get_program("streamcluster")
    bs = get_program("blackscholes")
    spot = [
        ("linear_regression 100MB -O0 T=6", lr, SuiteCase("100MB", "-O0", 6),
         "bad-fs"),
        ("linear_regression 100MB -O2 T=6", lr, SuiteCase("100MB", "-O2", 6),
         "good"),
        ("streamcluster simsmall -O2 T=8", sc, SuiteCase("simsmall", "-O2", 8),
         "bad-fs"),
        ("blackscholes simmedium -O2 T=8", bs,
         SuiteCase("simmedium", "-O2", 8), "good"),
    ]
    rows = []
    agree = 0
    for label, prog, case, expected in spot:
        vec = lab.measure(prog, case, TABLE2_EVENTS)
        got = det.classify_vector(vec)
        agree += got == expected
        rows.append([label, got, expected, "ok" if got == expected else "X"])
    lab.flush()
    text = render_table(["run", "verdict", "expected", ""], rows,
                        title=f"Detection on {other.name} "
                              f"(8 cores, smaller caches)")
    text += (f"\n10-fold CV on the new platform: {cm.correct}/{cm.total} "
             f"= {100 * cm.accuracy:.1f}%; tree root: "
             f"{det.tree_events()[0]}")
    return ExperimentResult(
        exp_id="ablation_platform",
        title="Cross-platform retraining",
        text=text,
        data={
            "cv_accuracy": cm.accuracy,
            "spot_agreement": agree,
            "spot_total": len(spot),
            "root_event": det.tree_events()[0],
        },
        paper="Section 2.1: with an existing set of mini-programs the "
              "approach ports to a new platform by re-running steps 2-6.",
    )


@experiment("future_c2c", "perf-c2c-style attribution from HITM samples")
def future_c2c(ctx: PipelineContext) -> ExperimentResult:
    """Sampling-based line attribution, hardware-only.

    The detector says bad-fs from aggregate counts; modern perf answers
    "which line?" by sampling HITM events with their data addresses
    (``perf c2c``).  The same analysis on the simulator's samples names
    linear_regression's packed args structs without shadow memory or source
    access.
    """
    from repro.coherence.machine import MulticoreMachine
    from repro.suites import get_program
    from repro.suites.base import SuiteCase
    from repro.tools.c2c import c2c_report

    period = 13
    machine = MulticoreMachine(ctx.lab.spec, ctx.lab.latency,
                               hitm_sample_period=period)
    lr = get_program("linear_regression")
    case = SuiteCase("100MB", "-O0", 6)
    res = machine.run(lr.trace(case), chunk=ctx.lab.chunk)
    rep = c2c_report(res.hitm_samples, sample_period=period)
    suspects = rep.false_sharing_suspects()
    text = rep.render(6)
    text += (f"\nfalse-sharing suspects: "
             f"{[hex(c.address) for c in suspects]}"
             f" (the packed 40-byte lreg_args structs)")
    top = rep.lines[0] if rep.lines else None
    return ExperimentResult(
        exp_id="future_c2c",
        title="perf-c2c-style attribution",
        text=text,
        data={
            "n_suspects": len(suspects),
            "top_cpus": top.n_cpus if top else 0,
            "top_offsets": len(top.offsets) if top else 0,
            "top_kind": top.sharing_kind if top else "",
            "total_samples": rep.total_samples,
        },
        paper="Related work: perf-style event sampling existed but 'none "
              "addresses the difficult task of accurate detection'; perf "
              "c2c (2016) later productized exactly this sampling analysis.",
    )
