"""Cross-detector disagreement experiments (beyond-paper validation).

The paper validates its tree against one independent oracle (shadow
memory, Table 10).  With the static sharing analyzer and the symbolic
predictive analyzer there are now four detectors with disjoint failure
modes; these experiments fan case grids through all of them and publish
the confusion structure, so any drift between the plan-level,
layout-level, execution-level and PMU-level views of false sharing shows
up in EXPERIMENTS.md instead of going unnoticed.
"""

from __future__ import annotations

from repro.analysis.crosscheck import CrossChecker
from repro.analysis.validate import PredictionValidator
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.context import PipelineContext


@experiment("crosscheck",
            "Predict × static × shadow × tree disagreement matrix")
def crosscheck(ctx: PipelineContext) -> ExperimentResult:
    checker = CrossChecker(ctx.detector, shadow=ctx.shadow,
                           engine=ctx.engine)
    report = checker.run()
    return ExperimentResult(
        exp_id="crosscheck",
        title="Predict × static × shadow × tree disagreement matrix",
        text=report.render(),
        # The "report" tag makes this document self-describing so the
        # durable run store (repro.results) can classify and ingest it.
        data={
            "report": "crosscheck",
            "cases": [r.to_dict() for r in report.records],
            "pairwise_fs_agreement": report.pairwise_fs_agreement(),
            "disagreements": [r.case_id for r in report.disagreements()],
        },
        paper="beyond the paper: the SC'13 pipeline validates the tree "
              "against the shadow oracle only (Table 10); the static "
              "analyzer and the trace-free predictive analyzer add a "
              "third and fourth independent vote.",
    )


@experiment("predict-validation",
            "Predicted false-shared lines vs shadow-oracle attribution")
def predict_validation(ctx: PipelineContext) -> ExperimentResult:
    validator = PredictionValidator()
    registry = validator.validate_registry()
    suite = validator.validate_suite()
    text = ("— registry sweep —\n" + registry.render()
            + "\n\n— benchmark suite (canonical cases) —\n"
            + suite.render())
    return ExperimentResult(
        exp_id="predict-validation",
        title="Predicted false-shared lines vs shadow-oracle attribution",
        text=text,
        # Tagged for the durable run store, like the crosscheck payload:
        # registry/suite accuracy summaries trend across commits.
        data={"report": "predict-validation",
              "registry": registry.to_dict(),
              "suite": suite.to_dict()},
        paper="beyond the paper: line-level precision/recall of the "
              "symbolic predictor against [33]'s per-line false-sharing "
              "miss attribution, over the mini-program registry and the "
              "19-program suite.",
    )
