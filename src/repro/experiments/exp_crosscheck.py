"""Cross-detector disagreement experiment (beyond-paper validation).

The paper validates its tree against one independent oracle (shadow
memory, Table 10).  With the static sharing analyzer there are now three
detectors with disjoint failure modes; this experiment fans the full
mini-program grid through all of them and publishes the confusion
structure, so any drift between the layout-level, execution-level and
PMU-level views of false sharing shows up in EXPERIMENTS.md instead of
going unnoticed.
"""

from __future__ import annotations

from repro.analysis.crosscheck import CrossChecker
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.context import PipelineContext


@experiment("crosscheck",
            "Static analyzer × shadow oracle × tree disagreement matrix")
def crosscheck(ctx: PipelineContext) -> ExperimentResult:
    checker = CrossChecker(ctx.detector, shadow=ctx.shadow,
                           engine=ctx.engine)
    report = checker.run()
    return ExperimentResult(
        exp_id="crosscheck",
        title="Static analyzer × shadow oracle × tree disagreement matrix",
        text=report.render(),
        data={
            "cases": [r.to_dict() for r in report.records],
            "pairwise_fs_agreement": report.pairwise_fs_agreement(),
            "disagreements": [r.case_id for r in report.disagreements()],
        },
        paper="beyond the paper: the SC'13 pipeline validates the tree "
              "against the shadow oracle only (Table 10); the static "
              "analyzer adds a third, simulation-free vote.",
    )
