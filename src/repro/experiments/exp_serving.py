"""Online-detection experiment: the tree served live over windowed samples.

The paper classifies whole program runs offline (Section 6 names online
use as future work).  With ``repro.serve`` the same tree runs behind a
TCP micro-batching server; this experiment streams periodic PMU samples
of the marquee suite runs — linear_regression at -O0 (the paper's
headline false-sharing case), its -O2 fix, and streamcluster — through
the window aggregator into a live server, and checks that the
per-window majority verdict agrees with the offline whole-run label.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.context import PipelineContext
from repro.pmu.events import TABLE2_EVENTS
from repro.suites import get_program
from repro.suites.base import SuiteCase
from repro.utils.stats import majority, tally
from repro.utils.tables import render_table

#: (program, case) pairs streamed through the live server.
_CASES: List[Tuple[str, SuiteCase]] = [
    ("linear_regression", SuiteCase("50MB", "-O0", 6)),
    ("linear_regression", SuiteCase("50MB", "-O2", 6)),
    ("streamcluster", SuiteCase("simsmall", "-O2", 4)),
]

#: Periodic samples taken over each run.
_WINDOWS = 8


@experiment("serving", "Online detection: windowed samples vs offline labels")
def serving(ctx: PipelineContext) -> ExperimentResult:
    from repro.serve.client import ServeClient
    from repro.serve.inference import as_compiled
    from repro.serve.server import ServerThread
    from repro.serve.stream import WindowAggregator

    compiled = as_compiled(ctx.detector.classifier)
    rows = []
    records: List[Dict[str, object]] = []
    agreements = 0
    with ServerThread(compiled, port=0) as (host, port):
        with ServeClient(host, port) as client:
            for name, case in _CASES:
                program = get_program(name)
                offline = ctx.detector.classify_vector(
                    ctx.lab.measure(program, case, TABLE2_EVENTS)
                )
                result = ctx.lab.simulate(program, case)
                agg = WindowAggregator(
                    window=max(result.seconds, 1e-9) / _WINDOWS
                )
                windows = agg.add_stream(
                    ctx.lab.sampler.measure_stream(
                        result, TABLE2_EVENTS, windows=_WINDOWS,
                        run_id=f"serving-{case.run_id()}",
                    )
                )
                windows += agg.flush()
                labels = [client.classify(w.features, rid=w.index)
                          for w in windows]
                online = majority(labels)
                agree = online == offline
                agreements += int(agree)
                counts = tally(labels)
                rows.append([
                    name, case.run_id(), offline, online,
                    " ".join(f"{k}:{v}" for k, v in sorted(counts.items())),
                    "yes" if agree else "NO",
                ])
                records.append({
                    "program": name,
                    "case": case.run_id(),
                    "offline": offline,
                    "online": online,
                    "windows": counts,
                    "agree": agree,
                })
        server_stats = None
        try:
            with ServeClient(host, port) as client:
                server_stats = client.stats()
        except Exception:  # pragma: no cover - stats are best-effort
            server_stats = None
    ctx.lab.flush()
    text = render_table(
        ["program", "case", "offline", "online (majority)",
         "window verdicts", "agree"],
        rows,
        title=f"Live service vs offline detector ({_WINDOWS} windows/run)",
    )
    return ExperimentResult(
        exp_id="serving",
        title="Online detection: windowed samples vs offline labels",
        text=text,
        data={
            "cases": records,
            "agreements": agreements,
            "total": len(_CASES),
            "windows_per_run": _WINDOWS,
            "server": server_stats,
        },
        paper="beyond the paper: Section 6 leaves online monitoring as "
              "future work; here the learned tree answers over a TCP "
              "micro-batching service on periodic in-run samples.",
    )
