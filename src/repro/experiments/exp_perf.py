"""Performance experiments: Table 1 (the motivating dot product) and the
monitoring-overhead comparison from Section 4."""

from __future__ import annotations

from repro.baselines.overhead import overhead_report
from repro.coherence.machine import MachineSpec
from repro.core.lab import Lab
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.context import PipelineContext
from repro.pmu.events import TABLE2_EVENTS
from repro.utils.tables import render_grid
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

#: Table 1's testbed: a 32-core Intel Xeon (not the 12-core training box).
#: Caches follow the same 1:4 scaling as everywhere else.
TABLE1_SPEC = MachineSpec(
    cores=32,
    sockets=4,
    l1_kib=8,
    l2_kib=64,
    l3_mib=1,
    tlb_entries=24,
    name="xeon-32core-scaled-1to4",
)

TABLE1_THREADS = (1, 4, 8, 12, 16)
TABLE1_SIZE = 393_216  # N, scaled from the paper's 1e8


@experiment("table1", "Parallel dot product: good vs bad-fs vs bad-ma")
def table1(ctx: PipelineContext) -> ExperimentResult:
    lab = Lab(spec=TABLE1_SPEC)
    pdot = get_workload("pdot")
    methods = [
        ("1: Good", Mode.GOOD),
        ("2: Bad, false sharing", Mode.BAD_FS),
        ("3: Bad, memory access", Mode.BAD_MA),
    ]
    cells = []
    seconds = {}
    for label, mode in methods:
        row = []
        for t in TABLE1_THREADS:
            cfg = RunConfig(threads=t, mode=mode, size=TABLE1_SIZE,
                            pattern="random")
            res = lab.simulate(pdot, cfg)
            seconds[(label, t)] = res.seconds
            row.append(f"{res.seconds * 1e3:.2f}ms")
        cells.append(row)
    lab.flush()
    text = render_grid(
        [m[0] for m in methods],
        [f"T={t}" for t in TABLE1_THREADS],
        cells,
        corner="Method",
        title=f"pdot simulated execution time, N={TABLE1_SIZE} "
              f"(32-core machine, scaled)",
    )
    from repro.utils.charts import series_chart

    text += "\n" + series_chart(
        [f"T={t}" for t in TABLE1_THREADS],
        {m[0]: [seconds[(m[0], t)] * 1e3 for t in TABLE1_THREADS]
         for m in methods},
        title="simulated milliseconds by thread count "
              "(flat rows = no parallel speedup)",
        unit="ms",
    )
    good1 = seconds[("1: Good", 1)]
    good16 = seconds[("1: Good", 16)]
    fs4 = seconds[("2: Bad, false sharing", 4)]
    ma1 = seconds[("3: Bad, memory access", 1)]
    text += (
        f"\nshape checks: good speedup T1->T16 = {good1 / good16:.1f}x "
        f"(paper 11.9x); bad-fs T=4 vs good T=1 = {fs4 / good1:.2f}x "
        f"(paper 1.8x, i.e. parallel slower than sequential); "
        f"bad-ma T=1 vs good T=1 = {ma1 / good1:.1f}x (paper 5.7x)"
    )
    return ExperimentResult(
        exp_id="table1",
        title="Motivating dot product",
        data={
            "seconds": {f"{k[0]}|{k[1]}": v for k, v in seconds.items()},
            "good_speedup": good1 / good16,
            "fs_t4_vs_good_t1": fs4 / good1,
            "ma_t1_vs_good_t1": ma1 / good1,
        },
        text=text,
        paper="Table 1: good scales 44.1s -> 3.7s; bad-fs stays ~76-79s at "
              "every thread count (worse than sequential); bad-ma is 5.7x "
              "sequential and converges to the bad-fs times when parallel.",
    )


@experiment("overhead", "Monitoring overhead: counting vs SHERIFF vs shadow")
def overhead(ctx: PipelineContext) -> ExperimentResult:
    # Representative runs: one mini-program and two suite programs.
    rows = []
    reports = {}
    samples = [
        ("pdot good T=6", get_workload("pdot"),
         RunConfig(threads=6, mode=Mode.GOOD, size=196_608)),
    ]
    from repro.suites import get_program
    from repro.suites.base import SuiteCase

    samples.append(("linear_regression 100MB -O2 T=6",
                    get_program("linear_regression"),
                    SuiteCase("100MB", "-O2", 6)))
    samples.append(("streamcluster simlarge -O2 T=8",
                    get_program("streamcluster"),
                    SuiteCase("simlarge", "-O2", 8)))
    for label, wl, cfg in samples:
        res = ctx.lab.simulate(wl, cfg)
        rep = overhead_report(res, TABLE2_EVENTS)
        reports[label] = rep.as_dict()
        rows.append([
            label,
            f"{res.seconds * 1e3:.3f}ms",
            f"{100 * rep.counting_overhead:.2f}%",
            f"{100 * (rep.sheriff_slowdown - 1):.0f}%",
            f"{rep.shadow_slowdown:.1f}x",
        ])
    from repro.utils.tables import render_table

    text = render_table(
        ["Run", "Base time", "Ours (counting)", "SHERIFF [21]", "Shadow [33]"],
        rows, title="Detection overhead by approach",
    )
    worst = max(r["counting_pct"] for r in reports.values())
    text += (f"\nworst counting overhead: {worst:.2f}% "
             f"(paper claims < 2%); SHERIFF ~20%, shadow-memory ~5x")
    return ExperimentResult(
        exp_id="overhead",
        title="Monitoring overhead",
        text=text,
        data={"reports": reports, "worst_counting_pct": worst},
        paper="Section 4: program slowdown under counting is at most 2%; "
              "[21] reports ~20%, [33] ~5x.",
    )
