"""Ablations the paper motivates but does not tabulate.

* classifier choice (Section 3: "after experimenting with several
  classifiers ... we selected J48");
* number of events (Section 6 future work: "how the effectiveness depends
  on the number and types of performance events");
* the contribution of the sequential Part B ("this indeed improved the
  classification accuracy", Section 2.2.2).
"""

from __future__ import annotations

from typing import Dict, List


from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.context import PipelineContext
from repro.ml.baselines_ml import KNN, GaussianNB, OneR, ZeroR
from repro.ml.c45 import C45Classifier
from repro.ml.validation import cross_validate, holdout_score
from repro.utils.tables import render_table


@experiment("ablation_classifiers", "Classifier comparison (why J48)")
def ablation_classifiers(ctx: PipelineContext) -> ExperimentResult:
    data = ctx.training.dataset
    contenders = [
        ("J48 (C4.5)", C45Classifier),
        ("J48 unpruned", lambda: C45Classifier(prune=False)),
        ("kNN (k=5)", KNN),
        ("NaiveBayes", GaussianNB),
        ("OneR", OneR),
        ("ZeroR", ZeroR),
    ]
    rows = []
    accs: Dict[str, float] = {}
    for label, factory in contenders:
        cm = cross_validate(factory, data, k=10)
        accs[label] = cm.accuracy
        rows.append([label, f"{100 * cm.accuracy:.2f}%",
                     f"{cm.correct}/{cm.total}"])
    text = render_table(["Classifier", "10-fold CV accuracy", "correct"],
                        rows, title="Classifier comparison on the training set")
    best = max(accs, key=accs.get)
    text += f"\nbest: {best}"
    return ExperimentResult(
        exp_id="ablation_classifiers",
        title="Classifier comparison",
        text=text,
        data={"accuracies": accs, "best": best},
        paper="Section 3: J48 produced the best classification results "
              "among the classifiers tried.",
    )


@experiment("ablation_events", "Accuracy vs number of events")
def ablation_events(ctx: PipelineContext) -> ExperimentResult:
    data = ctx.training.dataset
    # Rank features by how much the full tree relies on them, then by
    # univariate usefulness (single-feature stump accuracy).
    tree_order = ctx.detector.tree_events()
    remaining = [n for n in data.feature_names if n not in tree_order]

    def stump_acc(name: str) -> float:
        sub = data.select_features([name])
        return cross_validate(lambda: C45Classifier(max_depth=2), sub,
                              k=5).accuracy

    remaining.sort(key=stump_acc, reverse=True)
    order = tree_order + remaining
    rows = []
    accs: List[float] = []
    ks = [1, 2, 3, 4, 6, 8, 11, 15]
    for k in ks:
        names = order[:k]
        sub = data.select_features(names)
        cm = cross_validate(C45Classifier, sub, k=10)
        accs.append(cm.accuracy)
        rows.append([k, f"{100 * cm.accuracy:.2f}%",
                     ", ".join(names[:4]) + ("..." if k > 4 else "")])
    text = render_table(["# events", "CV accuracy", "events (first 4)"],
                        rows, title="Accuracy as events are added "
                                    "(tree-used events first)")
    from repro.utils.charts import sparkline

    text += f"\naccuracy trend ({ks[0]}..{ks[-1]} events): " + sparkline(accs)
    return ExperimentResult(
        exp_id="ablation_events",
        title="Events ablation",
        text=text,
        data={"ks": ks, "accuracies": accs, "order": order},
        paper="Section 6 lists the event-count dependence as future work; "
              "Figure 2 shows 4 events carry the decision.",
    )


@experiment("ablation_partb", "Value of the sequential training set")
def ablation_partb(ctx: PipelineContext) -> ExperimentResult:
    td = ctx.training
    full_cm = cross_validate(C45Classifier, td.dataset, k=10)
    a_cm = cross_validate(C45Classifier, td.dataset_a, k=10)
    # Train on Part A alone, test on Part B: does the classifier generalize
    # to sequential bad-ma it never saw?
    hold = holdout_score(C45Classifier, td.dataset_a, td.dataset_b)
    rows = [
        ["A+B, 10-fold CV", f"{100 * full_cm.accuracy:.2f}%"],
        ["A only, 10-fold CV", f"{100 * a_cm.accuracy:.2f}%"],
        ["train A, test B", f"{100 * hold.accuracy:.2f}%"],
    ]
    text = render_table(["Protocol", "Accuracy"], rows,
                        title="Contribution of the sequential Part B")
    badma_recall = hold.per_class().get("bad-ma", {}).get("recall", 0.0)
    text += (f"\nbad-ma recall when trained on A only: "
             f"{100 * badma_recall:.1f}% — Part B exists to fix exactly this")
    return ExperimentResult(
        exp_id="ablation_partb",
        title="Part B ablation",
        text=text,
        data={
            "full_cv": full_cm.accuracy,
            "a_only_cv": a_cm.accuracy,
            "a_to_b": hold.accuracy,
            "a_to_b_badma_recall": badma_recall,
        },
        paper="Section 2.2.2: adding the sequential set 'indeed improved the "
              "classification accuracy'.",
    )


@experiment("ablation_noise", "Sensitivity to measurement noise")
def ablation_noise(ctx: PipelineContext) -> ExperimentResult:
    from repro.core.lab import Lab
    from repro.core.training import collect_training_data

    quiet = Lab(noisy=False, disk_cache=ctx.lab.disk_cache)
    quiet._cache = ctx.lab._cache  # share the simulation cache
    td_quiet = collect_training_data(quiet)
    cm_quiet = cross_validate(C45Classifier, td_quiet.dataset, k=10)
    cm_noisy = cross_validate(C45Classifier, ctx.training.dataset, k=10)
    rows = [
        ["noisy PMU (default)", f"{100 * cm_noisy.accuracy:.2f}%"],
        ["noiseless counters", f"{100 * cm_quiet.accuracy:.2f}%"],
    ]
    text = render_table(["Condition", "10-fold CV accuracy"], rows,
                        title="Effect of counter noise and multiplexing")
    return ExperimentResult(
        exp_id="ablation_noise",
        title="Noise ablation",
        text=text,
        data={"noisy": cm_noisy.accuracy, "quiet": cm_quiet.accuracy},
        paper="Section 2.3 warns L1D counters are noisy; the method must "
              "tolerate counter noise to be practical.",
    )


@experiment("ablation_chunk", "Sensitivity to interleave granularity")
def ablation_chunk(ctx: PipelineContext) -> ExperimentResult:
    """The simulator interleaves threads in chunks of consecutive accesses.

    Chunk size is the one free parameter of the trace-driven substrate: it
    controls how often contended lines change hands.  The false-sharing
    signature must be robust to it — HITM rates shift by small factors, but
    the good/bad-fs gap stays orders of magnitude wide.
    """
    from repro.core.lab import Lab
    from repro.workloads.base import Mode, RunConfig
    from repro.workloads.registry import get_workload

    pdot = get_workload("pdot")
    cfg_good = RunConfig(threads=6, mode=Mode.GOOD, size=98_304)
    cfg_bad = RunConfig(threads=6, mode=Mode.BAD_FS, size=98_304)
    rows = []
    gaps = {}
    for chunk in (1, 2, 4, 8, 16):
        lab = Lab(chunk=chunk, disk_cache=ctx.lab.disk_cache)
        good = lab.simulate(pdot, cfg_good).normalized("SNOOP_RESPONSE.HITM")
        bad = lab.simulate(pdot, cfg_bad).normalized("SNOOP_RESPONSE.HITM")
        lab.flush()
        gap = bad / max(good, 1e-12)
        gaps[chunk] = gap
        rows.append([chunk, f"{good:.2e}", f"{bad:.2e}", f"{gap:.0f}x"])
    text = render_table(
        ["chunk", "good HITM/instr", "bad-fs HITM/instr", "gap"],
        rows, title="pdot false-sharing signature vs interleave granularity",
    )
    return ExperimentResult(
        exp_id="ablation_chunk",
        title="Interleave-granularity ablation",
        text=text,
        data={"gaps": gaps},
        paper="(design-choice ablation; the paper's hardware interleaves "
              "continuously)",
    )
