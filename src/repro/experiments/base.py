"""Experiment registry: one entry per paper table/figure.

Each experiment is a function ``(PipelineContext) -> ExperimentResult``; the
result carries both human-readable text (the regenerated table) and the raw
numbers so tests and EXPERIMENTS.md generation can assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ExperimentError
from repro.experiments.context import PipelineContext, default_context
from repro.telemetry.core import TELEMETRY


@dataclass
class ExperimentResult:
    """Outcome of regenerating one paper artifact."""

    exp_id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)
    paper: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = f"== {self.exp_id}: {self.title} =="
        parts = [header, self.text]
        if self.paper:
            parts.append(f"[paper] {self.paper}")
        return "\n".join(parts)


_REGISTRY: Dict[str, Callable[[PipelineContext], ExperimentResult]] = {}
_TITLES: Dict[str, str] = {}


def experiment(exp_id: str, title: str):
    """Decorator registering an experiment under a stable id."""

    def deco(fn: Callable[[PipelineContext], ExperimentResult]):
        if exp_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = fn
        _TITLES[exp_id] = title
        return fn

    return deco


def run_experiment(
    exp_id: str, ctx: Optional[PipelineContext] = None
) -> ExperimentResult:
    """Run one experiment by id (e.g. "table5", "figure2").

    Each run is an ``experiment.<id>`` telemetry span, so a full
    ``repro-experiment --all`` sweep decomposes phase by phase in the
    exported wall-time tree.
    """
    _ensure_loaded()
    try:
        fn = _REGISTRY[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
    with TELEMETRY.span(f"experiment.{exp_id}",
                        title=_TITLES.get(exp_id, "")):
        result = fn(ctx or default_context())
    TELEMETRY.count("experiments.runs")
    return result


def experiment_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def experiment_title(exp_id: str) -> str:
    _ensure_loaded()
    return _TITLES.get(exp_id, exp_id)


def _ensure_loaded() -> None:
    # Import the experiment modules for their registration side effects.
    from repro.experiments import (  # noqa: F401
        exp_ablations,
        exp_crosscheck,
        exp_detection,
        exp_future,
        exp_perf,
        exp_serving,
        exp_training,
    )
