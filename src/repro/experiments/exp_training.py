"""Experiments for the training half of the paper: Tables 2-4, Figure 2."""

from __future__ import annotations

from repro.core.event_selection import select_events
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.context import PipelineContext
from repro.pmu.events import event_number
from repro.utils.tables import render_table


@experiment("table2", "Selected performance events (two-pass 2x heuristic)")
def table2(ctx: PipelineContext) -> ExperimentResult:
    sel = select_events(ctx.lab)
    cmp = sel.table2_comparison()
    rows = []
    for e in sel.with_normalizer():
        num = event_number(e)
        rows.append([
            num if num is not None else "-",
            f"{e.code:02X}",
            f"{e.umask:02X}",
            e.name,
            "pass1" if e in sel.pass1 else ("pass2" if e in sel.pass2 else "norm"),
            "yes" if num is not None else "no",
        ])
    text = render_table(
        ["Table2 #", "Code", "Umask", "Event", "Selected in", "In paper set"],
        rows,
        title="Events passing the 2x-majority selection (+ normalizer)",
    )
    text += (
        f"\nagreed with paper: {len(cmp['agreed'])}/15"
        f"  missed: {cmp['missed']}"
        f"  extra beyond paper's 16: {len(cmp['extra'])}"
    )
    return ExperimentResult(
        exp_id="table2",
        title="Event selection",
        text=text,
        data={
            "selected": sel.selected_names,
            "agreed": cmp["agreed"],
            "missed": cmp["missed"],
            "extra": cmp["extra"],
            "n_pass1": len(sel.pass1),
            "n_pass2": len(sel.pass2),
        },
        paper="Table 2 lists 15 selected events + Instructions_Retired; "
              "MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM notably absent.",
    )


@experiment("table3", "Training-data composition")
def table3(ctx: PipelineContext) -> ExperimentResult:
    td = ctx.training
    s = td.summary()
    rows = [
        ["Part A (multi-threaded)", s["part_a"]["good"], s["part_a"]["bad-fs"],
         s["part_a"]["bad-ma"], s["part_a"]["total"]],
        ["Part B (sequential only)", s["part_b"]["good"], "-",
         s["part_b"]["bad-ma"], s["part_b"]["total"]],
        ["Full training data set", s["full"]["good"], s["full"]["bad-fs"],
         s["full"]["bad-ma"], s["full"]["total"]],
    ]
    text = render_table(
        ["", "good", "bad-fs", "bad-ma", "Total"], rows,
        title="Summary of collected training data (after screening)",
    )
    text += (
        f"\ninitial: A={s['part_a_initial']['total']} "
        f"(paper 675), B={s['part_b_initial']['total']} (paper 271); "
        f"screened out: A={td.screening_a.removed_by_mode} (paper: 22 bad-ma), "
        f"B={td.screening_b.removed_by_mode} (paper: 41 good + 3 bad-ma)"
    )
    return ExperimentResult(
        exp_id="table3",
        title="Training data",
        text=text,
        data={
            "summary": s,
            "removed_a": td.screening_a.removed_by_mode,
            "removed_b": td.screening_b.removed_by_mode,
        },
        paper="Table 3: A = 324/216/113 = 653, B = 130/-/97 = 227, "
              "full set = 454/216/210 = 880.",
    )


@experiment("table4", "Stratified 10-fold cross-validation")
def table4(ctx: PipelineContext) -> ExperimentResult:
    cm = ctx.detector.cross_validate(k=10)
    text = cm.render("Confusion matrix, stratified 10-fold CV")
    text += (
        f"\noverall success rate: {cm.correct}/{cm.total}"
        f" = {100 * cm.accuracy:.1f}% (paper: 875/880 = 99.4%)"
    )
    return ExperimentResult(
        exp_id="table4",
        title="Cross-validation confusion matrix",
        text=text,
        data={
            "accuracy": cm.accuracy,
            "correct": cm.correct,
            "total": cm.total,
            "classes": cm.classes,
            "matrix": cm.matrix.tolist(),
        },
        paper="Table 4: good 453/454 correct, bad-fs 216/216, bad-ma 206/210;"
              " 875/880 = 99.4%.",
    )


@experiment("figure2", "The learned decision tree")
def figure2(ctx: PipelineContext) -> ExperimentResult:
    det = ctx.detector
    clf = det.classifier
    text = det.render_tree()
    nums = det.tree_event_numbers()
    text += (
        f"\nleaves: {clf.n_leaves} (paper: 6), nodes: {clf.n_nodes} "
        f"(paper: 11), events used (Table 2 #): {nums} (paper: 11, 6, 14, 13)"
    )
    root = clf.root_
    root_event = clf.feature_names_[root.feature] if not root.is_leaf else None
    text += f"\nroot test: {root_event} (paper: event 11, Snoop_Response.HIT'M')"
    return ExperimentResult(
        exp_id="figure2",
        title="Decision tree",
        text=text,
        data={
            "n_leaves": clf.n_leaves,
            "n_nodes": clf.n_nodes,
            "events_used": nums,
            "root_event": root_event,
            "root_threshold": None if root.is_leaf else root.threshold,
            "rendering": det.render_tree(),
        },
        paper="Figure 2: 6 leaves / 11 nodes; event 11 (Snoop HITM) alone "
              "decides bad-fs at the root; events 6, 14, 13 separate "
              "good from bad-ma.",
    )
