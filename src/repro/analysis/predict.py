"""Simulation-free false-sharing prediction from symbolic access plans.

The trace-based :class:`~repro.analysis.sharing.StaticSharingAnalyzer`
decides sharing categories from materialized address streams.  This module
reaches the same verdict vocabulary *without a trace*: it walks an
:class:`~repro.workloads.plan.AccessPlan` — thread x stride x range region
uses over named symbols — and computes per-line thread overlap, write
intent and timing symbolically:

* a region use expands to the cache lines its element range covers, with
  exact per-line element counts, byte-offset spans and (for linear sweeps)
  visit-position windows;
* lines touched by several threads are classified with the same four-way
  rule as the trace analyzer: read-shared when nobody writes, true-shared
  when a 4-byte word is written by one thread and touched by another,
  false-shared otherwise;
* contention uses the same hand-off gate — a writer must temporally
  overlap another user of the line — and the same implicated-instruction
  significance, compared against the same 1e-3 threshold;
* per-thread locality profiles estimate line re-fetch rates from each
  use's ``bursts_per_line``, applying the trace analyzer's footprint and
  refetch-rate thresholds for the bad-ma verdict.

What the symbolic pass can *prove* is layout: which named objects share a
written line, and which threads write them (counts are exact — they come
from the same arithmetic the generators use).  What it *estimates* is
timing: visit-position windows and burst counts are models, so borderline
hand-off/contention and refetch-rate calls can differ from the trace
analyzer.  The validation harness (:mod:`repro.analysis.validate`)
measures exactly that gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.sharing import (
    HOSTILE_MIN_FOOTPRINT,
    HOSTILE_REFETCH_RATE,
    NEAR_MISS_MARGIN,
    SIGNIFICANCE_THRESHOLD,
)
from repro.memory.layout import LINE_SIZE
from repro.utils.tables import render_table
from repro.workloads.plan import AccessPlan, RegionUse


@dataclass(frozen=True)
class PredictedUse:
    """One thread's predicted use of one cache line."""

    tid: int
    reads: float
    writes: float
    pos: Tuple[float, float]
    touch_span: Tuple[int, int]
    write_span: Optional[Tuple[int, int]]

    @property
    def accesses(self) -> float:
        return self.reads + self.writes

    def overlaps(self, other: "PredictedUse") -> bool:
        """Strict position-window overlap (shared endpoints are hand-offs)."""
        return self.pos[0] < other.pos[1] and other.pos[0] < self.pos[1]


@dataclass
class PredictedLine:
    """Predicted classification and evidence for one shared cache line."""

    line: int
    category: str  # "read-shared" | "true-shared" | "false-shared"
    uses: List[PredictedUse]
    objects: List[str] = field(default_factory=list)
    contended: bool = False
    significance: float = 0.0

    @property
    def address(self) -> int:
        return self.line * LINE_SIZE

    @property
    def threads(self) -> List[int]:
        return [u.tid for u in self.uses]

    @property
    def writers(self) -> List[int]:
        return [u.tid for u in self.uses if u.writes]

    def evidence(self) -> Dict[int, Tuple[int, int]]:
        return {u.tid: u.write_span for u in self.uses
                if u.write_span is not None}

    def to_dict(self) -> Dict[str, object]:
        return {
            "line": int(self.line),
            "address": f"0x{self.address:x}",
            "category": self.category,
            "contended": self.contended,
            "significance": self.significance,
            "objects": list(self.objects),
            "threads": [
                {
                    "tid": u.tid,
                    "reads": round(u.reads, 3),
                    "writes": round(u.writes, 3),
                    "pos": [round(u.pos[0], 4), round(u.pos[1], 4)],
                    "touch_span": list(u.touch_span),
                    "write_span": (None if u.write_span is None
                                   else list(u.write_span)),
                }
                for u in self.uses
            ],
        }


@dataclass(frozen=True)
class PredictedProfile:
    """Predicted locality profile of one thread."""

    tid: int
    n_accesses: int
    footprint_lines: int
    refetch_rate: float

    @property
    def hostile(self) -> bool:
        return bool(self.footprint_lines >= HOSTILE_MIN_FOOTPRINT
                    and self.refetch_rate > HOSTILE_REFETCH_RATE)


@dataclass(frozen=True)
class PredictedNearMiss:
    """Two threads predicted to write tight against a line seam."""

    line: int
    tid_low: int
    tid_high: int
    slack_bytes: int
    objects: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"line": int(self.line), "tid_low": int(self.tid_low),
                "tid_high": int(self.tid_high),
                "slack_bytes": int(self.slack_bytes),
                "objects": list(self.objects)}


@dataclass
class Prediction:
    """Full predictive-analysis result for one access plan."""

    name: str
    nthreads: int
    total_instructions: int
    n_lines: int
    n_private: int
    lines: List[PredictedLine]
    profiles: List[PredictedProfile]
    near_misses: List[PredictedNearMiss]
    plan: AccessPlan

    def category_counts(self) -> Dict[str, int]:
        counts = {"private": self.n_private, "read-shared": 0,
                  "true-shared": 0, "false-shared": 0}
        for pl in self.lines:
            counts[pl.category] += 1
        return counts

    def false_shared(self, contended_only: bool = True) -> List[PredictedLine]:
        out = [pl for pl in self.lines
               if pl.category == "false-shared"
               and (pl.contended or not contended_only)]
        out.sort(key=lambda pl: pl.significance, reverse=True)
        return out

    @property
    def fs_significance(self) -> float:
        return sum(pl.significance for pl in self.false_shared())

    @property
    def has_false_sharing(self) -> bool:
        return self.fs_significance > SIGNIFICANCE_THRESHOLD

    @property
    def hostile_threads(self) -> List[int]:
        return [p.tid for p in self.profiles if p.hostile]

    @property
    def verdict(self) -> str:
        if self.has_false_sharing:
            return "bad-fs"
        if self.hostile_threads:
            return "bad-ma"
        return "good"

    def object_sharing(self) -> Dict[str, str]:
        """Worst predicted sharing category per named object.

        Severity order: private < read-shared < true-shared < false-shared
        (false sharing last because it is the category the pass exists to
        flag — true sharing on the sync word is expected).
        """
        rank = {"private": 0, "read-shared": 1, "true-shared": 2,
                "false-shared": 3}
        out: Dict[str, str] = {s.name: "private"
                               for s in self.plan.symbols}
        for pl in self.lines:
            cat = pl.category
            if cat == "false-shared" and not pl.contended:
                cat = "read-shared" if not pl.writers else cat
            for name in pl.objects:
                if rank[cat] > rank[out.get(name, "private")]:
                    out[name] = cat
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "nthreads": self.nthreads,
            "total_instructions": int(self.total_instructions),
            "n_lines": int(self.n_lines),
            "category_counts": self.category_counts(),
            "fs_significance": self.fs_significance,
            "verdict": self.verdict,
            "hostile_threads": self.hostile_threads,
            "object_sharing": dict(sorted(self.object_sharing().items())),
            "near_misses": [nm.to_dict() for nm in self.near_misses],
            "shared_lines": [pl.to_dict() for pl in self.lines],
            "profiles": [
                {
                    "tid": p.tid,
                    "n_accesses": int(p.n_accesses),
                    "footprint_lines": int(p.footprint_lines),
                    "refetch_rate": p.refetch_rate,
                    "hostile": p.hostile,
                }
                for p in self.profiles
            ],
        }

    def render(self, top: int = 12) -> str:
        counts = self.category_counts()
        out = [
            f"{self.name}: {self.n_lines} lines predicted — "
            + ", ".join(f"{counts[c]} {c}" for c in
                        ("private", "read-shared", "true-shared",
                         "false-shared")),
            f"predicted verdict: {self.verdict}   "
            f"fs significance: {self.fs_significance:.3e} "
            f"(threshold {SIGNIFICANCE_THRESHOLD:.0e})",
        ]
        hot = self.false_shared(contended_only=False)[:top]
        if hot:
            rows = []
            for pl in hot:
                rows.append([
                    f"0x{pl.address:x}",
                    ", ".join(pl.objects) or "-",
                    len(pl.writers),
                    "yes" if pl.contended else "no",
                    f"{pl.significance:.2e}",
                ])
            out.append(render_table(
                ["line addr", "objects", "writers", "contended",
                 "significance"],
                rows, title="Predicted false-shared lines (hottest first)",
            ))
        if self.near_misses:
            out.append(
                f"{len(self.near_misses)} predicted near miss(es): "
                + ", ".join(
                    f"0x{nm.line * LINE_SIZE:x}"
                    f"(T{nm.tid_low}|T{nm.tid_high}, {nm.slack_bytes}B)"
                    for nm in self.near_misses[:6])
            )
        if self.hostile_threads:
            out.append("predicted cache-hostile threads: "
                       + ", ".join(f"T{t}" for t in self.hostile_threads))
        return "\n".join(out)


# -------------------------------------------------------------- expansion

class _Expanded:
    """Per-(use, line) expansion of a plan, in flat numpy columns."""

    __slots__ = ("use_idx", "line", "tid", "reads", "writes",
                 "off_lo", "off_hi", "pos_lo", "pos_hi",
                 "elem_lo", "n_elems", "written")

    def __init__(self, plan: AccessPlan) -> None:
        cols: List[Tuple] = []
        for u_i, use in enumerate(plan.uses):
            sym = plan.symbols[use.symbol]
            idx = np.arange(use.start, use.stop, use.step, dtype=np.int64)
            addrs = sym.base + idx * sym.effective_stride
            lines = addrs >> 6
            offs = addrs & (LINE_SIZE - 1)
            n = idx.size
            bounds = np.flatnonzero(np.r_[True, lines[1:] != lines[:-1]])
            ends = np.r_[bounds[1:], n]
            counts = ends - bounds
            frac = counts / float(n)
            if use.order == "linear":
                pos_lo = use.phase + bounds / float(n)
                pos_hi = use.phase + ends / float(n)
            else:
                pos_lo = np.full(bounds.size, float(use.phase))
                pos_hi = np.full(bounds.size, use.phase + 1.0)
            cols.append((
                np.full(bounds.size, u_i, dtype=np.int64),
                lines[bounds],
                np.full(bounds.size, use.tid, dtype=np.int64),
                use.reads * frac,
                use.writes * frac,
                offs[bounds],
                offs[ends - 1],
                pos_lo,
                pos_hi,
                idx[bounds],
                counts,
                np.full(bounds.size, bool(use.writes)),
            ))
        names = self.__slots__
        for i, name in enumerate(names):
            setattr(self, name, np.concatenate([c[i] for c in cols])
                    if cols else np.array([], dtype=np.int64))


class PredictiveAnalyzer:
    """Computes a :class:`Prediction` from an access plan — no trace."""

    def analyze(self, plan: AccessPlan) -> Prediction:
        nt = plan.nthreads
        total_instr = plan.total_instructions
        ex = _Expanded(plan)
        profiles = self._profiles(plan, ex)
        if ex.line.size == 0:
            return Prediction(plan.name, nt, total_instr, 0, 0, [],
                              profiles, [], plan)

        # ---- aggregate the (use, line) records by (line, tid) ------------
        key = ex.line * nt + ex.tid
        order = np.argsort(key, kind="stable")
        skey = key[order]
        starts = np.flatnonzero(np.r_[True, skey[1:] != skey[:-1]])
        seg_ends = np.r_[starts[1:], skey.size]
        g_line = skey[starts] // nt
        g_tid = (skey[starts] % nt).astype(np.int64)
        g_reads = np.add.reduceat(ex.reads[order], starts)
        g_writes = np.add.reduceat(ex.writes[order], starts)
        g_tmin = np.minimum.reduceat(ex.off_lo[order], starts)
        g_tmax = np.maximum.reduceat(ex.off_hi[order], starts)
        wmask = ex.written[order]
        g_wmin = np.minimum.reduceat(
            np.where(wmask, ex.off_lo[order], LINE_SIZE), starts)
        g_wmax = np.maximum.reduceat(
            np.where(wmask, ex.off_hi[order], -1), starts)
        g_pmin = np.minimum.reduceat(ex.pos_lo[order], starts)
        g_pmax = np.maximum.reduceat(ex.pos_hi[order], starts)

        # ---- group by line ----------------------------------------------
        line_starts = np.flatnonzero(np.r_[True, g_line[1:] != g_line[:-1]])
        line_ends = np.r_[line_starts[1:], g_line.size]
        n_lines = line_starts.size
        multi = (line_ends - line_starts) > 1
        n_private = int(n_lines - np.count_nonzero(multi))

        rec_order = order  # per-record permutation, for word checks
        lines_out: List[PredictedLine] = []
        for s, e in zip(line_starts[multi], line_ends[multi]):
            line = int(g_line[s])
            uses = [
                PredictedUse(
                    tid=int(g_tid[g]),
                    reads=float(g_reads[g]),
                    writes=float(g_writes[g]),
                    pos=(float(g_pmin[g]), float(g_pmax[g])),
                    touch_span=(int(g_tmin[g]), int(g_tmax[g])),
                    write_span=((int(g_wmin[g]), int(g_wmax[g]))
                                if g_writes[g] > 0 else None),
                )
                for g in range(s, e)
            ]
            conflicted = (len({u.tid for u in uses if u.writes}) > 0
                          and self._word_conflict(plan, ex, rec_order,
                                                  starts[s], seg_ends[e - 1],
                                                  line))
            pl = self._classify(line, uses, conflicted, plan, total_instr)
            pl.objects = [sym.name
                          for sym in plan.symbols.line_owners(line)]
            lines_out.append(pl)

        near = self._near_misses(plan, g_line, g_tid, g_writes, g_pmin,
                                 g_pmax, g_wmin, g_wmax, line_starts,
                                 line_ends)
        return Prediction(plan.name, nt, total_instr, int(n_lines),
                          n_private, lines_out, profiles, near, plan)

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _word_conflict(plan: AccessPlan, ex: _Expanded,
                       order: np.ndarray, rec_lo: int, rec_hi: int,
                       line: int) -> bool:
        """Whether some 4-byte word of ``line`` is written by one thread
        and touched by another (the true-sharing rule)."""
        touched: Dict[int, set] = {}
        written: Dict[int, set] = {}
        for r in order[rec_lo:rec_hi].tolist():
            if ex.line[r] != line:
                continue
            use = plan.uses[int(ex.use_idx[r])]
            sym = plan.symbols[use.symbol]
            idx = ex.elem_lo[r] + use.step * np.arange(ex.n_elems[r])
            words = (sym.base + idx * sym.effective_stride) >> 2
            tid = int(ex.tid[r])
            touched.setdefault(tid, set()).update(words.tolist())
            if use.writes:
                written.setdefault(tid, set()).update(words.tolist())
        for tid, words in written.items():
            for other, tw in touched.items():
                if other != tid and words & tw:
                    return True
        return False

    @staticmethod
    def _classify(line: int, uses: List[PredictedUse], conflicted: bool,
                  plan: AccessPlan, total_instr: int) -> PredictedLine:
        writers = [u for u in uses if u.writes]
        if not writers:
            return PredictedLine(line, "read-shared", uses)
        if conflicted:
            return PredictedLine(line, "true-shared", uses)
        pl = PredictedLine(line, "false-shared", uses)
        implicated = set()
        for w in writers:
            for u in uses:
                if u.tid != w.tid and w.overlaps(u):
                    implicated.add(w.tid)
                    implicated.add(u.tid)
        if implicated and total_instr > 0:
            instr = sum(u.accesses * plan.ipa[u.tid]
                        for u in uses if u.tid in implicated)
            pl.contended = True
            pl.significance = instr / total_instr
        return pl

    @staticmethod
    def _profiles(plan: AccessPlan, ex: _Expanded) -> List[PredictedProfile]:
        out = []
        lines_per_use = np.bincount(ex.use_idx,
                                    minlength=len(plan.uses)).astype(float)
        for tid in range(plan.nthreads):
            n_acc = plan.thread_accesses(tid)
            footprint = int(np.unique(ex.line[ex.tid == tid]).size)
            refetch = 0.0
            for u_i, use in enumerate(plan.uses):
                if use.tid != tid:
                    continue
                n_l = lines_per_use[u_i]
                if n_l <= 0:
                    continue
                tpl = use.accesses / n_l
                refetch += n_l * min(use.bursts_per_line - 1.0,
                                     max(tpl - 1.0, 0.0))
            rate = float(refetch / n_acc) if n_acc else 0.0
            out.append(PredictedProfile(tid, n_acc, footprint, rate))
        return out

    @staticmethod
    def _near_misses(plan, g_line, g_tid, g_writes, g_pmin, g_pmax,
                     g_wmin, g_wmax, line_starts,
                     line_ends) -> List[PredictedNearMiss]:
        """Sole-writer adjacent-line pairs predicted tight at the seam."""
        n = line_starts.size
        writer_rows = np.full(n, -1, dtype=np.int64)
        writer_count = np.zeros(n, dtype=np.int64)
        for i, (s, e) in enumerate(zip(line_starts, line_ends)):
            for g in range(s, e):
                if g_writes[g] > 0:
                    writer_count[i] += 1
                    writer_rows[i] = g
        sole = np.flatnonzero(writer_count == 1)
        out: List[PredictedNearMiss] = []
        lined = {int(g_line[line_starts[i]]): i for i in sole.tolist()}
        for i in sole.tolist():
            line = int(g_line[line_starts[i]])
            j = lined.get(line + 1)
            if j is None:
                continue
            a, b = writer_rows[i], writer_rows[j]
            if g_tid[a] == g_tid[b]:
                continue
            if not (g_pmin[a] < g_pmax[b] and g_pmin[b] < g_pmax[a]):
                continue
            slack = int(LINE_SIZE - 1 - g_wmax[a] + g_wmin[b])
            if slack >= NEAR_MISS_MARGIN:
                continue
            objs = tuple(sorted(
                {s.name for s in plan.symbols.line_owners(line)}
                | {s.name for s in plan.symbols.line_owners(line + 1)}
            ))
            out.append(PredictedNearMiss(line, int(g_tid[a]), int(g_tid[b]),
                                         slack, objs))
        return out


def predict_plan(plan: AccessPlan) -> Prediction:
    """One-shot convenience: predictive report of an access plan."""
    return PredictiveAnalyzer().analyze(plan)
