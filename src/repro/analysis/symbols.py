"""Address-range symbolization: cache lines back to named workload objects.

The detection side of the pipeline speaks in cache-line addresses; users
think in *objects* — "the per-thread accumulator array", "column 3 of B".
This module provides the mapping between the two, the idiom mtrace's
``FalseSharing`` handler builds with ``objects_on_cline(addr)``: an
interval-indexed table of named address ranges with line-granular queries.

A :class:`SymbolTable` is populated while a workload *plans* its layout
(see :mod:`repro.workloads.plan`): every allocation the trace generator
performs — arrays, per-thread slots, gather tables, stack slots, the sync
word — is mirrored as a :class:`Symbol` carrying its name, owning thread
(for per-thread data), element geometry and logical group.  Queries:

* ``objects_on_line(addr)`` — all named objects colliding on the cache
  line holding ``addr`` (> 1 object on a written line is the layout smell
  the predictive lint rules act on);
* ``line_owners(line)`` — the same by line index;
* ``resolve(addr)`` — the object(s) covering one byte address, with the
  field-level label (``"psum[t2]+8"``).

The table is deliberately reusable infrastructure: it is the line→object
mapping a streaming localizer needs to turn per-line HITM verdicts into
named findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.memory.layout import LINE_SIZE, ArrayLayout, line_of

#: Symbol kinds, in the vocabulary of the workload generators.
SYMBOL_KINDS = ("array", "slot", "struct", "table", "stack", "sync", "merge")


@dataclass(frozen=True)
class Symbol:
    """One named object in a workload's simulated address space.

    ``tid`` is the owning thread for per-thread data (None for shared
    objects); ``group`` names the logical family a per-thread symbol
    belongs to (all of ``psum[t0..t3]`` share group ``"psum"``), which is
    how the lint rules recognize a packed per-thread slot array as one
    object-level bug rather than N line-level ones.
    """

    name: str
    base: int
    size: int
    kind: str = "array"
    tid: Optional[int] = None
    elem_size: int = 8
    stride: int = 0  # 0 means "use elem_size"
    group: str = ""

    def __post_init__(self) -> None:
        if self.base < 0 or self.size < 0:
            raise ValueError("symbol needs base >= 0 and size >= 0")
        if self.kind not in SYMBOL_KINDS:
            raise ValueError(
                f"unknown symbol kind {self.kind!r}; known: {SYMBOL_KINDS}"
            )
        if self.elem_size <= 0:
            raise ValueError("elem_size must be positive")

    @property
    def end(self) -> int:
        """One past the last byte of the object."""
        return self.base + self.size

    @property
    def effective_stride(self) -> int:
        return self.stride or self.elem_size

    @property
    def length(self) -> int:
        """Element count implied by size and stride."""
        if self.size == 0:
            return 0
        return 1 + (self.size - self.elem_size) // self.effective_stride

    @property
    def first_line(self) -> int:
        return int(line_of(self.base))

    @property
    def last_line(self) -> int:
        if self.size == 0:
            return int(line_of(self.base))
        return int(line_of(self.end - 1))

    def layout(self) -> ArrayLayout:
        """The object's element geometry as an :class:`ArrayLayout`."""
        return ArrayLayout(self.base, self.elem_size, self.length,
                           self.stride)

    def covers(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps_line(self, line: int) -> bool:
        return self.first_line <= line <= self.last_line

    def field_label(self, addr: int) -> str:
        """Field-level label for a byte address inside the object."""
        if not self.covers(addr):
            raise ValueError(f"0x{addr:x} is outside {self.name}")
        off = addr - self.base
        return self.name if off == 0 else f"{self.name}+{off}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "base": int(self.base),
            "size": int(self.size),
            "kind": self.kind,
            "tid": self.tid,
            "elem_size": int(self.elem_size),
            "stride": int(self.stride),
            "group": self.group,
            "lines": [self.first_line, self.last_line],
        }


class SymbolTable:
    """Interval-indexed map from address ranges to named objects."""

    def __init__(self) -> None:
        self._symbols: List[Symbol] = []
        self._by_name: Dict[str, Symbol] = {}
        self._starts: Optional[np.ndarray] = None
        self._ends: Optional[np.ndarray] = None
        self._order: Optional[np.ndarray] = None

    # ------------------------------------------------------------- building

    def add(self, symbol: Symbol) -> Symbol:
        if symbol.name in self._by_name:
            raise ValueError(f"duplicate symbol name {symbol.name!r}")
        self._symbols.append(symbol)
        self._by_name[symbol.name] = symbol
        self._starts = self._ends = self._order = None
        return symbol

    def add_region(self, name: str, base: int, size: int, **kw) -> Symbol:
        return self.add(Symbol(name, base, size, **kw))

    def add_array(self, name: str, layout: ArrayLayout, **kw) -> Symbol:
        """Register an allocated :class:`ArrayLayout` under ``name``."""
        return self.add(Symbol(
            name, layout.base, layout.size_bytes,
            elem_size=layout.elem_size, stride=layout.stride, **kw,
        ))

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def __getitem__(self, name: str) -> Symbol:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def symbols(self) -> List[Symbol]:
        return list(self._symbols)

    def _index(self) -> None:
        if self._starts is not None:
            return
        starts = np.array([s.base for s in self._symbols], dtype=np.int64)
        self._order = np.argsort(starts, kind="stable")
        self._starts = starts[self._order]
        self._ends = np.array(
            [self._symbols[i].end for i in self._order.tolist()],
            dtype=np.int64,
        )

    def _overlapping(self, lo: int, hi: int) -> List[Symbol]:
        """Symbols whose [base, end) intersects [lo, hi), in base order."""
        if not self._symbols or hi <= lo:
            return []
        self._index()
        assert self._starts is not None
        mask = (self._starts < hi) & (self._ends > lo)
        return [self._symbols[i] for i in self._order[mask].tolist()]

    def resolve(self, addr: int) -> List[Symbol]:
        """The object(s) covering one byte address (usually 0 or 1)."""
        return self._overlapping(addr, addr + 1)

    def objects_on_line(self, addr: int,
                        line_size: int = LINE_SIZE) -> List[Symbol]:
        """All objects colliding on the cache line holding ``addr``.

        The mtrace ``objects_on_cline`` idiom: more than one returned
        object means distinct named data share the line — the precondition
        for false sharing by layout.
        """
        lo = int(line_of(addr, line_size)) * line_size
        return self._overlapping(lo, lo + line_size)

    def line_owners(self, line: int,
                    line_size: int = LINE_SIZE) -> List[Symbol]:
        """``objects_on_line`` by line index instead of byte address."""
        return self._overlapping(line * line_size, (line + 1) * line_size)

    def lines(self) -> List[int]:
        """Every line index covered by at least one symbol, ascending."""
        out: set = set()
        for s in self._symbols:
            if s.size:
                out.update(range(s.first_line, s.last_line + 1))
        return sorted(out)

    def label(self, addr: int) -> str:
        """Best-effort field-level label for an address.

        Falls back to the owning object of the *line* (allocator padding
        inside a region belongs to its object for attribution purposes),
        then to a raw hex label.
        """
        hits = self.resolve(addr)
        if hits:
            return hits[0].field_label(addr)
        on_line = self.objects_on_line(addr)
        if on_line:
            return f"{on_line[0].name}~"
        return f"0x{addr:x}"

    # ------------------------------------------------------------ rendering

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_symbols": len(self._symbols),
            "symbols": [s.to_dict() for s in
                        sorted(self._symbols, key=lambda s: s.base)],
        }

    def render(self) -> str:
        from repro.utils.tables import render_table

        rows = []
        for s in sorted(self._symbols, key=lambda s: s.base):
            rows.append([
                s.name, f"0x{s.base:x}", s.size, s.kind,
                "-" if s.tid is None else f"T{s.tid}",
                f"{s.first_line}..{s.last_line}",
            ])
        return render_table(
            ["object", "base", "bytes", "kind", "owner", "lines"],
            rows, title=f"Symbol table ({len(rows)} objects)",
        )
