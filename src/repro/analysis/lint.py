"""Rule engine over static sharing facts: a false-sharing *lint*.

Each rule turns :class:`~repro.analysis.sharing.SharingReport` facts into
structured :class:`Finding`s a developer can act on:

* **FS001** — a contended false-shared line (the bug itself), with a
  padding fix sized by replaying
  :meth:`~repro.core.advisor.FalseSharingAdvisor.pad_trace`'s layout
  transformation;
* **FS002** — adjacent-line near-miss: two threads' write regions abut a
  line boundary closely enough that a small layout change (one more field,
  a different allocator) would fuse them onto one line — the kind of
  latent bug SHERIFF's per-thread page twinning defuses at runtime;
* **FS003** — cache-hostile stride: a thread re-fetches lines it let go
  cold over an uncacheable footprint (the bad-ma signature);
* **FS004** — unpadded per-thread struct: the writers' byte spans on a
  false-shared line form slot-sized per-thread ranges, the classic
  ``struct { ... } per_thread[NTHREADS]`` layout Figure 1 warns about.

Four further rules are *layout-aware*: they run over a symbolic
:class:`~repro.analysis.predict.Prediction` (no trace needed) and speak in
object names:

* **FS005** — incidental adjacency: hot fields of *unrelated* per-thread
  objects collide on one contended line (not one packed slot array — that
  is FS006's shape);
* **FS006** — allocator co-location: a per-thread slot/struct group whose
  member pitch is smaller than a cache line, so several threads' private
  data shares lines by construction;
* **FS007** — interleaved partition: a shared written array whose
  thread-partition interleaves *within* cache lines (element-cyclic
  ownership — pmatmult's bad-fs shape);
* **FS008** — under-aligned base: a written object whose base address is
  not line-aligned straddles into a neighbouring object's line.

Findings carry the colliding object names and a stable ``fingerprint`` so
a committed baseline can suppress known findings and CI can fail only on
new ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.sharing import (
    NEAR_MISS_MARGIN,
    SIGNIFICANCE_THRESHOLD,
    SharingReport,
    StaticSharingAnalyzer,
)
from repro.core.advisor import ContendedLine, FalseSharingAdvisor
from repro.memory.layout import LINE_SIZE
from repro.trace.access import ProgramTrace
from repro.utils.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.predict import Prediction

#: FS001 escalates from warning to error at this significance.
ERROR_SIGNIFICANCE = 1e-2

#: FS004: a written span at most this wide reads as one struct slot.
SLOT_SPAN = 16


@dataclass
class Finding:
    """One lint finding (rule hit) with its evidence and suggested fix."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    message: str
    lines: List[int] = field(default_factory=list)
    threads: List[int] = field(default_factory=list)
    suggestion: str = ""
    data: Dict[str, object] = field(default_factory=dict)
    #: Named objects/fields implicated (symbolizer output), if known.
    objects: List[str] = field(default_factory=list)
    #: Identity of the analyzed configuration (workload/mode/threads);
    #: part of the fingerprint so baselines distinguish configurations.
    scope: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable short id for baselining: same rule + scope + evidence
        location ⇒ same fingerprint across runs and releases."""
        basis = "|".join((
            self.rule,
            self.scope,
            ",".join(sorted(self.objects)),
            ",".join(str(int(x)) for x in self.lines),
            ",".join(str(int(t)) for t in self.threads),
        ))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:12]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "lines": [int(x) for x in self.lines],
            "threads": [int(t) for t in self.threads],
            "suggestion": self.suggestion,
            "data": self.data,
            "objects": list(self.objects),
            "scope": self.scope,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            severity=str(payload["severity"]),
            message=str(payload.get("message", "")),
            lines=[int(x) for x in payload.get("lines", [])],  # type: ignore[union-attr]
            threads=[int(t) for t in payload.get("threads", [])],  # type: ignore[union-attr]
            suggestion=str(payload.get("suggestion", "")),
            data=dict(payload.get("data", {})),  # type: ignore[arg-type]
            objects=[str(o) for o in payload.get("objects", [])],  # type: ignore[union-attr]
            scope=str(payload.get("scope", "")),
        )

    def render(self) -> str:
        where = ", ".join(f"0x{x * LINE_SIZE:x}" for x in self.lines)
        out = f"{self.rule} [{self.severity}] {where}: {self.message}"
        if self.objects:
            out += f"\n      objects: {', '.join(self.objects)}"
        if self.suggestion:
            out += f"\n      fix: {self.suggestion}"
        out += f"\n      id: {self.fingerprint}"
        return out


class SharingLinter:
    """Runs every FS rule over a trace (or a precomputed report)."""

    RULES = ("FS001", "FS002", "FS003", "FS004",
             "FS005", "FS006", "FS007", "FS008")

    def __init__(self, analyzer: Optional[StaticSharingAnalyzer] = None,
                 advisor: Optional[FalseSharingAdvisor] = None) -> None:
        self.analyzer = analyzer or StaticSharingAnalyzer()
        #: pad_trace's layout transformation is all we use; no detector
        #: is needed to *suggest* a fix, only to price one dynamically.
        self.advisor = advisor or FalseSharingAdvisor(detector=None)

    def lint(self, program: ProgramTrace,
             report: Optional[SharingReport] = None,
             symbols=None, scope: str = "") -> List[Finding]:
        report = report or self.analyzer.analyze(program)
        findings: List[Finding] = []
        findings += self._fs001(program, report)
        findings += self._fs002(report)
        findings += self._fs003(report)
        findings += self._fs004(report)
        if symbols is not None or scope:
            for f in findings:
                f.scope = scope
                if symbols is not None and f.lines:
                    names = set()
                    for line in f.lines:
                        names.update(s.name
                                     for s in symbols.line_owners(line))
                    f.objects = sorted(names)
        return _ranked(findings)

    def lint_prediction(self, pred: "Prediction") -> List[Finding]:
        """Layout-aware rules (FS005-FS008) over a symbolic prediction.

        These never see a trace: everything is derived from the access
        plan's symbol table and the predicted per-line classification, so
        every finding names the objects involved.
        """
        findings: List[Finding] = []
        findings += self._fs005(pred)
        findings += self._fs006(pred)
        findings += self._fs007(pred)
        findings += self._fs008(pred)
        scope = pred.plan.scope()
        for f in findings:
            f.scope = scope
        return _ranked(findings)

    # ------------------------------------------------------------- FS001

    def _fs001(self, program: ProgramTrace,
               report: SharingReport) -> List[Finding]:
        hot = report.false_shared(min_significance=SIGNIFICANCE_THRESHOLD)
        if not hot:
            return []
        contended = [
            ContendedLine(
                line=ls.line,
                writers=sorted(ls.writers),
                writes_per_thread={u.tid: u.writes for u in ls.uses
                                   if u.writes},
                # Spans are per-thread disjoint, so span word counts add up.
                distinct_words=sum(
                    hi // 4 - lo // 4 + 1
                    for lo, hi in ls.evidence().values()
                ),
            )
            for ls in hot
        ]
        # Size the fix exactly the way the advisor replays it: each
        # (line, writer) pair moves to a fresh private line.
        padded = self.advisor.pad_trace(program, contended)
        extra_lines = sum(len(cl.writers) for cl in contended)
        out = []
        for ls in hot:
            sev = ("error" if ls.significance >= ERROR_SIGNIFICANCE
                   else "warning")
            spans = "; ".join(
                f"T{t} writes bytes [{lo},{hi}]"
                for t, (lo, hi) in sorted(ls.evidence().items())
            )
            out.append(Finding(
                rule="FS001",
                severity=sev,
                message=(f"false sharing: {len(ls.writers)} threads write "
                         f"disjoint ranges of this line ({spans}); "
                         f"significance {ls.significance:.2e}"),
                lines=[ls.line],
                threads=sorted(ls.threads),
                suggestion=(
                    "give each thread's data its own cache line — padding "
                    f"the {len(contended)} contended line(s) adds "
                    f"{extra_lines} private line(s) "
                    f"({extra_lines * LINE_SIZE} bytes, replayed layout "
                    f"'{padded.name}')"
                ),
                data={"significance": ls.significance,
                      "evidence": {str(t): list(sp) for t, sp
                                   in ls.evidence().items()}},
            ))
        return out

    # ------------------------------------------------------------- FS002

    @staticmethod
    def _fs002(report: SharingReport) -> List[Finding]:
        return [
            Finding(
                rule="FS002",
                severity="info",
                message=(f"near miss: T{nm.tid_low} and T{nm.tid_high} "
                         "write adjacent lines with only "
                         f"{nm.slack_bytes} bytes of slack across the "
                         "boundary"),
                lines=[nm.line, nm.line + 1],
                threads=sorted({nm.tid_low, nm.tid_high}),
                suggestion=("keep line-aligned per-thread data at least "
                            f"{NEAR_MISS_MARGIN} bytes clear of line "
                            "boundaries"),
                data={"slack_bytes": nm.slack_bytes},
            )
            for nm in report.near_misses
        ]

    # ------------------------------------------------------------- FS003

    @staticmethod
    def _fs003(report: SharingReport) -> List[Finding]:
        out = []
        for p in report.profiles:
            if not p.hostile:
                continue
            out.append(Finding(
                rule="FS003",
                severity="warning",
                message=(f"cache-hostile stride: T{p.tid} re-fetches "
                         f"{100 * p.refetch_rate:.0f}% of its accesses "
                         f"over a {p.footprint_lines}-line footprint"),
                threads=[p.tid],
                suggestion=("visit memory in address order (or blocks "
                            "that fit the cache) instead of large strides "
                            "or random order"),
                data={"refetch_rate": p.refetch_rate,
                      "footprint_lines": p.footprint_lines},
            ))
        return out

    # ------------------------------------------------------------- FS004

    @staticmethod
    def _fs004(report: SharingReport) -> List[Finding]:
        out = []
        for ls in report.false_shared(
                min_significance=SIGNIFICANCE_THRESHOLD):
            spans = ls.evidence()
            if len(spans) < 2:
                continue
            widths = [hi - lo + 1 for lo, hi in spans.values()]
            if max(widths) > SLOT_SPAN:
                continue
            slot = max(widths)
            out.append(Finding(
                rule="FS004",
                severity="info",
                message=(f"unpadded per-thread struct: {len(spans)} "
                         f"threads own slot-sized (≤{slot} B) ranges "
                         "packed into one line"),
                lines=[ls.line],
                threads=sorted(spans),
                suggestion=(f"pad each per-thread slot from ~{slot} to "
                            f"{LINE_SIZE} bytes (one line per thread), or "
                            "use thread-local storage"),
                data={"slot_bytes": slot,
                      "spans": {str(t): list(sp)
                                for t, sp in spans.items()}},
            ))
        return out

    # ------------------------------------------------------------- FS005

    @staticmethod
    def _fs005(pred: "Prediction") -> List[Finding]:
        """Hot per-thread fields of *unrelated* objects colliding on one
        contended line — incidental adjacency, not a packed slot array."""
        out = []
        for pl in pred.false_shared():
            syms = pred.plan.symbols.line_owners(pl.line)
            owned = [s for s in syms if s.tid is not None]
            families = {s.group or s.name for s in owned}
            if len(owned) < 2 or len(families) < 2:
                continue
            sev = ("error" if pl.significance >= ERROR_SIGNIFICANCE
                   else "warning")
            out.append(Finding(
                rule="FS005",
                severity=sev,
                message=(f"incidental adjacency: {len(families)} unrelated "
                         "per-thread objects collide on this contended "
                         f"line (significance {pl.significance:.2e})"),
                lines=[pl.line],
                threads=sorted(set(pl.threads)),
                suggestion=("separate "
                            + ", ".join(sorted(s.name for s in owned))
                            + f" onto their own {LINE_SIZE}-byte-aligned "
                            "lines (pad the earlier allocation up to a "
                            "full line)"),
                data={"significance": pl.significance,
                      "groups": sorted(families)},
                objects=sorted(s.name for s in syms),
            ))
        return out

    # ------------------------------------------------------------- FS006

    @staticmethod
    def _fs006(pred: "Prediction") -> List[Finding]:
        """A per-thread slot/struct group packed at a sub-line pitch."""
        plan = pred.plan
        groups: Dict[str, List] = {}
        for s in plan.symbols:
            if s.tid is not None and s.group:
                groups.setdefault(s.group, []).append(s)
        by_line = {pl.line: pl for pl in pred.lines}
        out = []
        for gname, members in sorted(groups.items()):
            tids = sorted({s.tid for s in members if s.tid is not None})
            if len(tids) < 2:
                continue
            members = sorted(members, key=lambda s: s.base)
            pitch = min(b.base - a.base
                        for a, b in zip(members, members[1:]))
            if pitch >= LINE_SIZE:
                continue
            shared_lines = sorted({
                line
                for line in range(members[0].first_line,
                                  members[-1].last_line + 1)
                if sum(1 for s in members if s.overlaps_line(line)) >= 2
            })
            if not shared_lines:
                continue
            fs_lines = [by_line[x] for x in shared_lines
                        if x in by_line
                        and by_line[x].category == "false-shared"]
            sig = sum(pl.significance for pl in fs_lines if pl.contended)
            contended = any(pl.contended for pl in fs_lines)
            sev = ("error" if sig >= SIGNIFICANCE_THRESHOLD
                   else "warning" if contended else "info")
            out.append(Finding(
                rule="FS006",
                severity=sev,
                message=(f"allocator co-location: per-thread group "
                         f"'{gname}' packs {len(members)} thread slots at "
                         f"a {pitch}-byte pitch, so {len(shared_lines)} "
                         "cache line(s) hold several threads' private "
                         "data"),
                lines=shared_lines,
                threads=tids,
                suggestion=(f"pad the '{gname}' slot stride from {pitch} "
                            f"to {LINE_SIZE} bytes so each thread's slot "
                            "gets a private line"),
                data={"pitch": int(pitch), "members": len(members),
                      "significance": sig},
                objects=[s.name for s in members],
            ))
        return out

    # ------------------------------------------------------------- FS007

    @staticmethod
    def _fs007(pred: "Prediction") -> List[Finding]:
        """A shared written array whose thread partition interleaves
        inside cache lines (element-cyclic ownership)."""
        plan = pred.plan
        evid: Dict[str, List] = {}
        for pl in pred.lines:
            if pl.category != "false-shared":
                continue
            syms = plan.symbols.line_owners(pl.line)
            if len(syms) == 1 and syms[0].tid is None:
                evid.setdefault(syms[0].name, []).append(pl)
        out = []
        for name, pls in sorted(evid.items()):
            sym = plan.symbols[name]
            wuses = [u for u in plan.uses_of(name) if u.writes]
            tids = sorted({u.tid for u in wuses})
            if len(tids) < 2:
                continue
            step = max(u.step for u in wuses)
            if step <= 1:
                continue  # block partition: a boundary effect, not FS007
            epl = max(1, LINE_SIZE // sym.effective_stride)
            if epl <= 1:
                continue
            sig = sum(pl.significance for pl in pls if pl.contended)
            sev = ("error" if sig >= SIGNIFICANCE_THRESHOLD
                   else "warning")
            out.append(Finding(
                rule="FS007",
                severity=sev,
                message=(f"interleaved partition: '{name}' is written by "
                         f"{len(tids)} threads in an element-cyclic split "
                         f"(step {step}) with {epl} elements per line — "
                         f"{len(pls)} line(s) predicted false-shared"),
                lines=[pl.line for pl in pls[:8]],
                threads=tids,
                suggestion=(f"partition '{name}' into contiguous "
                            "per-thread blocks of whole cache lines "
                            f"(multiples of {epl} elements) instead of "
                            "interleaving elements"),
                data={"step": int(step), "elems_per_line": int(epl),
                      "fs_lines": len(pls), "significance": sig},
                objects=[name],
            ))
        return out

    # ------------------------------------------------------------- FS008

    @staticmethod
    def _fs008(pred: "Prediction") -> List[Finding]:
        """A written object whose base is not line-aligned, straddling
        into a line another object owns."""
        plan = pred.plan
        written = {u.symbol for u in plan.uses if u.writes}
        by_line = {pl.line: pl for pl in pred.lines}
        out = []
        for s in plan.symbols:
            if s.name not in written or s.size == 0:
                continue
            if s.base % LINE_SIZE == 0:
                continue
            cross = [
                o for o in plan.symbols.line_owners(s.first_line)
                if o.name != s.name
                and not (s.group and o.group == s.group)  # FS006's job
                and o.tid != s.tid
            ]
            if not cross:
                continue
            pl = by_line.get(s.first_line)
            contended = (pl is not None and pl.contended
                         and pl.category == "false-shared")
            aligned = (s.base // LINE_SIZE + 1) * LINE_SIZE
            out.append(Finding(
                rule="FS008",
                severity="warning" if contended else "info",
                message=(f"under-aligned base: '{s.name}' starts "
                         f"{s.base % LINE_SIZE} bytes into a line "
                         f"(0x{s.base:x}) and shares it with "
                         + ", ".join(o.name for o in cross)),
                lines=[s.first_line],
                threads=sorted({t for t in
                                [s.tid] + [o.tid for o in cross]
                                if t is not None}),
                suggestion=(f"align '{s.name}' to {LINE_SIZE} bytes "
                            f"(e.g. move its base from 0x{s.base:x} to "
                            f"0x{aligned:x})"),
                data={"base": int(s.base),
                      "misalignment": int(s.base % LINE_SIZE)},
                objects=sorted([s.name] + [o.name for o in cross]),
            ))
        return out


def _ranked(findings: List[Finding]) -> List[Finding]:
    rank = {"error": 0, "warning": 1, "info": 2}
    findings.sort(key=lambda f: (rank[f.severity], f.rule, f.lines))
    return findings


def render_findings(findings: List[Finding]) -> str:
    """Human-readable lint output (compiler-diagnostic style)."""
    if not findings:
        return "no findings — the layout and access order look clean."
    by_sev: Dict[str, int] = {}
    for f in findings:
        by_sev[f.severity] = by_sev.get(f.severity, 0) + 1
    head = ", ".join(f"{n} {sev}(s)" for sev, n in sorted(by_sev.items()))
    body = "\n".join(f.render() for f in findings)
    return f"{len(findings)} finding(s): {head}\n{body}"


def findings_table(findings: List[Finding]) -> str:
    rows = [
        [f.rule, f.severity,
         ", ".join(f"0x{x * LINE_SIZE:x}" for x in f.lines) or "-",
         ", ".join(f"T{t}" for t in f.threads) or "-",
         ", ".join(f.objects) or "-",
         f.fingerprint,
         f.message]
        for f in findings
    ]
    return render_table(
        ["rule", "severity", "lines", "threads", "objects", "id", "message"],
        rows, title="Lint findings", align_right=False)
