"""Rule engine over static sharing facts: a false-sharing *lint*.

Each rule turns :class:`~repro.analysis.sharing.SharingReport` facts into
structured :class:`Finding`s a developer can act on:

* **FS001** — a contended false-shared line (the bug itself), with a
  padding fix sized by replaying
  :meth:`~repro.core.advisor.FalseSharingAdvisor.pad_trace`'s layout
  transformation;
* **FS002** — adjacent-line near-miss: two threads' write regions abut a
  line boundary closely enough that a small layout change (one more field,
  a different allocator) would fuse them onto one line — the kind of
  latent bug SHERIFF's per-thread page twinning defuses at runtime;
* **FS003** — cache-hostile stride: a thread re-fetches lines it let go
  cold over an uncacheable footprint (the bad-ma signature);
* **FS004** — unpadded per-thread struct: the writers' byte spans on a
  false-shared line form slot-sized per-thread ranges, the classic
  ``struct { ... } per_thread[NTHREADS]`` layout Figure 1 warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.sharing import (
    NEAR_MISS_MARGIN,
    SIGNIFICANCE_THRESHOLD,
    SharingReport,
    StaticSharingAnalyzer,
)
from repro.core.advisor import ContendedLine, FalseSharingAdvisor
from repro.memory.layout import LINE_SIZE
from repro.trace.access import ProgramTrace
from repro.utils.tables import render_table

#: FS001 escalates from warning to error at this significance.
ERROR_SIGNIFICANCE = 1e-2

#: FS004: a written span at most this wide reads as one struct slot.
SLOT_SPAN = 16


@dataclass
class Finding:
    """One lint finding (rule hit) with its evidence and suggested fix."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    message: str
    lines: List[int] = field(default_factory=list)
    threads: List[int] = field(default_factory=list)
    suggestion: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "lines": [int(x) for x in self.lines],
            "threads": [int(t) for t in self.threads],
            "suggestion": self.suggestion,
            "data": self.data,
        }

    def render(self) -> str:
        where = ", ".join(f"0x{x * LINE_SIZE:x}" for x in self.lines)
        out = f"{self.rule} [{self.severity}] {where}: {self.message}"
        if self.suggestion:
            out += f"\n      fix: {self.suggestion}"
        return out


class SharingLinter:
    """Runs every FS rule over a trace (or a precomputed report)."""

    RULES = ("FS001", "FS002", "FS003", "FS004")

    def __init__(self, analyzer: Optional[StaticSharingAnalyzer] = None,
                 advisor: Optional[FalseSharingAdvisor] = None) -> None:
        self.analyzer = analyzer or StaticSharingAnalyzer()
        #: pad_trace's layout transformation is all we use; no detector
        #: is needed to *suggest* a fix, only to price one dynamically.
        self.advisor = advisor or FalseSharingAdvisor(detector=None)

    def lint(self, program: ProgramTrace,
             report: Optional[SharingReport] = None) -> List[Finding]:
        report = report or self.analyzer.analyze(program)
        findings: List[Finding] = []
        findings += self._fs001(program, report)
        findings += self._fs002(report)
        findings += self._fs003(report)
        findings += self._fs004(report)
        rank = {"error": 0, "warning": 1, "info": 2}
        findings.sort(key=lambda f: (rank[f.severity], f.rule))
        return findings

    # ------------------------------------------------------------- FS001

    def _fs001(self, program: ProgramTrace,
               report: SharingReport) -> List[Finding]:
        hot = report.false_shared(min_significance=SIGNIFICANCE_THRESHOLD)
        if not hot:
            return []
        contended = [
            ContendedLine(
                line=ls.line,
                writers=sorted(ls.writers),
                writes_per_thread={u.tid: u.writes for u in ls.uses
                                   if u.writes},
                # Spans are per-thread disjoint, so span word counts add up.
                distinct_words=sum(
                    hi // 4 - lo // 4 + 1
                    for lo, hi in ls.evidence().values()
                ),
            )
            for ls in hot
        ]
        # Size the fix exactly the way the advisor replays it: each
        # (line, writer) pair moves to a fresh private line.
        padded = self.advisor.pad_trace(program, contended)
        extra_lines = sum(len(cl.writers) for cl in contended)
        out = []
        for ls in hot:
            sev = ("error" if ls.significance >= ERROR_SIGNIFICANCE
                   else "warning")
            spans = "; ".join(
                f"T{t} writes bytes [{lo},{hi}]"
                for t, (lo, hi) in sorted(ls.evidence().items())
            )
            out.append(Finding(
                rule="FS001",
                severity=sev,
                message=(f"false sharing: {len(ls.writers)} threads write "
                         f"disjoint ranges of this line ({spans}); "
                         f"significance {ls.significance:.2e}"),
                lines=[ls.line],
                threads=sorted(ls.threads),
                suggestion=(
                    "give each thread's data its own cache line — padding "
                    f"the {len(contended)} contended line(s) adds "
                    f"{extra_lines} private line(s) "
                    f"({extra_lines * LINE_SIZE} bytes, replayed layout "
                    f"'{padded.name}')"
                ),
                data={"significance": ls.significance,
                      "evidence": {str(t): list(sp) for t, sp
                                   in ls.evidence().items()}},
            ))
        return out

    # ------------------------------------------------------------- FS002

    @staticmethod
    def _fs002(report: SharingReport) -> List[Finding]:
        return [
            Finding(
                rule="FS002",
                severity="info",
                message=(f"near miss: T{nm.tid_low} and T{nm.tid_high} "
                         "write adjacent lines with only "
                         f"{nm.slack_bytes} bytes of slack across the "
                         "boundary"),
                lines=[nm.line, nm.line + 1],
                threads=sorted({nm.tid_low, nm.tid_high}),
                suggestion=("keep line-aligned per-thread data at least "
                            f"{NEAR_MISS_MARGIN} bytes clear of line "
                            "boundaries"),
                data={"slack_bytes": nm.slack_bytes},
            )
            for nm in report.near_misses
        ]

    # ------------------------------------------------------------- FS003

    @staticmethod
    def _fs003(report: SharingReport) -> List[Finding]:
        out = []
        for p in report.profiles:
            if not p.hostile:
                continue
            out.append(Finding(
                rule="FS003",
                severity="warning",
                message=(f"cache-hostile stride: T{p.tid} re-fetches "
                         f"{100 * p.refetch_rate:.0f}% of its accesses "
                         f"over a {p.footprint_lines}-line footprint"),
                threads=[p.tid],
                suggestion=("visit memory in address order (or blocks "
                            "that fit the cache) instead of large strides "
                            "or random order"),
                data={"refetch_rate": p.refetch_rate,
                      "footprint_lines": p.footprint_lines},
            ))
        return out

    # ------------------------------------------------------------- FS004

    @staticmethod
    def _fs004(report: SharingReport) -> List[Finding]:
        out = []
        for ls in report.false_shared(
                min_significance=SIGNIFICANCE_THRESHOLD):
            spans = ls.evidence()
            if len(spans) < 2:
                continue
            widths = [hi - lo + 1 for lo, hi in spans.values()]
            if max(widths) > SLOT_SPAN:
                continue
            slot = max(widths)
            out.append(Finding(
                rule="FS004",
                severity="info",
                message=(f"unpadded per-thread struct: {len(spans)} "
                         f"threads own slot-sized (≤{slot} B) ranges "
                         "packed into one line"),
                lines=[ls.line],
                threads=sorted(spans),
                suggestion=(f"pad each per-thread slot from ~{slot} to "
                            f"{LINE_SIZE} bytes (one line per thread), or "
                            "use thread-local storage"),
                data={"slot_bytes": slot,
                      "spans": {str(t): list(sp)
                                for t, sp in spans.items()}},
            ))
        return out


def render_findings(findings: List[Finding]) -> str:
    """Human-readable lint output (compiler-diagnostic style)."""
    if not findings:
        return "no findings — the layout and access order look clean."
    by_sev: Dict[str, int] = {}
    for f in findings:
        by_sev[f.severity] = by_sev.get(f.severity, 0) + 1
    head = ", ".join(f"{n} {sev}(s)" for sev, n in sorted(by_sev.items()))
    body = "\n".join(f.render() for f in findings)
    return f"{len(findings)} finding(s): {head}\n{body}"


def findings_table(findings: List[Finding]) -> str:
    rows = [
        [f.rule, f.severity,
         ", ".join(f"0x{x * LINE_SIZE:x}" for x in f.lines) or "-",
         ", ".join(f"T{t}" for t in f.threads) or "-",
         f.message]
        for f in findings
    ]
    return render_table(["rule", "severity", "lines", "threads", "message"],
                       rows, title="Lint findings", align_right=False)
