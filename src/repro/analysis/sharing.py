"""Static sharing analysis of a program trace — no simulation required.

Our traces are deterministic per-thread access streams, so line ownership,
byte-offset overlap and worst-case contention are *statically* decidable
from the :class:`~repro.trace.access.ProgramTrace` alone: nothing the MESI
machine computes is needed to tell which cache lines are contended, only to
price the contention.  This module computes, in O(accesses) numpy passes:

* per cache line, which threads read and write it, over which byte spans,
  and *when* (first/last trace position — the proxy for time under the
  chunked round-robin interleave);
* a four-way classification of every line:

  - ``private``      — touched by one thread only;
  - ``read-shared``  — touched by several threads, never written;
  - ``true-shared``  — some 4-byte word is written by one thread and
    touched by another (the shadow oracle's true-sharing rule [33]);
  - ``false-shared`` — several threads write the line but every word is
    thread-exclusive (distinct threads, disjoint byte ranges);

* for false-shared lines, a *contention* gate and an
  instructions-implicated significance score.  Two threads that use
  disjoint words of one line at disjoint times (a hand-off, e.g. block
  boundaries of a partitioned array) cannot ping-pong, so a line counts as
  contended only when a writer's position interval overlaps another
  toucher's.  ``significance`` is the fraction of the program's retired
  instructions attributable to accesses of contending threads on that line
  — a worst-case analog of the oracle's false-sharing *rate*, comparable
  against the same 1e-3 threshold;
* per-thread access profiles (footprint, line re-fetch rate) that expose
  cache-hostile strides without simulating a cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memory.layout import LINE_SIZE, line_of
from repro.trace.access import ProgramTrace
from repro.utils.tables import render_table

#: Program-level decision threshold on the summed significance of contended
#: false-shared lines.  Deliberately the same value as the shadow oracle's
#: rate threshold ([33], ``FS_RATE_THRESHOLD``): both are "events per
#: instruction" quantities, so the two detectors are comparable by design.
SIGNIFICANCE_THRESHOLD = 1e-3

#: An access re-fetches a line when the thread last touched that line more
#: than this many of its own accesses ago — far enough back that a small
#: cache with any reasonable policy has likely evicted or lost it.
REFETCH_WINDOW = 32

#: A thread's access pattern is cache-hostile when at least this fraction
#: of its accesses are line re-fetches...
HOSTILE_REFETCH_RATE = 0.25

#: ...over a footprint too large to be cache-resident anyway.
HOSTILE_MIN_FOOTPRINT = 256

#: Two sole-writer adjacent lines are a near-miss when their write spans
#: leave less than this much combined slack across the line boundary.
NEAR_MISS_MARGIN = 16

@dataclass(frozen=True)
class ThreadLineUse:
    """One thread's use of one cache line."""

    tid: int
    reads: int
    writes: int
    first_pos: int
    last_pos: int
    #: Byte-offset span (lo, hi inclusive) of every touch on the line.
    touch_span: Tuple[int, int]
    #: Byte-offset span of the writes, or ``None`` for a read-only user.
    write_span: Optional[Tuple[int, int]]

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def overlaps(self, other: "ThreadLineUse") -> bool:
        """Whether the two usage windows can interleave in time."""
        return (self.first_pos <= other.last_pos
                and other.first_pos <= self.last_pos)


@dataclass
class LineSharing:
    """Classification and evidence for one (non-private) cache line."""

    line: int
    category: str  # "read-shared" | "true-shared" | "false-shared"
    uses: List[ThreadLineUse]
    contended: bool = False
    significance: float = 0.0
    implicated_instructions: int = 0

    @property
    def address(self) -> int:
        return self.line * LINE_SIZE

    @property
    def threads(self) -> List[int]:
        return [u.tid for u in self.uses]

    @property
    def writers(self) -> List[int]:
        return [u.tid for u in self.uses if u.writes]

    @property
    def total_accesses(self) -> int:
        return sum(u.accesses for u in self.uses)

    @property
    def total_writes(self) -> int:
        return sum(u.writes for u in self.uses)

    def evidence(self) -> Dict[int, Tuple[int, int]]:
        """Per-writer written byte spans — the disjoint ranges themselves."""
        return {u.tid: u.write_span for u in self.uses
                if u.write_span is not None}

    def to_dict(self) -> Dict[str, object]:
        return {
            "line": int(self.line),
            "address": f"0x{self.address:x}",
            "category": self.category,
            "contended": self.contended,
            "significance": self.significance,
            "implicated_instructions": self.implicated_instructions,
            "threads": [
                {
                    "tid": u.tid,
                    "reads": u.reads,
                    "writes": u.writes,
                    "first_pos": u.first_pos,
                    "last_pos": u.last_pos,
                    "touch_span": list(u.touch_span),
                    "write_span": (None if u.write_span is None
                                   else list(u.write_span)),
                }
                for u in self.uses
            ],
        }


@dataclass(frozen=True)
class NearMiss:
    """Two threads solely writing adjacent lines, tight against the seam.

    One more struct field or a different allocation base would fuse the two
    write regions onto one line — latent false sharing (what SHERIFF's
    per-thread twinning would absorb at runtime).  Only temporally
    overlapping pairs are reported: a hand-off cannot turn into ping-pong.
    """

    line: int          # the lower line of the adjacent pair
    tid_low: int       # sole writer of ``line``
    tid_high: int      # sole writer of ``line + 1``
    slack_bytes: int   # unwritten bytes between the two spans

    def to_dict(self) -> Dict[str, int]:
        return {"line": int(self.line), "tid_low": int(self.tid_low),
                "tid_high": int(self.tid_high),
                "slack_bytes": int(self.slack_bytes)}


@dataclass(frozen=True)
class ThreadProfile:
    """Locality profile of one thread's access stream."""

    tid: int
    n_accesses: int
    footprint_lines: int
    line_fetches: int

    @property
    def extra_fetches(self) -> int:
        """Line fetches beyond the compulsory one per distinct line."""
        return self.line_fetches - self.footprint_lines

    @property
    def refetch_rate(self) -> float:
        """Fraction of accesses that fetch a line the thread let go cold."""
        if self.n_accesses == 0:
            return 0.0
        return self.extra_fetches / self.n_accesses

    @property
    def hostile(self) -> bool:
        """Cache-hostile: heavy re-fetching over an uncacheable footprint."""
        return (self.footprint_lines >= HOSTILE_MIN_FOOTPRINT
                and self.refetch_rate > HOSTILE_REFETCH_RATE)


@dataclass
class SharingReport:
    """Full static-analysis result for one program trace."""

    name: str
    nthreads: int
    total_instructions: int
    n_lines: int
    n_private: int
    shared: List[LineSharing]
    profiles: List[ThreadProfile] = field(default_factory=list)
    near_misses: List[NearMiss] = field(default_factory=list)

    def category_counts(self) -> Dict[str, int]:
        counts = {"private": self.n_private, "read-shared": 0,
                  "true-shared": 0, "false-shared": 0}
        for ls in self.shared:
            counts[ls.category] += 1
        return counts

    def false_shared(
        self, contended_only: bool = True, min_significance: float = 0.0
    ) -> List[LineSharing]:
        """False-shared lines, hottest first."""
        out = [ls for ls in self.shared
               if ls.category == "false-shared"
               and (ls.contended or not contended_only)
               and ls.significance >= min_significance]
        out.sort(key=lambda ls: ls.significance, reverse=True)
        return out

    @property
    def fs_significance(self) -> float:
        """Summed significance of contended false-shared lines."""
        return sum(ls.significance for ls in self.false_shared())

    @property
    def has_false_sharing(self) -> bool:
        """The static verdict, thresholded like the oracle's rate."""
        return self.fs_significance > SIGNIFICANCE_THRESHOLD

    @property
    def hostile_threads(self) -> List[int]:
        return [p.tid for p in self.profiles if p.hostile]

    @property
    def verdict(self) -> str:
        """Three-way label on the classifier's vocabulary."""
        if self.has_false_sharing:
            return "bad-fs"
        if self.hostile_threads:
            return "bad-ma"
        return "good"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "nthreads": self.nthreads,
            "total_instructions": self.total_instructions,
            "n_lines": self.n_lines,
            "category_counts": self.category_counts(),
            "fs_significance": self.fs_significance,
            "verdict": self.verdict,
            "hostile_threads": self.hostile_threads,
            "near_misses": [nm.to_dict() for nm in self.near_misses],
            "shared_lines": [ls.to_dict() for ls in self.shared],
            "profiles": [
                {
                    "tid": p.tid,
                    "n_accesses": p.n_accesses,
                    "footprint_lines": p.footprint_lines,
                    "refetch_rate": p.refetch_rate,
                    "hostile": p.hostile,
                }
                for p in self.profiles
            ],
        }

    def render(self, top: int = 12) -> str:
        counts = self.category_counts()
        lines = [
            f"{self.name}: {self.n_lines} lines touched — "
            + ", ".join(f"{counts[c]} {c}" for c in
                        ("private", "read-shared", "true-shared",
                         "false-shared")),
            f"verdict: {self.verdict}   "
            f"fs significance: {self.fs_significance:.3e} "
            f"(threshold {SIGNIFICANCE_THRESHOLD:.0e})",
        ]
        hot = self.false_shared(contended_only=False)[:top]
        if hot:
            rows = []
            for ls in hot:
                spans = "; ".join(
                    f"T{t}:[{lo},{hi}]"
                    for t, (lo, hi) in sorted(ls.evidence().items())
                )
                rows.append([
                    f"0x{ls.address:x}", len(ls.writers), ls.total_writes,
                    "yes" if ls.contended else "no",
                    f"{ls.significance:.2e}", spans,
                ])
            lines.append(render_table(
                ["line addr", "writers", "writes", "contended",
                 "significance", "written byte spans"],
                rows, title="False-shared lines (hottest first)",
            ))
        if self.near_misses:
            lines.append(
                f"{len(self.near_misses)} adjacent-line near miss(es): "
                + ", ".join(f"0x{nm.line * LINE_SIZE:x}(T{nm.tid_low}|"
                            f"T{nm.tid_high}, {nm.slack_bytes}B slack)"
                            for nm in self.near_misses[:6])
            )
        if self.hostile_threads:
            lines.append(
                "cache-hostile access patterns in threads "
                + ", ".join(f"T{t}" for t in self.hostile_threads)
            )
        return "\n".join(lines)


class StaticSharingAnalyzer:
    """Computes a :class:`SharingReport` from a trace in O(accesses).

    ``refetch_window`` tunes the locality profile only; the sharing
    classification has no knobs — it is a property of the trace.
    """

    def __init__(self, refetch_window: int = REFETCH_WINDOW) -> None:
        if refetch_window < 1:
            raise ValueError("refetch_window must be >= 1")
        self.refetch_window = refetch_window

    # ------------------------------------------------------------- analysis

    def analyze(self, program: ProgramTrace) -> SharingReport:
        nt = program.nthreads
        total_instr = program.total_instructions
        sizes = [t.n_accesses for t in program.threads]
        total = sum(sizes)
        profiles = [
            self._profile(tid, line_of(t.addrs))
            for tid, t in enumerate(program.threads)
        ]
        if total == 0:
            return SharingReport(program.name, nt, total_instr, 0, 0, [],
                                 profiles, [])

        tid_col = np.repeat(np.arange(nt, dtype=np.int64), sizes)
        addr_col = np.concatenate([t.addrs for t in program.threads])
        write_col = np.concatenate([t.is_write for t in program.threads])
        pos_col = np.concatenate(
            [np.arange(n, dtype=np.int64) for n in sizes]
        )
        lines = addr_col >> 6
        offs = addr_col & (LINE_SIZE - 1)

        # ---- per-(line, thread) aggregation via one stable sort ----------
        key = lines * nt + tid_col
        order = np.argsort(key, kind="stable")
        skey = key[order]
        starts = np.flatnonzero(np.r_[True, skey[1:] != skey[:-1]])
        g_line = skey[starts] // nt
        g_tid = (skey[starts] % nt).astype(np.int64)
        g_count = np.diff(np.r_[starts, skey.size])
        g_writes = np.add.reduceat(
            write_col[order].astype(np.int64), starts
        )
        # Stable sort keeps each thread's accesses in program order, so the
        # group's first/last element carry its position interval.
        spos = pos_col[order]
        g_pmin = spos[starts]
        g_pmax = spos[np.r_[starts[1:], skey.size] - 1]
        soff = offs[order]
        g_tmin = np.minimum.reduceat(soff, starts)
        g_tmax = np.maximum.reduceat(soff, starts)
        # Write spans: sentinel offsets outside [0, 63] where not a write.
        sw = write_col[order]
        g_wmin = np.minimum.reduceat(np.where(sw, soff, LINE_SIZE), starts)
        g_wmax = np.maximum.reduceat(np.where(sw, soff, -1), starts)

        # ---- word-conflict detection (true sharing) ----------------------
        words = addr_col >> 2
        pair_words = np.unique(words * nt + tid_col) // nt
        uw, w_tids = np.unique(pair_words, return_counts=True)
        written_words = np.unique(words[write_col])
        conflicted = np.intersect1d(uw[w_tids >= 2], written_words,
                                    assume_unique=True)
        conflict_lines = set(
            np.unique(conflicted >> (6 - 2)).tolist()
        )

        # ---- group the (line, thread) groups by line ---------------------
        line_starts = np.flatnonzero(np.r_[True, g_line[1:] != g_line[:-1]])
        line_ends = np.r_[line_starts[1:], g_line.size]
        n_lines = line_starts.size
        multi = (line_ends - line_starts) > 1
        n_private = int(n_lines - np.count_nonzero(multi))

        ipa = [t.instr_per_access for t in program.threads]
        shared: List[LineSharing] = []
        for s, e in zip(line_starts[multi], line_ends[multi]):
            line = int(g_line[s])
            uses = []
            for g in range(s, e):
                writes = int(g_writes[g])
                uses.append(ThreadLineUse(
                    tid=int(g_tid[g]),
                    reads=int(g_count[g]) - writes,
                    writes=writes,
                    first_pos=int(g_pmin[g]),
                    last_pos=int(g_pmax[g]),
                    touch_span=(int(g_tmin[g]), int(g_tmax[g])),
                    write_span=((int(g_wmin[g]), int(g_wmax[g]))
                                if writes else None),
                ))
            shared.append(self._classify(line, uses,
                                         line in conflict_lines,
                                         ipa, total_instr))
        near = self._near_misses(g_line, g_tid, g_writes, g_pmin, g_pmax,
                                 g_wmin, g_wmax, line_starts)
        return SharingReport(program.name, nt, total_instr,
                             int(n_lines), n_private, shared, profiles,
                             near)

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _near_misses(g_line, g_tid, g_writes, g_pmin, g_pmax,
                     g_wmin, g_wmax, line_starts) -> List[NearMiss]:
        """Sole-writer adjacent-line pairs packed tight against the seam.

        Works on the (line, thread)-group arrays, so private lines — where
        the classic near-miss lives — are covered without materializing
        per-line objects for them.
        """
        # Lines written by exactly one thread, with that writer's facts.
        w_per_line = np.add.reduceat((g_writes > 0).astype(np.int64),
                                     line_starts)
        sole_mask = w_per_line == 1
        if not sole_mask.any():
            return []
        first_writer = np.minimum.reduceat(
            np.where(g_writes > 0, np.arange(g_writes.size), g_writes.size),
            line_starts,
        )
        rows = first_writer[sole_mask]
        wline = g_line[rows]
        adj = np.flatnonzero(wline[1:] == wline[:-1] + 1)
        out: List[NearMiss] = []
        for i in adj.tolist():
            a, b = rows[i], rows[i + 1]
            if g_tid[a] == g_tid[b]:
                continue
            if g_pmin[a] > g_pmax[b] or g_pmin[b] > g_pmax[a]:
                continue  # temporally disjoint: a hand-off, not a risk
            slack = int(LINE_SIZE - 1 - g_wmax[a] + g_wmin[b])
            if slack >= NEAR_MISS_MARGIN:
                continue
            out.append(NearMiss(line=int(wline[i]), tid_low=int(g_tid[a]),
                                tid_high=int(g_tid[b]), slack_bytes=slack))
        return out

    @staticmethod
    def _classify(line: int, uses: List[ThreadLineUse], conflicted: bool,
                  ipa: List[float], total_instr: int) -> LineSharing:
        writers = [u for u in uses if u.writes]
        if not writers:
            return LineSharing(line, "read-shared", uses)
        if conflicted:
            return LineSharing(line, "true-shared", uses)
        # Several threads, writes present, every word thread-exclusive:
        # false sharing by layout.  Contention needs temporal overlap of a
        # writer with any other user — a pure hand-off cannot ping-pong.
        ls = LineSharing(line, "false-shared", uses)
        implicated = set()
        for w in writers:
            for u in uses:
                if u.tid != w.tid and w.overlaps(u):
                    implicated.add(w.tid)
                    implicated.add(u.tid)
        if implicated and total_instr > 0:
            instr = sum(u.accesses * ipa[u.tid]
                        for u in uses if u.tid in implicated)
            ls.contended = True
            ls.implicated_instructions = int(round(instr))
            ls.significance = instr / total_instr
        return ls

    def _profile(self, tid: int, lines_t: np.ndarray) -> ThreadProfile:
        n = int(lines_t.size)
        if n == 0:
            return ThreadProfile(tid, 0, 0, 0)
        order = np.argsort(lines_t, kind="stable")
        sl = lines_t[order]
        first = np.r_[True, sl[1:] != sl[:-1]]
        # Within a line's group the original indices ascend (stable sort),
        # so consecutive differences are the thread-local revisit gaps.
        gaps = np.diff(order.astype(np.int64), prepend=np.int64(0))
        refetch = (~first) & (gaps > self.refetch_window)
        distinct = int(np.count_nonzero(first))
        return ThreadProfile(
            tid=tid,
            n_accesses=n,
            footprint_lines=distinct,
            line_fetches=distinct + int(np.count_nonzero(refetch)),
        )


def analyze_trace(program: ProgramTrace) -> SharingReport:
    """One-shot convenience: static sharing report of a trace."""
    return StaticSharingAnalyzer().analyze(program)
