"""Prediction validation: symbolic line forecasts vs trace ground truth.

The predictive analyzer claims it can classify false sharing from a
workload's :class:`~repro.workloads.plan.AccessPlan` alone.  This harness
makes that claim falsifiable, case by case:

* generate the *real* trace and run the shadow oracle ([33]) with per-line
  tracking — its ``per_line`` false-sharing miss attribution is the ground
  truth a prediction must hit;
* run the trace-based static analyzer for the middle opinion (same verdict
  vocabulary as the prediction, but computed from the materialized trace);
* compare the predicted contended false-shared lines against the oracle's
  fs-miss lines and report line-level precision/recall, plus verdict
  agreement on the program level.

Every line-level disagreement is *explained*, not just counted: a
predicted line the oracle never saw miss is usually a hand-off or a
below-floor trickle; an oracle line the prediction missed is usually
classified true-shared by word granularity.  Unexplained disagreements
are the interesting output — they are either prediction bugs or genuine
limits of the symbolic model (documented in DESIGN.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.predict import Prediction, PredictiveAnalyzer
from repro.analysis.sharing import (
    SIGNIFICANCE_THRESHOLD,
    SharingReport,
    StaticSharingAnalyzer,
)
from repro.baselines.shadow import MAX_THREADS, ShadowMemoryDetector
from repro.suites import all_programs
from repro.suites.base import SuiteCase, SuiteProgram
from repro.utils.tables import render_table
from repro.workloads.base import RunConfig, Workload
from repro.workloads.registry import all_workloads

#: A line needs at least this many oracle fs misses to count as ground
#: truth: interleaving at chunk seams can produce a stray miss or two on
#: lines whose steady-state behaviour is a clean hand-off.
MIN_ORACLE_MISSES = 3

#: Default thread count for multi-threaded registry sweeps.
DEFAULT_THREADS = 4


def registry_grid(threads: int = DEFAULT_THREADS,
                  pattern: str = "random") -> List[Tuple[Workload, RunConfig]]:
    """Every registry workload at every mode, one canonical config each."""
    grid = []
    for w in all_workloads():
        t = threads if w.kind == "mt" else 1
        for mode in sorted(w.modes, key=lambda m: m.value):
            grid.append((w, RunConfig(threads=t, mode=mode,
                                      size=w.train_sizes[0],
                                      pattern=pattern)))
    return grid


def canonical_case(program: SuiteProgram) -> SuiteCase:
    """One verification-eligible case per suite program.

    First input, lowest optimization level (accumulators not registerized,
    so layout bugs are visible), largest thread count the 8-thread oracle
    accepts.
    """
    threads = max((t for t in program.threads if t <= MAX_THREADS),
                  default=min(program.threads))
    return SuiteCase(program.inputs[0], program.opts[0], threads)


def suite_grid() -> List[Tuple[SuiteProgram, SuiteCase]]:
    """The full 19-program suite at each program's canonical case."""
    return [(p, canonical_case(p)) for p in all_programs()]


@dataclass
class CaseValidation:
    """Line-level and verdict-level comparison for one case."""

    scope: str
    predict_verdict: str
    static_verdict: str
    shadow_fs: bool
    shadow_rate: float
    predicted_lines: List[int]
    oracle_lines: List[int]
    matched: List[int] = field(default_factory=list)
    predicted_only: List[int] = field(default_factory=list)
    oracle_only: List[int] = field(default_factory=list)
    explanations: List[str] = field(default_factory=list)
    unexplained: List[str] = field(default_factory=list)

    @property
    def precision(self) -> float:
        n = len(self.predicted_lines)
        return len(self.matched) / n if n else 1.0

    @property
    def recall(self) -> float:
        n = len(self.oracle_lines)
        return len(self.matched) / n if n else 1.0

    @property
    def fs_agreement(self) -> bool:
        """Predicted program-level fs verdict matches the oracle's."""
        return (self.predict_verdict == "bad-fs") == self.shadow_fs

    @property
    def unambiguous(self) -> bool:
        """The two trace-grounded detectors concur, so the ground truth
        is clear and the prediction has no excuse."""
        return (self.static_verdict == "bad-fs") == self.shadow_fs

    def to_dict(self) -> Dict[str, object]:
        return {
            "scope": self.scope,
            "predict": self.predict_verdict,
            "static": self.static_verdict,
            "shadow": "fs" if self.shadow_fs else "no-fs",
            "shadow_rate": self.shadow_rate,
            "lines": {
                "predicted": len(self.predicted_lines),
                "oracle": len(self.oracle_lines),
                "matched": len(self.matched),
                "predicted_only": self.predicted_only,
                "oracle_only": self.oracle_only,
            },
            "precision": self.precision,
            "recall": self.recall,
            "fs_agreement": self.fs_agreement,
            "unambiguous": self.unambiguous,
            "explanations": list(self.explanations),
            "unexplained": list(self.unexplained),
        }


@dataclass
class ValidationReport:
    """Aggregate of per-case validations."""

    cases: List[CaseValidation]

    @property
    def micro_precision(self) -> float:
        tp = sum(len(c.matched) for c in self.cases)
        pred = sum(len(c.predicted_lines) for c in self.cases)
        return tp / pred if pred else 1.0

    @property
    def micro_recall(self) -> float:
        tp = sum(len(c.matched) for c in self.cases)
        truth = sum(len(c.oracle_lines) for c in self.cases)
        return tp / truth if truth else 1.0

    @property
    def verdict_agreement(self) -> float:
        if not self.cases:
            return 1.0
        return (sum(c.predict_verdict == c.static_verdict
                    for c in self.cases) / len(self.cases))

    def unambiguous_agreement(self) -> Tuple[int, int]:
        """(# agreeing, # total) over cases with clear ground truth."""
        clear = [c for c in self.cases if c.unambiguous]
        return sum(c.fs_agreement for c in clear), len(clear)

    def disagreements(self) -> List[CaseValidation]:
        return [c for c in self.cases
                if c.predicted_only or c.oracle_only
                or not c.fs_agreement]

    def all_explained(self) -> bool:
        return not any(c.unexplained for c in self.cases)

    def to_dict(self) -> Dict[str, object]:
        agree, total = self.unambiguous_agreement()
        return {
            "n_cases": len(self.cases),
            "line_precision": self.micro_precision,
            "line_recall": self.micro_recall,
            "verdict_agreement": self.verdict_agreement,
            "unambiguous_agreement": {"agree": agree, "total": total},
            "all_disagreements_explained": self.all_explained(),
            "cases": [c.to_dict() for c in self.cases],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        agree, total = self.unambiguous_agreement()
        out = [
            f"{len(self.cases)} case(s) validated — line-level precision "
            f"{100 * self.micro_precision:.1f}%, recall "
            f"{100 * self.micro_recall:.1f}%",
            f"verdict agreement (predict vs static): "
            f"{100 * self.verdict_agreement:.1f}%   "
            f"unambiguous fs agreement (predict vs oracle): "
            f"{agree}/{total}",
        ]
        rows = []
        for c in self.cases:
            rows.append([
                c.scope, c.predict_verdict, c.static_verdict,
                "fs" if c.shadow_fs else "no-fs",
                f"{100 * c.precision:.0f}%",
                f"{100 * c.recall:.0f}%",
                len(c.predicted_only) + len(c.oracle_only),
            ])
        out.append(render_table(
            ["case", "predict", "static", "oracle", "precision",
             "recall", "line diffs"],
            rows, title="Predictive validation"))
        notes = [e for c in self.cases for e in c.explanations]
        if notes:
            out.append("explained disagreements:")
            out.extend(f"  - {n}" for n in notes)
        bad = [u for c in self.cases for u in c.unexplained]
        if bad:
            out.append("UNEXPLAINED disagreements:")
            out.extend(f"  ! {u}" for u in bad)
        else:
            out.append("every line-level disagreement is explained.")
        return "\n".join(out)


class PredictionValidator:
    """Runs predict × static × shadow per case and collates the gaps."""

    def __init__(self, min_oracle_misses: int = MIN_ORACLE_MISSES) -> None:
        self.predictor = PredictiveAnalyzer()
        self.analyzer = StaticSharingAnalyzer()
        self.shadow = ShadowMemoryDetector(track_lines=True)
        self.min_oracle_misses = min_oracle_misses

    # ------------------------------------------------------------- one case

    def validate_case(self, plan, trace) -> CaseValidation:
        pred = self.predictor.analyze(plan)
        static = self.analyzer.analyze(trace)
        oracle = self.shadow.run(trace)
        per_line = oracle.per_line or {}
        predicted = sorted(pl.line for pl in pred.false_shared())
        truth = sorted(line for line, (fs, _ts) in per_line.items()
                       if fs >= self.min_oracle_misses)
        cv = CaseValidation(
            scope=plan.scope(),
            predict_verdict=pred.verdict,
            static_verdict=static.verdict,
            shadow_fs=oracle.has_false_sharing,
            shadow_rate=oracle.fs_rate,
            predicted_lines=predicted,
            oracle_lines=truth,
        )
        tset = set(truth)
        cv.matched = sorted(x for x in predicted if x in tset)
        cv.predicted_only = sorted(x for x in predicted if x not in tset)
        cv.oracle_only = sorted(x for x in tset if x not in set(predicted))
        self._explain(cv, pred, per_line)
        return cv

    def _explain(self, cv: CaseValidation, pred: Prediction,
                 per_line: Dict[int, tuple]) -> None:
        by_line = {pl.line: pl for pl in pred.lines}
        for line in cv.predicted_only:
            fs = per_line.get(line, (0, 0))[0]
            pl = by_line[line]
            if fs > 0:
                cv.explanations.append(
                    f"{cv.scope} 0x{line * 64:x}: predicted contended; "
                    f"oracle saw only {fs} fs miss(es), below the "
                    f"{self.min_oracle_misses}-miss ground-truth floor")
            elif pl.significance < SIGNIFICANCE_THRESHOLD:
                cv.explanations.append(
                    f"{cv.scope} 0x{line * 64:x}: predicted contention is "
                    f"insignificant ({pl.significance:.1e}) and the "
                    "interleaving realized it as a clean hand-off")
            else:
                cv.unexplained.append(
                    f"{cv.scope} 0x{line * 64:x}: predicted significant "
                    "contention, oracle saw none")
        for line in cv.oracle_only:
            pl = by_line.get(line)
            fs = per_line.get(line, (0, 0))[0]
            if pl is None:
                cv.unexplained.append(
                    f"{cv.scope} 0x{line * 64:x}: oracle saw {fs} fs "
                    "miss(es) on a line the plan never shares")
            elif pl.category == "true-shared":
                cv.explanations.append(
                    f"{cv.scope} 0x{line * 64:x}: predicted true-shared "
                    f"(word overlap), oracle attributes {fs} miss(es) as "
                    "fs — word-granularity judgement call on a line with "
                    "both kinds of traffic")
            elif pl.category == "false-shared" and not pl.contended:
                cv.explanations.append(
                    f"{cv.scope} 0x{line * 64:x}: predicted an "
                    f"uncontended hand-off, oracle saw {fs} fs miss(es) "
                    "— position-window model was too optimistic here")
            else:
                cv.unexplained.append(
                    f"{cv.scope} 0x{line * 64:x}: oracle saw {fs} fs "
                    f"miss(es), prediction called it {pl.category}")

    # ------------------------------------------------------------- sweeps

    def validate_registry(
        self, grid: Optional[Sequence[Tuple[Workload, RunConfig]]] = None,
    ) -> ValidationReport:
        grid = list(grid) if grid is not None else registry_grid()
        cases = [self.validate_case(w.plan(cfg), w.trace(cfg))
                 for w, cfg in grid]
        return ValidationReport(cases)

    def validate_suite(
        self, grid: Optional[Sequence[Tuple[SuiteProgram, SuiteCase]]] = None,
    ) -> ValidationReport:
        grid = list(grid) if grid is not None else suite_grid()
        cases = [self.validate_case(p.plan(case), p.trace(case))
                 for p, case in grid]
        return ValidationReport(cases)
