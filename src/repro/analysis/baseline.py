"""Finding baselines: CI fails on *new* lint findings only.

A mature lint needs a ratchet, not a cliff: the registry intentionally
ships buggy-mode workloads (bad-fs packs the accumulators on purpose), so
a predictive sweep over it will always produce findings.  The baseline
file records the fingerprints of every *known* finding; CI compares the
current sweep against it and fails only when an unsuppressed fingerprint
appears.  Fixed findings are reported too, so the baseline can be
re-tightened (``--update-baseline``) once a layout bug is actually fixed.

The file format is deliberately reviewable JSON: one entry per finding,
sorted by (scope, rule, fingerprint), carrying enough of a summary that a
reviewer can tell what each suppressed finding is without re-running the
sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.analysis.lint import Finding
from repro.errors import ConfigError

#: Current baseline file schema version.
BASELINE_VERSION = 1

#: Default committed baseline location (repo root).
DEFAULT_BASELINE = "analysis-baseline.json"


def _entry(finding: Finding) -> Dict[str, object]:
    """The reviewable summary a baseline stores per finding."""
    return {
        "fingerprint": finding.fingerprint,
        "rule": finding.rule,
        "severity": finding.severity,
        "scope": finding.scope,
        "lines": [int(x) for x in finding.lines],
        "threads": [int(t) for t in finding.threads],
        "objects": list(finding.objects),
        "message": finding.message,
    }


def baseline_payload(findings: List[Finding]) -> Dict[str, object]:
    """Serializable baseline for a list of findings (stable order)."""
    entries = sorted(
        (_entry(f) for f in findings),
        key=lambda e: (e["scope"], e["rule"], e["fingerprint"]),
    )
    return {"version": BASELINE_VERSION, "findings": entries}


def save_baseline(path: Union[str, Path],
                  findings: List[Finding]) -> Dict[str, object]:
    payload = baseline_payload(findings)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    return payload


def load_baseline(path: Union[str, Path]) -> Dict[str, object]:
    p = Path(path)
    if not p.exists():
        raise ConfigError(f"baseline file not found: {p}")
    payload = json.loads(p.read_text())
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ConfigError(
            f"unsupported baseline version {version!r} in {p} "
            f"(expected {BASELINE_VERSION})"
        )
    if not isinstance(payload.get("findings"), list):
        raise ConfigError(f"malformed baseline {p}: no findings list")
    return payload


def baseline_fingerprints(payload: Dict[str, object]) -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    for entry in payload["findings"]:  # type: ignore[union-attr]
        out[str(entry["fingerprint"])] = entry
    return out


@dataclass
class BaselineDiff:
    """Current findings split against a baseline."""

    new: List[Finding] = field(default_factory=list)
    known: List[Finding] = field(default_factory=list)
    #: Baseline entries with no matching current finding.
    fixed: List[Dict[str, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new

    def to_dict(self) -> Dict[str, object]:
        return {
            "clean": self.clean,
            "counts": {"new": len(self.new), "known": len(self.known),
                       "fixed": len(self.fixed)},
            "new": [f.to_dict() for f in self.new],
            "known_fingerprints": sorted(f.fingerprint
                                         for f in self.known),
            "fixed": list(self.fixed),
        }

    def render(self) -> str:
        head = (f"baseline diff: {len(self.new)} new, "
                f"{len(self.known)} known, {len(self.fixed)} fixed")
        lines = [head]
        for f in self.new:
            lines.append(f"  NEW   {f.fingerprint} {f.rule} "
                         f"[{f.severity}] {f.scope}: {f.message}")
        for entry in self.fixed:
            lines.append(f"  FIXED {entry['fingerprint']} {entry['rule']} "
                         f"{entry['scope']} — update the baseline to "
                         "drop it")
        if self.clean:
            lines.append("  no unsuppressed findings.")
        return "\n".join(lines)


def diff_findings(findings: List[Finding],
                  baseline: Dict[str, object]) -> BaselineDiff:
    """Split current findings into new/known and spot fixed entries."""
    known_by_fp = baseline_fingerprints(baseline)
    diff = BaselineDiff()
    seen = set()
    for f in findings:
        fp = f.fingerprint
        seen.add(fp)
        (diff.known if fp in known_by_fp else diff.new).append(f)
    diff.fixed = [entry for fp, entry in sorted(known_by_fp.items())
                  if fp not in seen]
    return diff
