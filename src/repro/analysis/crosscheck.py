"""Cross-detector disagreement harness: predict × static × shadow × tree.

Four independent detectors now exist for the same question — *does this
run falsely share?* — with four different epistemologies:

* the **predictive analyzer** (this package) forecasts from the symbolic
  access plan alone — no trace is even generated;
* the **static analyzer** (this package) decides from the trace's layout
  and timing structure alone, no simulation;
* the **shadow oracle** ([33]) replays every access through word-granular
  shadow state — dynamic ground truth on the interleaved execution;
* the **trained tree** (the paper's method) sees only normalized PMU
  counts from the simulated machine.

Following the validate-against-independent-ground-truth discipline, this
harness fans the full mini-program × mode × thread-count grid through all
four and reports the confusion structure: any systematic disagreement is
either a bug in one detector or a real blind spot worth knowing about
(e.g. the tree can only answer at whole-program granularity, the static
pass cannot see cache capacity, the predictive pass cannot see the real
interleaving).  Simulations are prefetched through
:class:`repro.parallel.ExecutionEngine`, oracle runs fan out over the same
pool, and the cheap symbolic passes run in the parent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.predict import PredictiveAnalyzer
from repro.analysis.sharing import SharingReport, StaticSharingAnalyzer
from repro.baselines.shadow import (
    FS_RATE_THRESHOLD,
    MAX_THREADS,
    ShadowMemoryDetector,
)
from repro.errors import WorkloadError
from repro.utils.tables import render_table
from repro.workloads.base import RunConfig, Workload
from repro.workloads.registry import mt_miniprograms, seq_miniprograms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.detector import FalseSharingDetector
    from repro.parallel import ExecutionEngine

#: Thread counts the default grid sweeps (the oracle refuses more than 8).
DEFAULT_THREADS = (2, 6)


def default_grid(
    threads: Sequence[int] = DEFAULT_THREADS,
    pattern: str = "random",
) -> List[Tuple[Workload, RunConfig]]:
    """Mini-program × mode × thread-count grid, one case per combination.

    Sequential programs contribute their good/bad-ma pair at one thread;
    multi-threaded programs sweep every supported mode at each requested
    thread count.  Sizes are each workload's first training size.
    """
    for t in threads:
        if not 1 <= t <= MAX_THREADS:
            raise ValueError(
                f"grid thread counts must be in [1, {MAX_THREADS}], got {t}"
            )
    grid: List[Tuple[Workload, RunConfig]] = []
    for w in mt_miniprograms():
        for mode in sorted(w.modes, key=lambda m: m.value):
            for t in threads:
                grid.append((w, RunConfig(
                    threads=t, mode=mode, size=w.train_sizes[0],
                    pattern=pattern,
                )))
    for w in seq_miniprograms():
        for mode in sorted(w.modes, key=lambda m: m.value):
            grid.append((w, RunConfig(
                threads=1, mode=mode, size=w.train_sizes[0],
                pattern=pattern,
            )))
    return grid


@dataclass
class CaseRecord:
    """All four verdicts for one grid case.

    ``predict_label`` is empty when the workload exposes no symbolic
    access plan; such records compare the remaining three detectors only.
    """

    workload: str
    mode: str
    threads: int
    size: int
    pattern: str
    static_label: str       # good | bad-fs | bad-ma (the tree's vocabulary)
    static_significance: float
    shadow_fs: bool
    shadow_rate: float
    tree_label: str
    predict_label: str = ""

    @property
    def static_fs(self) -> bool:
        return self.static_label == "bad-fs"

    @property
    def tree_fs(self) -> bool:
        return self.tree_label == "bad-fs"

    @property
    def predict_fs(self) -> bool:
        return self.predict_label == "bad-fs"

    @property
    def unanimous_fs(self) -> bool:
        """All participating detectors give the same fs verdict."""
        flags = [self.static_fs, self.shadow_fs, self.tree_fs]
        if self.predict_label:
            flags.append(self.predict_fs)
        return len(set(flags)) == 1

    @property
    def case_id(self) -> str:
        return (f"{self.workload}[t{self.threads}-{self.mode}"
                f"-n{self.size}-{self.pattern}]")

    def to_dict(self) -> Dict[str, object]:
        return {
            "case": self.case_id,
            "workload": self.workload,
            "mode": self.mode,
            "threads": self.threads,
            "size": self.size,
            "pattern": self.pattern,
            "predict": self.predict_label or None,
            "static": self.static_label,
            "static_significance": self.static_significance,
            "shadow": "fs" if self.shadow_fs else "no-fs",
            "shadow_rate": self.shadow_rate,
            "tree": self.tree_label,
            "fs_agreement": self.unanimous_fs,
        }


@dataclass
class CrossCheckReport:
    """Confusion structure over the whole grid."""

    records: List[CaseRecord]

    def confusion(self) -> Dict[Tuple[str, str, str], int]:
        """Counts per (static, shadow, tree) verdict triple."""
        out: Dict[Tuple[str, str, str], int] = {}
        for r in self.records:
            key = (r.static_label, "fs" if r.shadow_fs else "no-fs",
                   r.tree_label)
            out[key] = out.get(key, 0) + 1
        return out

    def confusion_full(self) -> Dict[Tuple[str, str, str, str], int]:
        """Counts per (predict, static, shadow, tree) verdict quadruple.

        ``predict`` is ``"-"`` for records without a symbolic plan.
        """
        out: Dict[Tuple[str, str, str, str], int] = {}
        for r in self.records:
            key = (r.predict_label or "-", r.static_label,
                   "fs" if r.shadow_fs else "no-fs", r.tree_label)
            out[key] = out.get(key, 0) + 1
        return out

    def pairwise_fs_agreement(self) -> Dict[str, float]:
        """Fraction of cases where each detector pair agrees on fs/no-fs."""
        n = len(self.records)
        if n == 0:
            return {}
        out = {
            "static-vs-shadow": sum(r.static_fs == r.shadow_fs
                                    for r in self.records) / n,
            "tree-vs-shadow": sum(r.tree_fs == r.shadow_fs
                                  for r in self.records) / n,
            "static-vs-tree": sum(r.static_fs == r.tree_fs
                                  for r in self.records) / n,
        }
        planned = [r for r in self.records if r.predict_label]
        if planned:
            m = len(planned)
            out["predict-vs-shadow"] = sum(r.predict_fs == r.shadow_fs
                                           for r in planned) / m
            out["predict-vs-static"] = sum(r.predict_fs == r.static_fs
                                           for r in planned) / m
            out["predict-vs-tree"] = sum(r.predict_fs == r.tree_fs
                                         for r in planned) / m
        return out

    def disagreements(self) -> List[CaseRecord]:
        """Cases where the three false-sharing verdicts are not unanimous."""
        return [r for r in self.records if not r.unanimous_fs]

    def render(self) -> str:
        n_detectors = (4 if any(r.predict_label for r in self.records)
                       else 3)
        lines = [f"{len(self.records)} grid cases, "
                 f"{n_detectors} detectors"]
        conf = self.confusion_full()
        rows = [
            [p, s, sh, tr, n]
            for (p, s, sh, tr), n in sorted(conf.items())
        ]
        lines.append(render_table(
            ["predict", "static", "shadow", "tree", "cases"], rows,
            title="Verdict confusion matrix "
                  "(predict × static × shadow × tree)",
        ))
        agree = self.pairwise_fs_agreement()
        lines.append("false-sharing agreement: " + "   ".join(
            f"{k}: {100 * v:.1f}%" for k, v in agree.items()
        ))
        dis = self.disagreements()
        if dis:
            rows = [
                [r.case_id, r.predict_label or "-", r.static_label,
                 "fs" if r.shadow_fs else "no-fs", r.tree_label,
                 f"{r.static_significance:.1e}", f"{r.shadow_rate:.1e}"]
                for r in dis
            ]
            lines.append(render_table(
                ["case", "predict", "static", "shadow", "tree",
                 "static sig", "shadow rate"],
                rows, title="Disagreements (false-sharing axis)",
            ))
        else:
            lines.append("no disagreements: all detectors concur on "
                         "every case.")
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "cases": [r.to_dict() for r in self.records],
            "confusion": [
                {"predict": p, "static": s, "shadow": sh, "tree": tr,
                 "count": n}
                for (p, s, sh, tr), n in
                sorted(self.confusion_full().items())
            ],
            "pairwise_fs_agreement": self.pairwise_fs_agreement(),
            "disagreements": [r.case_id for r in self.disagreements()],
        }
        return json.dumps(payload, indent=indent)


class CrossChecker:
    """Runs the three detectors over a case grid and collates verdicts."""

    def __init__(
        self,
        detector: "FalseSharingDetector",
        shadow: Optional[ShadowMemoryDetector] = None,
        analyzer: Optional[StaticSharingAnalyzer] = None,
        engine: Optional["ExecutionEngine"] = None,
    ) -> None:
        self.detector = detector
        self.shadow = shadow or ShadowMemoryDetector()
        self.analyzer = analyzer or StaticSharingAnalyzer()
        self.predictor = PredictiveAnalyzer()
        if engine is None:
            from repro.parallel import ExecutionEngine

            engine = ExecutionEngine()
        self.engine = engine

    def static_report(self, workload: Workload,
                      cfg: RunConfig) -> SharingReport:
        return self.analyzer.analyze(workload.trace(cfg))

    def predict_label(self, workload: Workload, cfg: RunConfig) -> str:
        """Symbolic verdict, or "" for plan-less workloads."""
        try:
            plan = workload.plan(cfg)
        except WorkloadError:
            return ""
        return self.predictor.analyze(plan).verdict

    def run(
        self, grid: Optional[Sequence[Tuple[Workload, RunConfig]]] = None
    ) -> CrossCheckReport:
        grid = list(grid) if grid is not None else default_grid()
        # The expensive axes fan out over the worker pool; the parent then
        # consumes cache hits (tree) and precomputed counts (oracle) in
        # grid order, so results are identical for any worker count.
        self.engine.prefetch_simulations(
            self.detector.lab, [(w, cfg) for w, cfg in grid]
        )
        counts = self.engine.shadow_batch(
            [(w.name, cfg) for w, cfg in grid],
            chunk=self.detector.lab.chunk,
            max_threads=self.shadow.max_threads,
            fast=self.shadow.fast,
        )
        records = []
        for (w, cfg), (fs, _ts, _cold, instr) in zip(grid, counts):
            static = self.static_report(w, cfg)
            tree = self.detector.classify(w, cfg).label
            rate = fs / instr if instr else 0.0
            records.append(CaseRecord(
                workload=w.name,
                mode=cfg.mode.value,
                threads=cfg.threads,
                size=cfg.size,
                pattern=cfg.pattern,
                static_label=static.verdict,
                static_significance=static.fs_significance,
                shadow_fs=rate > FS_RATE_THRESHOLD,
                shadow_rate=rate,
                tree_label=tree,
                predict_label=self.predict_label(w, cfg),
            ))
        self.detector.lab.flush()
        return CrossCheckReport(records)
