"""Static sharing analysis: a simulation-free false-sharing verdict.

The package's three pieces form the third detection modality next to the
dynamic shadow-memory oracle and the trained classifier:

* :mod:`repro.analysis.sharing` — classify every cache line a program
  touches as private / read-shared / true-shared / false-shared, straight
  from the trace, with no MESI simulation;
* :mod:`repro.analysis.lint` — rule engine (FS001..FS004) turning those
  facts into actionable findings with padding suggestions;
* :mod:`repro.analysis.crosscheck` — disagreement harness fanning the
  mini-program grid through static analyzer, shadow oracle, and the
  trained tree, and reporting where the three detectors diverge.
"""

from repro.analysis.crosscheck import (
    CaseRecord,
    CrossChecker,
    CrossCheckReport,
    default_grid,
)
from repro.analysis.lint import Finding, SharingLinter
from repro.analysis.sharing import (
    SIGNIFICANCE_THRESHOLD,
    LineSharing,
    SharingReport,
    StaticSharingAnalyzer,
    ThreadProfile,
    analyze_trace,
)

__all__ = [
    "CaseRecord",
    "CrossChecker",
    "CrossCheckReport",
    "default_grid",
    "Finding",
    "SharingLinter",
    "SIGNIFICANCE_THRESHOLD",
    "LineSharing",
    "SharingReport",
    "StaticSharingAnalyzer",
    "ThreadProfile",
    "analyze_trace",
]
