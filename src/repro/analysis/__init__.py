"""Static sharing analysis: simulation-free false-sharing verdicts.

The package's pieces form the third and fourth detection modalities next
to the dynamic shadow-memory oracle and the trained classifier:

* :mod:`repro.analysis.sharing` — classify every cache line a program
  touches as private / read-shared / true-shared / false-shared, straight
  from the trace, with no MESI simulation;
* :mod:`repro.analysis.symbols` — interval-indexed map from address
  ranges to named workload objects (``objects_on_line`` / ``line_owners``);
* :mod:`repro.analysis.predict` — the same verdict vocabulary computed
  from a symbolic :class:`~repro.workloads.plan.AccessPlan` alone, before
  any trace exists;
* :mod:`repro.analysis.lint` — rule engine (FS001..FS008) turning trace
  facts and predictions into actionable findings with padding
  suggestions, each carrying a stable fingerprint;
* :mod:`repro.analysis.baseline` — committed finding baselines so CI
  fails only on *new* findings;
* :mod:`repro.analysis.validate` — line-level precision/recall of the
  predictive pass against the shadow oracle's per-line attribution;
* :mod:`repro.analysis.crosscheck` — disagreement harness fanning the
  mini-program grid through predictive analyzer, static analyzer, shadow
  oracle, and the trained tree, and reporting where they diverge.
"""

from repro.analysis.baseline import (
    BaselineDiff,
    diff_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.crosscheck import (
    CaseRecord,
    CrossChecker,
    CrossCheckReport,
    default_grid,
)
from repro.analysis.lint import Finding, SharingLinter
from repro.analysis.predict import (
    PredictedLine,
    Prediction,
    PredictiveAnalyzer,
    predict_plan,
)
from repro.analysis.sharing import (
    SIGNIFICANCE_THRESHOLD,
    LineSharing,
    SharingReport,
    StaticSharingAnalyzer,
    ThreadProfile,
    analyze_trace,
)
from repro.analysis.symbols import Symbol, SymbolTable
from repro.analysis.validate import (
    PredictionValidator,
    ValidationReport,
)

__all__ = [
    "BaselineDiff",
    "diff_findings",
    "load_baseline",
    "save_baseline",
    "CaseRecord",
    "CrossChecker",
    "CrossCheckReport",
    "default_grid",
    "Finding",
    "SharingLinter",
    "PredictedLine",
    "Prediction",
    "PredictiveAnalyzer",
    "predict_plan",
    "SIGNIFICANCE_THRESHOLD",
    "LineSharing",
    "SharingReport",
    "StaticSharingAnalyzer",
    "ThreadProfile",
    "analyze_trace",
    "Symbol",
    "SymbolTable",
    "PredictionValidator",
    "ValidationReport",
]
