"""Simulated memory layout: line/page geometry, allocation, TLB."""

from repro.memory.allocator import BumpAllocator
from repro.memory.layout import (
    LINE_SIZE,
    PAGE_SIZE,
    ArrayLayout,
    align_up,
    line_of,
    offset_in_line,
    page_of,
    shares_line,
)
from repro.memory.tlb import TLB

__all__ = [
    "LINE_SIZE",
    "PAGE_SIZE",
    "ArrayLayout",
    "align_up",
    "line_of",
    "offset_in_line",
    "page_of",
    "shares_line",
    "BumpAllocator",
    "TLB",
]
