"""A bump allocator for laying out workload data in a simulated address space.

Workload generators use this to place arrays and per-thread variables.  The
allocator decides whether per-thread slots are *packed* (several per cache
line: the false-sharing layout) or *padded* (one per line: the fixed layout),
which is exactly the knob the paper's mini-programs flip between "good" and
"bad-fs" modes.
"""

from __future__ import annotations

from typing import List

from repro.memory.layout import LINE_SIZE, ArrayLayout, align_up


class BumpAllocator:
    """Monotonic allocator over a flat simulated address space.

    Addresses start at ``base`` (default one page in, so address 0 is never
    handed out) and only grow; there is no free().  That is all trace
    generation needs, and it keeps layouts reproducible.
    """

    def __init__(self, base: int = 4096) -> None:
        if base < 0:
            raise ValueError("base must be >= 0")
        self._cursor = base

    @property
    def cursor(self) -> int:
        """Next unallocated byte address."""
        return self._cursor

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` and return the (aligned) base address."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        addr = align_up(self._cursor, align)
        self._cursor = addr + nbytes
        return addr

    def alloc_array(
        self, elem_size: int, length: int, align: int = 8, stride: int = 0
    ) -> ArrayLayout:
        """Reserve a contiguous array and return its layout."""
        layout = ArrayLayout(0, elem_size, length, stride)
        base = self.alloc(layout.size_bytes, align)
        return ArrayLayout(base, elem_size, length, stride)

    def alloc_line_aligned(self, nbytes: int) -> int:
        """Reserve ``nbytes`` starting on a fresh cache line."""
        return self.alloc(nbytes, align=LINE_SIZE)

    def per_thread_slots(
        self, nthreads: int, elem_size: int = 8, padded: bool = False
    ) -> List[int]:
        """Allocate one slot per thread; ``padded`` puts each on its own line.

        Packed slots (padded=False) are consecutive ``elem_size`` fields, so
        with 8-byte fields up to 8 threads share one 64-byte line — the
        canonical ``int psum[MAXTHREADS]`` false-sharing layout from the
        paper's Figure 1.
        """
        if nthreads <= 0:
            raise ValueError("nthreads must be positive")
        if padded:
            return [self.alloc_line_aligned(max(elem_size, LINE_SIZE)) for _ in range(nthreads)]
        base = self.alloc(nthreads * elem_size, align=LINE_SIZE)
        return [base + i * elem_size for i in range(nthreads)]
