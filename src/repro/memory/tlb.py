"""A small data-TLB model.

Westmere's DTLB0 holds 64 4-KiB entries (4-way).  We model it as a
fully-associative LRU buffer of pages, which is accurate enough to produce
the DTLB_Misses event (event 13 of Table 2): linear scans touch a new page
every 64 lines, while random access over a large footprint misses the TLB on
most references — one of the two signals the learned tree uses to call
"bad-ma".
"""

from __future__ import annotations

from collections import OrderedDict


class TLB:
    """Fully-associative LRU translation buffer keyed by page number."""

    def __init__(self, entries: int = 64) -> None:
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.entries = entries
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        """Touch ``page``; return True on hit, False on miss (and fill)."""
        pages = self._pages
        if page in pages:
            pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(pages) >= self.entries:
            pages.popitem(last=False)
        pages[page] = None
        return False

    def flush(self) -> None:
        """Drop all entries (context-switch model); counters are kept."""
        self._pages.clear()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: int) -> bool:
        return page in self._pages
