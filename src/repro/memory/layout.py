"""Cache-line and page geometry, address arithmetic, array layouts.

All traces in the library carry *byte* addresses so that both the PMU-level
simulator (which works on 64-byte lines) and the Zhao-style shadow-memory
baseline (which needs byte offsets within a line to tell false sharing from
true sharing) can consume the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Cache-line size used throughout: Westmere DP, like every modern x86, uses
#: 64-byte lines.  streamcluster's famous bug assumes 32-byte lines, which is
#: why its padding does not work here — the suite model relies on this.
LINE_SIZE = 64
PAGE_SIZE = 4096

LINE_SHIFT = 6
PAGE_SHIFT = 12

assert (1 << LINE_SHIFT) == LINE_SIZE
assert (1 << PAGE_SHIFT) == PAGE_SIZE


def _line_shift(line_size: int) -> int:
    """Shift amount for a line size; rejects non-power-of-two sizes."""
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError(
            f"line size must be a positive power of two, got {line_size}"
        )
    return line_size.bit_length() - 1


def line_of(addr, line_size: int = LINE_SIZE):
    """Cache-line index for a byte address (scalar or ndarray).

    ``line_size`` defaults to the machine's 64-byte lines; passing another
    power of two models different geometries (e.g. streamcluster's 32-byte
    assumption, or 128-byte L2 sectors).
    """
    if line_size == LINE_SIZE:
        return addr >> LINE_SHIFT
    return addr >> _line_shift(line_size)


def page_of(addr):
    """Page index for a byte address (scalar or ndarray)."""
    return addr >> PAGE_SHIFT


def offset_in_line(addr, line_size: int = LINE_SIZE):
    """Byte offset of an address within its cache line."""
    if line_size != LINE_SIZE:
        _line_shift(line_size)  # validate
    return addr & (line_size - 1)


def align_up(addr: int, align: int) -> int:
    """Round ``addr`` up to the next multiple of ``align`` (a power of two)."""
    if align <= 0 or align & (align - 1):
        raise ValueError(f"alignment must be a positive power of two, got {align}")
    return (addr + align - 1) & ~(align - 1)


@dataclass(frozen=True)
class ArrayLayout:
    """A contiguous array of fixed-size elements at a base byte address.

    ``stride`` defaults to ``elem_size`` (packed); a larger stride models
    padded layouts (e.g. one element per cache line to avoid false sharing).
    """

    base: int
    elem_size: int
    length: int
    stride: int = 0  # 0 means "use elem_size"

    def __post_init__(self) -> None:
        if self.elem_size <= 0 or self.length < 0 or self.base < 0:
            raise ValueError("ArrayLayout requires base>=0, elem_size>0, length>=0")
        if self.stride and self.stride < self.elem_size:
            raise ValueError("stride must be >= elem_size")

    @property
    def effective_stride(self) -> int:
        return self.stride or self.elem_size

    @property
    def size_bytes(self) -> int:
        if self.length == 0:
            return 0
        return (self.length - 1) * self.effective_stride + self.elem_size

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def addr(self, index):
        """Byte address of element ``index`` (scalar or ndarray of indices)."""
        if isinstance(index, np.ndarray):
            if ((index < 0) | (index >= self.length)).any():
                raise IndexError("ArrayLayout index out of range")
            return self.base + index.astype(np.int64) * self.effective_stride
        if not 0 <= index < self.length:
            raise IndexError(f"ArrayLayout index {index} out of range [0,{self.length})")
        return self.base + index * self.effective_stride

    def addrs(self) -> np.ndarray:
        """Byte addresses of all elements, in index order."""
        return self.base + np.arange(self.length, dtype=np.int64) * self.effective_stride

    def lines_spanned(self) -> int:
        """Number of distinct cache lines the array touches."""
        if self.length == 0:
            return 0
        first = line_of(self.base)
        last = line_of(self.end - 1)
        return int(last - first + 1)


def shares_line(addr_a: int, addr_b: int, line_size: int = LINE_SIZE) -> bool:
    """True when two byte addresses fall on the same cache line."""
    return line_of(addr_a, line_size) == line_of(addr_b, line_size)
