"""repro: a full reproduction of "Detection of False Sharing Using Machine
Learning" (Jayasena et al., SC'13) on a simulated Westmere DP substrate.

Public API quick tour::

    from repro import Lab, FalseSharingDetector, RunConfig, get_workload

    lab = Lab()                                  # simulated 12-core testbed
    det = FalseSharingDetector(lab).fit()        # collect + train (Sec. 2-3)
    pdot = get_workload("pdot")                  # Figure 1's dot product
    result = det.classify(pdot, RunConfig(threads=6, mode="bad-fs",
                                          size=196_608))
    assert result.label == "bad-fs"

Subpackages: ``coherence`` (MESI multicore simulator), ``pmu`` (events and
counters), ``workloads`` (mini-programs), ``suites`` (Phoenix/PARSEC
models), ``ml`` (C4.5/J48 from scratch), ``core`` (the paper's method),
``baselines`` (shadow-memory oracle, SHERIFF), ``analysis`` (simulation-free
static sharing analyzer, lint rules, cross-detector harness),
``experiments`` (one entry per paper table/figure).
"""

from repro.analysis import SharingLinter, StaticSharingAnalyzer, analyze_trace

from repro.coherence import MachineSpec, MulticoreMachine, SimulationResult
from repro.coherence.machine import SCALED_WESTMERE, WESTMERE_SPEC
from repro.core import FalseSharingDetector, Lab, collect_training_data, select_events
from repro.errors import ReproError
from repro.ml import C45Classifier, ConfusionMatrix, Dataset
from repro.parallel import ExecutionEngine, default_jobs, set_default_jobs
from repro.pmu import TABLE2_EVENTS, Event, EventVector
from repro.trace import ProgramTrace, ThreadTrace
from repro.workloads import Mode, RunConfig, Workload, get_workload

__version__ = "1.0.0"

__all__ = [
    "MachineSpec",
    "MulticoreMachine",
    "SimulationResult",
    "SCALED_WESTMERE",
    "WESTMERE_SPEC",
    "FalseSharingDetector",
    "Lab",
    "collect_training_data",
    "select_events",
    "ReproError",
    "ExecutionEngine",
    "default_jobs",
    "set_default_jobs",
    "C45Classifier",
    "ConfusionMatrix",
    "Dataset",
    "TABLE2_EVENTS",
    "Event",
    "EventVector",
    "ProgramTrace",
    "ThreadTrace",
    "Mode",
    "RunConfig",
    "Workload",
    "get_workload",
    "SharingLinter",
    "StaticSharingAnalyzer",
    "analyze_trace",
    "__version__",
]
