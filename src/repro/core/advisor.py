"""Diagnosis beyond the verdict: which lines, which threads, what fix.

The detector says *that* a run falsely shares; a developer needs to know
*where*.  This advisor combines the classifier's verdict with a
shadow-memory pass over the same trace to name the contended cache lines,
the threads fighting over them, and the byte layout that causes it — and
estimates the benefit of padding by replaying the trace with the contended
lines spread out (SHERIFF's mitigation idea [21], here as advice instead of
runtime patching).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.detector import FalseSharingDetector
from repro.errors import NotFittedError
from repro.memory.layout import LINE_SIZE
from repro.pmu.events import TABLE2_EVENTS
from repro.trace.access import ProgramTrace, ThreadTrace
from repro.utils.tables import render_table


@dataclass
class ContendedLine:
    """One falsely-shared cache line."""

    line: int
    writers: List[int]
    writes_per_thread: Dict[int, int]
    distinct_words: int

    @property
    def address(self) -> int:
        return self.line * LINE_SIZE

    @property
    def total_writes(self) -> int:
        return sum(self.writes_per_thread.values())


@dataclass
class Diagnosis:
    """Full advisory report for one run."""

    label: str
    seconds: float
    contended: List[ContendedLine]
    padded_seconds: Optional[float] = None

    @property
    def estimated_speedup(self) -> Optional[float]:
        if self.padded_seconds is None or self.padded_seconds <= 0:
            return None
        return self.seconds / self.padded_seconds

    def render(self) -> str:
        lines = [f"verdict: {self.label}   simulated time: "
                 f"{self.seconds * 1e3:.3f} ms"]
        if self.label != "bad-fs":
            lines.append("no false sharing to fix.")
            return "\n".join(lines)
        rows = [
            [f"0x{cl.address:x}", len(cl.writers), cl.distinct_words,
             cl.total_writes,
             ", ".join(f"T{t}:{n}" for t, n in
                       sorted(cl.writes_per_thread.items()))]
            for cl in self.contended
        ]
        lines.append(render_table(
            ["line addr", "writer threads", "distinct words", "writes",
             "writes by thread"],
            rows, title="Falsely shared cache lines (hottest first)",
        ))
        lines.append(
            "fix: give each thread's data its own cache line "
            "(pad structs to 64 bytes / use one line per thread slot)."
        )
        if self.estimated_speedup is not None:
            lines.append(
                f"estimated effect of padding: {self.seconds * 1e3:.3f} ms "
                f"-> {self.padded_seconds * 1e3:.3f} ms "
                f"({self.estimated_speedup:.1f}x)"
            )
        return "\n".join(lines)


class FalseSharingAdvisor:
    """Names the contended lines behind a bad-fs verdict and sizes the fix.

    The trace-level helpers (:meth:`find_contended_lines`,
    :meth:`pad_trace`) are purely structural and work with
    ``detector=None``; only :meth:`diagnose` needs a fitted detector to
    produce the verdict (the static lint reuses the helpers this way).
    """

    def __init__(self, detector: Optional[FalseSharingDetector] = None,
                 top_lines: int = 8) -> None:
        self.detector = detector
        self.top_lines = top_lines

    # ------------------------------------------------------------ analysis

    def find_contended_lines(self, program: ProgramTrace) -> List[ContendedLine]:
        """Cache lines written by 2+ threads on disjoint words.

        Word-disjointness is what separates false from true sharing — the
        same rule the shadow-memory oracle applies, here aggregated per line.
        """
        writes_by: Dict[int, Dict[int, int]] = defaultdict(dict)
        words_by: Dict[int, Dict[int, set]] = defaultdict(dict)
        for tid, t in enumerate(program.threads):
            w_addr = t.addrs[t.is_write]
            lines = (w_addr >> 6).astype(np.int64)
            words = ((w_addr >> 2) & 15).astype(np.int64)
            for line, word in zip(lines.tolist(), words.tolist()):
                per = writes_by[line]
                per[tid] = per.get(tid, 0) + 1
                words_by[line].setdefault(tid, set()).add(word)
        out = []
        for line, per in writes_by.items():
            if len(per) < 2:
                continue
            word_sets = list(words_by[line].values())
            union = set().union(*word_sets)
            # false sharing: each thread writes its own words
            if sum(len(ws) for ws in word_sets) == len(union):
                out.append(ContendedLine(
                    line=line,
                    writers=sorted(per),
                    writes_per_thread=dict(per),
                    distinct_words=len(union),
                ))
        out.sort(key=lambda cl: cl.total_writes, reverse=True)
        return out[: self.top_lines]

    def pad_trace(self, program: ProgramTrace,
                  contended: List[ContendedLine]) -> ProgramTrace:
        """Replay layout: spread each contended line's per-thread words onto
        private lines (what a padding fix does to the address stream)."""
        if not contended:
            return program
        # address translation: (line, thread) -> fresh private line
        base = max(int(t.addrs.max(initial=0)) for t in program.threads)
        base = ((base >> 6) + 2) << 6
        remap: Dict[Tuple[int, int], int] = {}
        next_line = base >> 6
        for cl in contended:
            for tid in cl.writers:
                remap[(cl.line, tid)] = next_line
                next_line += 1
        hot = {cl.line for cl in contended}
        threads = []
        for tid, t in enumerate(program.threads):
            addrs = t.addrs.copy()
            lines = addrs >> 6
            mask = np.isin(lines, list(hot))
            if mask.any():
                idx = np.flatnonzero(mask)
                for i in idx.tolist():
                    key = (int(lines[i]), tid)
                    new_line = remap.get(key)
                    if new_line is not None:
                        addrs[i] = (new_line << 6) | (addrs[i] & 63)
            threads.append(ThreadTrace(addrs, t.is_write.copy(),
                                       t.instr_per_access,
                                       t.extra_instructions))
        return ProgramTrace(threads, name=f"{program.name}+padded",
                            meta=dict(program.meta))

    # ------------------------------------------------------------ frontend

    def diagnose_trace(self, program: ProgramTrace,
                       run_id: str = "") -> Diagnosis:
        if self.detector is None:
            raise NotFittedError(
                "diagnosis needs a fitted detector; construct the advisor "
                "with FalseSharingAdvisor(detector)"
            )
        lab = self.detector.lab
        machine = lab.machine
        res = machine.run(program, chunk=lab.chunk)
        vec = lab.sampler.measure(res, list(TABLE2_EVENTS), run_id=run_id)
        label = self.detector.classify_vector(vec)
        contended: List[ContendedLine] = []
        padded_seconds = None
        if label == "bad-fs":
            contended = self.find_contended_lines(program)
            if contended:
                fixed = self.pad_trace(program, contended)
                padded_seconds = machine.run(fixed, chunk=lab.chunk).seconds
        return Diagnosis(
            label=label,
            seconds=res.seconds,
            contended=contended,
            padded_seconds=padded_seconds,
        )

    def diagnose(self, workload, cfg) -> Diagnosis:
        return self.diagnose_trace(workload.trace(cfg), run_id=cfg.run_id())
