"""The experimental context: machine + PMU + caching + interference model.

A :class:`Lab` bundles everything one "testbed" needs: the machine spec, the
latency model, the PMU sampler, and a simulation cache.  Because a repeated
run (``cfg.rep``) performs the identical computation, simulation results are
cached ignoring ``rep`` — only the measurement noise differs between repeats,
exactly as on hardware.

The interference model reproduces a mundane but load-bearing fact from the
paper: some collected instances were garbage (Section 3.1 removed 44 of the
271 sequential instances after manual examination).  On a real machine
single-threaded runs share the socket with daemons and other users; we model
that as an occasional multiplicative inflation of cache-traffic counters.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.coherence.machine import (
    MachineSpec,
    MulticoreMachine,
    SCALED_WESTMERE,
    SimulationResult,
)
from repro.coherence.timing import DEFAULT_LATENCY, LatencyModel
from repro.pmu.counters import EventVector
from repro.pmu.events import Event, TABLE2_EVENTS
from repro.pmu.sampler import PMUSampler
from repro.trace.streams import DEFAULT_CHUNK
from repro.utils.rng import rng_for

#: Raw counters inflated when background interference hits a run: everything
#: that scales with cache traffic, not with the program's instructions.
_INTERFERENCE_KEYS = (
    "L1D.REPL",
    "L2_TRANSACTIONS.FILL",
    "L2_LINES_IN.S_STATE",
    "L2_LINES_IN.E_STATE",
    "L2_LINES_IN.ANY",
    "L2_LINES_OUT.DEMAND_CLEAN",
    "L2_LINES_OUT.DEMAND_DIRTY",
    "L2_DATA_RQSTS.DEMAND.I_STATE",
    "L2_RQSTS.LD_MISS",
    "OFFCORE_REQUESTS.DEMAND.READ_DATA",
    "OFFCORE_REQUESTS.ANY",
    "DTLB_MISSES.ANY",
    "LONGEST_LAT_CACHE.REFERENCE",
    "LONGEST_LAT_CACHE.MISS",
    "RESOURCE_STALLS.LOAD",
)


@dataclass
class Lab:
    """One simulated testbed with a run cache and reproducible noise."""

    spec: MachineSpec = SCALED_WESTMERE
    latency: LatencyModel = DEFAULT_LATENCY
    seed: int = 0
    noisy: bool = True
    chunk: int = DEFAULT_CHUNK
    prefetch: bool = True
    #: Drive strategy, forwarded to :class:`MulticoreMachine` (and to worker
    #: processes by the execution engine): ``True``/``'auto'`` probes each
    #: segment and picks run-compression or the line-partitioned kernel,
    #: ``'runs'``/``'lines'`` force one vectorized path, ``False``/``'ref'``
    #: selects the per-access reference loop.  Results are bit-identical
    #: under every strategy (the fast ones exist purely for throughput).
    fast: Union[bool, str] = True
    #: "auto" uses a per-spec pickle under the user cache dir; None disables;
    #: a path uses that file.  Simulations are deterministic, so caching
    #: across processes is safe (delete the file after changing simulator or
    #: workload code).
    disk_cache: Union[str, Path, None] = "auto"
    _cache: Dict[Tuple, SimulationResult] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self._machine = MulticoreMachine(
            self.spec, self.latency, prefetch=self.prefetch, fast=self.fast
        )
        self._sampler = PMUSampler(seed=self.seed, noisy=self.noisy)
        self._dirty = 0
        self._cache_path: Optional[Path] = None
        if self.disk_cache == "auto":
            base = Path(
                os.environ.get("REPRO_CACHE_DIR",
                               Path(tempfile.gettempdir()) / "repro-simcache")
            )
            from repro.versioning import SIM_VERSION

            self._cache_path = (
                base / f"{self.spec.name}-c{self.chunk}-{SIM_VERSION}.pkl"
            )
        elif self.disk_cache is not None:
            self._cache_path = Path(self.disk_cache)
        if self._cache_path is not None and self._cache_path.exists():
            try:
                with open(self._cache_path, "rb") as fh:
                    self._cache.update(pickle.load(fh))
            except Exception:
                # A corrupt cache is not an error; just recompute.
                self._cache.clear()

    @property
    def machine(self) -> MulticoreMachine:
        """The underlying simulator (shared cache geometry and latencies)."""
        return self._machine

    @property
    def sampler(self) -> PMUSampler:
        """The PMU sampler used for measurements."""
        return self._sampler

    def flush(self) -> None:
        """Persist the simulation cache to disk (no-op when disabled)."""
        if self._cache_path is None:
            return
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._cache_path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(self._cache, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(self._cache_path)
        self._dirty = 0

    # ---------------------------------------------------------------- runs

    def simulation_key(self, workload, cfg) -> Tuple:
        """The run-cache key for one configuration (rep index excluded)."""
        return (workload.name,) + tuple(workload.cache_key(cfg)) + (self.chunk,)

    def has_result(self, key: Tuple) -> bool:
        """True when a simulation for this key is already cached."""
        return key in self._cache

    def adopt_result(self, key: Tuple, result: SimulationResult) -> None:
        """Install a simulation computed elsewhere (a worker process).

        Simulations are deterministic functions of the key, so adopting a
        worker's result is indistinguishable from computing it here; the
        serial measurement loop then consumes it as an ordinary cache hit.
        """
        if key not in self._cache:
            self._cache[key] = result
            self._dirty += 1

    def simulate(self, workload, cfg) -> SimulationResult:
        """Run (or fetch from cache) the simulation for one configuration.

        ``workload`` is anything with ``name``, ``trace(cfg)`` and
        ``cache_key(cfg)`` — mini-programs and suite models alike.  The rep
        index is excluded from the cache key: repeats re-measure, they do
        not re-execute different computations.
        """
        key = self.simulation_key(workload, cfg)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        result = self._machine.run(workload.trace(cfg), chunk=self.chunk)
        self._cache[key] = result
        self._dirty += 1
        if self._dirty >= 25:
            self.flush()
        return result

    def simulate_store(self, path: Union[str, Path],
                       stream: bool = True) -> SimulationResult:
        """Run (or fetch from cache) the simulation of a persisted trace.

        ``path`` names a program store written by
        :func:`repro.trace.store.save_program`.  The cache key is the
        store's **content digest**, read from the header in O(1): renamed
        or copied files hit the same entry, and a regenerated trace with
        different bytes misses regardless of its name.  The default
        ``stream=True`` drives the trace off the memmap through the
        streaming merge, so multi-GB stores never materialize a merged
        copy; ``stream=False`` uses the monolithic drive (identical
        results — the streamed path is bit-exact by construction).
        """
        from repro.trace.store import open_program, open_store

        digest = open_store(path).digest
        key = ("store", digest, self.chunk)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        program = open_program(path)
        if stream:
            result = self._machine.run_stream(program, chunk=self.chunk)
        else:
            result = self._machine.run(program, chunk=self.chunk)
        self._cache[key] = result
        self._dirty += 1
        if self._dirty >= 25:
            self.flush()
        return result

    def measure(
        self,
        workload,
        cfg,
        events: Optional[Sequence[Event]] = None,
        interference_p: float = 0.0,
    ) -> EventVector:
        """Simulate + sample the PMU for one configuration.

        ``interference_p`` is the probability this particular (run, rep)
        was polluted by background activity.
        """
        events = list(events) if events is not None else list(TABLE2_EVENTS)
        result = self.simulate(workload, cfg)
        run_id = cfg.run_id()
        if interference_p > 0.0:
            result = self._maybe_interfere(
                result, workload.name, run_id, interference_p
            )
        vec = self._sampler.measure(result, events, run_id=run_id)
        vec.meta.update(result.meta)
        vec.meta["seconds"] = result.seconds
        vec.meta["run_id"] = run_id
        return vec

    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()

    # ---------------------------------------------------------- interference

    def _maybe_interfere(
        self,
        result: SimulationResult,
        name: str,
        run_id: str,
        p: float,
    ) -> SimulationResult:
        rng = rng_for("interference", self.seed, name, run_id)
        if rng.random() >= p:
            return result
        factor = float(rng.uniform(2.5, 5.0))
        counts = dict(result.counts)
        for key in _INTERFERENCE_KEYS:
            if key in counts:
                counts[key] *= factor
        return SimulationResult(
            counts=counts,
            cycles_per_core=[c * (1 + 0.2 * (factor - 1))
                             for c in result.cycles_per_core],
            instructions_per_core=list(result.instructions_per_core),
            seconds=result.seconds * (1 + 0.2 * (factor - 1)),
            nthreads=result.nthreads,
            spec=result.spec,
            name=result.name,
            meta={**result.meta, "interfered": True},
        )
