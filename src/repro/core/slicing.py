"""Time-sliced detection (the paper's Section 6 future work).

The published method classifies a whole execution; the authors name "short
time slices" as the next step, so phase-structured programs — good for most
of the run, falsely sharing during one stage — can be localized in time.
This module implements it on the same substrate: the machine runs the trace
in consecutive slices with warm caches, the PMU samples each slice, and the
already-trained detector classifies each slice independently.

The per-slice verdicts come with a summary that answers the practical
questions: does the program falsely share at all, during which fraction of
its run, and where are the phase boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.detector import FalseSharingDetector
from repro.errors import ConfigError
from repro.pmu.events import TABLE2_EVENTS
from repro.trace.access import ProgramTrace
from repro.utils.stats import majority, tally
from repro.utils.tables import render_table


@dataclass
class SliceVerdict:
    """Classification of one time slice."""

    index: int
    label: str
    seconds: float
    instructions: int
    hitm_per_instr: float


@dataclass
class SlicedDiagnosis:
    """Per-slice verdicts plus phase structure."""

    verdicts: List[SliceVerdict]
    n_slices: int

    @property
    def overall(self) -> str:
        """Whole-run verdict: any falsely-sharing slice flags the program
        (a phase problem is still a problem), otherwise majority."""
        labels = [v.label for v in self.verdicts]
        if "bad-fs" in labels:
            return "bad-fs"
        return majority(labels)

    @property
    def labels(self) -> List[str]:
        return [v.label for v in self.verdicts]

    def tally(self) -> Dict[str, int]:
        return tally(self.labels)

    def fs_time_fraction(self) -> float:
        """Fraction of simulated run time spent in falsely-sharing slices."""
        total = sum(v.seconds for v in self.verdicts)
        if total <= 0:
            return 0.0
        fs = sum(v.seconds for v in self.verdicts if v.label == "bad-fs")
        return fs / total

    def phases(self) -> List[Tuple[str, int, int]]:
        """Maximal runs of equal labels: ``(label, first, last)`` slices."""
        out: List[Tuple[str, int, int]] = []
        for v in self.verdicts:
            if out and out[-1][0] == v.label:
                out[-1] = (v.label, out[-1][1], v.index)
            else:
                out.append((v.label, v.index, v.index))
        return out

    def render(self) -> str:
        rows = [
            [v.index, v.label, f"{v.seconds * 1e3:.3f}ms",
             v.instructions, f"{v.hitm_per_instr:.2e}"]
            for v in self.verdicts
        ]
        text = render_table(
            ["slice", "verdict", "time", "instructions", "HITM/instr"],
            rows, title=f"Time-sliced diagnosis ({self.n_slices} slices)",
        )
        text += (f"\noverall: {self.overall}; falsely-sharing time fraction: "
                 f"{100 * self.fs_time_fraction():.0f}%")
        return text


class SlicedDetector:
    """Runs the trained detector on consecutive time slices of a program."""

    def __init__(self, detector: FalseSharingDetector,
                 n_slices: int = 8) -> None:
        if n_slices < 1:
            raise ConfigError("n_slices must be >= 1")
        self.detector = detector
        self.n_slices = n_slices

    def diagnose_trace(self, program: ProgramTrace,
                       run_id: str = "") -> SlicedDiagnosis:
        """Slice a prepared trace and classify each slice."""
        lab = self.detector.lab
        machine = lab.machine
        results = machine.run_sliced(program, self.n_slices, chunk=lab.chunk)
        hitm = TABLE2_EVENTS[10]
        verdicts = []
        for i, res in enumerate(results):
            if res.instructions <= 0:
                continue
            vec = lab.sampler.measure(
                res, TABLE2_EVENTS, run_id=f"{run_id}#slice{i}"
            )
            verdicts.append(SliceVerdict(
                index=i,
                label=self.detector.classify_vector(vec),
                seconds=res.seconds,
                instructions=res.instructions,
                hitm_per_instr=vec.normalized(hitm),
            ))
        return SlicedDiagnosis(verdicts, self.n_slices)

    def diagnose(self, workload, cfg) -> SlicedDiagnosis:
        """Generate the trace for ``(workload, cfg)`` and diagnose it."""
        return self.diagnose_trace(workload.trace(cfg), run_id=cfg.run_id())


def phased_program(
    parts: Sequence[ProgramTrace], name: str = "phased"
) -> ProgramTrace:
    """Concatenate programs phase-by-phase (same thread count each).

    Builds executions like "stream, then falsely share, then stream" so the
    sliced detector has something to localize.
    """
    if not parts:
        raise ConfigError("need at least one phase")
    nt = parts[0].nthreads
    for p in parts:
        if p.nthreads != nt:
            raise ConfigError("all phases must have the same thread count")
    threads = []
    for tid in range(nt):
        t = parts[0].threads[tid]
        for p in parts[1:]:
            t = t.concat(p.threads[tid])
        threads.append(t)
    return ProgramTrace(threads, name=name,
                        meta={"phases": len(parts), "workload": name})
