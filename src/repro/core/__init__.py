"""The paper's methodology: event selection, training, the detector."""

from repro.core.advisor import ContendedLine, Diagnosis, FalseSharingAdvisor
from repro.core.detector import CaseResult, FalseSharingDetector, detects_false_sharing
from repro.core.event_selection import (
    MIN_RATIO,
    SELECTION_THREADS,
    SelectionResult,
    select_events,
)
from repro.core.lab import Lab
from repro.core.slicing import SlicedDetector, SlicedDiagnosis, SliceVerdict, phased_program
from repro.core.training import (
    FEATURE_NAMES,
    FEATURES,
    PART_A_PLAN,
    PART_B_PLAN,
    PlanRow,
    ScreeningReport,
    TrainingData,
    collect_plan,
    collect_training_data,
    make_part_a_plan,
    plan_counts,
    screen_instances,
)

__all__ = [
    "ContendedLine",
    "Diagnosis",
    "FalseSharingAdvisor",
    "SlicedDetector",
    "SlicedDiagnosis",
    "SliceVerdict",
    "phased_program",
    "CaseResult",
    "FalseSharingDetector",
    "detects_false_sharing",
    "MIN_RATIO",
    "SELECTION_THREADS",
    "SelectionResult",
    "select_events",
    "Lab",
    "FEATURE_NAMES",
    "FEATURES",
    "PART_A_PLAN",
    "PART_B_PLAN",
    "PlanRow",
    "ScreeningReport",
    "TrainingData",
    "collect_plan",
    "collect_training_data",
    "make_part_a_plan",
    "plan_counts",
    "screen_instances",
]
