"""Event selection (paper Section 2.3): the 2x-ratio, two-pass procedure.

Starting from the candidate catalog, pass 1 keeps events whose normalized
counts differ by at least 2x between good and bad-fs runs for a majority of
the multi-threaded mini-programs; pass 2 repeats the test on the remaining
candidates with good vs bad-ma runs.  ``Instructions_Retired`` is not a
candidate — it is appended afterwards as the normalizer, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lab import Lab
from repro.pmu.events import (
    CANDIDATE_EVENTS,
    NORMALIZER,
    TABLE2_EVENTS,
    Event,
)
from repro.utils.stats import ratio
from repro.workloads.base import Mode, RunConfig
from repro.workloads.registry import get_workload

#: Thread counts used during selection runs ("e.g., 3, 6, 9, 12 on a 12-core
#: system" — Section 2.3).
SELECTION_THREADS = (3, 6, 9, 12)

#: The paper's heuristic: minimum count ratio that counts as "significant".
MIN_RATIO = 2.0


@dataclass
class EventVote:
    """Per-(event, program) outcome: the median good-vs-bad count ratio."""

    event: str
    program: str
    median_ratio: float
    significant: bool


@dataclass
class SelectionResult:
    """Everything the selection produced, for reporting and tests."""

    pass1: List[Event]
    pass2: List[Event]
    votes: List[EventVote] = field(default_factory=list)

    @property
    def selected(self) -> List[Event]:
        return self.pass1 + self.pass2

    @property
    def selected_names(self) -> List[str]:
        return [e.name for e in self.selected]

    def with_normalizer(self) -> List[Event]:
        """The full measurement set: selected events + Instructions_Retired."""
        return self.selected + [NORMALIZER]

    def table2_comparison(self) -> Dict[str, List[str]]:
        """How the outcome compares with the paper's Table 2."""
        ours = set(self.selected_names)
        paper = {e.name for e in TABLE2_EVENTS if e.name != NORMALIZER.name}
        return {
            "agreed": sorted(ours & paper),
            "missed": sorted(paper - ours),
            "extra": sorted(ours - paper),
        }


def _median_ratio(
    lab: Lab,
    event: Event,
    program: str,
    bad_mode: Mode,
    threads: Sequence[int],
    size: int,
) -> float:
    """Median |ratio| of normalized counts between good and bad runs."""
    workload = get_workload(program)
    ratios = []
    for t in threads:
        good_cfg = RunConfig(threads=t, mode=Mode.GOOD, size=size)
        bad_cfg = RunConfig(threads=t, mode=bad_mode, size=size)
        gv = lab.measure(workload, good_cfg, [event, NORMALIZER])
        bv = lab.measure(workload, bad_cfg, [event, NORMALIZER])
        ratios.append(ratio(gv.normalized(event), bv.normalized(event)))
    return float(np.median(ratios))


def _vote_pass(
    lab: Lab,
    candidates: Sequence[Event],
    programs: Sequence[str],
    bad_mode: Mode,
    votes: List[EventVote],
) -> List[Event]:
    selected = []
    for event in candidates:
        yes = 0
        for program in programs:
            workload = get_workload(program)
            if bad_mode not in workload.modes:
                continue
            if workload.kind == "seq":
                threads: Tuple[int, ...] = (1,)
            else:
                threads = tuple(SELECTION_THREADS)
            size = workload.train_sizes[len(workload.train_sizes) // 2]
            med = _median_ratio(lab, event, program, bad_mode, threads, size)
            significant = med >= MIN_RATIO
            votes.append(EventVote(event.name, program, med, significant))
            yes += int(significant)
        eligible = sum(
            1 for p in programs if bad_mode in get_workload(p).modes
        )
        if eligible and yes > eligible / 2:
            selected.append(event)
    return selected


def select_events(
    lab: Optional[Lab] = None,
    candidates: Optional[Sequence[Event]] = None,
    mt_programs: Optional[Sequence[str]] = None,
    ma_programs: Optional[Sequence[str]] = None,
) -> SelectionResult:
    """Run the two-pass Section 2.3 selection and return the outcome."""
    lab = lab or Lab()
    if candidates is None:
        candidates = [e for e in CANDIDATE_EVENTS if e.name != NORMALIZER.name]
    if mt_programs is None:
        mt_programs = [
            "psums", "padding", "false1", "psumv", "pdot", "count",
            "pmatmult", "pmatcompare",
        ]
    if ma_programs is None:
        # Programs that exercise bad-ma: the vector minis, pmatcompare, and
        # the sequential set.
        ma_programs = [
            "psumv", "pdot", "count", "pmatcompare",
            "seq_read", "seq_write", "seq_rmw", "seq_matmul",
        ]
    votes: List[EventVote] = []
    pass1 = _vote_pass(lab, candidates, mt_programs, Mode.BAD_FS, votes)
    chosen = {e.name for e in pass1}
    remaining = [e for e in candidates if e.name not in chosen]
    pass2 = _vote_pass(lab, remaining, ma_programs, Mode.BAD_MA, votes)
    return SelectionResult(pass1=pass1, pass2=pass2, votes=votes)
