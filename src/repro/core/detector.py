"""The public face of the paper's method: train once, classify any program.

:class:`FalseSharingDetector` wraps the J48 tree with the measurement
conventions (Table 2 events, normalization) so a caller can hand it either a
raw :class:`EventVector` from any source or a workload + configuration to
run on the lab.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel import ExecutionEngine

from repro.core.lab import Lab
from repro.core.training import (
    FEATURE_NAMES,
    FEATURES,
    TrainingData,
    collect_training_data,
)
from repro.errors import NotFittedError
from repro.ml.c45 import C45Classifier
from repro.ml.dataset import Dataset
from repro.ml.validation import ConfusionMatrix, cross_validate
from repro.pmu.counters import EventVector
from repro.pmu.events import TABLE2_EVENTS
from repro.utils.stats import majority, tally
from repro.workloads.base import Mode, RunConfig, Workload


@dataclass
class CaseResult:
    """Classification of one program run (one cell of Tables 6/8)."""

    label: str
    seconds: float
    meta: Dict[str, object] = field(default_factory=dict)


class FalseSharingDetector:
    """Trainable detector: Table 2 events + a C4.5 tree.

    Typical use::

        lab = Lab()
        det = FalseSharingDetector(lab).fit()
        label = det.classify(workload, RunConfig(threads=6, mode="good"))
    """

    def __init__(
        self,
        lab: Optional[Lab] = None,
        make_classifier: Callable[[], C45Classifier] = C45Classifier,
    ) -> None:
        self.lab = lab or Lab()
        self.make_classifier = make_classifier
        self.classifier: Optional[C45Classifier] = None
        self.training: Optional[TrainingData] = None

    # ------------------------------------------------------------------ fit

    def fit(
        self,
        dataset: Optional[Dataset] = None,
        training: Optional[TrainingData] = None,
        jobs: Optional[int] = None,
    ) -> "FalseSharingDetector":
        """Train on an explicit dataset, a TrainingData, or collect afresh.

        ``jobs`` parallelizes a fresh collection's simulations (ignored when
        a dataset or training set is supplied)."""
        if dataset is None:
            if training is None:
                training = collect_training_data(self.lab, jobs=jobs)
            self.training = training
            dataset = training.dataset
        self.classifier = self.make_classifier()
        self.classifier.fit(dataset)
        return self

    def _require_fitted(self) -> C45Classifier:
        if self.classifier is None:
            raise NotFittedError("detector has not been fitted")
        return self.classifier

    def cross_validate(self, k: int = 10, seed: int = 0) -> ConfusionMatrix:
        """Stratified k-fold CV on the training data (paper Table 4)."""
        if self.training is None:
            raise NotFittedError("detector was fitted without training data")
        return cross_validate(self.make_classifier, self.training.dataset,
                              k=k, seed=seed)

    # ------------------------------------------------------------- classify

    def classify_vector(self, vector: EventVector) -> str:
        """Classify one measurement (any source that provides Table 2 counts)."""
        clf = self._require_fitted()
        return clf.predict_one(vector.features(FEATURES))

    def classify_features(self, features: np.ndarray) -> str:
        """Classify a pre-normalized 15-event feature vector."""
        return self._require_fitted().predict_one(np.asarray(features))

    def classify(self, workload: Workload, cfg: RunConfig) -> CaseResult:
        """Run a workload on the lab, measure, classify."""
        vec = self.lab.measure(workload, cfg, TABLE2_EVENTS)
        return CaseResult(
            label=self.classify_vector(vec),
            seconds=float(vec.meta.get("seconds", 0.0)),
            meta=dict(vec.meta),
        )

    def classify_cases(
        self,
        workload: Workload,
        cases: Sequence[RunConfig],
        jobs: Optional[int] = None,
        engine: Optional["ExecutionEngine"] = None,
    ) -> List[CaseResult]:
        """Classify a grid of cases, optionally simulating them in parallel.

        Workers only simulate; measurement and classification run serially
        in case order here, so the results are identical for any ``jobs``.
        """
        if engine is None and jobs is not None:
            from repro.parallel import ExecutionEngine

            engine = ExecutionEngine(jobs)
        if engine is not None:
            engine.prefetch_simulations(
                self.lab, [(workload, cfg) for cfg in cases]
            )
        return [self.classify(workload, cfg) for cfg in cases]

    def overall_label(self, case_labels: Sequence[str]) -> str:
        """The paper's program-level verdict: majority over all cases."""
        return majority(case_labels)

    def label_tally(self, case_labels: Sequence[str]) -> Dict[str, int]:
        return tally(case_labels)

    # ------------------------------------------------------------ reporting

    def save(self, path) -> None:
        """Persist the trained tree as JSON (train once, classify anywhere)."""
        from repro.ml.persistence import save_classifier

        save_classifier(self._require_fitted(), path)

    def load(self, path) -> "FalseSharingDetector":
        """Load a tree saved with :meth:`save` (no training data attached)."""
        from repro.ml.persistence import load_classifier

        self.classifier = load_classifier(path)
        self.training = None
        return self

    def render_tree(self) -> str:
        """Weka-style text rendering of the learned tree (paper Figure 2)."""
        return self._require_fitted().render()

    def tree_events(self) -> List[str]:
        """Names of the events the pruned tree actually tests."""
        return self._require_fitted().used_feature_names()

    def tree_event_numbers(self) -> List[int]:
        """Paper-style 1-based Table 2 indices of the tested events."""
        return [FEATURE_NAMES.index(n) + 1 for n in self.tree_events()]


def detects_false_sharing(label: str) -> bool:
    """True when a classification label means false sharing is present."""
    return label == Mode.BAD_FS.value
